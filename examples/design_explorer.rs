//! Design-space explorer: find the wide-and-slow sweet spot yourself.
//!
//! ```sh
//! cargo run --release --example design_explorer [aggregate_gbps] [span_m]
//! ```
//!
//! Sweeps the per-channel rate for your target (default 800 Gb/s over
//! 10 m) and prints the full trade table: channel count, feasibility,
//! power, energy/bit and array size, plus the chosen optimum — the F1
//! experiment as an interactive tool.

use mosaic_repro::mosaic::design::{best_design, default_rate_grid, sweep_channel_rate};
use mosaic_repro::units::{BitRate, Length};

fn main() {
    let mut args = std::env::args().skip(1);
    let gbps: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(800.0);
    let span: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10.0);

    let aggregate = BitRate::from_gbps(gbps);
    let length = Length::from_m(span);
    println!("design space for {aggregate} over {length}\n");
    println!(
        "{:>8} {:>9} {:>9} {:>10} {:>9} {:>10} {:>12}",
        "Gb/s/ch", "channels", "feasible", "margin dB", "link W", "pJ/bit", "array"
    );
    let points = sweep_channel_rate(aggregate, length, &default_rate_grid())
        .expect("sweep inputs are valid");
    for p in &points {
        println!(
            "{:>8.2} {:>9} {:>9} {:>10} {:>9.2} {:>10.2} {:>12}",
            p.channel_rate.as_gbps(),
            p.channels,
            p.feasible,
            if p.feasible {
                format!("{:.1}", p.worst_margin_db)
            } else {
                "-".into()
            },
            p.link_power.as_watts(),
            p.energy_per_bit.as_pj_per_bit(),
            format!("{}", p.array_radius),
        );
    }
    match best_design(&points) {
        Some(best) => println!(
            "\noptimum: {:.1} Gb/s per channel — {} channels, {:.2} W per link, {:.2} pJ/bit",
            best.channel_rate.as_gbps(),
            best.channels,
            best.link_power.as_watts(),
            best.energy_per_bit.as_pj_per_bit()
        ),
        None => println!("\nno feasible design at this span — try fewer Gb/s or a shorter run"),
    }
}
