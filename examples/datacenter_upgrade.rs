//! Datacenter upgrade study: what swapping in Mosaic does to a fleet.
//!
//! ```sh
//! cargo run --release --example datacenter_upgrade
//! ```
//!
//! Takes a 64k-server Clos fabric, assigns every link the cheapest
//! technology under three deployment policies, and compares fleet power
//! and yearly repair tickets — the operator's view of claims C2 and C3.

use mosaic_repro::mosaic::compare::candidates;
use mosaic_repro::netsim::assignment::{assign, Policy};
use mosaic_repro::netsim::failure_sim::simulate_fleet;
use mosaic_repro::netsim::fleet::rollup;
use mosaic_repro::netsim::topology::ClosTopology;
use mosaic_repro::units::{BitRate, Duration};

fn main() {
    let topo = ClosTopology::large();
    let cands = candidates(BitRate::from_gbps(800.0));
    println!(
        "fabric: {} servers, {} links (800G everywhere)\n",
        topo.servers(),
        topo.total_links()
    );

    let mut baseline_power = None;
    for (name, policy) in [
        ("all-optics", Policy::AllOptics),
        ("copper + optics", Policy::CopperPlusOptics),
        ("copper + Mosaic + optics", Policy::WithMosaic),
    ] {
        let assignments = assign(&topo.link_classes(), &cands, policy);
        let fleet = rollup(&assignments);
        let sim = simulate_fleet(&assignments, 5.0, Duration::from_hours(24.0), 42);
        let kw = fleet.total_power.as_watts() / 1000.0;
        let saving = baseline_power
            .map(|base: f64| format!("  (-{:.0} % vs all-optics)", (1.0 - kw / base) * 100.0))
            .unwrap_or_default();
        if baseline_power.is_none() {
            baseline_power = Some(kw);
        }
        println!("policy: {name}");
        println!("  interconnect power : {kw:>8.1} kW{saving}");
        println!(
            "  per server         : {:>8.1} W",
            fleet.total_power.as_watts() / topo.servers() as f64
        );
        println!(
            "  repair tickets     : {:>8} over 5 simulated years",
            sim.tickets
        );
        println!(
            "  link mix           : {}",
            fleet
                .links_by_tech
                .iter()
                .map(|(k, v)| format!("{k}×{v}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!();
    }
}
