//! Fault-injection demo: a Mosaic link rides through channel deaths.
//!
//! ```sh
//! cargo run --release --example lane_failure_resilience
//! ```
//!
//! Streams framed traffic over a 64-channel gearbox while a fault script
//! kills channels and injects an error burst; spare channels absorb the
//! damage and the CRC layer proves no frame is ever silently corrupted.
//! This is claim C6 (protocol-agnostic integration + resilience) running
//! for real.

use mosaic_repro::sim::faults::{Fault, FaultSchedule};
use mosaic_repro::sim::link_sim::{simulate_link, LinkSimConfig};

fn run(label: &str, spares: usize, faults: FaultSchedule) {
    let cfg = LinkSimConfig {
        logical_lanes: 64,
        physical_channels: 64 + spares,
        am_period: 16,
        per_channel_ber: vec![1e-9; 64 + spares],
        epochs: 16,
        frames_per_epoch: 32,
        frame_size: 512,
        seed: 7,
        faults,
        degrade_threshold: Some(1e-5),
        monitor_window_bits: 10_000,
    };
    let r = simulate_link(&cfg);
    println!("{label} (spares: {spares})");
    println!(
        "  frames delivered    : {} / {}",
        r.frames_delivered, r.frames_sent
    );
    println!(
        "  silently corrupted  : {} (must be 0)",
        r.frames_silently_corrupted
    );
    println!("  spare remaps        : {}", r.remaps);
    println!("  epochs fully down   : {}", r.deskew_failed_epochs);
    println!("  monitor retirements : {}", r.retired_by_monitor);
    println!();
}

fn main() {
    println!("64-lane Mosaic gearbox, 16 epochs of framed traffic\n");

    run("baseline: clean channels", 4, FaultSchedule::new());

    let kills = FaultSchedule::new()
        .at(4, Fault::Kill { channel: 12 })
        .at(8, Fault::Kill { channel: 40 })
        .at(12, Fault::Kill { channel: 3 });
    run("three channel deaths, hot spares", 4, kills.clone());
    run("three channel deaths, NO spares", 0, kills);

    let burst = FaultSchedule::new().at(
        6,
        Fault::Burst {
            channel: 9,
            ber: 2e-3,
            epochs: 3,
        },
    );
    run(
        "transient 3-epoch error burst (BER 2e-3) + monitor retirement",
        4,
        burst,
    );
}
