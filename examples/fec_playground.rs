//! FEC playground: watch the real KP4 decoder absorb a dying channel.
//!
//! ```sh
//! cargo run --release --example fec_playground [channels] [dead_channel]
//! ```
//!
//! Encodes a KP4 RS(544,514) codeword, stripes it over N channels,
//! kills one channel entirely, sprinkles extra random errors, and decodes
//! three ways: blind, burst-only, and erasure-aware (using the lane
//! monitor's knowledge of which channel died). Demonstrates why
//! `2·errors + erasures ≤ 30` makes a dead channel survivable.

use mosaic_repro::fec::channel_map::ChannelMap;
use mosaic_repro::fec::rs::{DecodeOutcome, ReedSolomon};
use mosaic_repro::sim::rng::DetRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let channels: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let dead: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let rs = ReedSolomon::kp4();
    let map = ChannelMap::new(rs.n(), channels);
    println!(
        "KP4 RS(544,514), t = {}, striped over {channels} channels ({} symbols each)",
        rs.t(),
        map.symbols_per_channel()
    );
    println!(
        "erasure budget: can absorb {} whole dead channel(s) while reserving 5 blind errors\n",
        map.erasable_channels(&rs, 5)
    );

    let mut rng = DetRng::new(2025);
    let data: Vec<u16> = (0..rs.k())
        .map(|_| (rng.next_u64() & 0x3FF) as u16)
        .collect();
    let clean = rs.encode(&data);

    // Channel `dead` garbles every symbol it carries; two random blind
    // errors land elsewhere.
    let mut word = clean.clone();
    let positions = map.positions_of(dead.min(channels - 1));
    for &p in &positions {
        word[p] = (rng.next_u64() & 0x3FF) as u16;
    }
    for _ in 0..2 {
        let p = rng.below(rs.n());
        if !positions.contains(&p) {
            word[p] ^= 0x2AA;
        }
    }
    println!(
        "fault: channel {dead} dead ({} symbols garbled) + 2 random errors\n",
        positions.len()
    );

    let mut blind = word.clone();
    match rs.decode(&mut blind).expect("codeword length is exact") {
        DecodeOutcome::Failure => {
            println!(
                "blind decode          : FAILURE (as expected — {} > t)",
                positions.len()
            )
        }
        other => println!("blind decode          : {other:?} (lucky pattern)"),
    }

    let mut aware = word.clone();
    let outcome = map
        .decode_with_suspects(&rs, &mut aware, &[dead.min(channels - 1)])
        .expect("suspect channel index is in range");
    match outcome {
        DecodeOutcome::Corrected(n) => {
            let ok = aware == clean;
            println!("erasure-aware decode  : corrected {n} symbols, payload intact: {ok}");
        }
        other => println!("erasure-aware decode  : {other:?}"),
    }
}
