//! Quickstart: design and evaluate one Mosaic link.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds an 800G wide-and-slow link over 10 m of imaging fiber, prints
//! the full engineering report (per-channel budget summary, power
//! breakdown, reliability), then shows how the same link degrades as the
//! span stretches toward the reach limit.

use mosaic_repro::mosaic::MosaicConfig;
use mosaic_repro::units::{BitRate, Length};

fn main() {
    // The one-liner: aggregate rate + span length; everything else has
    // production defaults (2 Gb/s channels, KP4 FEC, 2 % sparing).
    let cfg = MosaicConfig::builder()
        .bit_rate(BitRate::from_gbps(800.0))
        .reach(Length::from_m(10.0))
        .build()
        .unwrap();
    let report = cfg.evaluate();
    println!("{report}");

    // Stretch the span: margin erodes until the link stops closing.
    println!("\nmargin vs span length:");
    for m in [5.0, 10.0, 20.0, 30.0, 50.0, 70.0, 90.0, 120.0] {
        let mut c = cfg.clone();
        c.length = Length::from_m(m);
        let r = c.evaluate();
        match r.worst_margin {
            Some(margin) if r.is_feasible() => {
                println!("  {m:>5.0} m  margin {:>6.2} dB", margin.as_db())
            }
            _ => println!("  {m:>5.0} m  does not close"),
        }
    }
}
