//! The paper's headline demo, end to end: 100 microLED channels ×
//! 2 Gb/s over 10 m of imaging fiber.
//!
//! ```sh
//! cargo run --release --example prototype_demo [misalign_um] [rotation_mrad]
//! ```
//!
//! Prints the per-channel pre-FEC BER map (by lattice ring), pushes real
//! frames through the full gearbox + error-injection stack, and reports
//! delivery. A lateral misalignment hits every ring equally; a rotation
//! hits the outer rings first (try `0 25`, then `3 0`).

use mosaic_repro::fec::KP4_BER_THRESHOLD;
use mosaic_repro::fiber::crosstalk::Misalignment;
use mosaic_repro::fiber::geometry::cores_in_rings;
use mosaic_repro::mosaic::prototype::{prototype_ber_map, prototype_config, run_prototype};
use mosaic_repro::units::Length;

fn main() {
    let mut args = std::env::args().skip(1);
    let misalign_um: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.0);
    let rotation_mrad: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.0);

    let mut cfg = prototype_config();
    cfg.misalignment = Misalignment {
        lateral: Length::from_um(misalign_um),
        rotation_rad: rotation_mrad / 1000.0,
    };
    println!(
        "prototype: {} channels x {} over {} (lateral {misalign_um} um, rotation {rotation_mrad} mrad)\n",
        cfg.active_channels(),
        cfg.channel_rate,
        cfg.length
    );

    let map = prototype_ber_map(&cfg);
    println!("per-ring worst pre-FEC BER (KP4 threshold {KP4_BER_THRESHOLD:.1e}):");
    let mut start = 0usize;
    let mut ring = 0u32;
    while start < map.len() {
        let end = cores_in_rings(ring).min(map.len());
        let worst = map[start..end].iter().cloned().fold(0.0, f64::max);
        let bar_len = ((worst.log10() + 60.0) / 60.0 * 40.0).clamp(0.0, 40.0) as usize;
        let status = if worst < KP4_BER_THRESHOLD {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "  ring {ring}: {:>9.2e}  {:<40} {status}",
            worst,
            "#".repeat(bar_len)
        );
        start = end;
        ring += 1;
    }

    let passing = map.iter().filter(|&&b| b < KP4_BER_THRESHOLD).count();
    println!(
        "\n{passing}/{} channels inside the KP4 threshold",
        map.len()
    );

    if passing == map.len() {
        let report = run_prototype(&cfg, 4, 2025);
        println!(
            "end-to-end: {}/{} frames delivered intact, {} silently corrupted",
            report.frames_delivered, report.frames_sent, report.frames_silently_corrupted
        );
    } else {
        println!("link would not close — realign the optics and retry");
    }
}
