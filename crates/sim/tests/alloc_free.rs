//! Proof of the "zero heap allocations per Monte-Carlo inner loop" claim
//! for the bit-sliced kernels: a counting global allocator wraps the
//! system allocator, and the sliced slicer / injector / scrambler / PRBS
//! hot paths must not touch it once their buffers are warmed.
//!
//! The fec-side twin is `crates/fec/tests/alloc_free.rs`; both harnesses
//! are cross-checked against the `mosaic_lint` R4 no-alloc registry.
//! Everything runs in a single `#[test]` so no concurrent test can
//! pollute the process-wide counter.

use mosaic_link::prbs::{Prbs, PrbsBank};
use mosaic_link::scrambler::Scrambler;
use mosaic_link::striping::LaneWord;
use mosaic_sim::inject::BitErrorInjector;
use mosaic_sim::montecarlo::SlicerPoint;
use mosaic_sim::rng::DetRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations observed while running `f`.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

#[test]
fn sliced_kernel_paths_do_not_allocate() {
    // --- OOK slicer: packed tx/decision arrays live on the stack --------
    let point = SlicerPoint {
        i1: 1.0e-5,
        i0: 1.0e-6,
        s1: 3.0e-6,
        s0: 2.0e-6,
        threshold: 4.6e-6,
    };
    let mut rng = DetRng::substream(3, "alloc-free-slicer");
    let mut total = 0u64;
    // Warm-up: one pass through the slicer before the first counter read,
    // so the libtest harness's own startup allocations (made from its
    // main thread while this test begins) cannot race the measurement.
    total += point.count_errors(4096, &mut rng);
    std::thread::sleep(std::time::Duration::from_millis(20));
    // Boundary bit counts: tail blocks must not fall back to heap scratch.
    let n = allocs_during(|| {
        for bits in [1u64, 63, 64, 65, 1024, 100_000] {
            total += point.count_errors(bits, &mut rng);
            total += point.count_errors_sliced(bits, &mut rng);
            total += point.count_errors_scalar(bits, &mut rng);
        }
    });
    assert_eq!(n, 0, "slicer kernels allocated {n} times");

    // --- Tail importance sampler: the tilted-draw batch is pure
    //     register arithmetic over the warmed RNG ------------------------
    let mut tail_rng = DetRng::substream(3, "alloc-free-tail");
    let mut tail_mass = 0.0f64;
    let n = allocs_during(|| {
        for d in [0.0f64, 2.0, 6.0, 8.5] {
            let (w, w2) = mosaic_sim::fidelity::tail_batch(d, 4096, &mut tail_rng);
            tail_mass += w + w2;
        }
    });
    assert_eq!(n, 0, "tail_batch allocated {n} times");
    assert!(tail_mass > 0.0, "tail batches must have drawn real mass");

    // --- Bit-error injector: batched word and symbol corruption ---------
    let mut inj = BitErrorInjector::new(1e-3, DetRng::substream(3, "alloc-free-inject"));
    let mut words = vec![0u64; 1024];
    let mut symbols = vec![0u16; 4096];
    let n = allocs_during(|| {
        for _ in 0..8 {
            total += inj.corrupt_words(&mut words);
            total += inj.corrupt_words_sliced(&mut words);
            total += inj.corrupt_words_scalar(&mut words);
            total += inj.corrupt_symbols(&mut symbols, 10);
        }
    });
    assert_eq!(n, 0, "injector kernels allocated {n} times");

    // --- Lane corruption: the run-gathering buffer is a stack array -----
    let mut lane: Vec<LaneWord> = (0..512)
        .map(|i| {
            if i % 33 == 0 {
                LaneWord::Marker(i as u32)
            } else {
                LaneWord::Data(i as u64)
            }
        })
        .collect();
    let n = allocs_during(|| {
        for _ in 0..8 {
            total += inj.corrupt_lane(&mut lane);
        }
    });
    assert_eq!(n, 0, "lane corruption allocated {n} times");

    // --- Scrambler: pure register arithmetic ----------------------------
    let mut tx = Scrambler::new();
    let mut rx = Scrambler::new();
    let n = allocs_during(|| {
        for i in 0..512u64 {
            let w = tx.scramble_word(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            total += u64::from(rx.descramble_word(w).count_ones());
            let w = tx.scramble_word_sliced(i);
            total += u64::from(rx.descramble_word_sliced(w).count_ones());
        }
    });
    assert_eq!(n, 0, "scrambler word kernels allocated {n} times");

    // --- Raw-draw primitives: slab fill and packed thinning -------------
    let mut slab64 = [0u64; 3 * 256];
    let thin = mosaic_sim::rng::Bernoulli::new(0.125);
    let n = allocs_during(|| {
        for _ in 0..64 {
            rng.fill_u64(&mut slab64);
            total += slab64
                .iter()
                .map(|w| u64::from(w.count_ones()))
                .sum::<u64>();
            total += u64::from(thin.at_most(640, 3, &mut rng));
        }
    });
    assert_eq!(n, 0, "raw-draw primitives allocated {n} times");

    // --- PRBS bank: slab generation into warmed buffers -----------------
    let mut bank = PrbsBank::with_seeds(&Prbs::prbs31(), 130, |l| 1 + l as u64);
    let mut slab = vec![0u64; bank.words()];
    let mut bulk = vec![0u64; 64 * bank.words()];
    let n = allocs_during(|| {
        for _ in 0..64 {
            bank.next_bits(&mut slab);
            total += slab.iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
        }
        bank.bits_into(64, &mut bulk);
    });
    assert_eq!(n, 0, "PRBS bank kernels allocated {n} times");

    // Keep the accumulator live so nothing above is optimized away.
    assert!(
        total > 0,
        "kernels must have done real work (total {total})"
    );
}
