//! Property tests for the discrete-event queue: FIFO among simultaneous
//! events is the ordering guarantee every event-sourced replay (the
//! hyperfleet engine above all) leans on for determinism.

use mosaic_sim::event::EventQueue;
use proptest::prelude::*;

proptest! {
    /// Events scheduled at equal times pop in insertion order, whatever
    /// the interleaving with other times — i.e. the queue is a stable
    /// priority queue over (time, insertion index).
    #[test]
    fn simultaneous_events_pop_in_insertion_order(
        times in proptest::collection::vec(0u8..4, 1..64)
    ) {
        // Degenerate time domain (4 distinct values) forces many ties.
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t as f64, i);
        }
        let mut popped = Vec::new();
        while let Some((t, id)) = q.pop() {
            popped.push((t, id));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            let ((t0, i0), (t1, i1)) = (w[0], w[1]);
            prop_assert!(t0 <= t1, "times out of order: {t0} then {t1}");
            if t0 == t1 {
                prop_assert!(i0 < i1, "tie at t={t0} broke insertion order: {i0} then {i1}");
            }
        }
    }

    /// `reset` keeps the queue usable and the FIFO guarantee intact, and
    /// restarts insertion-order numbering from scratch.
    #[test]
    fn reset_preserves_fifo_semantics(
        first in proptest::collection::vec(0u8..3, 1..16),
        second in proptest::collection::vec(0u8..3, 1..16),
    ) {
        let mut q = EventQueue::with_capacity(32);
        for (i, &t) in first.iter().enumerate() {
            q.schedule(t as f64, i);
        }
        q.reset();
        prop_assert!(q.is_empty());
        for (i, &t) in second.iter().enumerate() {
            q.schedule(t as f64, i);
        }
        let mut prev: Option<(f64, usize)> = None;
        let mut count = 0usize;
        while let Some((t, id)) = q.pop() {
            if let Some((pt, pid)) = prev {
                prop_assert!(pt <= t);
                if pt == t {
                    prop_assert!(pid < id);
                }
            }
            prev = Some((t, id));
            count += 1;
        }
        prop_assert_eq!(count, second.len());
    }
}
