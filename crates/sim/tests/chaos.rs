//! Chaos tests: the panic-tolerant sweep pipeline under injected faults.
//!
//! These are the integration-level guarantees behind the robustness PR:
//!
//! 1. An injected-panic sweep *returns* (no abort): the panic is counted
//!    in `RunStats`, the trial retries on a fresh substream, and the
//!    final values match a run where nothing panicked.
//! 2. A trial that exhausts its retry budget yields `None` plus a
//!    `TrialFailure` record — the rest of the sweep is unaffected.
//! 3. Worker panics in the `try_*` engines surface as
//!    `MosaicError::WorkerFailed` with a deterministic message (the
//!    smallest-index failing task wins), never as a process abort.
//! 4. Everything above is thread-count invariant, as are fault-campaign
//!    generation and replay.

// The deprecated `par_trials_resilient` wrapper keeps exactly one
// explicit compat test (`trial_plan_resilient_matches_wrapper_...`)
// until it is removed; everything else runs on TrialPlan.

use mosaic_sim::campaign::{run_campaign, CampaignRunConfig};
use mosaic_sim::faults::{CampaignConfig, FaultCampaign};
use mosaic_sim::sweep::{Exec, TrialPlan};
use mosaic_units::MosaicError;
use proptest::prelude::*;

/// Trial values are pure functions of the trial index (no RNG), so a
/// retried trial reproduces the same value and the injected-panic run
/// must match the clean run bit-for-bit.
fn trial_value(i: u64) -> u64 {
    i.wrapping_mul(i).wrapping_add(17)
}

#[test]
fn injected_panic_sweep_matches_clean_run() {
    let exec = Exec::with_threads(4);
    let clean = TrialPlan::new()
        .trials(32)
        .seed(99)
        .label("chaos-clean")
        .retry_budget(2)
        .run_resilient(&exec, |ctx| trial_value(ctx.trial()));
    assert_eq!(clean.stats.panics, 0);
    assert_eq!(clean.stats.retries, 0);
    assert_eq!(clean.stats.failed_trials, 0);
    assert!(clean.failures.is_empty());

    // Trials 3 and 20 panic on their first attempt, succeed on retry.
    let faulty = TrialPlan::new()
        .trials(32)
        .seed(99)
        .label("chaos-faulty")
        .retry_budget(2)
        .run_resilient(&exec, |ctx| {
            let i = ctx.trial();
            if (i == 3 || i == 20) && ctx.attempt() == 0 {
                panic!("injected fault in trial {i}");
            }
            trial_value(i)
        });
    assert_eq!(
        faulty.values, clean.values,
        "retried values must match the clean run"
    );
    assert_eq!(faulty.stats.panics, 2);
    assert_eq!(faulty.stats.retries, 2);
    assert_eq!(faulty.stats.failed_trials, 0);
    assert!(faulty.failures.is_empty());
}

#[test]
fn budget_exhaustion_yields_none_without_poisoning_neighbors() {
    let exec = Exec::with_threads(3);
    // Trial 5 panics on every attempt; budget 1 → two attempts, both fail.
    let run = TrialPlan::new()
        .trials(12)
        .seed(7)
        .label("chaos-exhaust")
        .retry_budget(1)
        .run_resilient(&exec, |ctx| {
            if ctx.trial() == 5 {
                panic!("permanently broken trial");
            }
            trial_value(ctx.trial())
        });
    for (i, v) in run.values.iter().enumerate() {
        if i == 5 {
            assert!(v.is_none(), "exhausted trial must yield None");
        } else {
            assert_eq!(
                *v,
                Some(trial_value(i as u64)),
                "neighbor trials unaffected"
            );
        }
    }
    assert_eq!(run.failures.len(), 1);
    assert_eq!(run.failures[0].trial, 5);
    assert_eq!(run.failures[0].attempts, 2);
    assert!(run.failures[0].message.contains("permanently broken"));
    assert_eq!(run.stats.panics, 2);
    // One retry attempt was performed (attempt 1) even though it failed.
    assert_eq!(run.stats.retries, 1);
    assert_eq!(run.stats.failed_trials, 1);
}

#[test]
fn worker_failed_picks_smallest_task_index_at_any_thread_count() {
    for threads in [1, 2, 4, 8] {
        let exec = Exec::with_threads(threads);
        let err = exec
            .try_run_tasks(16, |i| {
                if i == 11 {
                    panic!("late fault");
                }
                if i == 4 {
                    panic!("early fault");
                }
                i
            })
            .expect_err("panicking tasks must surface as Err");
        match err {
            MosaicError::WorkerFailed { message, .. } => {
                assert!(
                    message.contains("early fault"),
                    "threads={threads}: expected smallest-index task message, got {message:?}"
                );
            }
            other => panic!("threads={threads}: expected WorkerFailed, got {other:?}"),
        }
    }
}

#[test]
fn try_fold_surfaces_worker_failed_instead_of_partial_sums() {
    let exec = Exec::with_threads(4);
    let err = exec
        .try_fold_tasks_commutative(
            64,
            || (),
            || 0u64,
            |i, _state: &mut (), acc: &mut u64| {
                if i == 30 {
                    panic!("fold fault");
                }
                *acc += i as u64;
            },
            |a, b| *a += b,
        )
        .expect_err("fold with a panicking task must fail");
    assert!(
        matches!(err, MosaicError::WorkerFailed { .. }),
        "got {err:?}"
    );
}

#[test]
fn campaign_replay_is_reproducible_and_exec_independent() {
    let cfg = CampaignRunConfig {
        campaign: CampaignConfig {
            faults_per_kilo_epoch: 4.0,
            ..CampaignConfig::default()
        },
        controller: true,
        ..CampaignRunConfig::default()
    };
    let a = run_campaign(&cfg, 42).expect("valid config");
    let b = run_campaign(&cfg, 42).expect("valid config");
    assert_eq!(
        a, b,
        "campaign replay must be a pure function of (config, seed)"
    );
}

proptest! {
    /// Resilient sweeps are bit-identical across thread counts for any
    /// injected panic pattern: `mask` bit `i` makes trial `i` panic on
    /// attempt 0, and bit `i` of `hard_mask` makes it panic on every
    /// attempt (exhausting the budget). Values, failure records, and
    /// fault counters must all match between 1 and 8 threads.
    #[test]
    fn resilient_sweep_is_thread_invariant(
        seed: u64,
        n in 1u64..48,
        mask: u64,
        hard_mask: u64,
    ) {
        let run_at = |threads: usize| {
            TrialPlan::new()
                .trials(n)
                .seed(seed)
                .label("chaos-prop")
                .retry_budget(2)
                .run_resilient(&Exec::with_threads(threads), |ctx| {
                    let i = ctx.trial();
                    if (hard_mask >> (i % 64)) & 1 == 1 {
                        panic!("hard fault {i}");
                    }
                    if ctx.attempt() == 0 && (mask >> (i % 64)) & 1 == 1 {
                        panic!("soft fault {i}");
                    }
                    trial_value(i)
                })
        };
        let seq = run_at(1);
        let par = run_at(8);
        prop_assert_eq!(&seq.values, &par.values);
        prop_assert_eq!(&seq.failures, &par.failures);
        prop_assert_eq!(seq.stats.panics, par.stats.panics);
        prop_assert_eq!(seq.stats.retries, par.stats.retries);
        prop_assert_eq!(seq.stats.failed_trials, par.stats.failed_trials);
    }

    /// The explicit compat test for the deprecated wrapper:
    /// TrialPlan::run_resilient is bit-identical to par_trials_resilient
    /// for any injected panic pattern, and thread invariant — so the
    /// wrapper inherits every chaos gate above transitively.
    #[test]
    #[allow(deprecated)]
    fn trial_plan_resilient_matches_wrapper_and_is_thread_invariant(
        seed: u64,
        n in 1u64..48,
        mask: u64,
        hard_mask: u64,
    ) {
        let plan_run = |threads: usize| {
            TrialPlan::new()
                .trials(n)
                .seed(seed)
                .label("chaos-plan")
                .retry_budget(2)
                .run_resilient(&Exec::with_threads(threads), |ctx| {
                    let i = ctx.trial();
                    if (hard_mask >> (i % 64)) & 1 == 1 {
                        panic!("hard fault {i}");
                    }
                    if ctx.attempt() == 0 && (mask >> (i % 64)) & 1 == 1 {
                        panic!("soft fault {i}");
                    }
                    trial_value(i)
                })
        };
        let wrapper = Exec::with_threads(1).par_trials_resilient(
            n, seed, "chaos-plan", 2,
            |i, attempt, _rng| {
                if (hard_mask >> (i % 64)) & 1 == 1 {
                    panic!("hard fault {i}");
                }
                if attempt == 0 && (mask >> (i % 64)) & 1 == 1 {
                    panic!("soft fault {i}");
                }
                trial_value(i)
            },
        );
        let seq = plan_run(1);
        let par = plan_run(8);
        prop_assert_eq!(&seq.values, &wrapper.values);
        prop_assert_eq!(&seq.failures, &wrapper.failures);
        prop_assert_eq!(&seq.values, &par.values);
        prop_assert_eq!(&seq.failures, &par.failures);
        prop_assert_eq!(seq.stats.panics, par.stats.panics);
        prop_assert_eq!(seq.stats.retries, par.stats.retries);
        prop_assert_eq!(seq.stats.failed_trials, par.stats.failed_trials);
    }

    /// Fault-campaign generation is a pure function of (config, seed):
    /// regenerating yields the same digest, and the digest is stable under
    /// unrelated RNG activity in between.
    #[test]
    fn fault_campaign_digest_is_reproducible(seed: u64, channels in 1usize..32) {
        let cfg = CampaignConfig { channels, ..CampaignConfig::default() };
        let first = FaultCampaign::generate(cfg, seed).digest();
        // Unrelated stream construction must not perturb regeneration.
        let _ = FaultCampaign::generate(cfg, seed ^ 0x9e37_79b9).digest();
        let second = FaultCampaign::generate(cfg, seed).digest();
        prop_assert_eq!(first, second);
    }
}
