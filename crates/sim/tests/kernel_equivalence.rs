//! Kernel-equivalence suite: the bit-sliced Monte-Carlo kernels must be
//! bit-identical to their retained scalar oracles — same outputs, same
//! RNG draw sequences — at lane/bit counts that straddle the 64-lane
//! word boundary and under arbitrary fault-campaign masks.
//!
//! These are the cross-crate integration twins of the per-module
//! differential proptests; the CI kernel-equivalence matrix additionally
//! runs the whole figure pipeline under `--features scalar-kernels` and
//! diffs manifests, but this suite localizes a divergence to a kernel.

use mosaic_link::prbs::{Prbs, PrbsBank};
use mosaic_link::scrambler::Scrambler;
use mosaic_link::striping::LaneWord;
use mosaic_sim::inject::BitErrorInjector;
use mosaic_sim::montecarlo::SlicerPoint;
use mosaic_sim::rng::DetRng;
use proptest::prelude::*;

/// The boundary counts the issue pins: below/at/above one word, plus a
/// many-word case.
const BOUNDARY_COUNTS: [usize; 5] = [1, 63, 64, 65, 1024];

fn slicer_point() -> SlicerPoint {
    // A mid-BER operating point (unequal rail noises) so both error and
    // no-error branches are exercised.
    SlicerPoint {
        i1: 1.0e-5,
        i0: 1.0e-6,
        s1: 3.0e-6,
        s0: 2.0e-6,
        threshold: 4.6e-6,
    }
}

#[test]
fn slicer_sliced_matches_scalar_at_boundary_counts() {
    let point = slicer_point();
    for &bits in &BOUNDARY_COUNTS {
        let mut rng_s = DetRng::substream(7, "kernel-eq-slicer");
        let mut rng_r = rng_s.clone();
        let sliced = point.count_errors_sliced(bits as u64, &mut rng_s);
        let scalar = point.count_errors_scalar(bits as u64, &mut rng_r);
        assert_eq!(sliced, scalar, "error count diverged at {bits} bits");
        assert_eq!(
            rng_s.next_u64(),
            rng_r.next_u64(),
            "RNG stream position diverged at {bits} bits"
        );
    }
}

#[test]
fn prbs_bank_matches_scalar_lanes_at_boundary_counts() {
    for &lanes in &BOUNDARY_COUNTS {
        let gens: Vec<Prbs> = (0..lanes)
            .map(|l| Prbs::prbs31().with_seed(1 + l as u64 * 0x9E37))
            .collect();
        let mut bank = PrbsBank::new(&gens);
        let mut scalars = gens;
        let mut slab = vec![0u64; bank.words()];
        for step in 0..200 {
            bank.next_bits(&mut slab);
            for (l, g) in scalars.iter_mut().enumerate() {
                assert_eq!(
                    ((slab[l / 64] >> (l % 64)) & 1) as u8,
                    g.next_bit(),
                    "lane {l}/{lanes} step {step}"
                );
            }
            if lanes % 64 != 0 {
                assert_eq!(slab[lanes / 64] >> (lanes % 64), 0, "tail lanes dirty");
            }
        }
    }
}

#[test]
fn injector_sliced_matches_scalar_at_boundary_counts() {
    for &words in &BOUNDARY_COUNTS {
        let rng = DetRng::substream(11, "kernel-eq-inject");
        let mut inj_s = BitErrorInjector::new(2e-3, rng.clone());
        let mut inj_r = BitErrorInjector::new(2e-3, rng);
        let mut buf_s = vec![0u64; words];
        let mut buf_r = vec![0u64; words];
        let flips_s = inj_s.corrupt_words_sliced(&mut buf_s);
        let flips_r = inj_r.corrupt_words_scalar(&mut buf_r);
        assert_eq!(flips_s, flips_r, "flip count diverged at {words} words");
        assert_eq!(buf_s, buf_r, "flip positions diverged at {words} words");
        assert_eq!((inj_s.bits, inj_s.errors), (inj_r.bits, inj_r.errors));
    }
}

proptest! {
    /// Slicer: sliced == scalar for arbitrary bit counts (weighted toward
    /// the word-boundary cases) from arbitrary stream positions.
    #[test]
    fn slicer_equivalence_random(
        seed in any::<u64>(),
        bits in prop_oneof![
            Just(1u64), Just(63), Just(64), Just(65), Just(1024),
            1u64..2048,
        ],
    ) {
        let point = slicer_point();
        let mut rng_s = DetRng::new(seed);
        let mut rng_r = rng_s.clone();
        prop_assert_eq!(
            point.count_errors_sliced(bits, &mut rng_s),
            point.count_errors_scalar(bits, &mut rng_r)
        );
        prop_assert_eq!(rng_s.next_u64(), rng_r.next_u64());
    }

    /// Corruption under arbitrary fault-campaign masks: a lane stream
    /// with an arbitrary marker/data mask, corrupted by the run-gathering
    /// batched path, must equal the word-at-a-time oracle (markers never
    /// consume stream positions in either).
    #[test]
    fn lane_corruption_equivalence_under_masks(
        seed in any::<u64>(),
        ber in prop_oneof![Just(0.0), Just(1e-4), Just(5e-3), Just(0.3)],
        mask in proptest::collection::vec(any::<bool>(), 1..300),
        rounds in 1usize..3,
    ) {
        let rng = DetRng::new(seed);
        let mut inj_batched = BitErrorInjector::new(ber, rng.clone());
        let mut inj_oracle = BitErrorInjector::new(ber, rng);
        let mut lane: Vec<LaneWord> = mask
            .iter()
            .enumerate()
            .map(|(i, &marker)| {
                if marker {
                    LaneWord::Marker(i as u32)
                } else {
                    LaneWord::Data(0x0123_4567_89AB_CDEF ^ i as u64)
                }
            })
            .collect();
        let mut lane_oracle = lane.clone();
        for _ in 0..rounds {
            let flips = inj_batched.corrupt_lane(&mut lane);
            let mut oracle_flips = 0u64;
            for w in lane_oracle.iter_mut() {
                if let LaneWord::Data(d) = w {
                    oracle_flips += inj_oracle.corrupt_word(d) as u64;
                }
            }
            prop_assert_eq!(flips, oracle_flips);
            prop_assert_eq!(&lane, &lane_oracle);
            prop_assert_eq!(
                (inj_batched.bits, inj_batched.errors),
                (inj_oracle.bits, inj_oracle.errors)
            );
        }
    }

    /// Scrambler word kernels from arbitrary register states: outputs and
    /// end states must match the bit loop.
    #[test]
    fn scrambler_equivalence_random(
        words in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        let mut tx_s = Scrambler::new();
        let mut tx_r = Scrambler::new();
        let mut rx_s = Scrambler::new();
        let mut rx_r = Scrambler::new();
        for &w in &words {
            let line_s = tx_s.scramble_word_sliced(w);
            let line_r = tx_r.scramble_word_scalar(w);
            prop_assert_eq!(line_s, line_r);
            prop_assert_eq!(rx_s.descramble_word_sliced(line_s), rx_r.descramble_word_scalar(line_r));
        }
    }
}
