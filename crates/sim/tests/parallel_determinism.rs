//! Property tests for the repo invariant: parallel execution is
//! bit-identical to sequential execution for the same seed.
//!
//! Two families of properties:
//!
//! 1. *Stream independence* — distinct task ids derive streams that do
//!    not collide (no shared prefix, no overlap among early draws), so
//!    splitting a seed across tasks never silently correlates trials.
//! 2. *Schedule invariance* — `TrialPlan` runs (and the integer-fold
//!    Monte-Carlo kernel built on them) return exactly the sequential
//!    results at every thread count and chunk size.
//!
//! The deprecated `Exec::par_trials` wrapper keeps exactly one explicit
//! compat test (`trial_plan_matches_deprecated_par_trials`) until it is
//! removed; everything else runs on `TrialPlan`.

// HashSet here is set-equality of raw u64 draws; iteration order is
// never observed, so the determinism ban does not apply.
#![allow(clippy::disallowed_types)]

use mosaic_sim::rng::DetRng;
use mosaic_sim::sweep::{chunk_count, chunk_len, Exec, TrialPlan};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Distinct task ids under one seed must yield streams with no
    /// overlap anywhere in their first 1000 draws — 2000 draws from a
    /// 2^64 space collide with probability ~1e-13, so any hit means the
    /// seed-splitting map is broken.
    #[test]
    fn distinct_task_ids_do_not_overlap(seed: u64, a: u64, b: u64) {
        prop_assume!(a != b);
        let mut ra = DetRng::stream(seed, a);
        let mut rb = DetRng::stream(seed, b);
        let da: HashSet<u64> = (0..1000).map(|_| ra.next_u64()).collect();
        let db: HashSet<u64> = (0..1000).map(|_| rb.next_u64()).collect();
        prop_assert!(da.is_disjoint(&db), "streams {a} and {b} of seed {seed} overlap");
    }

    /// Labelled stream families must not collide either: the same task id
    /// under different labels is a different stream.
    #[test]
    fn distinct_labels_do_not_overlap(seed: u64, task: u64) {
        let mut ra = DetRng::substream_indexed(seed, "family-a", task);
        let mut rb = DetRng::substream_indexed(seed, "family-b", task);
        let da: HashSet<u64> = (0..1000).map(|_| ra.next_u64()).collect();
        let db: HashSet<u64> = (0..1000).map(|_| rb.next_u64()).collect();
        prop_assert!(da.is_disjoint(&db));
    }

    /// The stream for (seed, task) is a pure function of the pair — it
    /// never depends on construction order or what other streams exist.
    #[test]
    fn streams_are_pure_functions_of_seed_and_task(seed: u64, task: u64) {
        let direct: Vec<u64> = {
            let mut r = DetRng::stream(seed, task);
            (0..32).map(|_| r.next_u64()).collect()
        };
        // Interleave construction of unrelated streams.
        let mut decoy = DetRng::stream(seed ^ 1, task.wrapping_add(1));
        decoy.next_u64();
        let mut again = DetRng::stream(seed, task);
        let replay: Vec<u64> = (0..32).map(|_| again.next_u64()).collect();
        prop_assert_eq!(direct, replay);
    }

    /// Chunked accumulation (the BER-counter pattern): splitting `total`
    /// trials into any fixed chunk size and summing per-chunk counters in
    /// chunk order gives the same total at every thread count — and every
    /// trial is counted exactly once.
    #[test]
    fn chunked_counters_are_chunk_size_and_thread_invariant(
        seed: u64,
        total in 1u64..5000,
        chunk in 1u64..512,
        threads in 2usize..9,
    ) {
        let run_at = |t: usize| {
            TrialPlan::new()
                .trials(chunk_count(total, chunk))
                .seed(seed)
                .label("count")
                .run(&Exec::with_threads(t), |ctx| {
                    let len = chunk_len(ctx.trial(), total, chunk);
                    let mut rng = ctx.rng();
                    let hits = (0..len).filter(|_| rng.chance(0.5)).count() as u64;
                    (len, hits)
                })
        };
        let seq = run_at(1);
        let par = run_at(threads);
        prop_assert_eq!(&seq, &par);
        let trials: u64 = seq.iter().map(|(len, _)| len).sum();
        prop_assert_eq!(trials, total, "chunking must cover every trial exactly once");
    }

    /// TrialPlan::run returns results in trial order regardless of
    /// scheduling.
    #[test]
    fn trial_plan_order_is_stable(n in 0u64..300, threads in 2usize..9) {
        let out = TrialPlan::new()
            .trials(n)
            .run(&Exec::with_threads(threads), |ctx| ctx.trial());
        prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    /// TrialPlan::run is bit-identical to sequential execution at every
    /// thread count — the schedule-invariance gate holds for the new API
    /// exactly as it does for the deprecated wrappers above.
    #[test]
    fn trial_plan_run_equals_sequential(
        seed: u64,
        n in 0u64..200,
        draws in 1usize..32,
        threads in 2usize..17,
    ) {
        let run_at = |t: usize| {
            TrialPlan::new().trials(n).seed(seed).label("plan-prop").run(
                &Exec::with_threads(t),
                |ctx| {
                    let mut rng = ctx.rng();
                    let mut acc = 0u64;
                    for _ in 0..draws {
                        acc = acc.wrapping_add(rng.next_u64());
                    }
                    (ctx.trial(), acc)
                },
            )
        };
        prop_assert_eq!(run_at(1), run_at(threads));
    }

    /// The explicit compat test for the deprecated wrapper: TrialPlan::run
    /// draws the exact streams `par_trials` drew at every thread count and
    /// draw volume, so migrating a call site never changes its numbers —
    /// and the wrapper inherits every TrialPlan gate above transitively.
    #[test]
    #[allow(deprecated)]
    fn trial_plan_matches_deprecated_par_trials(
        seed: u64,
        n in 0u64..128,
        draws in 1usize..16,
        threads in 1usize..9,
    ) {
        let exec = Exec::with_threads(threads);
        let work = |rng: &mut DetRng| {
            let mut acc = 0u64;
            for _ in 0..draws {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        };
        let old = exec.par_trials(n, seed, "compat", |_i, rng| work(rng));
        let new = TrialPlan::new().trials(n).seed(seed).label("compat").run(
            &exec,
            |ctx| work(&mut ctx.rng()),
        );
        prop_assert_eq!(old, new);
    }

    /// TrialPlan::sum (exact integer fold) is thread-count invariant and
    /// equal to summing TrialPlan::run's per-trial values.
    #[test]
    fn trial_plan_sum_is_thread_invariant(
        seed: u64,
        n in 0u64..300,
        threads in 2usize..9,
    ) {
        let stat = |ctx: &mut mosaic_sim::sweep::TrialCtx| ctx.rng().next_u64() >> 32;
        let seq: u64 = TrialPlan::new().trials(n).seed(seed).label("plan-sum")
            .run(&Exec::with_threads(1), |ctx| stat(ctx)).iter().sum();
        let par = TrialPlan::new().trials(n).seed(seed).label("plan-sum")
            .sum(&Exec::with_threads(threads), stat);
        prop_assert_eq!(seq, par);
    }
}

/// Integer-rollup proof for the R6 exactness registry: the coded-channel
/// fold `run_rs_channel_with` merges per-worker `u64` counters only, so
/// every counter of `CodedRun` is bit-identical at every thread count.
/// `mosaic_lint` cross-checks that this test names the registered fold —
/// removing it (or the mention) is an R6 violation.
#[test]
fn run_rs_channel_with_counters_are_thread_invariant() {
    use mosaic_fec::rs::ReedSolomon;
    use mosaic_sim::montecarlo::run_rs_channel_with;

    let rs = ReedSolomon::new(8, 31, 23);
    let baseline = run_rs_channel_with(&Exec::with_threads(1), &rs, 2e-2, 400, 11);
    assert!(baseline.codewords == 400 && baseline.bits > 0);
    for threads in [2, 4, 8] {
        let run = run_rs_channel_with(&Exec::with_threads(threads), &rs, 2e-2, 400, 11);
        assert_eq!(
            run, baseline,
            "threads={threads}: exact integer fold must be schedule-invariant"
        );
    }
}
