//! Integration tests for the adaptive-fidelity engine (DESIGN §12).
//!
//! Three families of checks:
//!
//! 1. *Tier purity* — [`FidelityController::classify`] is a pure
//!    function of the assessment, and a full adaptive measurement
//!    through [`ook_ber_with_fidelity`] is bit-identical at every
//!    thread count, whichever tier the controller picks.
//! 2. *Differential* — the analytic tier ([`SlicerPoint::model_ber`])
//!    agrees with the full Monte-Carlo kernel within the kernel's own
//!    Wilson interval, including at the boundary bit counts the sliced
//!    kernels special-case (1 / 63 / 64 / 65 bits).
//! 3. *Tail* — the importance sampler stays unbiased against the closed
//!    Gaussian tail deep in the regime naive sampling cannot reach
//!    (Q(d) ≈ 1e-15).

use mosaic_phy::ber::OokReceiver;
use mosaic_phy::noise::NoiseBudget;
use mosaic_phy::photodiode::Photodiode;
use mosaic_sim::fidelity::{
    ook_ber_with_fidelity, Assessment, Exactness, FidelityController, FidelityMode, TailBer, Tier,
};
use mosaic_sim::montecarlo::{simulate_ook_ber_par, SlicerPoint};
use mosaic_sim::sweep::Exec;
use mosaic_units::Frequency;
use proptest::prelude::*;

/// KP4 pre-FEC BER threshold — the decision line every assessment here
/// argues against.
const KP4: f64 = 2.4e-4;

/// The 2 GBd-class receiver the bench figures use (silicon photodiode,
/// thermal-noise-limited TIA).
fn mosaic_rx() -> OokReceiver {
    OokReceiver {
        pd: Photodiode::silicon_blue(),
        noise: NoiseBudget {
            thermal_a: 3.0e-12 * (1.4e9f64).sqrt(),
            bandwidth: Frequency::from_ghz(1.4),
            rin_db_per_hz: None,
        },
        extinction_ratio: 6.0,
    }
}

proptest! {
    /// Tier selection is a pure function of the assessment: two
    /// controller instances classify any assessment identically, and
    /// repeated classification never drifts. (The assessment itself is
    /// derived from `(config, seed)` upstream, so this is the purity
    /// leg of the determinism argument.)
    #[test]
    fn classification_is_pure_in_the_assessment(
        exp in -12.0f64..0.0,
        full_trials in 1u64..100_000_000,
        exact in any::<bool>(),
        tail in any::<bool>(),
    ) {
        let a = Assessment {
            analytic_p: 10f64.powf(exp),
            threshold: KP4,
            full_trials,
            exactness: if exact { Exactness::Exact } else { Exactness::Model },
            tail_available: tail,
        };
        let ctrl = FidelityController::new(FidelityMode::Adaptive);
        let twin = FidelityController::new(FidelityMode::Adaptive);
        let first = ctrl.classify(&a);
        for _ in 0..8 {
            prop_assert_eq!(ctrl.classify(&a), first);
            prop_assert_eq!(twin.classify(&a), first);
        }
    }

    /// Budget invariants every decision must satisfy: adapted budgets
    /// never exceed the full budget, Monte-Carlo tiers always run at
    /// least one trial, and zero-trial tiers report zero.
    #[test]
    fn decisions_respect_the_trial_budget(
        exp in -12.0f64..0.0,
        full_trials in 1u64..100_000_000,
        exact in any::<bool>(),
        tail in any::<bool>(),
    ) {
        let a = Assessment {
            analytic_p: 10f64.powf(exp),
            threshold: KP4,
            full_trials,
            exactness: if exact { Exactness::Exact } else { Exactness::Model },
            tail_available: tail,
        };
        for mode in [FidelityMode::Full, FidelityMode::Adaptive] {
            let d = FidelityController::new(mode).classify(&a);
            match d.tier {
                Tier::FullMc => {
                    prop_assert!(d.trials >= 1);
                    prop_assert!(d.trials <= full_trials);
                }
                Tier::Analytic | Tier::TailMc => prop_assert_eq!(d.trials, 0),
            }
            if mode == FidelityMode::Full {
                prop_assert_eq!(d.tier, Tier::FullMc);
                prop_assert_eq!(d.trials, full_trials);
            }
        }
    }
}

/// A full adaptive measurement is bit-identical at 1, 2, and 8 threads,
/// for an operating point on each tier. This is the end-to-end leg of
/// the determinism argument: classification never consults the thread
/// count, and every tier's estimator folds counter-derived substreams
/// in fixed order.
#[test]
fn adaptive_measurement_is_thread_count_invariant_on_every_tier() {
    let rx = mosaic_rx();
    let ctrl = FidelityController::new(FidelityMode::Adaptive);
    // (target BER, expected tier): far above threshold → analytic; near
    // → adapted full MC; far below → tail sampling.
    let cases = [
        (5.0e-2, Tier::Analytic),
        (8.0e-4, Tier::FullMc),
        (1.0e-8, Tier::TailMc),
    ];
    for (idx, (target, tier)) in cases.into_iter().enumerate() {
        let p = rx.sensitivity(target).unwrap();
        let seed = 900 + idx as u64;
        let base = ook_ber_with_fidelity(&ctrl, &Exec::with_threads(1), &rx, p, KP4, 400_000, seed);
        assert_eq!(base.tier, tier, "target {target}");
        for threads in [2, 8] {
            let other = ook_ber_with_fidelity(
                &ctrl,
                &Exec::with_threads(threads),
                &rx,
                p,
                KP4,
                400_000,
                seed,
            );
            assert_eq!(base, other, "target {target}, threads {threads}");
        }
    }
}

/// Differential check at the sliced kernels' boundary bit counts: the
/// full Monte-Carlo estimate must bracket the analytic model inside its
/// own Wilson interval at 1, 63, 64, 65, and 1024 bits. Everything is
/// seeded, so this pins the exact boundary-block behavior, not a
/// statistical hope.
#[test]
fn analytic_model_sits_inside_the_mc_wilson_interval_at_boundary_bit_counts() {
    let rx = mosaic_rx();
    // BER ≈ 0.1: high enough that even one bit carries information and
    // the Wilson interval at tiny n still contains the model.
    let p = rx.sensitivity(0.1).unwrap();
    let model = SlicerPoint::of(&rx, p).model_ber();
    let exec = Exec::with_threads(4);
    for bits in [1u64, 63, 64, 65, 1024] {
        let m = simulate_ook_ber_par(&exec, &rx, p, bits, 7001);
        let (lo, hi) = m.ci95;
        assert!(
            lo <= model && model <= hi,
            "model {model} outside Wilson CI [{lo}, {hi}] at {bits} bits (mc {})",
            m.ber
        );
    }
}

/// Tight differential at a large budget: 2M bits at BER ≈ 1e-3 give
/// ~2000 events, so the kernel must land within its ~±4.5 % Wilson
/// interval of the model *and* within 10 % relative.
#[test]
fn analytic_model_matches_full_mc_tightly_at_large_budgets() {
    let rx = mosaic_rx();
    let p = rx.sensitivity(1e-3).unwrap();
    let model = SlicerPoint::of(&rx, p).model_ber();
    let m = simulate_ook_ber_par(&Exec::with_threads(4), &rx, p, 2_000_000, 7002);
    let (lo, hi) = m.ci95;
    assert!(
        lo <= model && model <= hi,
        "model {model} outside [{lo}, {hi}]"
    );
    assert!(
        (m.ber - model).abs() < 0.1 * model,
        "mc {} vs model {model}",
        m.ber
    );
}

/// The analytic tier returns exactly the model value with a degenerate
/// interval — no kernel, no trials, no noise.
#[test]
fn analytic_tier_returns_the_exact_model_value() {
    let rx = mosaic_rx();
    let ctrl = FidelityController::new(FidelityMode::Adaptive);
    let p = rx.sensitivity(5.0e-2).unwrap();
    let out = ook_ber_with_fidelity(&ctrl, &Exec::with_threads(2), &rx, p, KP4, 4_000_000, 11);
    let model = SlicerPoint::of(&rx, p).model_ber();
    assert_eq!(out.tier, Tier::Analytic);
    assert_eq!(out.ber, model);
    assert_eq!(out.ci95, (model, model));
    assert_eq!(out.trials, 0);
}

/// Importance sampling deep in the tail: Q(7.94) ≈ 1.0e-15, fourteen
/// decades below anything a trial budget can observe. The tilted
/// estimator must stay unbiased (within 5 standard errors of the closed
/// tail) with O(1) relative variance.
#[test]
fn tail_sampler_is_unbiased_at_the_1e15_regime() {
    let d = 7.94f64;
    let exact = mosaic_phy::math::normal_tail(d);
    assert!(exact < 1e-14, "test premise: deep tail (got {exact})");
    let t = TailBer { d1: d, d0: d };
    let est = t.estimate_with(&Exec::with_threads(4), 64, 4096, 13, "deep-tail");
    assert!(est.ber > 0.0);
    assert!(
        (est.ber - exact).abs() < 5.0 * est.std_err,
        "tail estimate {} vs exact {exact} (se {})",
        est.ber,
        est.std_err
    );
    assert!(
        est.std_err < 0.05 * exact,
        "relative se {} must stay O(1) in p",
        est.std_err / exact
    );
}

/// End-to-end tail measurement through the fidelity API: at an operating
/// point whose BER is unresolvable by ordinary sampling, the adaptive
/// outcome must come from the tail tier and agree with the closed model
/// within its reported interval.
#[test]
fn adaptive_tail_outcome_brackets_the_model() {
    let rx = mosaic_rx();
    let ctrl = FidelityController::new(FidelityMode::Adaptive);
    let p = rx.sensitivity(1e-9).unwrap();
    let model = SlicerPoint::of(&rx, p).model_ber();
    let out = ook_ber_with_fidelity(&ctrl, &Exec::with_threads(2), &rx, p, KP4, 4_000_000, 17);
    assert_eq!(out.tier, Tier::TailMc);
    let (lo, hi) = out.ci95;
    // 95 % interval widened ×2 — same rule the CI fidelity gate applies.
    let h = (hi - lo) / 2.0;
    assert!(
        (out.ber - model).abs() <= 2.0 * h.max(f64::MIN_POSITIVE),
        "tail outcome {} vs model {model} (ci [{lo}, {hi}])",
        out.ber
    );
}
