//! Deterministic parallel execution engine for Monte-Carlo trials and
//! parameter sweeps.
//!
//! Every evaluation artifact in this repo is a fan-out of *independent*
//! work — Monte-Carlo trials, per-channel corruption, per-point sweep
//! cells. This module runs that fan-out on a pool of scoped threads with
//! one hard invariant:
//!
//! > **Parallel output is bit-identical to sequential output for the
//! > same seed.**
//!
//! Three rules enforce it:
//!
//! 1. *Counter-based streams*: task `i` draws from
//!    [`DetRng::stream`]`(seed, i)` — a pure function of the task index,
//!    never of scheduling order (see `rng.rs`).
//! 2. *Fixed decomposition*: work is split into chunks whose size is a
//!    constant of the call site, never derived from the thread count.
//! 3. *Index-ordered reassembly*: results are reassembled and reduced in
//!    task-index order, regardless of completion order.
//!
//! The engine is built directly on `std::thread::scope` (the build
//! environment vendors all dependencies, so rayon is unavailable; a
//! work-stealing pool would buy nothing here anyway — tasks are coarse
//! and self-scheduled off an atomic counter).
//!
//! Thread count resolves from the `MOSAIC_THREADS` environment variable
//! (`1` = sequential fallback, no threads spawned), defaulting to the
//! machine's available parallelism. Tests pin it explicitly with
//! [`Exec::with_threads`].

use crate::rng::DetRng;
use crate::telemetry::Stopwatch;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Environment variable selecting the worker count (`1` = sequential).
pub const THREADS_ENV: &str = "MOSAIC_THREADS";

/// An execution context: how many workers to fan out over.
#[derive(Debug, Clone, Copy)]
pub struct Exec {
    threads: usize,
}

impl Default for Exec {
    fn default() -> Self {
        Exec::from_env()
    }
}

impl Exec {
    /// Resolve from `MOSAIC_THREADS`, defaulting to available parallelism.
    pub fn from_env() -> Self {
        let threads = match std::env::var(THREADS_ENV) {
            Ok(v) => v
                .trim()
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("{THREADS_ENV} must be a positive integer, got {v:?}")),
            Err(_) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        };
        Exec::with_threads(threads)
    }

    /// Fixed worker count (used by tests to compare 1 vs N threads).
    pub fn with_threads(threads: usize) -> Self {
        Exec {
            threads: threads.max(1),
        }
    }

    /// Worker count this context fans out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `n` independent tasks and return their results in task order.
    ///
    /// Tasks self-schedule off an atomic counter (coarse tasks of uneven
    /// cost still balance), collect `(index, result)` pairs per worker,
    /// and the results are reassembled by index — so the output is
    /// independent of which worker ran what.
    pub fn run_tasks<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, f(i)));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                tagged.extend(h.join().expect("sweep worker panicked"));
            }
        });
        tagged.sort_unstable_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, v)| v).collect()
    }

    /// [`Exec::run_tasks`] with one reusable scratch state per *worker*
    /// (not per task): `make_state` runs once per worker, and every task
    /// the worker claims folds through the same `&mut S`. This is how the
    /// Monte-Carlo kernels reuse decode buffers across codewords without
    /// per-word allocation.
    ///
    /// The state must not carry information between tasks that affects
    /// results (scratch buffers are overwritten, RNGs are rebuilt per
    /// task) — otherwise output would depend on the task→worker mapping.
    pub fn run_tasks_with<S, T, FS, F>(&self, n: usize, make_state: FS, f: F) -> Vec<T>
    where
        T: Send,
        FS: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            let mut state = make_state();
            return (0..n).map(|i| f(i, &mut state)).collect();
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut state = make_state();
                        let mut out: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, f(i, &mut state)));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                tagged.extend(h.join().expect("sweep worker panicked"));
            }
        });
        tagged.sort_unstable_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, v)| v).collect()
    }

    /// Fold `n` independent tasks straight into an accumulator — no
    /// intermediate per-task collection — with one reusable scratch state
    /// per worker. `make_acc` builds each worker's accumulator (and the
    /// merge target); `f(i, &mut state, &mut acc)` folds task `i`; worker
    /// accumulators merge at join time.
    ///
    /// **Determinism contract**: workers fold whichever task indices they
    /// claim, so the fold and `merge` must be *exactly* commutative and
    /// associative — integer adds, xor, min/max. Floating-point sums do
    /// **not** qualify (rounding is order-dependent); for those, use
    /// [`Exec::run_tasks`] and fold the returned vector in index order.
    pub fn fold_tasks_commutative<S, A, FS, FA, F, M>(
        &self,
        n: usize,
        make_state: FS,
        make_acc: FA,
        f: F,
        merge: M,
    ) -> A
    where
        A: Send,
        FS: Fn() -> S + Sync,
        FA: Fn() -> A + Sync,
        F: Fn(usize, &mut S, &mut A) + Sync,
        M: Fn(&mut A, A),
    {
        if self.threads == 1 || n <= 1 {
            let mut state = make_state();
            let mut acc = make_acc();
            for i in 0..n {
                f(i, &mut state, &mut acc);
            }
            return acc;
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut total = make_acc();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut state = make_state();
                        let mut acc = make_acc();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            f(i, &mut state, &mut acc);
                        }
                        acc
                    })
                })
                .collect();
            for h in handles {
                merge(&mut total, h.join().expect("sweep worker panicked"));
            }
        });
        total
    }

    /// Monte-Carlo fan-out summing a `u64` statistic per trial: the
    /// allocation-free form of [`Exec::par_trials`]`(..).iter().sum()`.
    /// Trial `i` draws from stream `(seed, label, i)`; the sum is exact
    /// integer addition, so the total is thread-count invariant. Same
    /// telemetry as [`Exec::par_trials`].
    pub fn par_trials_sum<F>(&self, n: u64, seed: u64, label: &str, f: F) -> u64
    where
        F: Fn(u64, &mut DetRng) -> u64 + Sync,
    {
        crate::telemetry::counter_add(&format!("trials.{label}"), n);
        crate::telemetry::stage(&format!("par_trials.{label}"), n, || {
            self.fold_tasks_commutative(
                n as usize,
                || (),
                || 0u64,
                |i, _state, acc| {
                    let mut rng = DetRng::substream_indexed(seed, label, i as u64);
                    *acc += f(i as u64, &mut rng);
                },
                |total, part| *total += part,
            )
        })
    }

    /// Monte-Carlo fan-out: `n` trials, trial `i` running against its own
    /// counter-derived stream `(seed, label, i)`. Results come back in
    /// trial order.
    ///
    /// Telemetry: bumps the `trials.{label}` counter and records a timed
    /// `par_trials.{label}` stage — counter values are pure integer adds,
    /// so they stay thread-count invariant.
    pub fn par_trials<T, F>(&self, n: u64, seed: u64, label: &str, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64, &mut DetRng) -> T + Sync,
    {
        crate::telemetry::counter_add(&format!("trials.{label}"), n);
        crate::telemetry::stage(&format!("par_trials.{label}"), n, || {
            self.run_tasks(n as usize, |i| {
                let mut rng = DetRng::substream_indexed(seed, label, i as u64);
                f(i as u64, &mut rng)
            })
        })
    }

    /// Parameter sweep: map `f` over `points`, in parallel, preserving
    /// input order in the output.
    pub fn par_sweep<I, T, F>(&self, points: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run_tasks(points.len(), |i| f(&points[i]))
    }

    /// In-place parallel update of independent elements (e.g. one state
    /// per physical channel). Elements are partitioned into contiguous
    /// blocks; `f` receives the element's index in `items`.
    pub fn par_map_mut<I, F>(&self, items: &mut [I], f: F)
    where
        I: Send,
        F: Fn(usize, &mut I) + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = n.div_ceil(self.threads.min(n));
        std::thread::scope(|s| {
            for (ci, block) in items.chunks_mut(chunk).enumerate() {
                let f = &f;
                s.spawn(move || {
                    for (j, item) in block.iter_mut().enumerate() {
                        f(ci * chunk + j, item);
                    }
                });
            }
        });
    }
}

/// Fixed chunking of `total` units into tasks of `chunk` units: returns
/// the number of tasks. The chunk size is a call-site constant — *never*
/// derive it from the thread count, or output would depend on it.
pub fn chunk_count(total: u64, chunk: u64) -> u64 {
    assert!(chunk > 0, "chunk size must be positive");
    total.div_ceil(chunk)
}

/// Length of chunk `idx` when splitting `total` units into `chunk`-sized
/// tasks (the final chunk may be short).
pub fn chunk_len(idx: u64, total: u64, chunk: u64) -> u64 {
    let start = idx * chunk;
    debug_assert!(start < total || total == 0);
    chunk.min(total - start)
}

/// Per-run execution statistics a figure binary reports alongside its
/// results. Reported on **stderr** so result files stay byte-identical
/// across thread counts (wall time is the one legitimately
/// nondeterministic output).
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Independent work units executed (trials, codewords, sweep cells).
    pub trials: u64,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Worker threads the run fanned out over.
    pub threads: usize,
}

impl RunStats {
    /// Throughput in work units per second.
    pub fn trials_per_sec(&self) -> f64 {
        self.trials as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Emit the one-line stats record to stderr.
    pub fn report(&self, label: &str) {
        eprintln!(
            "[stats] {label}: trials={} wall={:.3}s trials/sec={:.0} threads={}",
            self.trials,
            self.wall.as_secs_f64(),
            self.trials_per_sec(),
            self.threads,
        );
    }
}

/// Run `f`, timing it into a [`RunStats`] with the given trial count and
/// the ambient thread configuration. Also records a `measured` telemetry
/// stage so manifest timings cover figure-level work.
pub fn measured<T>(trials: u64, f: impl FnOnce() -> T) -> (T, RunStats) {
    measured_as("measured", trials, f)
}

/// [`measured`] with an explicit telemetry stage label.
pub fn measured_as<T>(label: &str, trials: u64, f: impl FnOnce() -> T) -> (T, RunStats) {
    let threads = Exec::from_env().threads();
    let start = Stopwatch::start();
    let out = crate::telemetry::stage(label, trials, f);
    (
        out,
        RunStats {
            trials,
            wall: start.elapsed(),
            threads,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_tasks_preserves_order() {
        let exec = Exec::with_threads(4);
        let out = exec.run_tasks(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_equals_seq_for_run_tasks() {
        let work = |i: usize| {
            // Uneven task cost to exercise self-scheduling.
            let spin = (i * 7919) % 97;
            (0..spin).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64))
        };
        let seq = Exec::with_threads(1).run_tasks(257, work);
        for threads in [2, 3, 8, 32] {
            assert_eq!(seq, Exec::with_threads(threads).run_tasks(257, work));
        }
    }

    #[test]
    fn par_trials_streams_are_per_trial() {
        let exec = Exec::with_threads(4);
        let draws = exec.par_trials(16, 9, "t", |_i, rng| rng.next_u64());
        // Distinct trials draw from distinct streams.
        let mut uniq = draws.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), draws.len());
        // And trial i's stream matches a direct derivation.
        let direct = DetRng::substream_indexed(9, "t", 3).next_u64();
        assert_eq!(draws[3], direct);
    }

    #[test]
    fn run_tasks_with_matches_run_tasks() {
        // Worker-scoped scratch must not change results: the buffer is
        // overwritten per task, so output equals the scratch-free path.
        let plain = Exec::with_threads(1).run_tasks(97, |i| (i as u64).wrapping_mul(2654435761));
        for threads in [1, 3, 8] {
            let with = Exec::with_threads(threads).run_tasks_with(97, Vec::<u64>::new, |i, buf| {
                buf.clear();
                buf.push((i as u64).wrapping_mul(2654435761));
                buf[0]
            });
            assert_eq!(plain, with, "threads={threads}");
        }
    }

    #[test]
    fn fold_tasks_commutative_is_thread_count_invariant() {
        let fold = |exec: &Exec| {
            exec.fold_tasks_commutative(
                311,
                || (),
                || 0u64,
                |i, _s, acc| *acc += (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32,
                |total, part| *total += part,
            )
        };
        let seq = fold(&Exec::with_threads(1));
        for threads in [2, 5, 16] {
            assert_eq!(seq, fold(&Exec::with_threads(threads)), "threads={threads}");
        }
    }

    #[test]
    fn par_trials_sum_matches_par_trials() {
        let seq: u64 = Exec::with_threads(1)
            .par_trials(40, 7, "sum-t", |_i, rng| rng.next_u64() >> 40)
            .iter()
            .sum();
        for threads in [1, 4, 9] {
            let summed = Exec::with_threads(threads)
                .par_trials_sum(40, 7, "sum-t", |_i, rng| rng.next_u64() >> 40);
            assert_eq!(seq, summed, "threads={threads}");
        }
    }

    #[test]
    fn par_sweep_preserves_order_and_values() {
        let points: Vec<f64> = (0..50).map(|i| i as f64 * 0.5).collect();
        let seq = Exec::with_threads(1).par_sweep(&points, |p| p * p);
        let par = Exec::with_threads(8).par_sweep(&points, |p| p * p);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_mut_touches_every_element_once() {
        for threads in [1, 2, 5, 16] {
            let mut items: Vec<u64> = vec![0; 103];
            Exec::with_threads(threads).par_map_mut(&mut items, |i, x| *x += i as u64 + 1);
            for (i, x) in items.iter().enumerate() {
                assert_eq!(*x, i as u64 + 1, "threads={threads} idx={i}");
            }
        }
    }

    #[test]
    fn chunking_covers_total_exactly() {
        for (total, chunk) in [(10u64, 3u64), (12, 4), (1, 5), (65_536, 4096), (100, 1)] {
            let n = chunk_count(total, chunk);
            let sum: u64 = (0..n).map(|i| chunk_len(i, total, chunk)).sum();
            assert_eq!(sum, total, "total={total} chunk={chunk}");
        }
    }

    #[test]
    fn measured_counts_and_times() {
        let (v, stats) = measured(42, || 7u32);
        assert_eq!(v, 7);
        assert_eq!(stats.trials, 42);
        assert!(stats.trials_per_sec() > 0.0);
        stats.report("selftest");
    }
}
