//! Deterministic parallel execution engine for Monte-Carlo trials and
//! parameter sweeps.
//!
//! Every evaluation artifact in this repo is a fan-out of *independent*
//! work — Monte-Carlo trials, per-channel corruption, per-point sweep
//! cells. This module runs that fan-out on a pool of scoped threads with
//! one hard invariant:
//!
//! > **Parallel output is bit-identical to sequential output for the
//! > same seed.**
//!
//! Three rules enforce it:
//!
//! 1. *Counter-based streams*: task `i` draws from
//!    [`DetRng::stream`]`(seed, i)` — a pure function of the task index,
//!    never of scheduling order (see `rng.rs`).
//! 2. *Fixed decomposition*: work is split into chunks whose size is a
//!    constant of the call site, never derived from the thread count.
//! 3. *Index-ordered reassembly*: results are reassembled and reduced in
//!    task-index order, regardless of completion order.
//!
//! The engine is built directly on `std::thread::scope` (the build
//! environment vendors all dependencies, so rayon is unavailable; a
//! work-stealing pool would buy nothing here anyway — tasks are coarse
//! and self-scheduled off an atomic counter).
//!
//! Thread count resolves from the `MOSAIC_THREADS` environment variable
//! (`1` = sequential fallback, no threads spawned), defaulting to the
//! machine's available parallelism. Tests pin it explicitly with
//! [`Exec::with_threads`].

use crate::rng::DetRng;
use crate::telemetry::Stopwatch;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Environment variable selecting the worker count (`1` = sequential).
pub const THREADS_ENV: &str = "MOSAIC_THREADS";

/// Render a panic payload as text (panics carry `&str` or `String` in
/// practice; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Parse a `MOSAIC_THREADS` value: a positive integer (`1` = sequential).
///
/// `"0"`, non-numeric text, and the empty string are structured
/// [`mosaic_units::MosaicError::InvalidConfig`] errors, never panics —
/// [`Exec::from_env`] documents the fallback it applies on such input.
pub fn parse_threads(raw: &str) -> mosaic_units::Result<usize> {
    let parsed = raw.trim().parse::<usize>().map_err(|_| {
        mosaic_units::MosaicError::invalid_config(
            THREADS_ENV,
            format!("must be a positive integer, got {raw:?}"),
        )
    })?;
    if parsed == 0 {
        return Err(mosaic_units::MosaicError::invalid_config(
            THREADS_ENV,
            "must be >= 1 (use 1 for a sequential run)",
        ));
    }
    Ok(parsed)
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An execution context: how many workers to fan out over.
#[derive(Debug, Clone, Copy)]
pub struct Exec {
    threads: usize,
}

impl Default for Exec {
    fn default() -> Self {
        Exec::from_env()
    }
}

impl Exec {
    /// Resolve from `MOSAIC_THREADS`, defaulting to available parallelism.
    ///
    /// Malformed values (`"0"`, `"abc"`, `""`) do **not** panic: the
    /// documented fallback is a one-line stderr warning plus the machine
    /// default, so a bad environment can degrade a run's parallelism but
    /// never abort it. Use [`Exec::try_from_env`] to surface the error.
    pub fn from_env() -> Self {
        match Exec::try_from_env() {
            Ok(exec) => exec,
            Err(e) => {
                eprintln!("[sweep] {e}; falling back to available parallelism");
                Exec::with_threads(default_parallelism())
            }
        }
    }

    /// Resolve from `MOSAIC_THREADS`, returning a structured error on a
    /// malformed value instead of applying [`Exec::from_env`]'s fallback.
    pub fn try_from_env() -> mosaic_units::Result<Self> {
        match std::env::var(THREADS_ENV) {
            Ok(v) => Ok(Exec::with_threads(parse_threads(&v)?)),
            Err(_) => Ok(Exec::with_threads(default_parallelism())),
        }
    }

    /// Fixed worker count (used by tests to compare 1 vs N threads).
    pub fn with_threads(threads: usize) -> Self {
        Exec {
            threads: threads.max(1),
        }
    }

    /// Worker count this context fans out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `n` independent tasks and return their results in task order.
    ///
    /// Tasks self-schedule off an atomic counter (coarse tasks of uneven
    /// cost still balance), collect `(index, result)` pairs per worker,
    /// and the results are reassembled by index — so the output is
    /// independent of which worker ran what.
    ///
    /// # Panics
    /// Panics (once, with the [`mosaic_units::MosaicError::WorkerFailed`]
    /// message) if a task closure panics; use [`Exec::try_run_tasks`] to
    /// handle the failure as a `Result` instead.
    pub fn run_tasks<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.try_run_tasks(n, f) {
            Ok(v) => v,
            // lint: allow(R3) reason=documented panicking wrapper over try_run_tasks
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Exec::run_tasks`]: a panicking task closure surfaces as
    /// `Err(WorkerFailed)` carrying the worker index and the panic
    /// payload message, instead of the former double panic at `join()`.
    ///
    /// When several tasks panic, the reported failure is the one with the
    /// smallest task index — a pure function of the task set, so the
    /// error is as deterministic as the closure itself even though the
    /// task→worker mapping is not.
    pub fn try_run_tasks<T, F>(&self, n: usize, f: F) -> mosaic_units::Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(v) => out.push(v),
                    Err(p) => {
                        return Err(mosaic_units::MosaicError::WorkerFailed {
                            worker: 0,
                            message: panic_message(p),
                        })
                    }
                }
            }
            return Ok(out);
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
        // (task index, worker index, message) of observed panics.
        let mut failures: Vec<(usize, usize, String)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        let mut failure: Option<(usize, String)> = None;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                                Ok(v) => out.push((i, v)),
                                Err(p) => {
                                    failure = Some((i, panic_message(p)));
                                    break;
                                }
                            }
                        }
                        (out, failure)
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((out, failure)) => {
                        tagged.extend(out);
                        if let Some((task, message)) = failure {
                            failures.push((task, w, message));
                        }
                    }
                    // A panic that escaped catch_unwind (foreign
                    // unwinding, `panic = "abort"` payloads) still joins
                    // as Err; fold it in rather than re-panicking.
                    Err(p) => failures.push((usize::MAX, w, panic_message(p))),
                }
            }
        });
        if let Some((_, worker, message)) = failures.into_iter().min_by(|a, b| a.0.cmp(&b.0)) {
            return Err(mosaic_units::MosaicError::WorkerFailed { worker, message });
        }
        tagged.sort_unstable_by_key(|(i, _)| *i);
        Ok(tagged.into_iter().map(|(_, v)| v).collect())
    }

    /// [`Exec::run_tasks`] with one reusable scratch state per *worker*
    /// (not per task): `make_state` runs once per worker, and every task
    /// the worker claims folds through the same `&mut S`. This is how the
    /// Monte-Carlo kernels reuse decode buffers across codewords without
    /// per-word allocation.
    ///
    /// The state must not carry information between tasks that affects
    /// results (scratch buffers are overwritten, RNGs are rebuilt per
    /// task) — otherwise output would depend on the task→worker mapping.
    ///
    /// # Panics
    /// Panics (once, with the [`mosaic_units::MosaicError::WorkerFailed`]
    /// message) if a task closure panics; use [`Exec::try_run_tasks_with`]
    /// to handle the failure as a `Result` instead.
    pub fn run_tasks_with<S, T, FS, F>(&self, n: usize, make_state: FS, f: F) -> Vec<T>
    where
        T: Send,
        FS: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        match self.try_run_tasks_with(n, make_state, f) {
            Ok(v) => v,
            // lint: allow(R3) reason=documented panicking wrapper over try_run_tasks_with
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Exec::run_tasks_with`]: panicking task closures (and
    /// panicking `make_state`) surface as `Err(WorkerFailed)` instead of
    /// the former double panic at `join()`. Failure selection follows
    /// [`Exec::try_run_tasks`]: smallest panicking task index wins.
    pub fn try_run_tasks_with<S, T, FS, F>(
        &self,
        n: usize,
        make_state: FS,
        f: F,
    ) -> mosaic_units::Result<Vec<T>>
    where
        T: Send,
        FS: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return match catch_unwind(AssertUnwindSafe(|| {
                let mut state = make_state();
                (0..n).map(|i| f(i, &mut state)).collect::<Vec<T>>()
            })) {
                Ok(v) => Ok(v),
                Err(p) => Err(mosaic_units::MosaicError::WorkerFailed {
                    worker: 0,
                    message: panic_message(p),
                }),
            };
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
        let mut failures: Vec<(usize, usize, String)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        let mut failure: Option<(usize, String)> = None;
                        let mut state = match catch_unwind(AssertUnwindSafe(&make_state)) {
                            Ok(state) => state,
                            Err(p) => {
                                // A dead make_state fails before claiming
                                // any task; report it at index 0 so it
                                // always wins failure selection.
                                return (out, Some((0, panic_message(p))));
                            }
                        };
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| f(i, &mut state))) {
                                Ok(v) => out.push((i, v)),
                                Err(p) => {
                                    failure = Some((i, panic_message(p)));
                                    break;
                                }
                            }
                        }
                        (out, failure)
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((out, failure)) => {
                        tagged.extend(out);
                        if let Some((task, message)) = failure {
                            failures.push((task, w, message));
                        }
                    }
                    Err(p) => failures.push((usize::MAX, w, panic_message(p))),
                }
            }
        });
        if let Some((_, worker, message)) = failures.into_iter().min_by(|a, b| a.0.cmp(&b.0)) {
            return Err(mosaic_units::MosaicError::WorkerFailed { worker, message });
        }
        tagged.sort_unstable_by_key(|(i, _)| *i);
        Ok(tagged.into_iter().map(|(_, v)| v).collect())
    }

    /// Fold `n` independent tasks straight into an accumulator — no
    /// intermediate per-task collection — with one reusable scratch state
    /// per worker. `make_acc` builds each worker's accumulator (and the
    /// merge target); `f(i, &mut state, &mut acc)` folds task `i`; worker
    /// accumulators merge at join time.
    ///
    /// **Determinism contract**: workers fold whichever task indices they
    /// claim, so the fold and `merge` must be *exactly* commutative and
    /// associative — integer adds, xor, min/max. Floating-point sums do
    /// **not** qualify (rounding is order-dependent); for those, use
    /// [`Exec::run_tasks`] and fold the returned vector in index order.
    ///
    /// # Panics
    /// Panics (once, with the [`mosaic_units::MosaicError::WorkerFailed`]
    /// message) if a task closure panics; use
    /// [`Exec::try_fold_tasks_commutative`] to handle the failure as a
    /// `Result` instead.
    pub fn fold_tasks_commutative<S, A, FS, FA, F, M>(
        &self,
        n: usize,
        make_state: FS,
        make_acc: FA,
        f: F,
        merge: M,
    ) -> A
    where
        A: Send,
        FS: Fn() -> S + Sync,
        FA: Fn() -> A + Sync,
        F: Fn(usize, &mut S, &mut A) + Sync,
        M: Fn(&mut A, A),
    {
        match self.try_fold_tasks_commutative(n, make_state, make_acc, f, merge) {
            Ok(v) => v,
            // lint: allow(R3) reason=documented panicking wrapper over try_fold_tasks_commutative
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Exec::fold_tasks_commutative`]: panicking task closures
    /// surface as `Err(WorkerFailed)` instead of the former double panic
    /// at `join()`. A worker that panics mid-fold has a *partial*
    /// accumulator, so no partial results are merged on failure — the
    /// whole fold either completes or errors.
    pub fn try_fold_tasks_commutative<S, A, FS, FA, F, M>(
        &self,
        n: usize,
        make_state: FS,
        make_acc: FA,
        f: F,
        merge: M,
    ) -> mosaic_units::Result<A>
    where
        A: Send,
        FS: Fn() -> S + Sync,
        FA: Fn() -> A + Sync,
        F: Fn(usize, &mut S, &mut A) + Sync,
        M: Fn(&mut A, A),
    {
        if self.threads == 1 || n <= 1 {
            return match catch_unwind(AssertUnwindSafe(|| {
                let mut state = make_state();
                let mut acc = make_acc();
                for i in 0..n {
                    f(i, &mut state, &mut acc);
                }
                acc
            })) {
                Ok(acc) => Ok(acc),
                Err(p) => Err(mosaic_units::MosaicError::WorkerFailed {
                    worker: 0,
                    message: panic_message(p),
                }),
            };
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut total = make_acc();
        let mut failures: Vec<(usize, usize, String)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut state = match catch_unwind(AssertUnwindSafe(&make_state)) {
                            Ok(state) => state,
                            Err(p) => return Err((0usize, panic_message(p))),
                        };
                        let mut acc = match catch_unwind(AssertUnwindSafe(&make_acc)) {
                            Ok(acc) => acc,
                            Err(p) => return Err((0usize, panic_message(p))),
                        };
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            if let Err(p) =
                                catch_unwind(AssertUnwindSafe(|| f(i, &mut state, &mut acc)))
                            {
                                return Err((i, panic_message(p)));
                            }
                        }
                        Ok(acc)
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(Ok(acc)) => merge(&mut total, acc),
                    Ok(Err((task, message))) => failures.push((task, w, message)),
                    Err(p) => failures.push((usize::MAX, w, panic_message(p))),
                }
            }
        });
        if let Some((_, worker, message)) = failures.into_iter().min_by(|a, b| a.0.cmp(&b.0)) {
            return Err(mosaic_units::MosaicError::WorkerFailed { worker, message });
        }
        Ok(total)
    }

    /// Monte-Carlo fan-out summing a `u64` statistic per trial: the
    /// allocation-free form of [`Exec::par_trials`]`(..).iter().sum()`.
    /// Trial `i` draws from stream `(seed, label, i)`; the sum is exact
    /// integer addition, so the total is thread-count invariant. Same
    /// telemetry as [`Exec::par_trials`].
    pub fn par_trials_sum<F>(&self, n: u64, seed: u64, label: &str, f: F) -> u64
    where
        F: Fn(u64, &mut DetRng) -> u64 + Sync,
    {
        crate::telemetry::counter_add(&format!("trials.{label}"), n);
        crate::telemetry::stage(&format!("par_trials.{label}"), n, || {
            self.fold_tasks_commutative(
                n as usize,
                || (),
                || 0u64,
                |i, _state, acc| {
                    let mut rng = DetRng::substream_indexed(seed, label, i as u64);
                    *acc += f(i as u64, &mut rng);
                },
                |total, part| *total += part,
            )
        })
    }

    /// Monte-Carlo fan-out: `n` trials, trial `i` running against its own
    /// counter-derived stream `(seed, label, i)`. Results come back in
    /// trial order.
    ///
    /// Telemetry: bumps the `trials.{label}` counter and records a timed
    /// `par_trials.{label}` stage — counter values are pure integer adds,
    /// so they stay thread-count invariant.
    pub fn par_trials<T, F>(&self, n: u64, seed: u64, label: &str, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64, &mut DetRng) -> T + Sync,
    {
        crate::telemetry::counter_add(&format!("trials.{label}"), n);
        crate::telemetry::stage(&format!("par_trials.{label}"), n, || {
            self.run_tasks(n as usize, |i| {
                let mut rng = DetRng::substream_indexed(seed, label, i as u64);
                f(i as u64, &mut rng)
            })
        })
    }

    /// Panic-tolerant Monte-Carlo fan-out: like [`Exec::par_trials`],
    /// but a panicking trial is caught, counted in
    /// [`ResilientRun::stats`], and retried on a **fresh substream**
    /// (`"{label}#retry{attempt}"`) under a bounded per-trial retry
    /// budget. A trial that fails every attempt yields `None` and a
    /// [`TrialFailure`] record instead of aborting the sweep.
    ///
    /// The closure receives `(trial, attempt, rng)`; attempt `0` draws
    /// from the exact stream [`Exec::par_trials`] would use, so a run
    /// where nothing panics is bit-identical to the non-resilient path.
    ///
    /// **Determinism**: the retry budget is *per trial* — a pure
    /// function of the trial index — never a shared global pool, which
    /// would hand retries out in completion order and make results
    /// scheduling-dependent. Whether a given `(trial, attempt)` panics
    /// is a property of the closure alone, so `values`, `failures`, and
    /// the fault counters are all thread-count invariant.
    pub fn par_trials_resilient<T, F>(
        &self,
        n: u64,
        seed: u64,
        label: &str,
        retry_budget: u32,
        f: F,
    ) -> ResilientRun<T>
    where
        T: Send,
        F: Fn(u64, u32, &mut DetRng) -> T + Sync,
    {
        crate::telemetry::counter_add(&format!("trials.{label}"), n);
        let outcomes: Vec<(Option<T>, u32, Option<String>)> =
            crate::telemetry::stage(&format!("par_trials.{label}"), n, || {
                self.run_tasks(n as usize, |i| {
                    let i = i as u64;
                    let mut panics = 0u32;
                    let mut last_msg: Option<String> = None;
                    for attempt in 0..=retry_budget {
                        let mut rng = if attempt == 0 {
                            DetRng::substream_indexed(seed, label, i)
                        } else {
                            DetRng::substream_indexed(seed, &format!("{label}#retry{attempt}"), i)
                        };
                        match catch_unwind(AssertUnwindSafe(|| f(i, attempt, &mut rng))) {
                            Ok(v) => return (Some(v), panics, last_msg),
                            Err(p) => {
                                panics += 1;
                                last_msg = Some(panic_message(p));
                            }
                        }
                    }
                    (None, panics, last_msg)
                })
            });
        let mut values = Vec::with_capacity(outcomes.len());
        let mut failures = Vec::new();
        let mut total_panics = 0u64;
        for (i, (value, panics, last_msg)) in outcomes.into_iter().enumerate() {
            total_panics += u64::from(panics);
            if value.is_none() {
                failures.push(TrialFailure {
                    trial: i as u64,
                    attempts: retry_budget + 1,
                    message: last_msg.unwrap_or_else(|| "no attempt recorded".to_string()),
                });
            }
            values.push(value);
        }
        let failed_trials = failures.len() as u64;
        let retries = total_panics - failed_trials.min(total_panics);
        // Fault counters are deterministic (which (trial, attempt) pairs
        // panic is a property of the closure), so they are safe to put in
        // value-checked telemetry.
        if total_panics > 0 {
            crate::telemetry::counter_add(&format!("trial_panics.{label}"), total_panics);
        }
        if retries > 0 {
            crate::telemetry::counter_add(&format!("trial_retries.{label}"), retries);
        }
        if failed_trials > 0 {
            crate::telemetry::counter_add(&format!("trial_failures.{label}"), failed_trials);
        }
        ResilientRun {
            values,
            failures,
            stats: RunStats {
                trials: n,
                wall: Duration::ZERO,
                threads: self.threads,
                panics: total_panics,
                retries,
                failed_trials,
            },
        }
    }

    /// Parameter sweep: map `f` over `points`, in parallel, preserving
    /// input order in the output.
    pub fn par_sweep<I, T, F>(&self, points: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run_tasks(points.len(), |i| f(&points[i]))
    }

    /// In-place parallel update of independent elements (e.g. one state
    /// per physical channel). Elements are partitioned into contiguous
    /// blocks; `f` receives the element's index in `items`.
    pub fn par_map_mut<I, F>(&self, items: &mut [I], f: F)
    where
        I: Send,
        F: Fn(usize, &mut I) + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = n.div_ceil(self.threads.min(n));
        std::thread::scope(|s| {
            for (ci, block) in items.chunks_mut(chunk).enumerate() {
                let f = &f;
                s.spawn(move || {
                    for (j, item) in block.iter_mut().enumerate() {
                        f(ci * chunk + j, item);
                    }
                });
            }
        });
    }
}

/// Fixed chunking of `total` units into tasks of `chunk` units: returns
/// the number of tasks. The chunk size is a call-site constant — *never*
/// derive it from the thread count, or output would depend on it.
pub fn chunk_count(total: u64, chunk: u64) -> u64 {
    assert!(chunk > 0, "chunk size must be positive");
    total.div_ceil(chunk)
}

/// Length of chunk `idx` when splitting `total` units into `chunk`-sized
/// tasks (the final chunk may be short).
pub fn chunk_len(idx: u64, total: u64, chunk: u64) -> u64 {
    let start = idx * chunk;
    debug_assert!(start < total || total == 0);
    chunk.min(total - start)
}

/// Per-run execution statistics a figure binary reports alongside its
/// results. Reported on **stderr** so result files stay byte-identical
/// across thread counts (wall time is the one legitimately
/// nondeterministic output).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Independent work units executed (trials, codewords, sweep cells).
    pub trials: u64,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Worker threads the run fanned out over.
    pub threads: usize,
    /// Trial panics caught by the resilient path (every attempt counts).
    pub panics: u64,
    /// Retries issued after caught panics (fresh substream per attempt).
    pub retries: u64,
    /// Trials whose retry budget ran dry without a successful attempt.
    pub failed_trials: u64,
}

impl RunStats {
    /// Stats for a clean run: `panics`/`retries`/`failed_trials` zero.
    pub fn new(trials: u64, wall: Duration, threads: usize) -> Self {
        RunStats {
            trials,
            wall,
            threads,
            panics: 0,
            retries: 0,
            failed_trials: 0,
        }
    }

    /// Throughput in work units per second.
    pub fn trials_per_sec(&self) -> f64 {
        self.trials as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Emit the one-line stats record to stderr (plus a fault line when
    /// the resilient path caught anything).
    pub fn report(&self, label: &str) {
        eprintln!(
            "[stats] {label}: trials={} wall={:.3}s trials/sec={:.0} threads={}",
            self.trials,
            self.wall.as_secs_f64(),
            self.trials_per_sec(),
            self.threads,
        );
        if self.panics > 0 || self.failed_trials > 0 {
            eprintln!(
                "[stats] {label}: faults: panics={} retries={} failed_trials={}",
                self.panics, self.retries, self.failed_trials,
            );
        }
    }
}

/// One trial that exhausted its retry budget in
/// [`Exec::par_trials_resilient`] without a successful attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// Trial index in the fan-out.
    pub trial: u64,
    /// Attempts made (`1 + retry_budget`).
    pub attempts: u32,
    /// Panic message of the *last* attempt.
    pub message: String,
}

/// Outcome of a [`Exec::par_trials_resilient`] fan-out: per-trial values
/// (`None` where the retry budget ran dry), the exhausted trials, and
/// run statistics including fault counters.
#[derive(Debug, Clone)]
pub struct ResilientRun<T> {
    /// Trial results in trial order; `None` marks an exhausted trial.
    pub values: Vec<Option<T>>,
    /// Trials that failed every attempt, in trial order.
    pub failures: Vec<TrialFailure>,
    /// Trial/fault statistics for the run (wall time left at zero — the
    /// caller's [`measured_as`] wrapper owns timing).
    pub stats: RunStats,
}

/// Run `f`, timing it into a [`RunStats`] with the given trial count and
/// the ambient thread configuration. Also records a `measured` telemetry
/// stage so manifest timings cover figure-level work.
pub fn measured<T>(trials: u64, f: impl FnOnce() -> T) -> (T, RunStats) {
    measured_as("measured", trials, f)
}

/// [`measured`] with an explicit telemetry stage label.
pub fn measured_as<T>(label: &str, trials: u64, f: impl FnOnce() -> T) -> (T, RunStats) {
    let threads = Exec::from_env().threads();
    let start = Stopwatch::start();
    let out = crate::telemetry::stage(label, trials, f);
    (out, RunStats::new(trials, start.elapsed(), threads))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_tasks_preserves_order() {
        let exec = Exec::with_threads(4);
        let out = exec.run_tasks(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_equals_seq_for_run_tasks() {
        let work = |i: usize| {
            // Uneven task cost to exercise self-scheduling.
            let spin = (i * 7919) % 97;
            (0..spin).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64))
        };
        let seq = Exec::with_threads(1).run_tasks(257, work);
        for threads in [2, 3, 8, 32] {
            assert_eq!(seq, Exec::with_threads(threads).run_tasks(257, work));
        }
    }

    #[test]
    fn par_trials_streams_are_per_trial() {
        let exec = Exec::with_threads(4);
        let draws = exec.par_trials(16, 9, "t", |_i, rng| rng.next_u64());
        // Distinct trials draw from distinct streams.
        let mut uniq = draws.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), draws.len());
        // And trial i's stream matches a direct derivation.
        let direct = DetRng::substream_indexed(9, "t", 3).next_u64();
        assert_eq!(draws[3], direct);
    }

    #[test]
    fn run_tasks_with_matches_run_tasks() {
        // Worker-scoped scratch must not change results: the buffer is
        // overwritten per task, so output equals the scratch-free path.
        let plain = Exec::with_threads(1).run_tasks(97, |i| (i as u64).wrapping_mul(2654435761));
        for threads in [1, 3, 8] {
            let with = Exec::with_threads(threads).run_tasks_with(97, Vec::<u64>::new, |i, buf| {
                buf.clear();
                buf.push((i as u64).wrapping_mul(2654435761));
                buf[0]
            });
            assert_eq!(plain, with, "threads={threads}");
        }
    }

    #[test]
    fn fold_tasks_commutative_is_thread_count_invariant() {
        let fold = |exec: &Exec| {
            exec.fold_tasks_commutative(
                311,
                || (),
                || 0u64,
                |i, _s, acc| *acc += (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32,
                |total, part| *total += part,
            )
        };
        let seq = fold(&Exec::with_threads(1));
        for threads in [2, 5, 16] {
            assert_eq!(seq, fold(&Exec::with_threads(threads)), "threads={threads}");
        }
    }

    #[test]
    fn par_trials_sum_matches_par_trials() {
        let seq: u64 = Exec::with_threads(1)
            .par_trials(40, 7, "sum-t", |_i, rng| rng.next_u64() >> 40)
            .iter()
            .sum();
        for threads in [1, 4, 9] {
            let summed = Exec::with_threads(threads)
                .par_trials_sum(40, 7, "sum-t", |_i, rng| rng.next_u64() >> 40);
            assert_eq!(seq, summed, "threads={threads}");
        }
    }

    #[test]
    fn par_sweep_preserves_order_and_values() {
        let points: Vec<f64> = (0..50).map(|i| i as f64 * 0.5).collect();
        let seq = Exec::with_threads(1).par_sweep(&points, |p| p * p);
        let par = Exec::with_threads(8).par_sweep(&points, |p| p * p);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_mut_touches_every_element_once() {
        for threads in [1, 2, 5, 16] {
            let mut items: Vec<u64> = vec![0; 103];
            Exec::with_threads(threads).par_map_mut(&mut items, |i, x| *x += i as u64 + 1);
            for (i, x) in items.iter().enumerate() {
                assert_eq!(*x, i as u64 + 1, "threads={threads} idx={i}");
            }
        }
    }

    #[test]
    fn chunking_covers_total_exactly() {
        for (total, chunk) in [(10u64, 3u64), (12, 4), (1, 5), (65_536, 4096), (100, 1)] {
            let n = chunk_count(total, chunk);
            let sum: u64 = (0..n).map(|i| chunk_len(i, total, chunk)).sum();
            assert_eq!(sum, total, "total={total} chunk={chunk}");
        }
    }

    #[test]
    fn measured_counts_and_times() {
        let (v, stats) = measured(42, || 7u32);
        assert_eq!(v, 7);
        assert_eq!(stats.trials, 42);
        assert!(stats.trials_per_sec() > 0.0);
        assert_eq!(stats.panics, 0);
        assert_eq!(stats.failed_trials, 0);
        stats.report("selftest");
    }

    #[test]
    fn parse_threads_rejects_malformed_values() {
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("abc").is_err());
        assert!(parse_threads("").is_err());
        assert!(parse_threads("-2").is_err());
        assert_eq!(parse_threads("1").unwrap(), 1);
        assert_eq!(parse_threads(" 8 ").unwrap(), 8);
        let msg = parse_threads("abc").unwrap_err().to_string();
        assert!(msg.contains(THREADS_ENV), "{msg}");
    }

    #[test]
    fn try_run_tasks_reports_worker_failed() {
        for threads in [1, 4] {
            let err = Exec::with_threads(threads)
                .try_run_tasks(64, |i| {
                    if i == 13 {
                        panic!("task 13 exploded");
                    }
                    i
                })
                .unwrap_err();
            match err {
                mosaic_units::MosaicError::WorkerFailed { message, .. } => {
                    assert!(message.contains("task 13 exploded"), "{message}");
                }
                other => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn try_run_tasks_with_reports_worker_failed() {
        let err = Exec::with_threads(3)
            .try_run_tasks_with(32, Vec::<u64>::new, |i, _buf| {
                if i == 5 {
                    panic!("scratch task died");
                }
                i
            })
            .unwrap_err();
        assert!(err.to_string().contains("scratch task died"));
    }

    #[test]
    fn try_fold_tasks_commutative_reports_worker_failed() {
        for threads in [1, 4] {
            let err = Exec::with_threads(threads)
                .try_fold_tasks_commutative(
                    48,
                    || (),
                    || 0u64,
                    |i, _s, acc| {
                        if i == 20 {
                            panic!("fold task died");
                        }
                        *acc += i as u64;
                    },
                    |total, part| *total += part,
                )
                .unwrap_err();
            assert!(
                err.to_string().contains("fold task died"),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn try_variants_match_infallible_on_clean_runs() {
        let exec = Exec::with_threads(4);
        assert_eq!(
            exec.try_run_tasks(50, |i| i * 2).unwrap(),
            exec.run_tasks(50, |i| i * 2)
        );
        let folded = exec
            .try_fold_tasks_commutative(
                50,
                || (),
                || 0u64,
                |i, _s, acc| *acc += i as u64,
                |t, p| *t += p,
            )
            .unwrap();
        assert_eq!(folded, (0..50u64).sum::<u64>());
    }

    #[test]
    fn resilient_trials_no_panic_matches_par_trials() {
        // With nothing panicking, attempt 0 uses the exact par_trials
        // stream, so values match bit-for-bit and counters stay zero.
        let plain = Exec::with_threads(1).par_trials(32, 11, "res-a", |_i, rng| rng.next_u64());
        for threads in [1, 8] {
            let run = Exec::with_threads(threads).par_trials_resilient(
                32,
                11,
                "res-a",
                2,
                |_i, _attempt, rng| rng.next_u64(),
            );
            let got: Vec<u64> = run.values.iter().map(|v| v.unwrap()).collect();
            assert_eq!(plain, got, "threads={threads}");
            assert_eq!(run.stats.panics, 0);
            assert_eq!(run.stats.retries, 0);
            assert_eq!(run.stats.failed_trials, 0);
            assert!(run.failures.is_empty());
        }
    }

    #[test]
    fn resilient_trials_retry_uses_fresh_substream_deterministically() {
        // Trial 7 panics on attempt 0 only; its retry must draw from the
        // "{label}#retry1" substream, identically at every thread count.
        let run_at = |threads: usize| {
            Exec::with_threads(threads).par_trials_resilient(
                24,
                5,
                "res-b",
                1,
                |i, attempt, rng| {
                    if i == 7 && attempt == 0 {
                        panic!("transient fault");
                    }
                    rng.next_u64()
                },
            )
        };
        let seq = run_at(1);
        assert_eq!(seq.stats.panics, 1);
        assert_eq!(seq.stats.retries, 1);
        assert_eq!(seq.stats.failed_trials, 0);
        let expected = DetRng::substream_indexed(5, "res-b#retry1", 7).next_u64();
        assert_eq!(seq.values[7], Some(expected));
        for threads in [2, 8] {
            let par = run_at(threads);
            assert_eq!(seq.values, par.values, "threads={threads}");
            assert_eq!(seq.stats.panics, par.stats.panics);
        }
    }

    #[test]
    fn resilient_trials_budget_exhaustion_yields_none() {
        let run =
            Exec::with_threads(4).par_trials_resilient(16, 3, "res-c", 2, |i, _attempt, rng| {
                if i == 4 {
                    panic!("permanent fault on trial {i}");
                }
                rng.next_u64()
            });
        assert_eq!(run.values[4], None);
        assert_eq!(run.stats.failed_trials, 1);
        assert_eq!(run.stats.panics, 3); // attempts 0..=2 all panicked
        assert_eq!(run.stats.retries, 2);
        assert_eq!(run.failures.len(), 1);
        assert_eq!(run.failures[0].trial, 4);
        assert_eq!(run.failures[0].attempts, 3);
        assert!(run.failures[0].message.contains("permanent fault"));
        // Every other trial still delivered its value.
        assert_eq!(run.values.iter().filter(|v| v.is_some()).count(), 15);
    }
}
