//! Time-scheduled fault scripts for link simulations.
//!
//! Faults are indexed by gearbox *epoch* (one transmit/receive round),
//! which is the granularity at which the control plane can react. The
//! smoltcp-style fault-injection philosophy applies: adverse conditions
//! are first-class inputs to every experiment, not an afterthought.

/// A fault to apply to one physical channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The channel goes permanently dark (LED/PD death, fiber core break).
    Kill {
        /// Physical channel index.
        channel: usize,
    },
    /// A transient error burst: the channel runs at `ber` for `epochs`
    /// epochs, then recovers (connector vibration, transient misalignment).
    Burst {
        /// Physical channel index.
        channel: usize,
        /// Elevated bit-error rate during the burst.
        ber: f64,
        /// Burst duration in epochs.
        epochs: usize,
    },
}

/// A schedule mapping epochs to faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<(usize, Fault)>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault at `epoch`.
    pub fn at(mut self, epoch: usize, fault: Fault) -> Self {
        self.events.push((epoch, fault));
        self
    }

    /// All faults scheduled for `epoch`.
    pub fn faults_at(&self, epoch: usize) -> impl Iterator<Item = &Fault> {
        self.events
            .iter()
            .filter(move |(e, _)| *e == epoch)
            .map(|(_, f)| f)
    }

    /// Total scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_filters_by_epoch() {
        let s = FaultSchedule::new()
            .at(3, Fault::Kill { channel: 1 })
            .at(3, Fault::Kill { channel: 2 })
            .at(
                5,
                Fault::Burst {
                    channel: 0,
                    ber: 1e-2,
                    epochs: 2,
                },
            );
        assert_eq!(s.faults_at(3).count(), 2);
        assert_eq!(s.faults_at(4).count(), 0);
        assert_eq!(s.faults_at(5).count(), 1);
        assert_eq!(s.len(), 3);
    }
}
