//! Time-scheduled fault scripts and randomized fault campaigns for link
//! simulations.
//!
//! Faults are indexed by gearbox *epoch* (one transmit/receive round),
//! which is the granularity at which the control plane can react. The
//! smoltcp-style fault-injection philosophy applies: adverse conditions
//! are first-class inputs to every experiment, not an afterthought.
//!
//! Two layers live here:
//!
//! - The original hand-written [`FaultSchedule`] / [`Fault`] scripts
//!   (used by F11/F12), kept as-is.
//! - A cross-layer **taxonomy** ([`FaultKind`] × [`Persistence`]) and a
//!   seeded [`FaultCampaign`] generator that draws whole fault schedules
//!   from dedicated [`DetRng`] substreams
//!   (`substream_indexed(seed, "fault-campaign", channel)`), so a
//!   campaign is a pure function of `(config, seed)` — reproducible and
//!   thread-count invariant like every other Monte-Carlo path.

use crate::rng::DetRng;

/// A fault to apply to one physical channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The channel goes permanently dark (LED/PD death, fiber core break).
    Kill {
        /// Physical channel index.
        channel: usize,
    },
    /// A transient error burst: the channel runs at `ber` for `epochs`
    /// epochs, then recovers (connector vibration, transient misalignment).
    Burst {
        /// Physical channel index.
        channel: usize,
        /// Elevated bit-error rate during the burst.
        ber: f64,
        /// Burst duration in epochs.
        epochs: usize,
    },
}

/// A schedule mapping epochs to faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<(usize, Fault)>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault at `epoch`.
    pub fn at(mut self, epoch: usize, fault: Fault) -> Self {
        self.events.push((epoch, fault));
        self
    }

    /// All faults scheduled for `epoch`.
    pub fn faults_at(&self, epoch: usize) -> impl Iterator<Item = &Fault> {
        self.events
            .iter()
            .filter(move |(e, _)| *e == epoch)
            .map(|(_, f)| f)
    }

    /// Total scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last epoch any fault fires in, if the schedule is non-empty.
    pub fn last_epoch(&self) -> Option<usize> {
        self.events.iter().map(|(e, _)| *e).max()
    }
}

/// Which component a fault strikes, across the phy → fiber → link stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A microLED emitter dies (no optical output).
    LedDeath,
    /// A microLED dims: reduced extinction ratio, elevated BER.
    LedDimming,
    /// A microLED flickers: output drops out in bursts.
    LedFlicker,
    /// The receive TIA saturates and slices unreliably.
    TiaSaturation,
    /// A fiber core is blocked (dust, connector damage): channel dark.
    FiberBlockage,
    /// Inter-core crosstalk surges (bend, stress), raising BER.
    CrosstalkSurge,
    /// A lane-skew jump: the channel's arrival time steps by whole epochs.
    LaneSkewJump,
    /// A burst-error storm: BER spikes orders of magnitude.
    BurstErrorStorm,
    /// The gearbox kills the channel (and revives it if non-permanent).
    GearboxKill,
}

/// All fault kinds, in taxonomy order (stable: campaign generation
/// indexes into this list).
pub const FAULT_KINDS: [FaultKind; 9] = [
    FaultKind::LedDeath,
    FaultKind::LedDimming,
    FaultKind::LedFlicker,
    FaultKind::TiaSaturation,
    FaultKind::FiberBlockage,
    FaultKind::CrosstalkSurge,
    FaultKind::LaneSkewJump,
    FaultKind::BurstErrorStorm,
    FaultKind::GearboxKill,
];

/// How long a fault persists once it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Persistence {
    /// Active from its start epoch forever (component death).
    Permanent,
    /// Active for a contiguous window of epochs, then gone.
    Transient,
    /// Active in a periodic duty cycle inside its window (flicker,
    /// vibration): `on` epochs active out of every `period`.
    Intermittent {
        /// Cycle length in epochs (≥ 1).
        period: usize,
        /// Active epochs per cycle (1 ..= period).
        on: usize,
    },
}

/// One generated fault instance on one physical channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Physical channel struck.
    pub channel: usize,
    /// Component / layer struck.
    pub kind: FaultKind,
    /// Temporal behavior.
    pub persistence: Persistence,
    /// First epoch the fault can be active.
    pub start: usize,
    /// Window length in epochs (ignored for `Permanent`).
    pub duration: usize,
    /// Severity in [0, 1]: scales BER elevation / skew magnitude.
    pub severity: f64,
}

impl FaultEvent {
    /// Is this fault active at `epoch`?
    pub fn active_at(&self, epoch: usize) -> bool {
        if epoch < self.start {
            return false;
        }
        match self.persistence {
            Persistence::Permanent => true,
            Persistence::Transient => epoch < self.start + self.duration,
            Persistence::Intermittent { period, on } => {
                epoch < self.start + self.duration && {
                    let phase = (epoch - self.start) % period.max(1);
                    phase < on
                }
            }
        }
    }

    /// The channel-level effect this fault contributes while active.
    pub fn effect(&self) -> ChannelEffect {
        let s = self.severity.clamp(0.0, 1.0);
        match self.kind {
            FaultKind::LedDeath | FaultKind::FiberBlockage | FaultKind::GearboxKill => {
                ChannelEffect {
                    dead: true,
                    extra_ber: 0.0,
                    skew_epochs: 0,
                }
            }
            FaultKind::LedDimming => ChannelEffect::ber(1e-6 * 10f64.powf(3.0 * s)),
            FaultKind::LedFlicker => ChannelEffect::ber(1e-4 * 10f64.powf(2.0 * s)),
            FaultKind::TiaSaturation => ChannelEffect::ber(1e-3 * 10f64.powf(1.5 * s)),
            FaultKind::CrosstalkSurge => ChannelEffect::ber(1e-5 * 10f64.powf(2.0 * s)),
            FaultKind::BurstErrorStorm => ChannelEffect::ber(1e-2 * 10f64.powf(s)),
            FaultKind::LaneSkewJump => ChannelEffect {
                dead: false,
                extra_ber: 0.0,
                skew_epochs: 1 + (3.0 * s) as u32,
            },
        }
    }
}

/// Net effect of all active faults on one channel at one epoch.
///
/// Effects compose: `dead` dominates, BER elevations add (independent
/// error mechanisms in the union-bound regime), skew takes the max.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelEffect {
    /// Channel delivers no usable signal this epoch.
    pub dead: bool,
    /// Additional bit-error rate on top of the channel baseline
    /// (clamped to 0.5 by consumers — a fully random channel).
    pub extra_ber: f64,
    /// Whole-epoch skew the channel's data arrives late by.
    pub skew_epochs: u32,
}

impl ChannelEffect {
    fn ber(extra_ber: f64) -> Self {
        ChannelEffect {
            dead: false,
            extra_ber,
            skew_epochs: 0,
        }
    }

    /// Fold another active fault's effect into this one.
    pub fn combine(&mut self, other: &ChannelEffect) {
        self.dead |= other.dead;
        self.extra_ber += other.extra_ber;
        self.skew_epochs = self.skew_epochs.max(other.skew_epochs);
    }
}

/// Parameters of a randomized fault campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Physical channels faults may strike.
    pub channels: usize,
    /// Campaign horizon in epochs.
    pub epochs: usize,
    /// Mean fault arrivals per channel per 1000 epochs (Poisson process
    /// per channel; `0.0` yields an empty campaign).
    pub faults_per_kilo_epoch: f64,
    /// Maximum window length (epochs) drawn for non-permanent faults.
    pub max_duration: usize,
    /// Probability a drawn fault is permanent (the rest split evenly
    /// between transient and intermittent).
    pub permanent_fraction: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            channels: 16,
            epochs: 1000,
            faults_per_kilo_epoch: 2.0,
            max_duration: 64,
            permanent_fraction: 0.2,
        }
    }
}

/// A generated fault campaign: a deterministic function of
/// `(CampaignConfig, seed)`.
///
/// Generation draws each channel's arrival process from its own
/// [`DetRng::substream_indexed`]`(seed, "fault-campaign", channel)`
/// stream, so the campaign never depends on thread count, channel
/// iteration order, or any other scheduling artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaign {
    config: CampaignConfig,
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultCampaign {
    /// Generate the campaign for `(config, seed)`.
    pub fn generate(config: CampaignConfig, seed: u64) -> Self {
        let mut events = Vec::new();
        let rate = config.faults_per_kilo_epoch / 1000.0;
        for channel in 0..config.channels {
            if rate <= 0.0 || config.epochs == 0 {
                break;
            }
            let mut rng = DetRng::substream_indexed(seed, "fault-campaign", channel as u64);
            let mut t = rng.exponential(rate);
            while t < config.epochs as f64 {
                let start = t as usize;
                let kind = FAULT_KINDS[rng.below(FAULT_KINDS.len())];
                let severity = rng.uniform();
                let duration = 1 + rng.below(config.max_duration.max(1));
                let p = rng.uniform();
                let persistence = if p < config.permanent_fraction {
                    Persistence::Permanent
                } else if p < config.permanent_fraction + (1.0 - config.permanent_fraction) / 2.0 {
                    Persistence::Transient
                } else {
                    let period = 2 + rng.below(8);
                    let on = 1 + rng.below(period - 1);
                    Persistence::Intermittent { period, on }
                };
                events.push(FaultEvent {
                    channel,
                    kind,
                    persistence,
                    start,
                    duration,
                    severity,
                });
                t += rng.exponential(rate);
            }
        }
        FaultCampaign {
            config,
            seed,
            events,
        }
    }

    /// The configuration this campaign was generated from.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The seed this campaign was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All generated events, ordered by channel then arrival time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Net effect on `channel` at `epoch` (identity effect when no fault
    /// is active).
    pub fn effect_at(&self, channel: usize, epoch: usize) -> ChannelEffect {
        let mut net = ChannelEffect::default();
        for ev in &self.events {
            if ev.channel == channel && ev.active_at(epoch) {
                net.combine(&ev.effect());
            }
        }
        net
    }

    /// FNV-1a digest over every event's full encoding — a cheap
    /// fingerprint for bit-identical-replay assertions in tests and the
    /// determinism gate.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for ev in &self.events {
            mix(ev.channel as u64);
            mix(ev.kind as u64);
            let (ptag, period, on) = match ev.persistence {
                Persistence::Permanent => (0u64, 0u64, 0u64),
                Persistence::Transient => (1, 0, 0),
                Persistence::Intermittent { period, on } => (2, period as u64, on as u64),
            };
            mix(ptag);
            mix(period);
            mix(on);
            mix(ev.start as u64);
            mix(ev.duration as u64);
            mix(ev.severity.to_bits());
        }
        h
    }

    /// Down-convert to the legacy [`FaultSchedule`] script language:
    /// permanent kills become [`Fault::Kill`], BER-elevating windows
    /// become [`Fault::Burst`]. Lossy (skew and intermittent duty cycles
    /// have no legacy encoding) but lets generated campaigns drive the
    /// existing F11/F12-style link simulations.
    pub fn to_fault_schedule(&self) -> FaultSchedule {
        let mut schedule = FaultSchedule::new();
        for ev in &self.events {
            let eff = ev.effect();
            match ev.persistence {
                Persistence::Permanent if eff.dead => {
                    schedule = schedule.at(
                        ev.start,
                        Fault::Kill {
                            channel: ev.channel,
                        },
                    );
                }
                _ if eff.extra_ber > 0.0 => {
                    schedule = schedule.at(
                        ev.start,
                        Fault::Burst {
                            channel: ev.channel,
                            ber: eff.extra_ber.min(0.5),
                            epochs: ev.duration,
                        },
                    );
                }
                _ => {}
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_filters_by_epoch() {
        let s = FaultSchedule::new()
            .at(3, Fault::Kill { channel: 1 })
            .at(3, Fault::Kill { channel: 2 })
            .at(
                5,
                Fault::Burst {
                    channel: 0,
                    ber: 1e-2,
                    epochs: 2,
                },
            );
        assert_eq!(s.faults_at(3).count(), 2);
        assert_eq!(s.faults_at(4).count(), 0);
        assert_eq!(s.faults_at(5).count(), 1);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn campaign_is_reproducible_and_seed_sensitive() {
        let cfg = CampaignConfig::default();
        let a = FaultCampaign::generate(cfg, 42);
        let b = FaultCampaign::generate(cfg, 42);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = FaultCampaign::generate(cfg, 43);
        assert_ne!(a.digest(), c.digest());
        assert!(!a.events().is_empty(), "default rate should yield events");
    }

    #[test]
    fn campaign_rate_zero_is_empty() {
        let cfg = CampaignConfig {
            faults_per_kilo_epoch: 0.0,
            ..CampaignConfig::default()
        };
        let c = FaultCampaign::generate(cfg, 1);
        assert!(c.events().is_empty());
        assert_eq!(c.effect_at(0, 0), ChannelEffect::default());
    }

    #[test]
    fn persistence_windows_behave() {
        let base = FaultEvent {
            channel: 0,
            kind: FaultKind::BurstErrorStorm,
            persistence: Persistence::Transient,
            start: 10,
            duration: 5,
            severity: 0.5,
        };
        assert!(!base.active_at(9));
        assert!(base.active_at(10));
        assert!(base.active_at(14));
        assert!(!base.active_at(15));

        let perm = FaultEvent {
            persistence: Persistence::Permanent,
            ..base
        };
        assert!(perm.active_at(10));
        assert!(perm.active_at(1_000_000));

        let inter = FaultEvent {
            persistence: Persistence::Intermittent { period: 4, on: 2 },
            duration: 8,
            ..base
        };
        // Phases 0,1 on; 2,3 off; repeating inside [10, 18).
        assert!(inter.active_at(10) && inter.active_at(11));
        assert!(!inter.active_at(12) && !inter.active_at(13));
        assert!(inter.active_at(14) && inter.active_at(15));
        assert!(!inter.active_at(18), "window closed");
    }

    #[test]
    fn effects_compose() {
        let kill = FaultEvent {
            channel: 2,
            kind: FaultKind::GearboxKill,
            persistence: Persistence::Permanent,
            start: 0,
            duration: 1,
            severity: 1.0,
        };
        let storm = FaultEvent {
            kind: FaultKind::BurstErrorStorm,
            ..kill
        };
        let mut net = ChannelEffect::default();
        net.combine(&kill.effect());
        net.combine(&storm.effect());
        assert!(net.dead);
        assert!(net.extra_ber > 0.0);
        let skew = FaultEvent {
            kind: FaultKind::LaneSkewJump,
            severity: 1.0,
            ..kill
        };
        assert_eq!(skew.effect().skew_epochs, 4);
    }

    #[test]
    fn legacy_schedule_downconversion() {
        let cfg = CampaignConfig {
            channels: 8,
            epochs: 400,
            faults_per_kilo_epoch: 10.0,
            max_duration: 16,
            permanent_fraction: 0.5,
        };
        let campaign = FaultCampaign::generate(cfg, 7);
        let schedule = campaign.to_fault_schedule();
        // Every permanent dead fault must appear as a Kill at its epoch.
        for ev in campaign.events() {
            if ev.persistence == Persistence::Permanent && ev.effect().dead {
                assert!(
                    schedule.faults_at(ev.start).any(|f| *f
                        == Fault::Kill {
                            channel: ev.channel
                        }),
                    "missing kill for {ev:?}"
                );
            }
        }
    }
}
