//! Monte-Carlo receiver and coded-channel simulation.
//!
//! Two jobs:
//!
//! 1. **Validate the analytic BER model** (F4): sample actual Gaussian
//!    noise at the decision circuit, count actual errors, and compare
//!    against `mosaic_phy::ber`'s closed form.
//! 2. **Validate the analytic FEC math** (F10): push real bits through the
//!    real RS/BCH decoders under injected errors and compare measured
//!    post-FEC rates against `mosaic_fec::analysis`.

use crate::inject::BitErrorInjector;
use crate::rng::DetRng;
use crate::sweep::{chunk_count, chunk_len, Exec};
use mosaic_fec::rs::{DecodeOutcome, ReedSolomon};
use mosaic_phy::ber::OokReceiver;
use mosaic_units::Power;

/// Fixed Monte-Carlo chunk: bits per parallel task in the OOK slicer
/// simulation. A call-site constant (never derived from the thread
/// count), so the task decomposition — and therefore the output — is
/// identical at every `MOSAIC_THREADS` setting.
pub const OOK_CHUNK_BITS: u64 = 65_536;

/// Result of a Monte-Carlo BER measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerMeasurement {
    /// Bits simulated.
    pub bits: u64,
    /// Errors observed.
    pub errors: u64,
    /// Point estimate.
    pub ber: f64,
    /// 95 % Wilson confidence interval (lo, hi).
    pub ci95: (f64, f64),
}

/// Wilson score interval for a binomial proportion (robust at zero
/// observed errors, unlike the normal approximation).
pub fn wilson_ci(errors: u64, trials: u64) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    let z = 1.96f64;
    let n = trials as f64;
    let p = errors as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Decision-circuit operating point for the OOK slicer: rail currents,
/// rail noises, and the optimum threshold between them.
#[derive(Debug, Clone, Copy)]
struct SlicerPoint {
    i1: f64,
    i0: f64,
    s1: f64,
    s0: f64,
    threshold: f64,
}

impl SlicerPoint {
    fn of(rx: &OokReceiver, avg_power: Power) -> Self {
        let (p1, p0) = rx.levels(avg_power);
        let i1 = rx.pd.photocurrent(p1) + rx.pd.dark_current_a;
        let i0 = rx.pd.photocurrent(p0) + rx.pd.dark_current_a;
        let s1 = rx.noise.total_a(i1);
        let s0 = rx.noise.total_a(i0);
        // Optimum threshold for unequal noises.
        let threshold = (s0 * i1 + s1 * i0) / (s0 + s1);
        SlicerPoint {
            i1,
            i0,
            s1,
            s0,
            threshold,
        }
    }

    /// Slice `bits` noisy samples from `rng`, returning the error count.
    fn count_errors(&self, bits: u64, rng: &mut DetRng) -> u64 {
        let mut errors = 0u64;
        for _ in 0..bits {
            let (level, sigma, is_one) = if rng.chance(0.5) {
                (self.i1, self.s1, true)
            } else {
                (self.i0, self.s0, false)
            };
            let sample = level + sigma * rng.standard_normal();
            let decided_one = sample > self.threshold;
            if decided_one != is_one {
                errors += 1;
            }
        }
        errors
    }
}

/// Simulate an OOK slicer: per bit, pick a level (equiprobable 0/1), add
/// the level-dependent Gaussian noise, and threshold at the optimum point.
/// This is the physical process the Q-factor formula models; the test
/// suite checks they agree.
///
/// Sequential, single-stream form; the sweep-engine form is
/// [`simulate_ook_ber_par`].
pub fn simulate_ook_ber(
    rx: &OokReceiver,
    avg_power: Power,
    bits: u64,
    rng: &mut DetRng,
) -> BerMeasurement {
    let point = SlicerPoint::of(rx, avg_power);
    let errors = point.count_errors(bits, rng);
    BerMeasurement {
        bits,
        errors,
        ber: errors as f64 / bits as f64,
        ci95: wilson_ci(errors, bits),
    }
}

/// Parallel OOK slicer simulation: `bits` are split into fixed
/// [`OOK_CHUNK_BITS`]-sized tasks, chunk `c` drawing from the
/// counter-derived stream `(seed, "ook-ber", c)`. Error counters
/// accumulate per chunk and are summed in chunk order, so the result is
/// bit-identical at every thread count for a given seed.
pub fn simulate_ook_ber_par(
    exec: &Exec,
    rx: &OokReceiver,
    avg_power: Power,
    bits: u64,
    seed: u64,
) -> BerMeasurement {
    let point = SlicerPoint::of(rx, avg_power);
    let chunks = chunk_count(bits, OOK_CHUNK_BITS);
    let partial = exec.par_trials(chunks, seed, "ook-ber", |c, rng| {
        point.count_errors(chunk_len(c, bits, OOK_CHUNK_BITS), rng)
    });
    let errors: u64 = partial.iter().sum();
    BerMeasurement {
        bits,
        errors,
        ber: errors as f64 / bits as f64,
        ci95: wilson_ci(errors, bits),
    }
}

/// Result of a coded-channel Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodedRun {
    /// Codewords pushed through.
    pub codewords: u64,
    /// Codewords that decoded (clean or corrected).
    pub decoded: u64,
    /// Codewords that failed (detected uncorrectable).
    pub failures: u64,
    /// Codewords that "decoded" to the wrong codeword (silent
    /// miscorrection — possible when errors exceed t; rate ~1/t!).
    pub miscorrected: u64,
    /// Pre-FEC bit errors injected.
    pub pre_fec_bit_errors: u64,
    /// Bits transmitted.
    pub bits: u64,
    /// Residual data-symbol errors after decoding (from failed words).
    pub residual_symbol_errors: u64,
}

impl CodedRun {
    /// Measured codeword failure probability (detected + miscorrected).
    pub fn failure_prob(&self) -> f64 {
        (self.failures + self.miscorrected) as f64 / self.codewords as f64
    }

    /// Measured pre-FEC BER.
    pub fn pre_ber(&self) -> f64 {
        self.pre_fec_bit_errors as f64 / self.bits as f64
    }
}

/// Push `codewords` random RS codewords through a BER-`ber` channel and
/// decode them, counting real failures. Runs on the ambient
/// (`MOSAIC_THREADS`) execution context; see [`run_rs_channel_with`].
pub fn run_rs_channel(rs: &ReedSolomon, ber: f64, codewords: u64, seed: u64) -> CodedRun {
    run_rs_channel_with(&Exec::from_env(), rs, ber, codewords, seed)
}

/// [`run_rs_channel`] on an explicit execution context.
///
/// Each codeword is an independent task: word `w` generates data from
/// stream `(seed, "rs-data", w)` and noise from `(seed, "rs-noise", w)`,
/// and the per-word counters are summed in word order — so the totals
/// are bit-identical at every thread count. (Restarting the injector's
/// geometric skip at each word keeps errors i.i.d. Bernoulli(`ber`),
/// which is all the channel model promises.)
pub fn run_rs_channel_with(
    exec: &Exec,
    rs: &ReedSolomon,
    ber: f64,
    codewords: u64,
    seed: u64,
) -> CodedRun {
    let m = rs.symbol_bits();
    let mask = ((1u32 << m) - 1) as u16;
    let per_word = exec.run_tasks(codewords as usize, |w| {
        let mut data_rng = DetRng::substream_indexed(seed, "rs-data", w as u64);
        let mut inj =
            BitErrorInjector::new(ber, DetRng::substream_indexed(seed, "rs-noise", w as u64));
        let data: Vec<u16> = (0..rs.k())
            .map(|_| (data_rng.next_u64() as u16) & mask)
            .collect();
        let clean = rs.encode(&data);
        // Serialize symbols to bits, corrupt, reassemble.
        let mut bits: Vec<u8> = Vec::with_capacity(rs.n() * m as usize);
        for &s in &clean {
            for b in 0..m {
                bits.push(((s >> b) & 1) as u8);
            }
        }
        let mut one = CodedRun {
            codewords: 1,
            decoded: 0,
            failures: 0,
            miscorrected: 0,
            pre_fec_bit_errors: inj.corrupt_bits(&mut bits),
            bits: bits.len() as u64,
            residual_symbol_errors: 0,
        };
        let mut word: Vec<u16> = bits
            .chunks(m as usize)
            .map(|c| {
                c.iter()
                    .enumerate()
                    .fold(0u16, |acc, (i, &b)| acc | ((b as u16) << i))
            })
            .collect();
        let outcome = rs
            .decode(&mut word)
            .expect("simulated codeword has the code's exact length");
        match outcome {
            DecodeOutcome::Clean | DecodeOutcome::Corrected(_) => {
                if word[..rs.k()] == data[..] {
                    one.decoded += 1;
                } else {
                    // Beyond-capacity miscorrection to a different valid
                    // codeword — inherent to bounded-distance decoding.
                    one.miscorrected += 1;
                    one.residual_symbol_errors += word[..rs.k()]
                        .iter()
                        .zip(&data)
                        .filter(|(a, b)| a != b)
                        .count() as u64;
                }
            }
            DecodeOutcome::Failure => {
                one.failures += 1;
                one.residual_symbol_errors += word[..rs.k()]
                    .iter()
                    .zip(&data)
                    .filter(|(a, b)| a != b)
                    .count() as u64;
            }
        }
        one
    });
    let mut out = CodedRun {
        codewords,
        decoded: 0,
        failures: 0,
        miscorrected: 0,
        pre_fec_bit_errors: 0,
        bits: 0,
        residual_symbol_errors: 0,
    };
    for w in &per_word {
        out.decoded += w.decoded;
        out.failures += w.failures;
        out.miscorrected += w.miscorrected;
        out.pre_fec_bit_errors += w.pre_fec_bit_errors;
        out.bits += w.bits;
        out.residual_symbol_errors += w.residual_symbol_errors;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_fec::analysis::rs_performance;
    use mosaic_phy::noise::NoiseBudget;
    use mosaic_phy::photodiode::Photodiode;
    use mosaic_units::Frequency;

    fn mosaic_rx() -> OokReceiver {
        OokReceiver {
            pd: Photodiode::silicon_blue(),
            noise: NoiseBudget {
                thermal_a: 3.0e-12 * (1.4e9f64).sqrt(),
                bandwidth: Frequency::from_ghz(1.4),
                rin_db_per_hz: None,
            },
            extinction_ratio: 6.0,
        }
    }

    #[test]
    fn monte_carlo_matches_analytic_ber() {
        // Pick a power where BER ≈ 1e-3 so 2M bits give tight statistics.
        let rx = mosaic_rx();
        let p = rx.sensitivity(1e-3).unwrap();
        let mut rng = DetRng::new(2024);
        let m = simulate_ook_ber(&rx, p, 2_000_000, &mut rng);
        let analytic = rx.ber_at(p);
        assert!(
            m.ci95.0 <= analytic && analytic <= m.ci95.1,
            "analytic {analytic} outside CI {:?} (measured {})",
            m.ci95,
            m.ber
        );
    }

    #[test]
    fn wilson_interval_sane() {
        let (lo, hi) = wilson_ci(0, 1000);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01);
        let (lo, hi) = wilson_ci(500, 1000);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.07);
    }

    #[test]
    fn rs_channel_failure_rate_matches_analytic() {
        // A weak code at a harsh BER so failures are common enough to
        // measure in few words: RS(31,23) t=4 at BER 2e-2.
        let rs = ReedSolomon::new(8, 31, 23);
        let ber = 2e-2;
        let run = run_rs_channel(&rs, ber, 2000, 7);
        let analytic = rs_performance(rs.n(), rs.t(), rs.symbol_bits(), ber);
        let measured = run.failure_prob();
        let expected = analytic.codeword_failure_prob;
        assert!(
            (measured / expected - 1.0).abs() < 0.25,
            "measured {measured} vs analytic {expected}"
        );
        // Pre-FEC BER should be close to target.
        assert!((run.pre_ber() / ber - 1.0).abs() < 0.05);
    }

    #[test]
    fn clean_channel_never_fails() {
        let rs = ReedSolomon::new(8, 31, 23);
        let run = run_rs_channel(&rs, 0.0, 100, 1);
        assert_eq!(run.failures, 0);
        assert_eq!(run.decoded, 100);
    }

    #[test]
    fn deterministic_across_runs() {
        let rs = ReedSolomon::new(8, 31, 23);
        let a = run_rs_channel(&rs, 1e-2, 300, 5);
        let b = run_rs_channel(&rs, 1e-2, 300, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn ook_par_is_thread_count_invariant() {
        let rx = mosaic_rx();
        let p = rx.sensitivity(1e-3).unwrap();
        // Non-multiple of the chunk size to exercise the short tail chunk.
        let bits = 3 * OOK_CHUNK_BITS + 1234;
        let seq = simulate_ook_ber_par(&Exec::with_threads(1), &rx, p, bits, 99);
        for threads in [2, 4, 16] {
            let par = simulate_ook_ber_par(&Exec::with_threads(threads), &rx, p, bits, 99);
            assert_eq!(seq, par, "threads={threads}");
        }
        // And the statistics still agree with the analytic model.
        let analytic = rx.ber_at(p);
        assert!(
            seq.ci95.0 <= analytic && analytic <= seq.ci95.1,
            "analytic {analytic} outside CI {:?}",
            seq.ci95
        );
    }

    #[test]
    fn rs_channel_is_thread_count_invariant() {
        let rs = ReedSolomon::new(8, 31, 23);
        let seq = run_rs_channel_with(&Exec::with_threads(1), &rs, 2e-2, 401, 13);
        for threads in [2, 8] {
            let par = run_rs_channel_with(&Exec::with_threads(threads), &rs, 2e-2, 401, 13);
            assert_eq!(seq, par, "threads={threads}");
        }
    }
}
