//! Monte-Carlo receiver and coded-channel simulation.
//!
//! Two jobs:
//!
//! 1. **Validate the analytic BER model** (F4): sample actual Gaussian
//!    noise at the decision circuit, count actual errors, and compare
//!    against `mosaic_phy::ber`'s closed form.
//! 2. **Validate the analytic FEC math** (F10): push real bits through the
//!    real RS/BCH decoders under injected errors and compare measured
//!    post-FEC rates against `mosaic_fec::analysis`.

use crate::inject::BitErrorInjector;
use crate::rng::DetRng;
use mosaic_fec::rs::{DecodeOutcome, ReedSolomon};
use mosaic_phy::ber::OokReceiver;
use mosaic_units::Power;

/// Result of a Monte-Carlo BER measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerMeasurement {
    /// Bits simulated.
    pub bits: u64,
    /// Errors observed.
    pub errors: u64,
    /// Point estimate.
    pub ber: f64,
    /// 95 % Wilson confidence interval (lo, hi).
    pub ci95: (f64, f64),
}

/// Wilson score interval for a binomial proportion (robust at zero
/// observed errors, unlike the normal approximation).
pub fn wilson_ci(errors: u64, trials: u64) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    let z = 1.96f64;
    let n = trials as f64;
    let p = errors as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Simulate an OOK slicer: per bit, pick a level (equiprobable 0/1), add
/// the level-dependent Gaussian noise, and threshold at the optimum point.
/// This is the physical process the Q-factor formula models; the test
/// suite checks they agree.
pub fn simulate_ook_ber(
    rx: &OokReceiver,
    avg_power: Power,
    bits: u64,
    rng: &mut DetRng,
) -> BerMeasurement {
    let (p1, p0) = rx.levels(avg_power);
    let i1 = rx.pd.photocurrent(p1) + rx.pd.dark_current_a;
    let i0 = rx.pd.photocurrent(p0) + rx.pd.dark_current_a;
    let s1 = rx.noise.total_a(i1);
    let s0 = rx.noise.total_a(i0);
    // Optimum threshold for unequal noises.
    let threshold = (s0 * i1 + s1 * i0) / (s0 + s1);
    let mut errors = 0u64;
    for _ in 0..bits {
        let (level, sigma, is_one) = if rng.chance(0.5) { (i1, s1, true) } else { (i0, s0, false) };
        let sample = level + sigma * rng.standard_normal();
        let decided_one = sample > threshold;
        if decided_one != is_one {
            errors += 1;
        }
    }
    BerMeasurement {
        bits,
        errors,
        ber: errors as f64 / bits as f64,
        ci95: wilson_ci(errors, bits),
    }
}

/// Result of a coded-channel Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodedRun {
    /// Codewords pushed through.
    pub codewords: u64,
    /// Codewords that decoded (clean or corrected).
    pub decoded: u64,
    /// Codewords that failed (detected uncorrectable).
    pub failures: u64,
    /// Codewords that "decoded" to the wrong codeword (silent
    /// miscorrection — possible when errors exceed t; rate ~1/t!).
    pub miscorrected: u64,
    /// Pre-FEC bit errors injected.
    pub pre_fec_bit_errors: u64,
    /// Bits transmitted.
    pub bits: u64,
    /// Residual data-symbol errors after decoding (from failed words).
    pub residual_symbol_errors: u64,
}

impl CodedRun {
    /// Measured codeword failure probability (detected + miscorrected).
    pub fn failure_prob(&self) -> f64 {
        (self.failures + self.miscorrected) as f64 / self.codewords as f64
    }

    /// Measured pre-FEC BER.
    pub fn pre_ber(&self) -> f64 {
        self.pre_fec_bit_errors as f64 / self.bits as f64
    }
}

/// Push `codewords` random RS codewords through a BER-`ber` channel and
/// decode them, counting real failures.
pub fn run_rs_channel(rs: &ReedSolomon, ber: f64, codewords: u64, seed: u64) -> CodedRun {
    let m = rs.symbol_bits();
    let mut data_rng = DetRng::substream(seed, "rs-data");
    let mut inj = BitErrorInjector::new(ber, DetRng::substream(seed, "rs-noise"));
    let mask = ((1u32 << m) - 1) as u16;
    let mut out = CodedRun {
        codewords,
        decoded: 0,
        failures: 0,
        miscorrected: 0,
        pre_fec_bit_errors: 0,
        bits: 0,
        residual_symbol_errors: 0,
    };
    for _ in 0..codewords {
        let data: Vec<u16> = (0..rs.k()).map(|_| (data_rng.next_u64() as u16) & mask).collect();
        let clean = rs.encode(&data);
        // Serialize symbols to bits, corrupt, reassemble.
        let mut bits: Vec<u8> = Vec::with_capacity(rs.n() * m as usize);
        for &s in &clean {
            for b in 0..m {
                bits.push(((s >> b) & 1) as u8);
            }
        }
        out.pre_fec_bit_errors += inj.corrupt_bits(&mut bits);
        out.bits += bits.len() as u64;
        let mut word: Vec<u16> = bits
            .chunks(m as usize)
            .map(|c| c.iter().enumerate().fold(0u16, |acc, (i, &b)| acc | ((b as u16) << i)))
            .collect();
        match rs.decode(&mut word) {
            DecodeOutcome::Clean | DecodeOutcome::Corrected(_) => {
                if word[..rs.k()] == data[..] {
                    out.decoded += 1;
                } else {
                    // Beyond-capacity miscorrection to a different valid
                    // codeword — inherent to bounded-distance decoding.
                    out.miscorrected += 1;
                    out.residual_symbol_errors += word[..rs.k()]
                        .iter()
                        .zip(&data)
                        .filter(|(a, b)| a != b)
                        .count() as u64;
                }
            }
            DecodeOutcome::Failure => {
                out.failures += 1;
                out.residual_symbol_errors += word[..rs.k()]
                    .iter()
                    .zip(&data)
                    .filter(|(a, b)| a != b)
                    .count() as u64;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_fec::analysis::rs_performance;
    use mosaic_phy::noise::NoiseBudget;
    use mosaic_phy::photodiode::Photodiode;
    use mosaic_units::Frequency;

    fn mosaic_rx() -> OokReceiver {
        OokReceiver {
            pd: Photodiode::silicon_blue(),
            noise: NoiseBudget {
                thermal_a: 3.0e-12 * (1.4e9f64).sqrt(),
                bandwidth: Frequency::from_ghz(1.4),
                rin_db_per_hz: None,
            },
            extinction_ratio: 6.0,
        }
    }

    #[test]
    fn monte_carlo_matches_analytic_ber() {
        // Pick a power where BER ≈ 1e-3 so 2M bits give tight statistics.
        let rx = mosaic_rx();
        let p = rx.sensitivity(1e-3).unwrap();
        let mut rng = DetRng::new(2024);
        let m = simulate_ook_ber(&rx, p, 2_000_000, &mut rng);
        let analytic = rx.ber_at(p);
        assert!(
            m.ci95.0 <= analytic && analytic <= m.ci95.1,
            "analytic {analytic} outside CI {:?} (measured {})",
            m.ci95,
            m.ber
        );
    }

    #[test]
    fn wilson_interval_sane() {
        let (lo, hi) = wilson_ci(0, 1000);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01);
        let (lo, hi) = wilson_ci(500, 1000);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.07);
    }

    #[test]
    fn rs_channel_failure_rate_matches_analytic() {
        // A weak code at a harsh BER so failures are common enough to
        // measure in few words: RS(31,23) t=4 at BER 2e-2.
        let rs = ReedSolomon::new(8, 31, 23);
        let ber = 2e-2;
        let run = run_rs_channel(&rs, ber, 2000, 7);
        let analytic = rs_performance(rs.n(), rs.t(), rs.symbol_bits(), ber);
        let measured = run.failure_prob();
        let expected = analytic.codeword_failure_prob;
        assert!(
            (measured / expected - 1.0).abs() < 0.25,
            "measured {measured} vs analytic {expected}"
        );
        // Pre-FEC BER should be close to target.
        assert!((run.pre_ber() / ber - 1.0).abs() < 0.05);
    }

    #[test]
    fn clean_channel_never_fails() {
        let rs = ReedSolomon::new(8, 31, 23);
        let run = run_rs_channel(&rs, 0.0, 100, 1);
        assert_eq!(run.failures, 0);
        assert_eq!(run.decoded, 100);
    }

    #[test]
    fn deterministic_across_runs() {
        let rs = ReedSolomon::new(8, 31, 23);
        let a = run_rs_channel(&rs, 1e-2, 300, 5);
        let b = run_rs_channel(&rs, 1e-2, 300, 5);
        assert_eq!(a, b);
    }
}
