//! Monte-Carlo receiver and coded-channel simulation.
//!
//! Two jobs:
//!
//! 1. **Validate the analytic BER model** (F4): sample actual Gaussian
//!    noise at the decision circuit, count actual errors, and compare
//!    against `mosaic_phy::ber`'s closed form.
//! 2. **Validate the analytic FEC math** (F10): push real bits through the
//!    real RS/BCH decoders under injected errors and compare measured
//!    post-FEC rates against `mosaic_fec::analysis`.

use crate::inject::BitErrorInjector;
use crate::rng::{Bernoulli, DetRng};
use crate::sweep::{chunk_count, chunk_len, Exec, TrialPlan};
use mosaic_fec::rs::{DecodeOutcome, ReedSolomon};
use mosaic_fec::DecodeScratch;
use mosaic_phy::ber::OokReceiver;
use mosaic_units::Power;

/// Fixed Monte-Carlo chunk: bits per parallel task in the OOK slicer
/// simulation. A call-site constant (never derived from the thread
/// count), so the task decomposition — and therefore the output — is
/// identical at every `MOSAIC_THREADS` setting.
pub const OOK_CHUNK_BITS: u64 = 65_536;

/// Result of a Monte-Carlo BER measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerMeasurement {
    /// Bits simulated.
    pub bits: u64,
    /// Errors observed.
    pub errors: u64,
    /// Point estimate.
    pub ber: f64,
    /// 95 % Wilson confidence interval (lo, hi).
    pub ci95: (f64, f64),
}

impl BerMeasurement {
    /// Build a measurement from raw counts. Zero bits is a defined
    /// no-information result (`ber = 0.0`, CI `(0.0, 1.0)`), not a
    /// division by zero.
    pub fn from_counts(bits: u64, errors: u64) -> Self {
        let ber = if bits == 0 {
            0.0
        } else {
            errors as f64 / bits as f64
        };
        BerMeasurement {
            bits,
            errors,
            ber,
            ci95: wilson_ci(errors, bits),
        }
    }
}

/// Wilson score interval for a binomial proportion (robust at zero
/// observed errors, unlike the normal approximation).
///
/// Zero trials carry no information: the interval is the vacuous
/// `(0.0, 1.0)` rather than a panic, matching the workspace's
/// never-panic API posture.
pub fn wilson_ci(errors: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = errors as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Decision-circuit operating point for the OOK slicer: rail currents,
/// rail noises, and the optimum threshold between them.
///
/// Public so the kernel-equivalence proptests (sliced vs scalar, at lane
/// counts that straddle the 64-bit word boundary) can drive the slicer
/// directly; figure code goes through [`simulate_ook_ber_par`].
#[derive(Debug, Clone, Copy)]
pub struct SlicerPoint {
    /// One-rail photocurrent (A).
    pub i1: f64,
    /// Zero-rail photocurrent (A).
    pub i0: f64,
    /// One-rail noise sigma (A).
    pub s1: f64,
    /// Zero-rail noise sigma (A).
    pub s0: f64,
    /// Decision threshold (A).
    pub threshold: f64,
}

impl SlicerPoint {
    /// Operating point of a receiver at a given average power.
    pub fn of(rx: &OokReceiver, avg_power: Power) -> Self {
        let (p1, p0) = rx.levels(avg_power);
        let i1 = rx.pd.photocurrent(p1) + rx.pd.dark_current_a;
        let i0 = rx.pd.photocurrent(p0) + rx.pd.dark_current_a;
        let s1 = rx.noise.total_a(i1);
        let s0 = rx.noise.total_a(i0);
        // Optimum threshold for unequal noises.
        let threshold = (s0 * i1 + s1 * i0) / (s0 + s1);
        SlicerPoint {
            i1,
            i0,
            s1,
            s0,
            threshold,
        }
    }

    /// Closed-form BER of this operating point: the *exact* mean of the
    /// estimator [`SlicerPoint::count_errors`] samples,
    /// `(Q(d1) + Q(d0)) / 2` with `d1 = (i1 − threshold)/s1` and
    /// `d0 = (threshold − i0)/s0`.
    ///
    /// Error-budget note (DESIGN §12): this is *not* the single-Q
    /// approximation `Q((i1 − i0)/(s1 + s0))` that
    /// [`OokReceiver::ber_at`] reports — at the optimum threshold the
    /// two agree to within a few percent, which is exactly the model
    /// mismatch the Monte-Carlo column of F4 makes visible. The adaptive
    /// analytic tier therefore uses this two-sided form, whose only
    /// deviation from a correct kernel's measurement is sampling noise.
    pub fn model_ber(&self) -> f64 {
        let d1 = (self.i1 - self.threshold) / self.s1;
        let d0 = (self.threshold - self.i0) / self.s0;
        0.5 * (mosaic_phy::math::normal_tail(d1) + mosaic_phy::math::normal_tail(d0))
    }

    /// Slice `bits` noisy samples from `rng`, returning the error count.
    ///
    /// Dispatches to the bit-sliced kernel by default, or to the retained
    /// scalar loop under `--features scalar-kernels`. Error counts and
    /// RNG draw sequences are bit-identical either way (pinned by the
    /// `sliced_slicer_matches_scalar_reference` proptest).
    #[inline]
    pub fn count_errors(&self, bits: u64, rng: &mut DetRng) -> u64 {
        #[cfg(feature = "scalar-kernels")]
        {
            self.count_errors_scalar(bits, rng)
        }
        #[cfg(not(feature = "scalar-kernels"))]
        {
            self.count_errors_sliced(bits, rng)
        }
    }

    /// Bit-sliced slicer kernel: transmitted bits and decisions are
    /// packed 64 lanes per `u64` word and errors are counted with one
    /// `popcount(tx ^ decided)` per word.
    ///
    /// The draw pass bulk-fills the block's raw words (three per bit, in
    /// the scalar loop's exact order: transmit decision, then the two
    /// Box-Muller uniforms) with one [`DetRng::fill_u64`] call, then
    /// applies the identical per-draw transforms via [`Bernoulli::decide`]
    /// and [`DetRng::standard_normal_of`] while packing the transmitted
    /// bit into `tx[lane]`; the decision pass computes the identical
    /// float expression `level + sigma·z`, packs the comparator output,
    /// and XOR/popcounts. Tail blocks shorter than 64 lanes leave the
    /// high lanes zero in *both* words, so the XOR contributes nothing —
    /// the tail-lane masking rule of DESIGN §11.
    #[cfg_attr(all(not(test), feature = "scalar-kernels"), allow(dead_code))]
    pub fn count_errors_sliced(&self, bits: u64, rng: &mut DetRng) -> u64 {
        const WORD: usize = 64;
        const BLOCK: usize = 256;
        const DRAWS_PER_BIT: usize = 3;
        let half = Bernoulli::new(0.5);
        let mut tx = [0u64; BLOCK / WORD];
        let mut zs = [0f64; BLOCK];
        let mut draws = [0u64; DRAWS_PER_BIT * BLOCK];
        let mut errors = 0u64;
        let mut remaining = bits;
        while remaining > 0 {
            let len = remaining.min(BLOCK as u64) as usize;
            let words = len.div_ceil(WORD);
            tx[..words].fill(0);
            rng.fill_u64(&mut draws[..DRAWS_PER_BIT * len]);
            for j in 0..len {
                let one = half.decide(draws[DRAWS_PER_BIT * j]);
                tx[j / WORD] |= (one as u64) << (j % WORD);
                zs[j] = DetRng::standard_normal_of(
                    draws[DRAWS_PER_BIT * j + 1],
                    draws[DRAWS_PER_BIT * j + 2],
                );
            }
            for (w, &txw) in tx[..words].iter().enumerate() {
                let lanes = (len - w * WORD).min(WORD);
                let mut decided = 0u64;
                for l in 0..lanes {
                    let one = (txw >> l) & 1 != 0;
                    let (level, sigma) = if one {
                        (self.i1, self.s1)
                    } else {
                        (self.i0, self.s0)
                    };
                    let sample = level + sigma * zs[w * WORD + l];
                    decided |= ((sample > self.threshold) as u64) << l;
                }
                errors += (decided ^ txw).count_ones() as u64;
            }
            remaining -= len as u64;
        }
        errors
    }

    /// The retained scalar slicer: one bit at a time, the differential
    /// oracle for [`SlicerPoint::count_errors_sliced`]. Active as the
    /// `count_errors` path under `--features scalar-kernels`.
    #[cfg_attr(not(any(test, feature = "scalar-kernels")), allow(dead_code))]
    pub fn count_errors_scalar(&self, bits: u64, rng: &mut DetRng) -> u64 {
        let mut errors = 0u64;
        for _ in 0..bits {
            let (level, sigma, is_one) = if rng.chance(0.5) {
                (self.i1, self.s1, true)
            } else {
                (self.i0, self.s0, false)
            };
            let sample = level + sigma * rng.standard_normal();
            let decided_one = sample > self.threshold;
            if decided_one != is_one {
                errors += 1;
            }
        }
        errors
    }
}

/// Simulate an OOK slicer: per bit, pick a level (equiprobable 0/1), add
/// the level-dependent Gaussian noise, and threshold at the optimum point.
/// This is the physical process the Q-factor formula models; the test
/// suite checks they agree.
///
/// Sequential, single-stream form; the sweep-engine form is
/// [`simulate_ook_ber_par`].
pub fn simulate_ook_ber(
    rx: &OokReceiver,
    avg_power: Power,
    bits: u64,
    rng: &mut DetRng,
) -> BerMeasurement {
    let point = SlicerPoint::of(rx, avg_power);
    let errors = point.count_errors(bits, rng);
    BerMeasurement::from_counts(bits, errors)
}

/// Parallel OOK slicer simulation: `bits` are split into fixed
/// [`OOK_CHUNK_BITS`]-sized tasks, chunk `c` drawing from the
/// counter-derived stream `(seed, "ook-ber", c)`. Error counters
/// accumulate per chunk and are summed in chunk order, so the result is
/// bit-identical at every thread count for a given seed.
pub fn simulate_ook_ber_par(
    exec: &Exec,
    rx: &OokReceiver,
    avg_power: Power,
    bits: u64,
    seed: u64,
) -> BerMeasurement {
    let point = SlicerPoint::of(rx, avg_power);
    let chunks = chunk_count(bits, OOK_CHUNK_BITS);
    // Exact integer sum over chunk counters: no intermediate collection,
    // thread-count invariant by the fold's commutativity contract.
    let errors = TrialPlan::new()
        .trials(chunks)
        .seed(seed)
        .label("ook-ber")
        .sum(exec, |ctx| {
            let mut rng = ctx.rng();
            point.count_errors(chunk_len(ctx.trial(), bits, OOK_CHUNK_BITS), &mut rng)
        });
    BerMeasurement::from_counts(bits, errors)
}

/// Result of a coded-channel Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodedRun {
    /// Codewords pushed through.
    pub codewords: u64,
    /// Codewords that decoded (clean or corrected).
    pub decoded: u64,
    /// Codewords that failed (detected uncorrectable).
    pub failures: u64,
    /// Codewords that "decoded" to the wrong codeword (silent
    /// miscorrection — possible when errors exceed t; rate ~1/t!).
    pub miscorrected: u64,
    /// Pre-FEC bit errors injected.
    pub pre_fec_bit_errors: u64,
    /// Bits transmitted.
    pub bits: u64,
    /// Residual data-symbol errors after decoding (from failed words).
    pub residual_symbol_errors: u64,
}

impl CodedRun {
    /// Measured codeword failure probability (detected + miscorrected).
    pub fn failure_prob(&self) -> f64 {
        (self.failures + self.miscorrected) as f64 / self.codewords as f64
    }

    /// Measured pre-FEC BER.
    pub fn pre_ber(&self) -> f64 {
        self.pre_fec_bit_errors as f64 / self.bits as f64
    }
}

/// Push `codewords` random RS codewords through a BER-`ber` channel and
/// decode them, counting real failures. Runs on the ambient
/// (`MOSAIC_THREADS`) execution context; see [`run_rs_channel_with`].
pub fn run_rs_channel(rs: &ReedSolomon, ber: f64, codewords: u64, seed: u64) -> CodedRun {
    run_rs_channel_with(&Exec::from_env(), rs, ber, codewords, seed)
}

/// Per-worker working set for [`run_rs_channel_with`]: decode scratch
/// plus data/word buffers, reused across every codeword the worker
/// processes — zero heap allocation per word in steady state.
struct RsChannelScratch {
    decode: DecodeScratch,
    data: Vec<u16>,
    word: Vec<u16>,
}

/// [`run_rs_channel`] on an explicit execution context.
///
/// Each codeword is an independent task: word `w` generates data from
/// stream `(seed, "rs-data", w)` and noise from `(seed, "rs-noise", w)`,
/// and the per-word counters fold by exact integer addition — so the
/// totals are bit-identical at every thread count. (Restarting the
/// injector's geometric skip at each word keeps errors i.i.d.
/// Bernoulli(`ber`), which is all the channel model promises.)
///
/// Corruption acts directly on the symbol buffer via
/// [`BitErrorInjector::corrupt_symbols`] — the same bit stream the old
/// serialize/corrupt/reassemble round trip produced, without the
/// per-word bit vector.
pub fn run_rs_channel_with(
    exec: &Exec,
    rs: &ReedSolomon,
    ber: f64,
    codewords: u64,
    seed: u64,
) -> CodedRun {
    let m = rs.symbol_bits();
    let mask = ((1u32 << m) - 1) as u16;
    let zero = || CodedRun {
        codewords: 0,
        decoded: 0,
        failures: 0,
        miscorrected: 0,
        pre_fec_bit_errors: 0,
        bits: 0,
        residual_symbol_errors: 0,
    };
    let mut out = TrialPlan::new().trials(codewords).seed(seed).fold(
        exec,
        || RsChannelScratch {
            decode: DecodeScratch::new(),
            data: Vec::new(),
            word: Vec::new(),
        },
        zero,
        |ctx, st, acc| {
            let mut data_rng = ctx.stream("rs-data");
            let mut inj = BitErrorInjector::new(ber, ctx.stream("rs-noise"));
            st.data.clear();
            st.data
                .extend((0..rs.k()).map(|_| (data_rng.next_u64() as u16) & mask));
            rs.try_encode_into(&st.data, &mut st.word)
                .expect("simulated data block has the code's exact length");
            acc.codewords += 1;
            acc.pre_fec_bit_errors += inj.corrupt_symbols(&mut st.word, m);
            acc.bits += rs.n() as u64 * m as u64;
            let outcome = rs
                .decode_scratch(&mut st.word, &mut st.decode)
                .expect("simulated codeword has the code's exact length");
            match outcome {
                DecodeOutcome::Clean | DecodeOutcome::Corrected(_) => {
                    if st.word[..rs.k()] == st.data[..] {
                        acc.decoded += 1;
                    } else {
                        // Beyond-capacity miscorrection to a different valid
                        // codeword — inherent to bounded-distance decoding.
                        acc.miscorrected += 1;
                        acc.residual_symbol_errors += st.word[..rs.k()]
                            .iter()
                            .zip(&st.data)
                            .filter(|(a, b)| a != b)
                            .count() as u64;
                    }
                }
                DecodeOutcome::Failure => {
                    acc.failures += 1;
                    acc.residual_symbol_errors += st.word[..rs.k()]
                        .iter()
                        .zip(&st.data)
                        .filter(|(a, b)| a != b)
                        .count() as u64;
                }
            }
        },
        |total, part| {
            total.codewords += part.codewords;
            total.decoded += part.decoded;
            total.failures += part.failures;
            total.miscorrected += part.miscorrected;
            total.pre_fec_bit_errors += part.pre_fec_bit_errors;
            total.bits += part.bits;
            total.residual_symbol_errors += part.residual_symbol_errors;
        },
    );
    debug_assert_eq!(out.codewords, codewords);
    out.codewords = codewords;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_fec::analysis::rs_performance;
    use mosaic_phy::noise::NoiseBudget;
    use mosaic_phy::photodiode::Photodiode;
    use mosaic_units::Frequency;

    fn mosaic_rx() -> OokReceiver {
        OokReceiver {
            pd: Photodiode::silicon_blue(),
            noise: NoiseBudget {
                thermal_a: 3.0e-12 * (1.4e9f64).sqrt(),
                bandwidth: Frequency::from_ghz(1.4),
                rin_db_per_hz: None,
            },
            extinction_ratio: 6.0,
        }
    }

    #[test]
    fn monte_carlo_matches_analytic_ber() {
        // Pick a power where BER ≈ 1e-3 so 2M bits give tight statistics.
        let rx = mosaic_rx();
        let p = rx.sensitivity(1e-3).unwrap();
        let mut rng = DetRng::new(2024);
        let m = simulate_ook_ber(&rx, p, 2_000_000, &mut rng);
        let analytic = rx.ber_at(p);
        assert!(
            m.ci95.0 <= analytic && analytic <= m.ci95.1,
            "analytic {analytic} outside CI {:?} (measured {})",
            m.ci95,
            m.ber
        );
    }

    #[test]
    fn wilson_interval_sane() {
        let (lo, hi) = wilson_ci(0, 1000);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01);
        let (lo, hi) = wilson_ci(500, 1000);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.07);
    }

    #[test]
    fn zero_trials_is_defined_not_a_panic() {
        assert_eq!(wilson_ci(0, 0), (0.0, 1.0));
        let m = BerMeasurement::from_counts(0, 0);
        assert_eq!(m.ber, 0.0);
        assert_eq!(m.ci95, (0.0, 1.0));
        assert_eq!(m.bits, 0);
        assert_eq!(m.errors, 0);
    }

    proptest::proptest! {
        #[test]
        fn sliced_slicer_matches_scalar_reference(
            seed in 0u64..500,
            bits in 0u64..2000,
            snr in 1.0f64..8.0,
        ) {
            // The bit-sliced slicer must reproduce the scalar loop
            // exactly: same error count AND same final RNG state (so
            // downstream draws are unaffected). `snr` spaces the rails in
            // units of the noise sigma, sweeping error rates from ~0.5 to
            // ~1e-4.
            let point = SlicerPoint {
                i1: 10e-6 + snr * 1e-6,
                i0: 10e-6 - snr * 1e-6,
                s1: 1.1e-6,
                s0: 0.9e-6,
                threshold: 10e-6,
            };
            let mut rng_sliced = DetRng::new(seed);
            let mut rng_ref = DetRng::new(seed);
            let sliced = point.count_errors_sliced(bits, &mut rng_sliced);
            let scalar = point.count_errors_scalar(bits, &mut rng_ref);
            proptest::prop_assert_eq!(sliced, scalar);
            proptest::prop_assert_eq!(rng_sliced.next_u64(), rng_ref.next_u64());
        }
    }

    #[test]
    fn rs_channel_failure_rate_matches_analytic() {
        // A weak code at a harsh BER so failures are common enough to
        // measure in few words: RS(31,23) t=4 at BER 2e-2.
        let rs = ReedSolomon::new(8, 31, 23);
        let ber = 2e-2;
        let run = run_rs_channel(&rs, ber, 2000, 7);
        let analytic = rs_performance(rs.n(), rs.t(), rs.symbol_bits(), ber);
        let measured = run.failure_prob();
        let expected = analytic.codeword_failure_prob;
        assert!(
            (measured / expected - 1.0).abs() < 0.25,
            "measured {measured} vs analytic {expected}"
        );
        // Pre-FEC BER should be close to target.
        assert!((run.pre_ber() / ber - 1.0).abs() < 0.05);
    }

    #[test]
    fn clean_channel_never_fails() {
        let rs = ReedSolomon::new(8, 31, 23);
        let run = run_rs_channel(&rs, 0.0, 100, 1);
        assert_eq!(run.failures, 0);
        assert_eq!(run.decoded, 100);
    }

    #[test]
    fn deterministic_across_runs() {
        let rs = ReedSolomon::new(8, 31, 23);
        let a = run_rs_channel(&rs, 1e-2, 300, 5);
        let b = run_rs_channel(&rs, 1e-2, 300, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn ook_par_is_thread_count_invariant() {
        let rx = mosaic_rx();
        let p = rx.sensitivity(1e-3).unwrap();
        // Non-multiple of the chunk size to exercise the short tail chunk.
        let bits = 3 * OOK_CHUNK_BITS + 1234;
        let seq = simulate_ook_ber_par(&Exec::with_threads(1), &rx, p, bits, 99);
        for threads in [2, 4, 16] {
            let par = simulate_ook_ber_par(&Exec::with_threads(threads), &rx, p, bits, 99);
            assert_eq!(seq, par, "threads={threads}");
        }
        // And the statistics still agree with the analytic model.
        let analytic = rx.ber_at(p);
        assert!(
            seq.ci95.0 <= analytic && analytic <= seq.ci95.1,
            "analytic {analytic} outside CI {:?}",
            seq.ci95
        );
    }

    #[test]
    fn rs_channel_is_thread_count_invariant() {
        let rs = ReedSolomon::new(8, 31, 23);
        let seq = run_rs_channel_with(&Exec::with_threads(1), &rs, 2e-2, 401, 13);
        for threads in [2, 8] {
            let par = run_rs_channel_with(&Exec::with_threads(threads), &rs, 2e-2, 401, 13);
            assert_eq!(seq, par, "threads={threads}");
        }
    }
}
