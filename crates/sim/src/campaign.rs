//! Fault-campaign execution: drive a [`FaultCampaign`] against a link
//! with (or without) the graceful-degradation controller and measure
//! delivered throughput and availability.
//!
//! This is the quantitative engine behind experiment F17 and the
//! evidence for claims C3/C6: the same generated fault schedule is
//! replayed twice — once against a static lane map (faulted channels
//! stay faulted) and once with [`DegradeController`] sparing, remapping,
//! and shedding lanes — and the two delivered-throughput curves are
//! compared.
//!
//! **Determinism.** The runner itself draws no random numbers: channel
//! error counts are expectation values (`ber · bits`) and frame delivery
//! is the post-FEC success probability, both pure functions of the
//! campaign schedule. All randomness lives in
//! [`FaultCampaign::generate`], whose per-channel `DetRng` substreams
//! are scheduling-independent — so a campaign run is bit-identical at
//! any thread count by construction.
//!
//! **Bounded by logical epochs.** A run executes exactly
//! `config.epochs` controller epochs — a *logical* budget, not a wall
//! clock — so campaign trials terminate deterministically and the
//! module stays clean under lint rule R2 (no `Instant`/`SystemTime`
//! outside telemetry).

use crate::faults::{CampaignConfig, FaultCampaign};
use crate::telemetry;
use mosaic_link::degrade::{state_tag, DegradeConfig, DegradeController};

/// Parameters of one campaign replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignRunConfig {
    /// Logical lanes the link is provisioned to carry.
    pub logical_lanes: usize,
    /// Physical channels (surplus over `logical_lanes` is the spare pool).
    pub physical_channels: usize,
    /// Bits each physical channel carries per epoch (feeds the BER
    /// monitors and the delivery model).
    pub bits_per_epoch: u64,
    /// Frame size in bits for the delivery model.
    pub frame_bits: u64,
    /// Healthy-channel baseline BER.
    pub base_ber: f64,
    /// Post-FEC correctable BER: lanes at or below this deliver
    /// perfectly; excess BER decays frame success exponentially.
    pub correctable_ber: f64,
    /// Fault-arrival process parameters.
    pub campaign: CampaignConfig,
    /// Controller policy (ignored when `controller` is false).
    pub degrade: DegradeConfig,
    /// Run with the graceful-degradation controller?
    pub controller: bool,
}

impl Default for CampaignRunConfig {
    fn default() -> Self {
        CampaignRunConfig {
            logical_lanes: 12,
            physical_channels: 16,
            bits_per_epoch: 8192,
            frame_bits: 4096,
            base_ber: 1e-6,
            correctable_ber: 1e-3,
            campaign: CampaignConfig::default(),
            degrade: DegradeConfig::default(),
            controller: true,
        }
    }
}

/// Aggregate outcome of one campaign replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignOutcome {
    /// Epochs executed (the logical budget).
    pub epochs: usize,
    /// Mean delivered fraction of the provisioned aggregate rate.
    pub delivered_fraction: f64,
    /// Fraction of epochs delivering ≥ 90 % of provisioned rate.
    pub availability: f64,
    /// Fault events the campaign injected.
    pub fault_events: usize,
    /// Spares the controller activated (0 without controller).
    pub spares_activated: usize,
    /// Logical lanes shed after spare exhaustion (0 without controller).
    pub lost_lanes: usize,
    /// Controller transitions fired (0 without controller).
    pub transitions: usize,
    /// Rate fraction still provisioned when the run ended.
    pub final_rate_fraction: f64,
}

/// Monitor-visible BER of a channel under a fault effect: deaths read as
/// half-random slicing, skew reads as gross misalignment errors.
fn monitor_ber(base: f64, effect: &crate::faults::ChannelEffect) -> f64 {
    if effect.dead {
        return 0.5;
    }
    let skew_penalty = if effect.skew_epochs > 0 { 0.25 } else { 0.0 };
    (base + effect.extra_ber + skew_penalty).min(0.5)
}

/// Post-FEC frame-delivery probability for a lane at `ber`: perfect at
/// or below the correctable floor, exponential decay above it, zero
/// while dead or realigning after a skew jump.
fn delivery(ber: f64, effect: &crate::faults::ChannelEffect, cfg: &CampaignRunConfig) -> f64 {
    if effect.dead || effect.skew_epochs > 0 {
        return 0.0;
    }
    let excess = (ber - cfg.correctable_ber).max(0.0);
    (-excess * cfg.frame_bits as f64).exp()
}

/// Replay the campaign generated from `(config.campaign, seed)` against
/// the link and return the aggregate outcome.
///
/// Telemetry: bumps `campaign.fault_events`, per-destination-state
/// `campaign.transition.{state}` counters, `campaign.spares_activated`,
/// and `campaign.lost_lanes` — all deterministic values, safe for the
/// value-checked manifest diff.
pub fn run_campaign(
    config: &CampaignRunConfig,
    seed: u64,
) -> mosaic_units::Result<CampaignOutcome> {
    let campaign = FaultCampaign::generate(config.campaign, seed);
    let epochs = config.campaign.epochs;
    let logical = config.logical_lanes;
    let mut controller = if config.controller {
        Some(DegradeController::try_new(
            logical,
            config.physical_channels,
            config.degrade,
        )?)
    } else {
        None
    };
    // Static assignment for the no-controller baseline.
    let static_assignment: Vec<usize> = (0..logical).collect();

    let mut delivered_sum = 0.0;
    let mut available_epochs = 0usize;
    for epoch in 0..epochs {
        // Feed every physical channel's monitor and fault reports.
        if let Some(ctl) = controller.as_mut() {
            for ch in 0..config.physical_channels {
                let effect = campaign.effect_at(ch, epoch);
                let ber = monitor_ber(config.base_ber, &effect);
                let errors = (ber * config.bits_per_epoch as f64) as u64;
                ctl.record(ch, config.bits_per_epoch, errors);
                if effect.dead {
                    ctl.mark_dead(ch);
                }
            }
            ctl.step();
        }
        // Deliverability of the lanes actually carried this epoch.
        // A lane whose channel is dead (and could not be remapped)
        // contributes zero delivery on its own; no separate carried-lane
        // bookkeeping needed.
        let assignment: &[usize] = match controller.as_ref() {
            Some(ctl) => ctl.lane_map().assignment(),
            None => &static_assignment,
        };
        let mut epoch_delivered = 0.0;
        for &ch in assignment.iter() {
            let effect = campaign.effect_at(ch, epoch);
            let ber = monitor_ber(config.base_ber, &effect);
            epoch_delivered += delivery(ber, &effect, config);
        }
        let fraction = if logical == 0 {
            0.0
        } else {
            epoch_delivered / logical as f64
        };
        delivered_sum += fraction;
        if fraction >= 0.9 {
            available_epochs += 1;
        }
    }

    telemetry::counter_add("campaign.fault_events", campaign.events().len() as u64);
    let (spares_activated, lost_lanes, transitions, final_rate_fraction) = match controller.as_mut()
    {
        Some(ctl) => {
            let drained = ctl.drain_transitions();
            for t in &drained {
                telemetry::counter_add(&format!("campaign.transition.{}", state_tag(t.to)), 1);
            }
            if ctl.spares_activated() > 0 {
                telemetry::counter_add("campaign.spares_activated", ctl.spares_activated() as u64);
            }
            if ctl.lost_lanes() > 0 {
                telemetry::counter_add("campaign.lost_lanes", ctl.lost_lanes() as u64);
            }
            (
                ctl.spares_activated(),
                ctl.lost_lanes(),
                drained.len(),
                ctl.rate_fraction(),
            )
        }
        None => (0, 0, 0, 1.0),
    };

    Ok(CampaignOutcome {
        epochs,
        delivered_fraction: if epochs == 0 {
            0.0
        } else {
            delivered_sum / epochs as f64
        },
        availability: if epochs == 0 {
            0.0
        } else {
            available_epochs as f64 / epochs as f64
        },
        fault_events: campaign.events().len(),
        spares_activated,
        lost_lanes,
        transitions,
        final_rate_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64, controller: bool) -> CampaignRunConfig {
        CampaignRunConfig {
            campaign: CampaignConfig {
                channels: 16,
                epochs: 400,
                faults_per_kilo_epoch: rate,
                max_duration: 32,
                permanent_fraction: 0.3,
            },
            controller,
            ..CampaignRunConfig::default()
        }
    }

    #[test]
    fn fault_free_campaign_delivers_everything() {
        let out = run_campaign(&cfg(0.0, true), 1).unwrap();
        assert!((out.delivered_fraction - 1.0).abs() < 1e-12, "{out:?}");
        assert_eq!(out.availability, 1.0);
        assert_eq!(out.fault_events, 0);
        assert_eq!(out.transitions, 0);
    }

    #[test]
    fn controller_beats_static_map_under_faults() {
        // Permanent-heavy fault mix: this is the regime sparing exists
        // for (dead channels stay dead under a static map).
        let mk = |controller| CampaignRunConfig {
            campaign: CampaignConfig {
                channels: 16,
                epochs: 400,
                faults_per_kilo_epoch: 3.0,
                max_duration: 32,
                permanent_fraction: 0.7,
            },
            controller,
            ..CampaignRunConfig::default()
        };
        let seed = 11;
        let with = run_campaign(&mk(true), seed).unwrap();
        let without = run_campaign(&mk(false), seed).unwrap();
        assert_eq!(with.fault_events, without.fault_events);
        assert!(with.fault_events > 0);
        assert!(
            with.delivered_fraction > without.delivered_fraction,
            "controller should win under permanent faults: {with:?} vs {without:?}"
        );
        assert!(with.spares_activated > 0, "{with:?}");
    }

    #[test]
    fn outcome_is_reproducible() {
        let a = run_campaign(&cfg(3.0, true), 5).unwrap();
        let b = run_campaign(&cfg(3.0, true), 5).unwrap();
        assert_eq!(a, b);
        let c = run_campaign(&cfg(3.0, true), 6).unwrap();
        assert_ne!(a, c);
    }
}
