//! End-to-end frame-level link simulation.
//!
//! Drives the *real* gearbox (striping, scrambling, CRC framing, sparing)
//! over channels with per-channel BER and a fault script. Every delivered
//! frame is validated byte-for-byte against what was sent — the simulator
//! can prove "zero corrupted frames delivered", not merely estimate it.
//!
//! Error telemetry: the receive-side health monitors are fed the injected
//! error counts per channel, modeling the per-channel PRBS/FEC counters
//! the Mosaic hardware exposes. When a monitor crosses the degrade
//! threshold (or a kill fault lands), both gearboxes remap to a spare at
//! the next epoch boundary — in-flight data is lost, which is visible in
//! the report as lost frames during the failover epoch.

use crate::faults::{Fault, FaultSchedule};
use crate::inject::BitErrorInjector;
use crate::rng::DetRng;
use crate::sweep::Exec;
use mosaic_link::gearbox::Gearbox;
use mosaic_link::lanes::{FailureKind, LaneHealth};
use mosaic_link::striping::LaneWord;

/// Configuration of a link simulation run.
#[derive(Debug, Clone)]
pub struct LinkSimConfig {
    /// Active logical lanes.
    pub logical_lanes: usize,
    /// Physical channels (≥ logical; surplus are spares).
    pub physical_channels: usize,
    /// Alignment-marker period in words per lane.
    pub am_period: usize,
    /// Per-physical-channel baseline BER (post-optics, pre-gearbox).
    pub per_channel_ber: Vec<f64>,
    /// Number of transmit/receive epochs.
    pub epochs: usize,
    /// Frames per epoch.
    pub frames_per_epoch: usize,
    /// Payload bytes per frame.
    pub frame_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Fault script.
    pub faults: FaultSchedule,
    /// BER above which a channel is retired (None = no monitoring).
    pub degrade_threshold: Option<f64>,
    /// Health-monitor window size in bits (a full window of evidence is
    /// required before a channel can be declared degraded).
    pub monitor_window_bits: u64,
}

impl LinkSimConfig {
    /// A clean 8-over-10 channel link used as a test/example baseline.
    pub fn small_clean() -> Self {
        LinkSimConfig {
            logical_lanes: 8,
            physical_channels: 10,
            am_period: 16,
            per_channel_ber: vec![0.0; 10],
            epochs: 4,
            frames_per_epoch: 16,
            frame_size: 256,
            seed: 1,
            faults: FaultSchedule::new(),
            degrade_threshold: None,
            monitor_window_bits: 10_000,
        }
    }
}

/// Aggregated results of a link simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSimReport {
    /// Frames transmitted.
    pub frames_sent: u64,
    /// Frames delivered intact (CRC-verified and payload-matched).
    pub frames_delivered: u64,
    /// Frames whose corruption was *detected* (CRC fail / never arrived).
    pub frames_lost: u64,
    /// Frames delivered with wrong content (must always be zero — CRC-32
    /// makes silent corruption vanishingly unlikely and any occurrence is
    /// a bug signal).
    pub frames_silently_corrupted: u64,
    /// Epochs whose deskew failed outright.
    pub deskew_failed_epochs: u64,
    /// Total bits pushed through the channels.
    pub bits_transmitted: u64,
    /// Total bit errors injected.
    pub bit_errors_injected: u64,
    /// Spare remaps performed.
    pub remaps: u64,
    /// Channels retired by the health monitor.
    pub retired_by_monitor: u64,
    /// Payload bytes delivered.
    pub payload_bytes_delivered: u64,
}

impl LinkSimReport {
    /// Fraction of frames delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.frames_sent == 0 {
            return 1.0;
        }
        self.frames_delivered as f64 / self.frames_sent as f64
    }

    /// Measured channel BER across the run.
    pub fn measured_ber(&self) -> f64 {
        if self.bits_transmitted == 0 {
            return 0.0;
        }
        self.bit_errors_injected as f64 / self.bits_transmitted as f64
    }
}

/// Per-physical-channel simulation state: the channel's noise process,
/// health monitor, and fault status. Channels are physically independent,
/// which is what lets the medium step fan out across them — each state
/// owns its own RNG stream (`chan-{c}`), so corrupting channels in
/// parallel draws exactly the numbers the sequential loop would.
struct ChannelState {
    injector: BitErrorInjector,
    monitor: LaneHealth,
    dead: bool,
    burst_left: usize,
    /// Bits pushed through this channel in the current epoch.
    epoch_bits: u64,
    /// Errors injected on this channel in the current epoch.
    epoch_errors: u64,
}

/// Run the simulation on the ambient (`MOSAIC_THREADS`) execution
/// context; see [`simulate_link_with`].
pub fn simulate_link(cfg: &LinkSimConfig) -> LinkSimReport {
    simulate_link_with(&Exec::from_env(), cfg)
}

/// Epochs the adaptive fidelity tier keeps after the last scripted
/// fault, so failover and recovery stay observable in a trimmed run.
pub const ADAPTIVE_POST_FAULT_EPOCHS: usize = 2;

/// [`simulate_link_with`] at controller-selected fidelity.
///
/// Full mode runs the configured epoch count untouched. Adaptive mode
/// trims *trailing* epochs only: the fault script pins the timeline, so
/// the run always covers every scripted fault plus
/// [`ADAPTIVE_POST_FAULT_EPOCHS`] recovery epochs, and beyond that span
/// epochs exist purely to accumulate bit-error statistics — the
/// controller's events-targeted budget decides how many of those are
/// worth keeping. The trimmed count is a pure function of the config
/// (DESIGN §12): thread count and environment play no part, so adaptive
/// runs stay bit-identical at every `MOSAIC_THREADS`.
pub fn simulate_link_at_fidelity(
    ctrl: &crate::fidelity::FidelityController,
    exec: &Exec,
    cfg: &LinkSimConfig,
) -> LinkSimReport {
    let epochs = adapted_epochs(ctrl, cfg);
    if epochs == cfg.epochs {
        return simulate_link_with(exec, cfg);
    }
    let mut trimmed = cfg.clone();
    trimmed.epochs = epochs;
    simulate_link_with(exec, &trimmed)
}

/// The epoch budget the controller keeps for a config (≤ `cfg.epochs`,
/// ≥ 1, and never inside the fault script's span).
fn adapted_epochs(ctrl: &crate::fidelity::FidelityController, cfg: &LinkSimConfig) -> usize {
    use crate::fidelity::{Assessment, Exactness, Tier, TierDecision};
    // Expected injected bit errors per epoch, estimated from the payload
    // volume: each epoch pushes ~frames × frame_size × 8 payload bits
    // across the logical lanes, corrupted at each channel's BER. A
    // budget estimate, not an exact accounting — striping overhead only
    // shifts the answer by a constant factor.
    let payload_bits = (cfg.frames_per_epoch * cfg.frame_size * 8) as f64;
    let per_channel_bits = payload_bits / cfg.logical_lanes.max(1) as f64;
    let lambda: f64 = cfg
        .per_channel_ber
        .iter()
        .map(|b| b * per_channel_bits)
        .sum();
    // Per-epoch probability of at least one injected error.
    let p_epoch = -(-lambda).exp_m1();
    let decision = ctrl.classify(&Assessment {
        analytic_p: p_epoch,
        threshold: p_epoch,
        full_trials: cfg.epochs as u64,
        exactness: Exactness::Model,
        tail_available: false,
    });
    let span = cfg
        .faults
        .last_epoch()
        .map(|e| e + 1 + ADAPTIVE_POST_FAULT_EPOCHS)
        .unwrap_or(1);
    let stat_epochs = match decision.tier {
        // No closed form exists for delivery under faults; the analytic
        // tier here just means "statistically unresolvable either way",
        // so only the structural span runs.
        Tier::Analytic | Tier::TailMc => 1,
        Tier::FullMc => decision.trials as usize,
    };
    let epochs = span.max(stat_epochs).min(cfg.epochs).max(1);
    ctrl.note_decision(
        cfg.epochs as u64,
        &TierDecision {
            tier: decision.tier,
            trials: epochs as u64,
        },
    );
    epochs
}

/// Run the simulation on an explicit execution context.
///
/// The per-epoch medium step (error injection) runs one task per
/// physical channel; everything a task touches is that channel's own
/// [`ChannelState`], and the epoch counters are folded into the report
/// in channel order afterwards — so the report is bit-identical at
/// every thread count.
pub fn simulate_link_with(exec: &Exec, cfg: &LinkSimConfig) -> LinkSimReport {
    assert_eq!(
        cfg.per_channel_ber.len(),
        cfg.physical_channels,
        "need one BER per physical channel"
    );
    let mut tx = Gearbox::new(cfg.logical_lanes, cfg.physical_channels, cfg.am_period);
    let mut rx = Gearbox::new(cfg.logical_lanes, cfg.physical_channels, cfg.am_period);

    let mut states: Vec<ChannelState> = (0..cfg.physical_channels)
        .map(|c| ChannelState {
            injector: BitErrorInjector::new(
                cfg.per_channel_ber[c],
                // lint: allow(R5) reason=per-channel label family chan-{c}; unique by construction over the channel index
                DetRng::substream(cfg.seed, &format!("chan-{c}")),
            ),
            monitor: LaneHealth::new(cfg.monitor_window_bits, 8),
            dead: false,
            burst_left: 0,
            epoch_bits: 0,
            epoch_errors: 0,
        })
        .collect();

    let mut payload_rng = DetRng::substream(cfg.seed, "payload");
    let mut report = LinkSimReport {
        frames_sent: 0,
        frames_delivered: 0,
        frames_lost: 0,
        frames_silently_corrupted: 0,
        deskew_failed_epochs: 0,
        bits_transmitted: 0,
        bit_errors_injected: 0,
        remaps: 0,
        retired_by_monitor: 0,
        payload_bytes_delivered: 0,
    };
    let mut sent_payloads: Vec<Vec<u8>> = Vec::new();

    for epoch in 0..cfg.epochs {
        // 1. Apply scheduled faults at the epoch boundary.
        for fault in cfg.faults.faults_at(epoch) {
            match *fault {
                Fault::Kill { channel } => {
                    states[channel].dead = true;
                }
                Fault::Burst {
                    channel,
                    ber,
                    epochs,
                } => {
                    states[channel].injector.set_ber(ber);
                    states[channel].burst_left = epochs;
                }
            }
        }

        // 2. Generate and transmit this epoch's frames.
        let payloads: Vec<Vec<u8>> = (0..cfg.frames_per_epoch)
            .map(|_| {
                (0..cfg.frame_size)
                    .map(|_| payload_rng.next_u64() as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let mut channels = tx.transmit(&refs);
        report.frames_sent += payloads.len() as u64;
        // `refs` borrowed `payloads` only through `transmit`; move the
        // buffers into the archive instead of cloning every frame.
        drop(refs);
        sent_payloads.extend(payloads);

        // 3. The medium: per-channel error injection and dead channels —
        //    one parallel task per channel, each confined to its own
        //    stream and state.
        {
            let mut medium: Vec<(&mut Vec<LaneWord>, &mut ChannelState)> =
                channels.iter_mut().zip(states.iter_mut()).collect();
            exec.par_map_mut(&mut medium, |_, (stream, st)| {
                if st.dead {
                    // A dark channel delivers junk words and no markers.
                    let junk_rng_word = 0u64;
                    for w in stream.iter_mut() {
                        *w = LaneWord::Data(junk_rng_word);
                    }
                    st.epoch_bits = 0;
                    st.epoch_errors = 0;
                    return;
                }
                let before = st.injector.errors;
                let bits_before = st.injector.bits;
                st.injector.corrupt_lane(stream);
                st.epoch_errors = st.injector.errors - before;
                st.epoch_bits = st.injector.bits - bits_before;
                st.monitor.record(st.epoch_bits, st.epoch_errors);
            });
        }
        // Fold epoch counters into the report in channel order.
        for st in &states {
            report.bit_errors_injected += st.epoch_errors;
            report.bits_transmitted += st.epoch_bits;
        }

        // 4. Receive.
        let r = rx
            .receive(&channels)
            .expect("channel stream count matches the gearbox by construction");
        if r.deskew_failed {
            report.deskew_failed_epochs += 1;
        }
        for f in &r.frames {
            match sent_payloads.get(f.seq as usize) {
                Some(sent) if *sent == f.payload => {
                    report.frames_delivered += 1;
                    report.payload_bytes_delivered += f.payload.len() as u64;
                }
                _ => report.frames_silently_corrupted += 1,
            }
        }

        // 5. Control plane: retire channels that died or degraded, on both
        //    ends (out-of-band coordination, effective next epoch).
        for (c, st) in states.iter_mut().enumerate() {
            let assigned = tx.lane_map().assignment().contains(&c);
            if !assigned {
                continue;
            }
            let monitor_trip = match cfg.degrade_threshold {
                Some(th) => st.monitor.degraded(th),
                None => false,
            };
            if st.dead || monitor_trip {
                let kind = if st.dead {
                    FailureKind::Dead
                } else {
                    FailureKind::Degraded
                };
                let a = tx.fail_channel(c, kind);
                let b = rx.fail_channel(c, kind);
                debug_assert_eq!(a, b);
                if let Ok(Some(_)) = a {
                    report.remaps += 1;
                    if !st.dead {
                        report.retired_by_monitor += 1;
                        // The monitor-retired channel keeps its physics but
                        // is out of service; reset its monitor so a later
                        // re-add (not modeled) would start fresh.
                        st.monitor = LaneHealth::new(cfg.monitor_window_bits, 8);
                    }
                }
            }
        }

        // 6. Burst expiry.
        for (c, st) in states.iter_mut().enumerate() {
            if st.burst_left > 0 {
                st.burst_left -= 1;
                if st.burst_left == 0 {
                    st.injector.set_ber(cfg.per_channel_ber[c]);
                }
            }
        }
    }

    report.frames_lost =
        report.frames_sent - report.frames_delivered - report.frames_silently_corrupted;
    // Telemetry rollup: commutative counter adds only, so totals are
    // thread-count invariant even when whole simulations run inside a
    // parallel sweep.
    crate::telemetry::counter_add("link_sim.runs", 1);
    crate::telemetry::counter_add("link_sim.frames_sent", report.frames_sent);
    crate::telemetry::counter_add("link_sim.frames_delivered", report.frames_delivered);
    crate::telemetry::counter_add("link_sim.frames_lost", report.frames_lost);
    crate::telemetry::counter_add("link_sim.deskew_failed_epochs", report.deskew_failed_epochs);
    crate::telemetry::counter_add("link_sim.remaps", report.remaps);
    crate::telemetry::counter_add("link_sim.bit_errors_injected", report.bit_errors_injected);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_delivers_all_frames() {
        let r = simulate_link(&LinkSimConfig::small_clean());
        assert_eq!(r.frames_sent, 64);
        assert_eq!(r.frames_delivered, 64);
        assert_eq!(r.frames_silently_corrupted, 0);
        assert_eq!(r.delivery_ratio(), 1.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut cfg = LinkSimConfig::small_clean();
        cfg.per_channel_ber = vec![1e-4; 10];
        let a = simulate_link(&cfg);
        let b = simulate_link(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let mut cfg = LinkSimConfig::small_clean();
        cfg.per_channel_ber = vec![1e-4; 10];
        cfg.epochs = 6;
        cfg.degrade_threshold = Some(5e-4);
        cfg.faults = FaultSchedule::new()
            .at(
                2,
                Fault::Burst {
                    channel: 1,
                    ber: 2e-3,
                    epochs: 2,
                },
            )
            .at(3, Fault::Kill { channel: 7 });
        let seq = simulate_link_with(&Exec::with_threads(1), &cfg);
        for threads in [2, 4, 10] {
            let par = simulate_link_with(&Exec::with_threads(threads), &cfg);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn noisy_link_loses_frames_but_never_lies() {
        let mut cfg = LinkSimConfig::small_clean();
        cfg.per_channel_ber = vec![1e-4; 10];
        cfg.epochs = 6;
        let r = simulate_link(&cfg);
        assert!(r.frames_delivered < r.frames_sent);
        assert_eq!(
            r.frames_silently_corrupted, 0,
            "CRC must catch all corruption"
        );
        assert!(r.measured_ber() > 0.5e-4 && r.measured_ber() < 2e-4);
    }

    #[test]
    fn kill_with_spares_recovers_after_one_epoch() {
        let mut cfg = LinkSimConfig::small_clean();
        cfg.epochs = 6;
        cfg.faults = FaultSchedule::new().at(2, Fault::Kill { channel: 3 });
        let r = simulate_link(&cfg);
        // Epoch 2 deskews fail (channel dark mid-epoch); epochs 3+ run on
        // the spare. The self-synchronizing descrambler missed an epoch of
        // state, so it may additionally corrupt the first frame after
        // failover while it resyncs — at most one extra loss.
        assert_eq!(r.deskew_failed_epochs, 1);
        assert_eq!(r.remaps, 1);
        let expect = (cfg.epochs as u64 - 1) * 16;
        assert!(
            r.frames_delivered >= expect - 1 && r.frames_delivered <= expect,
            "delivered {}",
            r.frames_delivered
        );
        assert_eq!(r.frames_silently_corrupted, 0);
    }

    #[test]
    fn burst_elevates_then_recovers() {
        let mut cfg = LinkSimConfig::small_clean();
        cfg.epochs = 8;
        cfg.faults = FaultSchedule::new().at(
            1,
            Fault::Burst {
                channel: 0,
                ber: 5e-3,
                epochs: 2,
            },
        );
        let r = simulate_link(&cfg);
        assert!(r.bit_errors_injected > 0);
        // After the burst the link must go back to perfect delivery: the
        // last epochs' frames all arrive.
        assert!(r.frames_delivered >= r.frames_sent - 2 * 16);
    }

    #[test]
    fn monitor_retires_persistently_bad_channel() {
        let mut cfg = LinkSimConfig::small_clean();
        cfg.epochs = 10;
        cfg.frames_per_epoch = 8;
        cfg.frame_size = 512;
        cfg.per_channel_ber[2] = 1e-3; // persistently terrible channel
        cfg.degrade_threshold = Some(1e-4);
        let r = simulate_link(&cfg);
        assert_eq!(r.retired_by_monitor, 1);
        assert_eq!(r.remaps, 1);
        // Once retired, later epochs are clean.
        assert!(r.delivery_ratio() > 0.5);
    }

    #[test]
    fn kill_without_spares_takes_link_down() {
        let mut cfg = LinkSimConfig::small_clean();
        cfg.physical_channels = 8; // no spares
        cfg.per_channel_ber = vec![0.0; 8];
        cfg.epochs = 5;
        cfg.faults = FaultSchedule::new().at(1, Fault::Kill { channel: 0 });
        let r = simulate_link(&cfg);
        // Epochs 1.. all fail deskew: only epoch 0 delivers.
        assert_eq!(r.frames_delivered, 16);
        assert_eq!(r.deskew_failed_epochs, 4);
        assert_eq!(r.remaps, 0);
    }

    #[test]
    fn full_fidelity_link_sim_is_untouched() {
        use crate::fidelity::{FidelityController, FidelityMode};
        let mut cfg = LinkSimConfig::small_clean();
        cfg.per_channel_ber = vec![1e-4; 10];
        let ctrl = FidelityController::new(FidelityMode::Full);
        let direct = simulate_link_with(&Exec::with_threads(1), &cfg);
        let via = simulate_link_at_fidelity(&ctrl, &Exec::with_threads(1), &cfg);
        assert_eq!(direct, via);
    }

    #[test]
    fn adaptive_link_sim_keeps_the_fault_span_and_is_thread_invariant() {
        use crate::fidelity::{FidelityController, FidelityMode};
        let mut cfg = LinkSimConfig::small_clean();
        cfg.epochs = 40;
        cfg.per_channel_ber = vec![1e-9; 10]; // statistically unresolvable
        cfg.faults = FaultSchedule::new().at(5, Fault::Kill { channel: 2 });
        let ctrl = FidelityController::new(FidelityMode::Adaptive);
        assert_eq!(
            adapted_epochs(&ctrl, &cfg),
            5 + 1 + ADAPTIVE_POST_FAULT_EPOCHS,
            "trim to the scripted span plus the recovery window"
        );
        let r1 = simulate_link_at_fidelity(&ctrl, &Exec::with_threads(1), &cfg);
        let r8 = simulate_link_at_fidelity(&ctrl, &Exec::with_threads(8), &cfg);
        assert_eq!(r1, r8);
        assert!(r1.frames_sent < simulate_link_with(&Exec::with_threads(1), &cfg).frames_sent);
    }

    #[test]
    fn adaptive_link_sim_spends_epochs_on_resolvable_noise() {
        use crate::fidelity::{FidelityController, FidelityMode};
        let mut cfg = LinkSimConfig::small_clean();
        cfg.epochs = 40;
        // ~33 expected errors/epoch: plenty of events, margin zero —
        // the controller keeps the full epoch budget.
        cfg.per_channel_ber = vec![1e-3; 10];
        let ctrl = FidelityController::new(FidelityMode::Adaptive);
        assert_eq!(adapted_epochs(&ctrl, &cfg), 40);
    }
}
