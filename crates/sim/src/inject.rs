//! Bit-exact error injection at arbitrary BER.
//!
//! A naive per-bit Bernoulli loop makes low-BER simulation O(bits); the
//! geometric-skip sampler jumps straight to the next error position, so a
//! 1e-9 channel costs the same per *error* as a 1e-2 channel. The injected
//! process is exactly i.i.d. Bernoulli per bit.

use crate::rng::DetRng;
use mosaic_link::striping::LaneWord;

/// A streaming bit-error injector for one channel.
#[derive(Debug, Clone)]
pub struct BitErrorInjector {
    ber: f64,
    rng: DetRng,
    /// Bits remaining until the next error.
    gap: u64,
    /// Total bits processed.
    pub bits: u64,
    /// Total errors injected.
    pub errors: u64,
}

impl BitErrorInjector {
    /// New injector at bit-error rate `ber` with its own RNG stream.
    pub fn new(ber: f64, mut rng: DetRng) -> Self {
        assert!((0.0..=1.0).contains(&ber), "BER out of range: {ber}");
        let gap = rng.geometric(ber);
        BitErrorInjector {
            ber,
            rng,
            gap,
            bits: 0,
            errors: 0,
        }
    }

    /// Change the BER mid-stream (e.g. a transient SNR dip); resamples the
    /// gap under the new rate.
    pub fn set_ber(&mut self, ber: f64) {
        assert!((0.0..=1.0).contains(&ber), "BER out of range: {ber}");
        self.ber = ber;
        self.gap = self.rng.geometric(ber);
    }

    /// Current BER.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// Corrupt one 64-bit word in place; returns the number of flips.
    pub fn corrupt_word(&mut self, word: &mut u64) -> u32 {
        let mut flips = 0u32;
        let mut pos = 0u64;
        while pos + self.gap < 64 {
            pos += self.gap;
            *word ^= 1u64 << pos;
            flips += 1;
            pos += 1;
            self.gap = self.rng.geometric(self.ber);
        }
        self.gap -= 64 - pos;
        self.bits += 64;
        self.errors += flips as u64;
        flips
    }

    /// Corrupt a whole slice of 64-bit words in place, treating it as one
    /// contiguous bit stream; returns the number of flips.
    ///
    /// Dispatches to the batched kernel by default or the retained
    /// word-at-a-time loop under `--features scalar-kernels`; draws,
    /// flips, and carried gap are identical either way (pinned by the
    /// `batched_words_path_equals_word_loop` proptest).
    #[inline]
    pub fn corrupt_words(&mut self, words: &mut [u64]) -> u64 {
        #[cfg(feature = "scalar-kernels")]
        {
            self.corrupt_words_scalar(words)
        }
        #[cfg(not(feature = "scalar-kernels"))]
        {
            self.corrupt_words_sliced(words)
        }
    }

    /// Batched corruption kernel: one geometric-skip loop across the
    /// whole slice — the per-word boundary bookkeeping (`gap -= 64 − pos`
    /// carried word to word) collapses into a single `pos >> 6` /
    /// `pos & 63` index split per *error*, so low-BER slices cost one
    /// table-free jump per flip regardless of word count.
    #[cfg_attr(all(not(test), feature = "scalar-kernels"), allow(dead_code))]
    pub fn corrupt_words_sliced(&mut self, words: &mut [u64]) -> u64 {
        let n = words.len() as u64 * 64;
        let mut flips = 0u64;
        let mut pos = 0u64;
        while pos + self.gap < n {
            pos += self.gap;
            words[(pos >> 6) as usize] ^= 1u64 << (pos & 63);
            flips += 1;
            pos += 1;
            self.gap = self.rng.geometric(self.ber);
        }
        self.gap -= n - pos;
        self.bits += n;
        self.errors += flips;
        flips
    }

    /// The retained word-at-a-time loop, the differential oracle for
    /// [`BitErrorInjector::corrupt_words_sliced`]. Active as the
    /// `corrupt_words` path under `--features scalar-kernels`.
    #[cfg_attr(not(any(test, feature = "scalar-kernels")), allow(dead_code))]
    pub fn corrupt_words_scalar(&mut self, words: &mut [u64]) -> u64 {
        let mut flips = 0u64;
        for w in words.iter_mut() {
            flips += self.corrupt_word(w) as u64;
        }
        flips
    }

    /// Corrupt a slice of 0/1 bits in place; returns the number of flips.
    pub fn corrupt_bits(&mut self, bits: &mut [u8]) -> u64 {
        let mut flips = 0u64;
        let mut pos = 0u64;
        let n = bits.len() as u64;
        while pos + self.gap < n {
            pos += self.gap;
            bits[pos as usize] ^= 1;
            flips += 1;
            pos += 1;
            self.gap = self.rng.geometric(self.ber);
        }
        self.gap -= n - pos;
        self.bits += n;
        self.errors += flips;
        flips
    }

    /// Corrupt a slice of m-bit symbols in place, treating it as the
    /// serialized bit stream `corrupt_bits` would see (bit `b` of symbol
    /// `s` at stream position `s·m + b`): identical RNG draws, identical
    /// flips, no bit-vector round trip. Returns the number of flips.
    pub fn corrupt_symbols(&mut self, symbols: &mut [u16], bits_per_symbol: u32) -> u64 {
        let bps = bits_per_symbol as u64;
        let mut flips = 0u64;
        let mut pos = 0u64;
        let n = symbols.len() as u64 * bps;
        while pos + self.gap < n {
            pos += self.gap;
            symbols[(pos / bps) as usize] ^= 1 << (pos % bps);
            flips += 1;
            pos += 1;
            self.gap = self.rng.geometric(self.ber);
        }
        self.gap -= n - pos;
        self.bits += n;
        self.errors += flips;
        flips
    }

    /// Corrupt the data words of a lane stream in place (markers are
    /// control blocks with their own heavy protection in hardware; we
    /// model them as error-free and account their loss separately via
    /// fault injection). Returns flips.
    ///
    /// The default build gathers runs of consecutive `Data` words into a
    /// stack buffer and corrupts each run with the batched
    /// [`BitErrorInjector::corrupt_words`] kernel; markers never consume
    /// stream positions, so the bit stream — and every draw — is
    /// identical to the retained word-at-a-time loop (`scalar-kernels`).
    pub fn corrupt_lane(&mut self, lane: &mut [LaneWord]) -> u64 {
        #[cfg(feature = "scalar-kernels")]
        {
            let mut flips = 0u64;
            for w in lane.iter_mut() {
                if let LaneWord::Data(d) = w {
                    flips += self.corrupt_word(d) as u64;
                }
            }
            flips
        }
        #[cfg(not(feature = "scalar-kernels"))]
        {
            const RUN: usize = 64;
            let mut buf = [0u64; RUN];
            let mut flips = 0u64;
            let mut i = 0;
            while i < lane.len() {
                if !matches!(lane[i], LaneWord::Data(_)) {
                    i += 1;
                    continue;
                }
                // Gather up to RUN consecutive data words.
                let mut len = 0;
                while len < RUN {
                    match lane.get(i + len) {
                        Some(LaneWord::Data(d)) => {
                            buf[len] = *d;
                            len += 1;
                        }
                        _ => break,
                    }
                }
                flips += self.corrupt_words(&mut buf[..len]);
                for (w, &b) in lane[i..i + len].iter_mut().zip(&buf[..len]) {
                    *w = LaneWord::Data(b);
                }
                i += len;
            }
            flips
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn measured_rate_matches_target() {
        for &ber in &[1e-2, 1e-3, 1e-4] {
            let mut inj = BitErrorInjector::new(ber, DetRng::new(5));
            let mut zeros = vec![0u64; 2_000_000 / 64];
            for w in zeros.iter_mut() {
                inj.corrupt_word(w);
            }
            let flipped: u64 = zeros.iter().map(|w| w.count_ones() as u64).sum();
            let measured = flipped as f64 / inj.bits as f64;
            assert!(
                (measured / ber - 1.0).abs() < 0.15,
                "ber {ber}: measured {measured}"
            );
            assert_eq!(flipped, inj.errors);
        }
    }

    #[test]
    fn zero_ber_never_flips() {
        let mut inj = BitErrorInjector::new(0.0, DetRng::new(1));
        let mut w = 0xFFFF_0000_FFFF_0000u64;
        for _ in 0..1000 {
            assert_eq!(inj.corrupt_word(&mut w), 0);
        }
        assert_eq!(w, 0xFFFF_0000_FFFF_0000);
    }

    #[test]
    fn bits_and_words_paths_agree_statistically() {
        let ber = 3e-3;
        let n = 64 * 20_000;
        let mut inj_w = BitErrorInjector::new(ber, DetRng::new(3));
        let mut words = vec![0u64; n / 64];
        for w in words.iter_mut() {
            inj_w.corrupt_word(w);
        }
        let mut inj_b = BitErrorInjector::new(ber, DetRng::new(4));
        let mut bits = vec![0u8; n];
        inj_b.corrupt_bits(&mut bits);
        let e_w = inj_w.errors as f64 / n as f64;
        let e_b = inj_b.errors as f64 / n as f64;
        assert!((e_w / e_b - 1.0).abs() < 0.2, "word {e_w} bit {e_b}");
    }

    #[test]
    fn deterministic_for_seed() {
        let run = || {
            let mut inj = BitErrorInjector::new(1e-3, DetRng::new(99));
            let mut ws = vec![0u64; 1000];
            for w in ws.iter_mut() {
                inj.corrupt_word(w);
            }
            ws
        };
        assert_eq!(run(), run());
    }

    proptest! {
        #[test]
        fn symbols_path_equals_serialized_bits_path(
            seed in 0u64..200,
            exp in -3f64..-0.8,
            m in 3u32..=12,
            nsyms in 1usize..100,
            rounds in 1usize..4,
        ) {
            // corrupt_symbols must replicate the serialize → corrupt_bits
            // → reassemble pipeline exactly: same flips, same counters,
            // same residual gap carried across calls.
            let ber = 10f64.powf(exp);
            let mask = ((1u32 << m) - 1) as u16;
            let mut dr = DetRng::new(seed ^ 0xABCD);
            let words: Vec<Vec<u16>> = (0..rounds)
                .map(|_| (0..nsyms).map(|_| dr.next_u64() as u16 & mask).collect())
                .collect();
            let mut inj_bits = BitErrorInjector::new(ber, DetRng::new(seed));
            let mut inj_syms = BitErrorInjector::new(ber, DetRng::new(seed));
            for word in &words {
                let mut bits: Vec<u8> = word
                    .iter()
                    .flat_map(|&s| (0..m).map(move |b| ((s >> b) & 1) as u8))
                    .collect();
                let flips_bits = inj_bits.corrupt_bits(&mut bits);
                let via_bits: Vec<u16> = bits
                    .chunks(m as usize)
                    .map(|c| {
                        c.iter()
                            .enumerate()
                            .fold(0u16, |acc, (i, &b)| acc | ((b as u16) << i))
                    })
                    .collect();
                let mut via_syms = word.clone();
                let flips_syms = inj_syms.corrupt_symbols(&mut via_syms, m);
                prop_assert_eq!(flips_syms, flips_bits);
                prop_assert_eq!(&via_syms, &via_bits);
            }
            prop_assert_eq!(inj_syms.bits, inj_bits.bits);
            prop_assert_eq!(inj_syms.errors, inj_bits.errors);
        }

        #[test]
        fn batched_words_path_equals_word_loop(
            seed in 0u64..200,
            exp in -4f64..-0.8,
            nwords in prop_oneof![Just(1usize), Just(15), Just(16), Just(17), 1usize..64],
            rounds in 1usize..4,
        ) {
            // The batched kernel must replicate the word-at-a-time loop
            // exactly: same flips, same counters, same residual gap
            // carried across calls (rounds > 1 exercises the carry).
            let ber = 10f64.powf(exp);
            let mut inj_batch = BitErrorInjector::new(ber, DetRng::new(seed));
            let mut inj_loop = BitErrorInjector::new(ber, DetRng::new(seed));
            for round in 0..rounds {
                let mut a = vec![round as u64; nwords];
                let mut b = a.clone();
                let fa = inj_batch.corrupt_words_sliced(&mut a);
                let fb = inj_loop.corrupt_words_scalar(&mut b);
                prop_assert_eq!(fa, fb);
                prop_assert_eq!(&a, &b);
            }
            prop_assert_eq!(inj_batch.bits, inj_loop.bits);
            prop_assert_eq!(inj_batch.errors, inj_loop.errors);
            prop_assert_eq!(inj_batch.gap, inj_loop.gap);
        }

        #[test]
        fn lane_batching_matches_word_loop(
            seed in 0u64..200,
            exp in -3f64..-0.8,
            mask in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            // corrupt_lane's run gathering must reproduce the plain
            // word-at-a-time loop under arbitrary marker/data patterns
            // (markers consume no stream positions in either form).
            let ber = 10f64.powf(exp);
            let mut lane_a: Vec<LaneWord> = mask.iter().enumerate()
                .map(|(i, &data)| if data {
                    LaneWord::Data(i as u64)
                } else {
                    LaneWord::Marker(i as u32)
                })
                .collect();
            let mut lane_b = lane_a.clone();
            let mut inj_a = BitErrorInjector::new(ber, DetRng::new(seed));
            let mut inj_b = BitErrorInjector::new(ber, DetRng::new(seed));
            let fa = inj_a.corrupt_lane(&mut lane_a);
            let mut fb = 0u64;
            for w in lane_b.iter_mut() {
                if let LaneWord::Data(d) = w {
                    fb += inj_b.corrupt_word(d) as u64;
                }
            }
            prop_assert_eq!(fa, fb);
            prop_assert_eq!(&lane_a, &lane_b);
            prop_assert_eq!(inj_a.bits, inj_b.bits);
            prop_assert_eq!(inj_a.errors, inj_b.errors);
            prop_assert_eq!(inj_a.gap, inj_b.gap);
        }

        #[test]
        fn error_count_equals_flipped_bits(seed in 0u64..100, exp in -4f64..-1.0) {
            let ber = 10f64.powf(exp);
            let mut inj = BitErrorInjector::new(ber, DetRng::new(seed));
            let mut ws = vec![0u64; 500];
            for w in ws.iter_mut() {
                inj.corrupt_word(w);
            }
            let flipped: u64 = ws.iter().map(|w| w.count_ones() as u64).sum();
            prop_assert_eq!(flipped, inj.errors);
        }
    }
}
