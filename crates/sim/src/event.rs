//! A minimal deterministic discrete-event queue.
//!
//! Time is `f64` seconds. Simultaneous events pop in insertion order
//! (a monotonic tiebreaker), which keeps multi-component simulations
//! deterministic without requiring every caller to avoid ties.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: f64,
    order: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.order == other.order
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour on (time, order). `total_cmp`
        // is a total order even for NaN, so a non-finite time that
        // somehow bypassed the `schedule` assertion (e.g. via a future
        // unchecked constructor) degrades to a deterministic — if
        // surprising — position instead of corrupting the heap
        // invariant the way `partial_cmp(..).unwrap_or(Equal)` did.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.order.cmp(&self.order))
    }
}

/// A time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_order: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_order: 0,
            now: 0.0,
        }
    }

    /// An empty queue at time zero with pre-sized storage.
    ///
    /// Hyperfleet shards schedule a known number of campaign events per
    /// link; pre-sizing keeps the inner event loop allocation-free.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_order: 0,
            now: 0.0,
        }
    }

    /// Number of events the heap can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Reset to an empty queue at time zero, keeping allocated storage.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_order = 0;
        self.now = 0.0;
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or in the past.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        self.heap.push(Entry {
            time,
            order: self.next_order,
            event,
        });
        self.next_order += 1;
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Peek at the next event time without popping.
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(1.5, ());
        q.pop();
        assert_eq!(q.now(), 1.5);
        q.schedule_in(0.5, ());
        assert_eq!(q.next_time(), Some(2.0));
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn scheduling_nan_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn scheduling_infinity_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::INFINITY, ());
    }

    #[test]
    fn with_capacity_pre_sizes_and_reset_keeps_storage() {
        let mut q = EventQueue::with_capacity(16);
        assert!(q.capacity() >= 16);
        for i in 0..16 {
            q.schedule(i as f64, i);
        }
        while q.pop().is_some() {}
        q.reset();
        assert_eq!(q.now(), 0.0);
        assert!(q.is_empty());
        assert!(q.capacity() >= 16);
        q.schedule(0.5, 99);
        assert_eq!(q.pop(), Some((0.5, 99)));
    }
}
