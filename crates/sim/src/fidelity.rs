//! Adaptive-fidelity Monte-Carlo engine (DESIGN §12).
//!
//! Every Monte-Carlo figure in this repo burns most of its budget where
//! the answer is already known: far above the KP4 threshold the analytic
//! model is orders of magnitude more accurate than any affordable trial
//! count, and far below it no affordable trial count observes a single
//! event. This module gives each measurement three resolutions and a
//! controller that picks between them:
//!
//! - [`Tier::Analytic`] — the closed-form model value. For estimators
//!   whose analytic form is the *exact* mean of the Monte-Carlo
//!   estimator ([`Exactness::Exact`], e.g. the binomial pool-survival
//!   sum), this is a strict improvement at zero trials. For estimators
//!   where the closed form shares the model but the kernel is an
//!   independent implementation ([`Exactness::Model`]), it is used only
//!   when the operating point is far from the decision threshold.
//! - [`Tier::FullMc`] — the ordinary bit-exact Monte-Carlo kernel, kept
//!   wherever the measurement is near the decision threshold, at a
//!   budget adapted to observe [`FidelityController::events_target`]
//!   events rather than a fixed trial count.
//! - [`Tier::TailMc`] — rare-event estimation by exponentially tilted
//!   importance sampling on stratified [`DetRng`] substreams
//!   ([`TailBer`]): unbiased estimates of BERs far below 1e-12 from a
//!   few hundred thousand draws, where naive sampling would need 1e13.
//!
//! # Determinism
//!
//! Tier selection ([`FidelityController::classify`]) is a pure function
//! of the assessment — itself derived from `(config, seed)` — and never
//! consults the thread count, wall clock, or partial results. Every
//! tier's estimator runs on counter-derived substreams with fixed batch
//! decomposition and folds partial sums in batch order, so adaptive
//! results are bit-identical at every `MOSAIC_THREADS` setting, exactly
//! like full-fidelity results (DESIGN §4).
//!
//! # Modes
//!
//! [`FidelityMode::Full`] (the default) keeps every call site on its
//! historic full-budget path — committed `results/` stay byte-identical.
//! [`FidelityMode::Adaptive`] (opt-in via `MOSAIC_FIDELITY=adaptive` or
//! `run_all --fidelity=adaptive`) lets the controller spend trials where
//! they buy information; the CI fidelity gate checks that every figure
//! value stays within the declared confidence tolerance of the
//! full-fidelity run.

use crate::montecarlo::SlicerPoint;
use crate::rng::DetRng;
use crate::sweep::{Exec, TrialPlan};

/// Environment variable selecting the fidelity mode (`full` | `adaptive`).
pub const FIDELITY_ENV: &str = "MOSAIC_FIDELITY";

/// Importance-sampling batches per tail estimate (fixed decomposition —
/// never derived from the thread count).
pub const TAIL_BATCHES: u64 = 64;

/// Tilted draws per side per batch in a tail estimate.
pub const TAIL_DRAWS_PER_BATCH: u32 = 4096;

/// Global fidelity mode for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FidelityMode {
    /// Historic behavior: every measurement at its full trial budget.
    #[default]
    Full,
    /// Controller-directed: analytic fast path, adapted Monte-Carlo
    /// budgets, and tail sampling, per [`FidelityController::classify`].
    Adaptive,
}

impl FidelityMode {
    /// Parse a mode name (`"full"` / `"adaptive"`).
    pub fn parse(s: &str) -> Option<FidelityMode> {
        match s {
            "full" => Some(FidelityMode::Full),
            "adaptive" => Some(FidelityMode::Adaptive),
            _ => None,
        }
    }

    /// Read the mode from [`FIDELITY_ENV`]; unset or unrecognized values
    /// fall back to [`FidelityMode::Full`] — full fidelity is always the
    /// safe default.
    pub fn from_env() -> FidelityMode {
        std::env::var(FIDELITY_ENV)
            .ok()
            .and_then(|v| FidelityMode::parse(&v))
            .unwrap_or(FidelityMode::Full)
    }

    /// Short name (`"full"` / `"adaptive"`), e.g. for manifests.
    pub fn name(self) -> &'static str {
        match self {
            FidelityMode::Full => "full",
            FidelityMode::Adaptive => "adaptive",
        }
    }

    /// Convenience: is this the adaptive mode?
    pub fn is_adaptive(self) -> bool {
        self == FidelityMode::Adaptive
    }
}

/// The resolution a measurement runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Closed-form model value, zero trials.
    Analytic,
    /// Full Monte-Carlo kernel (possibly at an adapted budget).
    FullMc,
    /// Importance-sampled rare-event estimate.
    TailMc,
}

impl Tier {
    /// Short name for telemetry and table annotations.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Analytic => "analytic",
            Tier::FullMc => "full_mc",
            Tier::TailMc => "tail_mc",
        }
    }

    /// The [`crate::sweep::FidelityHint`] to attach to a [`TrialPlan`]
    /// running this tier.
    pub fn hint(self) -> crate::sweep::FidelityHint {
        match self {
            Tier::Analytic => crate::sweep::FidelityHint::Analytic,
            Tier::FullMc => crate::sweep::FidelityHint::FullMc,
            Tier::TailMc => crate::sweep::FidelityHint::TailMc,
        }
    }
}

/// How the closed form relates to what the Monte-Carlo kernel samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exactness {
    /// The closed form is the exact mean of the Monte-Carlo estimator
    /// (e.g. the binomial pool-survival sum versus Bernoulli channel
    /// draws): the analytic tier is a strict improvement at any margin.
    Exact,
    /// The closed form shares the model, but the kernel is an
    /// independent implementation whose cross-validation value is the
    /// point of the Monte-Carlo — keep real trials near the threshold.
    Model,
}

/// Everything [`FidelityController::classify`] may look at — all derived
/// from `(config, seed)`, nothing from the execution environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assessment {
    /// Closed-form prediction of the per-trial event probability (BER,
    /// word-failure probability, pool-failure probability, ...).
    pub analytic_p: f64,
    /// The decision threshold the measurement argues against (e.g. the
    /// KP4 BER threshold); margin is measured in decades from it.
    pub threshold: f64,
    /// The full-fidelity trial budget at this point.
    pub full_trials: u64,
    /// Whether the closed form is the kernel's exact mean.
    pub exactness: Exactness,
    /// Whether a tail importance sampler exists for this estimator.
    pub tail_available: bool,
}

/// A tier choice plus the trial budget to run it at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierDecision {
    /// The chosen resolution.
    pub tier: Tier,
    /// Trials to spend (0 for the analytic tier; draws for the tail
    /// tier are fixed by [`TAIL_BATCHES`] × [`TAIL_DRAWS_PER_BATCH`]).
    pub trials: u64,
}

/// Promotes and demotes measurements between tiers.
///
/// The decision rules (adaptive mode):
///
/// 1. [`Exactness::Exact`] → [`Tier::Analytic`]: the closed form *is*
///    the estimator's mean; Monte-Carlo adds only noise.
/// 2. Too few expected events for the full budget to resolve
///    (`full_trials · p < min_events`) → [`Tier::TailMc`] when a tail
///    sampler exists, else [`Tier::Analytic`].
/// 3. Within `margin_decades` of the threshold → [`Tier::FullMc`] at a
///    budget sized to observe ~`events_target` events (capped at the
///    full budget): the kernel cross-validation the figure exists for.
/// 4. Otherwise → [`Tier::Analytic`].
///
/// In [`FidelityMode::Full`] every classification is
/// [`Tier::FullMc`] at the full budget, so a single code path serves
/// both modes.
#[derive(Debug, Clone, Copy)]
pub struct FidelityController {
    mode: FidelityMode,
    /// Distance from the threshold (decades of probability) inside which
    /// real Monte-Carlo trials are kept.
    pub margin_decades: f64,
    /// Target observed-event count for adapted Monte-Carlo budgets
    /// (relative error ≈ 1/√events; 250 events → ~6 %).
    pub events_target: f64,
    /// Below this many expected events at the full budget, ordinary
    /// Monte-Carlo is considered unable to resolve the point.
    pub min_events: f64,
}

impl FidelityController {
    /// Controller with the documented default thresholds
    /// (`margin_decades = 1.0`, `events_target = 250`, `min_events = 25`).
    pub fn new(mode: FidelityMode) -> FidelityController {
        FidelityController {
            mode,
            margin_decades: 1.0,
            events_target: 250.0,
            min_events: 25.0,
        }
    }

    /// The mode this controller runs in.
    pub fn mode(&self) -> FidelityMode {
        self.mode
    }

    /// Pick a tier and budget for one measurement. Pure in the
    /// assessment (and the controller's own constants): no environment,
    /// no thread count, no randomness — the property the determinism
    /// tests pin down.
    pub fn classify(&self, a: &Assessment) -> TierDecision {
        if self.mode == FidelityMode::Full {
            return TierDecision {
                tier: Tier::FullMc,
                trials: a.full_trials,
            };
        }
        if a.exactness == Exactness::Exact {
            return TierDecision {
                tier: Tier::Analytic,
                trials: 0,
            };
        }
        let p = a.analytic_p;
        if p.is_nan() || p <= 0.0 || a.full_trials as f64 * p < self.min_events {
            // Unresolvable by ordinary sampling at the full budget.
            return TierDecision {
                tier: if a.tail_available {
                    Tier::TailMc
                } else {
                    Tier::Analytic
                },
                trials: 0,
            };
        }
        let margin = if a.threshold > 0.0 {
            (p.log10() - a.threshold.log10()).abs()
        } else {
            0.0
        };
        if margin > self.margin_decades {
            return TierDecision {
                tier: Tier::Analytic,
                trials: 0,
            };
        }
        // Near the threshold: keep the real kernel, at a budget sized to
        // the information it buys.
        let wanted = (self.events_target / p).ceil() as u64;
        TierDecision {
            tier: Tier::FullMc,
            trials: wanted.min(a.full_trials).max(1),
        }
    }

    /// Record a decision in telemetry (adaptive mode only, under the
    /// gate-excluded `fidelity.` prefix): per-tier decision counts and
    /// the trials saved against the full budget.
    pub fn note_decision(&self, full_trials: u64, d: &TierDecision) {
        if self.mode != FidelityMode::Adaptive {
            return;
        }
        crate::telemetry::counter_add(&format!("fidelity.tier.{}", d.tier.name()), 1);
        let saved = full_trials.saturating_sub(d.trials);
        if saved > 0 {
            crate::telemetry::counter_add("fidelity.trials_saved", saved);
        }
    }
}

/// One adaptive BER measurement: the tier that produced it, the point
/// estimate, a 95 % confidence interval, and the trials spent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerOutcome {
    /// The resolution this value came from.
    pub tier: Tier,
    /// Point estimate.
    pub ber: f64,
    /// 95 % confidence interval. Analytic-tier values are the exact
    /// model mean, so their interval is degenerate `(ber, ber)`; the
    /// gate tolerance then rests on the full-fidelity run's own CI.
    pub ci95: (f64, f64),
    /// Trials (bits or draws) actually spent.
    pub trials: u64,
}

/// Rare-event OOK BER estimator: exponentially tilted importance
/// sampling of the two-rail Gaussian slicer model.
///
/// For a one-sided tail `P(Z > d)` with `Z ~ N(0, 1)`, draws come from
/// the tilted proposal `N(d, 1)`; a draw `z = d + g` carries weight
/// `exp(-d²/2 − d·g)` when `g > 0` and 0 otherwise, which makes the
/// batch mean an *unbiased* estimator of the tail for every `d` with
/// O(1) relative variance — flat in `p` where naive sampling needs
/// `~1/p` trials. The two rails of [`SlicerPoint`] are estimated
/// independently and combined with the kernel's equal-prior weighting
/// `BER = (P(miss 1) + P(miss 0)) / 2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailBer {
    /// Normalized one-rail distance `(i1 − threshold)/s1`.
    pub d1: f64,
    /// Normalized zero-rail distance `(threshold − i0)/s0`.
    pub d0: f64,
}

/// Result of a tail importance-sampling estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailEstimate {
    /// Unbiased BER point estimate.
    pub ber: f64,
    /// Standard error of the estimate.
    pub std_err: f64,
    /// Total tilted draws spent (both rails).
    pub draws: u64,
}

impl TailEstimate {
    /// Normal-approximation 95 % confidence interval, clamped to ≥ 0.
    pub fn ci95(&self) -> (f64, f64) {
        let h = 1.96 * self.std_err;
        ((self.ber - h).max(0.0), self.ber + h)
    }
}

/// One batch of tilted draws for a single one-sided Gaussian tail
/// `P(Z > d)`: returns `(Σw, Σw²)` over `draws` proposals. Allocation
/// free (registered under lint rule R4); unbiased for every `d`.
pub fn tail_batch(d: f64, draws: u32, rng: &mut DetRng) -> (f64, f64) {
    let base = (-0.5 * d * d).exp();
    let mut sum_w = 0.0f64;
    let mut sum_w2 = 0.0f64;
    for _ in 0..draws {
        let g = rng.standard_normal();
        if g > 0.0 {
            let w = base * (-d * g).exp();
            sum_w += w;
            sum_w2 += w * w;
        }
    }
    (sum_w, sum_w2)
}

impl TailBer {
    /// The tail estimator for a slicer operating point.
    pub fn of(point: &SlicerPoint) -> TailBer {
        TailBer {
            d1: (point.i1 - point.threshold) / point.s1,
            d0: (point.threshold - point.i0) / point.s0,
        }
    }

    /// Run the estimate: `batches` stratified batches of
    /// `draws_per_batch` tilted draws per rail, batch `b` drawing from
    /// the counter-derived streams `(seed, "{label}-one"/"{label}-zero",
    /// b)`. Partial sums fold in batch order, so the estimate is
    /// bit-identical at every thread count.
    pub fn estimate_with(
        &self,
        exec: &Exec,
        batches: u64,
        draws_per_batch: u32,
        seed: u64,
        label: &str,
    ) -> TailEstimate {
        let one = format!("{label}-one");
        let zero = format!("{label}-zero");
        let partials = TrialPlan::new()
            .trials(batches)
            .seed(seed)
            .label(label)
            .fidelity(crate::sweep::FidelityHint::TailMc)
            .run(exec, |ctx| {
                let (w1, q1) = tail_batch(self.d1, draws_per_batch, &mut ctx.stream(&one));
                let (w0, q0) = tail_batch(self.d0, draws_per_batch, &mut ctx.stream(&zero));
                (w1, q1, w0, q0)
            });
        // Sequential batch-order fold: float addition order is fixed.
        let (mut w1, mut q1, mut w0, mut q0) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (a, b, c, d) in &partials {
            w1 += a;
            q1 += b;
            w0 += c;
            q0 += d;
        }
        let n = (batches as f64) * f64::from(draws_per_batch);
        if n == 0.0 {
            return TailEstimate {
                ber: 0.0,
                std_err: 0.0,
                draws: 0,
            };
        }
        let p1 = w1 / n;
        let p0 = w0 / n;
        // Per-draw second moments → variance of each rail's mean.
        let v1 = (q1 / n - p1 * p1).max(0.0) / n;
        let v0 = (q0 / n - p0 * p0).max(0.0) / n;
        TailEstimate {
            ber: 0.5 * (p1 + p0),
            std_err: 0.5 * (v1 + v0).sqrt(),
            draws: 2 * batches * u64::from(draws_per_batch),
        }
    }
}

/// Measure an OOK BER point at controller-selected fidelity.
///
/// The assessment classifies on the receiver's closed-form BER against
/// `threshold_ber` with a full budget of `full_bits`. The tiers then
/// produce:
///
/// - [`Tier::Analytic`]: [`SlicerPoint::model_ber`] — the exact mean of
///   the Monte-Carlo kernel's estimator (see its error-budget note).
/// - [`Tier::FullMc`]: [`crate::montecarlo::simulate_ook_ber_par`] at
///   the adapted bit budget, with its Wilson interval.
/// - [`Tier::TailMc`]: [`TailBer`] at the fixed
///   [`TAIL_BATCHES`] × [`TAIL_DRAWS_PER_BATCH`] budget.
pub fn ook_ber_with_fidelity(
    ctrl: &FidelityController,
    exec: &Exec,
    rx: &mosaic_phy::ber::OokReceiver,
    avg_power: mosaic_units::Power,
    threshold_ber: f64,
    full_bits: u64,
    seed: u64,
) -> BerOutcome {
    let assessment = Assessment {
        analytic_p: rx.ber_at(avg_power),
        threshold: threshold_ber,
        full_trials: full_bits,
        exactness: Exactness::Model,
        tail_available: true,
    };
    let decision = ctrl.classify(&assessment);
    ctrl.note_decision(full_bits, &decision);
    let point = SlicerPoint::of(rx, avg_power);
    match decision.tier {
        Tier::Analytic => {
            let p = point.model_ber();
            BerOutcome {
                tier: Tier::Analytic,
                ber: p,
                ci95: (p, p),
                trials: 0,
            }
        }
        Tier::FullMc => {
            let m =
                crate::montecarlo::simulate_ook_ber_par(exec, rx, avg_power, decision.trials, seed);
            BerOutcome {
                tier: Tier::FullMc,
                ber: m.ber,
                ci95: m.ci95,
                trials: decision.trials,
            }
        }
        Tier::TailMc => {
            let est = TailBer::of(&point).estimate_with(
                exec,
                TAIL_BATCHES,
                TAIL_DRAWS_PER_BATCH,
                seed,
                "ook-tail",
            );
            BerOutcome {
                tier: Tier::TailMc,
                ber: est.ber,
                ci95: est.ci95(),
                trials: est.draws,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_assessment(p: f64, full: u64) -> Assessment {
        Assessment {
            analytic_p: p,
            threshold: 2.4e-4,
            full_trials: full,
            exactness: Exactness::Model,
            tail_available: true,
        }
    }

    #[test]
    fn full_mode_never_adapts() {
        let ctrl = FidelityController::new(FidelityMode::Full);
        for p in [0.5, 1e-3, 1e-9, 0.0] {
            let d = ctrl.classify(&model_assessment(p, 4_000_000));
            assert_eq!(d.tier, Tier::FullMc);
            assert_eq!(d.trials, 4_000_000);
        }
    }

    #[test]
    fn exact_estimators_go_analytic() {
        let ctrl = FidelityController::new(FidelityMode::Adaptive);
        let d = ctrl.classify(&Assessment {
            analytic_p: 2.5e-4,
            threshold: 2.4e-4,
            full_trials: 100_000,
            exactness: Exactness::Exact,
            tail_available: false,
        });
        assert_eq!(d.tier, Tier::Analytic);
        assert_eq!(d.trials, 0);
    }

    #[test]
    fn far_from_threshold_goes_analytic_near_keeps_mc() {
        let ctrl = FidelityController::new(FidelityMode::Adaptive);
        // 5.7e-2 is ~2.4 decades above the KP4 threshold → analytic.
        assert_eq!(
            ctrl.classify(&model_assessment(5.66e-2, 4_000_000)).tier,
            Tier::Analytic
        );
        // 8.3e-4 is ~0.54 decades above → full MC at an adapted budget.
        let d = ctrl.classify(&model_assessment(8.27e-4, 4_000_000));
        assert_eq!(d.tier, Tier::FullMc);
        assert_eq!(d.trials, (250.0f64 / 8.27e-4).ceil() as u64);
        assert!(d.trials < 4_000_000);
        // 3.9e-5 is ~0.79 decades below → full MC, capped at the full
        // budget (the adapted budget would exceed it).
        let d = ctrl.classify(&model_assessment(3.87e-5, 4_000_000));
        assert_eq!(d.tier, Tier::FullMc);
        assert_eq!(d.trials, 4_000_000);
    }

    #[test]
    fn unresolvable_points_go_to_the_tail_sampler() {
        let ctrl = FidelityController::new(FidelityMode::Adaptive);
        let d = ctrl.classify(&model_assessment(3.5e-7, 4_000_000));
        assert_eq!(d.tier, Tier::TailMc);
        // Without a tail sampler the analytic value is all there is.
        let mut a = model_assessment(3.5e-7, 4_000_000);
        a.tail_available = false;
        assert_eq!(ctrl.classify(&a).tier, Tier::Analytic);
        // p = 0 exactly (or NaN) must not panic or divide.
        assert_eq!(
            ctrl.classify(&model_assessment(0.0, 1_000)).tier,
            Tier::TailMc
        );
        assert_eq!(
            ctrl.classify(&model_assessment(f64::NAN, 1_000)).tier,
            Tier::TailMc
        );
    }

    #[test]
    fn classify_is_a_pure_function() {
        let ctrl = FidelityController::new(FidelityMode::Adaptive);
        let a = model_assessment(1.1e-4, 2_000_000);
        let first = ctrl.classify(&a);
        for _ in 0..10 {
            assert_eq!(ctrl.classify(&a), first);
        }
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(FidelityMode::parse("full"), Some(FidelityMode::Full));
        assert_eq!(
            FidelityMode::parse("adaptive"),
            Some(FidelityMode::Adaptive)
        );
        assert_eq!(FidelityMode::parse("fast"), None);
        assert_eq!(FidelityMode::Full.name(), "full");
        assert_eq!(FidelityMode::Adaptive.name(), "adaptive");
        assert!(FidelityMode::Adaptive.is_adaptive());
    }

    #[test]
    fn tail_estimate_is_unbiased_against_the_closed_tail() {
        // d = 6 → Q(6) ≈ 9.87e-10: invisible to naive MC at any sane
        // budget, pinned to ~1 % by a quarter-million tilted draws.
        let t = TailBer { d1: 6.0, d0: 6.0 };
        let est = t.estimate_with(&Exec::with_threads(4), 64, 4096, 7, "tail-test");
        let exact = mosaic_phy::math::normal_tail(6.0);
        assert!(est.ber > 0.0);
        assert!(
            (est.ber - exact).abs() < 5.0 * est.std_err.max(1e-13),
            "tail estimate {} vs exact {exact} (se {})",
            est.ber,
            est.std_err
        );
        assert!(
            est.std_err < 0.05 * exact,
            "tail variance must be O(1) relative"
        );
    }

    #[test]
    fn tail_estimate_is_thread_count_invariant() {
        let t = TailBer { d1: 7.5, d0: 7.2 };
        let base = t.estimate_with(&Exec::with_threads(1), 16, 512, 3, "tail-det");
        for threads in [2, 8] {
            let other = t.estimate_with(&Exec::with_threads(threads), 16, 512, 3, "tail-det");
            assert_eq!(base, other, "threads={threads}");
        }
    }

    #[test]
    fn tail_batch_handles_nonpositive_distance() {
        // d ≤ 0 is not a tail; the tilted estimator stays unbiased (for
        // d = 0 it is plain sampling of P(Z > 0) = 1/2).
        let mut rng = DetRng::new(9);
        let (w, _) = tail_batch(0.0, 8192, &mut rng);
        let p = w / 8192.0;
        assert!((p - 0.5).abs() < 0.02, "P(Z>0) estimate {p}");
    }
}
