//! Minimal JSON document model with a deterministic writer and a
//! recursive-descent parser.
//!
//! The workspace vendors no serialization framework, and the run
//! manifests must be byte-stable: same values in → same bytes out,
//! independent of thread count or platform. This module provides exactly
//! that — object keys keep insertion order, numbers are written with
//! Rust's shortest-round-trip `f64` formatting (or as integers when the
//! value is integral and in `i64` range), and strings are escaped per
//! RFC 8259.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (all JSON numbers are `f64` here).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair (builder style; meaningful on `Obj` only).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Insert or replace `key` in an object. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        if let Json::Obj(pairs) = self {
            let value = value.into();
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                pairs.push((key.to_string(), value));
            }
        }
    }

    /// Look up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation and a trailing newline — the
    /// format every manifest on disk uses.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. The whole input must be one value (plus
    /// surrounding whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}
impl From<&[f64]> for Json {
    fn from(xs: &[f64]) -> Json {
        Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; encode as null (readers treat it as
        // missing). Manifest producers avoid non-finite values anyway.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Rust's f64 Display is shortest-round-trip and platform-stable.
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: decode the low half if the
                            // high half starts one.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.eat("\\u")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_document() {
        let doc = Json::object()
            .with("name", "mosaic")
            .with("ok", true)
            .with("n", 42u64)
            .with("x", 0.1)
            .with(
                "arr",
                Json::Arr(vec![
                    Json::Null,
                    Json::Num(-1.5e-9),
                    Json::Str("a\"b\n".into()),
                ]),
            )
            .with("nested", Json::object().with("k", 7u64));
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let make = || {
            Json::object()
                .with("pi", std::f64::consts::PI)
                .with("tiny", 1.0e-300)
                .with("int", 123456789u64)
        };
        assert_eq!(make().to_string_pretty(), make().to_string_pretty());
        // Integral f64s print as integers.
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        // Shortest round-trip for fractions.
        assert_eq!(Json::Num(0.1).to_string_compact(), "0.1");
    }

    #[test]
    fn f64_display_round_trips() {
        for &x in &[
            0.1,
            std::f64::consts::PI,
            1.0e-300,
            -2.2250738585072014e-308,
            6.02e23,
        ] {
            let s = Json::Num(x).to_string_compact();
            assert_eq!(s.parse::<f64>().unwrap(), x, "{s}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#" {"s": "aé\n\t\"\\ 😀"} "#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "aé\n\t\"\\ 😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2,]x").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": [1.5], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.5));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_obj().unwrap().len(), 3);
    }
}
