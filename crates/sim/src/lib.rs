//! Deterministic simulation substrate for the Mosaic reproduction.
//!
//! This crate replaces the paper's physical testbed runs with seeded,
//! reproducible Monte-Carlo simulation:
//!
//! * [`rng`] — a ChaCha-based deterministic RNG with named substreams, so
//!   every experiment is exactly reproducible from one seed and adding a
//!   new consumer never perturbs existing streams;
//! * [`event`] — a minimal discrete-event queue (time-ordered, stable for
//!   simultaneous events) used by the reliability and network simulations;
//! * [`inject`] — bit-exact error injection: geometric skip sampling makes
//!   BER-1e-6 streams as cheap as BER-1e-2 streams;
//! * [`montecarlo`] — Gaussian-threshold receiver simulation (validates
//!   the analytic Q-factor BER model) and coded-channel runs (validates
//!   the analytic post-FEC math);
//! * [`faults`] — the cross-layer fault taxonomy: hand-written fault
//!   scripts plus seeded [`faults::FaultCampaign`] schedule generation;
//! * [`campaign`] — fault-campaign replay against the link, with and
//!   without the graceful-degradation controller (experiment F17);
//! * [`fidelity`] — the adaptive-fidelity engine: a controller that
//!   promotes measurements between an analytic fast path, full
//!   Monte-Carlo at adapted budgets, and rare-event tail importance
//!   sampling, deterministically from `(config, seed)` (DESIGN §12);
//! * [`link_sim`] — the end-to-end frame-level link simulation driving the
//!   real gearbox + FEC code paths;
//! * [`sweep`] — the deterministic parallel execution engine: Monte-Carlo
//!   fan-out whose output is bit-identical whether it runs on 1 thread or
//!   32 (`MOSAIC_THREADS` selects; counter-based seed splitting makes the
//!   per-task streams scheduling-independent);
//! * [`telemetry`] — the run-metrics layer (counters, fixed-edge
//!   histograms, series, per-stage wall/CPU timers) whose metric values
//!   are thread-count invariant by construction;
//! * [`json`] — a dependency-free JSON writer/parser with deterministic
//!   output, backing the run manifests in `crates/bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod event;
pub mod faults;
pub mod fidelity;
pub mod inject;
pub mod json;
pub mod link_sim;
pub mod montecarlo;
pub mod rng;
pub mod sweep;
pub mod telemetry;

pub use campaign::{run_campaign, CampaignOutcome, CampaignRunConfig};
pub use event::EventQueue;
pub use faults::{CampaignConfig, FaultCampaign};
pub use fidelity::{FidelityController, FidelityMode, Tier};
pub use inject::BitErrorInjector;
pub use json::Json;
pub use link_sim::{simulate_link, LinkSimConfig, LinkSimReport};
pub use rng::DetRng;
pub use sweep::{Exec, RunStats, TrialPlan};
