//! Deterministic run telemetry: counters, histograms, series, and
//! per-stage timers.
//!
//! Every figure pipeline and Monte-Carlo driver records what it did into
//! a process-global collector; `run_all` snapshots the collector per
//! experiment and folds the snapshots into the run manifest. Two design
//! rules keep the data trustworthy:
//!
//! 1. **Metric values are thread-count invariant.** Counters only ever
//!    accumulate integers (addition is commutative, so parallel workers
//!    cannot perturb them), and histograms/series are recorded from
//!    sequential code after the sweep engine's index-ordered reassembly.
//!    The CI determinism gate diffs these values across
//!    `MOSAIC_THREADS=1` and the machine default.
//! 2. **Timings are segregated.** Wall/CPU time lives in stage records,
//!    which the manifest diff treats as advisory (ratio checks), never as
//!    determinism failures.
//!
//! The collector is a plain `Mutex` around BTreeMaps — telemetry calls
//! are coarse (per stage, per figure, per sweep) so contention is nil,
//! and BTreeMap keeps key order stable for byte-stable JSON output.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A histogram with caller-fixed bucket edges.
///
/// A value `v` lands in bucket `i` where `i` is the first edge with
/// `v <= edges[i]`, or in the overflow bucket when `v` exceeds every
/// edge. Edges are part of the histogram's identity: re-registering the
/// same name with different edges is a caller bug and panics.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket edges (inclusive), strictly increasing.
    pub edges: Vec<f64>,
    /// `edges.len() + 1` counts; the last is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
}

impl Histogram {
    fn new(edges: &[f64]) -> Self {
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            total: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .edges
            .iter()
            .position(|&e| v <= e)
            .unwrap_or(self.edges.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    fn to_json(&self) -> Json {
        Json::object()
            .with("edges", Json::from(self.edges.as_slice()))
            .with(
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::from(c)).collect()),
            )
            .with("total", self.total)
    }
}

/// One completed stage: a labelled, timed unit of work.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage label (e.g. `"fig4.waterfall"`, `"par_trials.pool"`).
    pub name: String,
    /// Work units the stage executed (trials, codewords, sweep cells).
    pub trials: u64,
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
    /// CPU nanoseconds across all threads (0 when unavailable).
    pub cpu_ns: u64,
}

impl StageRecord {
    fn to_json(&self) -> Json {
        Json::object()
            .with("name", self.name.as_str())
            .with("trials", self.trials)
            .with("wall_ns", self.wall_ns)
            .with("cpu_ns", self.cpu_ns)
    }
}

/// An immutable snapshot of the collector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic integer counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms, by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Numeric series (a figure's plotted values), by name.
    pub series: BTreeMap<String, Vec<f64>>,
    /// Completed stages, in completion order.
    pub stages: Vec<StageRecord>,
}

impl Snapshot {
    /// The deterministic (thread-count invariant) part as JSON: counters,
    /// histograms, series, and per-stage trial counts — no timings.
    pub fn values_json(&self) -> Json {
        let mut counters = Json::object();
        for (k, v) in &self.counters {
            counters.set(k, *v);
        }
        let mut histograms = Json::object();
        for (k, h) in &self.histograms {
            histograms.set(k, h.to_json());
        }
        let mut series = Json::object();
        for (k, xs) in &self.series {
            series.set(k, Json::from(xs.as_slice()));
        }
        Json::object()
            .with("counters", counters)
            .with("histograms", histograms)
            .with("series", series)
    }

    /// The timing part as JSON: one record per stage.
    pub fn timings_json(&self) -> Json {
        Json::Arr(self.stages.iter().map(|s| s.to_json()).collect())
    }

    /// Total trials across all stages.
    pub fn total_trials(&self) -> u64 {
        self.stages.iter().map(|s| s.trials).sum()
    }

    /// Total wall nanoseconds across all stages (stages may overlap only
    /// if nested; figure pipelines run them sequentially).
    pub fn total_wall_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.wall_ns).sum()
    }
}

#[derive(Default)]
struct Collector {
    snap: Snapshot,
}

fn collector() -> &'static Mutex<Collector> {
    static COLLECTOR: Mutex<Collector> = Mutex::new(Collector {
        snap: Snapshot {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            series: BTreeMap::new(),
            stages: Vec::new(),
        },
    });
    &COLLECTOR
}

fn lock() -> std::sync::MutexGuard<'static, Collector> {
    // A poisoned collector only means a panicking thread held the lock;
    // the telemetry maps are still structurally sound.
    match collector().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Add `delta` to the named counter (creating it at zero).
///
/// Integer addition commutes, so this is safe to call from parallel
/// workers without breaking thread-count invariance.
pub fn counter_add(name: &str, delta: u64) {
    let mut g = lock();
    *g.snap.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Observe one value in the named histogram, creating it with `edges` on
/// first use.
///
/// # Panics
/// Panics if the histogram exists with different edges — bucket edges
/// are fixed at first registration by design.
pub fn observe(name: &str, edges: &[f64], v: f64) {
    let mut g = lock();
    let h = g
        .snap
        .histograms
        .entry(name.to_string())
        .or_insert_with(|| Histogram::new(edges));
    assert_eq!(
        h.edges, edges,
        "histogram {name:?} re-registered with different edges"
    );
    h.observe(v);
}

/// Append values to the named series. Call from sequential code only
/// (series order is part of the deterministic output).
pub fn record_series(name: &str, values: &[f64]) {
    let mut g = lock();
    g.snap
        .series
        .entry(name.to_string())
        .or_default()
        .extend_from_slice(values);
}

/// Thread CPU time consumed by this process, in nanoseconds, summed over
/// all live threads. Reads `/proc/self/task/*/schedstat` (first field is
/// on-CPU time in ns); returns 0 where that interface is unavailable, so
/// callers must treat 0 as "unknown", not "free".
pub fn process_cpu_ns() -> u64 {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    let mut total = 0u64;
    for entry in tasks.flatten() {
        let path = entry.path().join("schedstat");
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Some(first) = text.split_whitespace().next() {
                total += first.parse::<u64>().unwrap_or(0);
            }
        }
    }
    total
}

/// Peak resident-set size of this process so far, in bytes. Reads the
/// `VmHWM` line of `/proc/self/status` (reported in kB); returns 0 where
/// that interface is unavailable, so callers must treat 0 as "unknown".
/// The hyperfleet memory gate uses this to show that 10⁶-link runs stay
/// bounded by shard size, not fleet size.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            if let Some(kb) = rest.split_whitespace().next() {
                return kb.parse::<u64>().unwrap_or(0) * 1024;
            }
        }
    }
    0
}

/// The sanctioned wall-clock for advisory timings. This module is the
/// only place allowed to touch `std::time::Instant` (lint rule R2, see
/// DESIGN.md §9): every figure pipeline and the sweep engine measure
/// elapsed time through `Stopwatch` so the timer surface stays auditable
/// and timings stay out of the value path.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    t0: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[allow(clippy::disallowed_methods)] // the one sanctioned Instant::now
    pub fn start() -> Self {
        Stopwatch { t0: Instant::now() }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.t0.elapsed()
    }
}

/// Run `f`, recording a [`StageRecord`] with the given label and trial
/// count. Nested stages each get their own record.
pub fn stage<T>(name: &str, trials: u64, f: impl FnOnce() -> T) -> T {
    let cpu0 = process_cpu_ns();
    let t0 = Stopwatch::start();
    let out = f();
    let wall_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let cpu1 = process_cpu_ns();
    let mut g = lock();
    g.snap.stages.push(StageRecord {
        name: name.to_string(),
        trials,
        wall_ns,
        cpu_ns: cpu1.saturating_sub(cpu0),
    });
    out
}

/// Snapshot the collector's current contents.
pub fn snapshot() -> Snapshot {
    lock().snap.clone()
}

/// Clear the collector (between figures, and at test boundaries).
pub fn reset() {
    let mut g = lock();
    g.snap = Snapshot::default();
}

/// Snapshot and clear in one locked step — what `run_all` uses at each
/// figure boundary.
pub fn take() -> Snapshot {
    let mut g = lock();
    std::mem::take(&mut g.snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The collector is process-global; tests serialize on this lock so
    // `cargo test`'s parallel runner can't interleave them.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        match TEST_GUARD.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _x = exclusive();
        reset();
        counter_add("trials.test", 5);
        counter_add("trials.test", 7);
        let snap = take();
        assert_eq!(snap.counters["trials.test"], 12);
        assert!(snapshot().counters.is_empty());
    }

    #[test]
    fn histogram_buckets_values() {
        let _x = exclusive();
        reset();
        for v in [0.5, 1.0, 1.5, 99.0] {
            observe("h", &[1.0, 2.0], v);
        }
        let snap = take();
        let h = &snap.histograms["h"];
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.total, 4);
    }

    #[test]
    fn series_and_stage_record() {
        let _x = exclusive();
        reset();
        record_series("fig.x", &[1.0, 2.0]);
        record_series("fig.x", &[3.0]);
        let out = stage("unit", 10, || 42);
        assert_eq!(out, 42);
        let snap = take();
        assert_eq!(snap.series["fig.x"], vec![1.0, 2.0, 3.0]);
        assert_eq!(snap.stages.len(), 1);
        assert_eq!(snap.stages[0].trials, 10);
        assert_eq!(snap.total_trials(), 10);
        assert!(snap.stages[0].wall_ns > 0);
    }

    #[test]
    fn values_json_excludes_timings() {
        let _x = exclusive();
        reset();
        counter_add("c", 1);
        observe("h", &[1.0], 0.5);
        record_series("s", &[2.5]);
        stage("timed", 3, || ());
        let snap = take();
        let values = snap.values_json().to_string_pretty();
        assert!(values.contains("\"c\": 1"));
        assert!(!values.contains("wall_ns"));
        let timings = snap.timings_json().to_string_pretty();
        assert!(timings.contains("wall_ns"));
        assert!(timings.contains("\"trials\": 3"));
    }

    #[test]
    fn counter_adds_commute_across_threads() {
        let _x = exclusive();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        counter_add("par", 2);
                    }
                });
            }
        });
        assert_eq!(take().counters["par"], 800);
    }
}
