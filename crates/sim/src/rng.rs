//! Deterministic random numbers with named substreams.
//!
//! Every stochastic component derives its own ChaCha8 stream from
//! `(master seed, label)`, so results are bit-reproducible across runs and
//! across code reorderings: adding a new consumer with a new label never
//! shifts the numbers another consumer sees. `rand`'s default generators
//! are explicitly *not* stability-guaranteed across versions, which is why
//! the workspace standardizes on seeded ChaCha here.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a strong 64→64-bit mixer (bijective, so
/// distinct inputs can never collide into one child seed).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a label.
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A deterministic RNG handle.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: ChaCha8Rng,
}

/// Precomputed integer threshold for a Bernoulli draw: the unique `T`
/// with `chance(p) ⟺ (next_u64() >> 11) < T`.
///
/// Exactness argument: `chance(p)` compares `m·2⁻⁵³ < p` where
/// `m = next_u64() >> 11 < 2⁵³`. Both `m·2⁻⁵³` and `p·2⁵³` are exact in
/// f64 (power-of-two scaling shifts only the exponent), and for integer
/// `m`, `m < x ⟺ m < ⌈x⌉`, so `T = ⌈p·2⁵³⌉` reproduces every `chance(p)`
/// decision bit-for-bit while hoisting the float conversion out of the
/// inner loop. Hot sweep loops build this once per sweep point — the
/// "host-side table" discipline of DESIGN §11.
#[inline]
pub fn bernoulli_threshold(p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p));
    (p * (1u64 << 53) as f64).ceil() as u64
}

/// A Bernoulli distribution prepared once per sweep config for hot
/// Monte-Carlo loops. The default build precomputes the integer
/// threshold (the host-side-table discipline of DESIGN §11) so the
/// per-draw work is one shift and one compare; `--features
/// scalar-kernels` retains the original float-compare form. Both consume
/// one `next_u64` per sample and return identical decisions.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    #[cfg(feature = "scalar-kernels")]
    p: f64,
    #[cfg(not(feature = "scalar-kernels"))]
    threshold: u64,
}

impl Bernoulli {
    /// Prepare a Bernoulli(p) draw.
    #[inline]
    pub fn new(p: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&p));
        #[cfg(feature = "scalar-kernels")]
        {
            Bernoulli { p }
        }
        #[cfg(not(feature = "scalar-kernels"))]
        {
            Bernoulli {
                threshold: bernoulli_threshold(p),
            }
        }
    }

    /// One trial; exactly equivalent to `rng.chance(p)`.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> bool {
        #[cfg(feature = "scalar-kernels")]
        {
            rng.chance(self.p)
        }
        #[cfg(not(feature = "scalar-kernels"))]
        {
            rng.chance_with_threshold(self.threshold)
        }
    }

    /// The decision for one raw [`DetRng::next_u64`] draw `d` — exactly
    /// the comparison [`Bernoulli::sample`] performs after drawing `d`.
    /// Lets slab-filled kernels (see [`DetRng::fill_u64`]) decide without
    /// per-trial generator calls.
    #[inline]
    pub fn decide(&self, d: u64) -> bool {
        #[cfg(feature = "scalar-kernels")]
        {
            DetRng::uniform_of(d) < self.p
        }
        #[cfg(not(feature = "scalar-kernels"))]
        {
            (d >> 11) < self.threshold
        }
    }

    /// Run up to `n` trials and report whether at most `cap` succeeded,
    /// stopping as soon as the `(cap + 1)`-th success occurs — the
    /// k-of-n pool-survival inner loop (`n` channels, `cap` spares).
    ///
    /// Draw consumption is exactly that of the sequential early-break
    /// loop: all `n` draws on success, one draw past the `(cap + 1)`-th
    /// success on failure — so downstream consumers of the stream see
    /// identical values either way.
    ///
    /// The default build packs 64 decisions per `u64` word (DESIGN §11):
    /// a slab of raw draws is bulk-filled, the threshold compares pack
    /// into a decision word, and a popcount counts successes 64 trials
    /// at a time. An early break overdraws the slab, so the kernel
    /// rewinds the stream to the sequential loop's exact stopping point
    /// via [`DetRng::set_word_pos`]. `--features scalar-kernels` retains
    /// the one-draw-per-trial loop as the differential oracle.
    pub fn at_most(&self, n: usize, cap: usize, rng: &mut DetRng) -> bool {
        #[cfg(feature = "scalar-kernels")]
        {
            let mut successes = 0usize;
            for _ in 0..n {
                if self.sample(rng) {
                    successes += 1;
                    if successes > cap {
                        return false;
                    }
                }
            }
            true
        }
        #[cfg(not(feature = "scalar-kernels"))]
        {
            const SLAB: usize = 64;
            let start = rng.word_pos();
            let mut draws = [0u64; SLAB];
            let mut successes = 0usize;
            let mut done = 0usize;
            while done < n {
                let take = SLAB.min(n - done);
                rng.fill_u64(&mut draws[..take]);
                // Pack this slab's decisions: bit j = trial (done + j)
                // succeeded. Tail slabs leave high bits zero.
                let mut word = 0u64;
                for (j, &d) in draws[..take].iter().enumerate() {
                    word |= u64::from(self.decide(d)) << j;
                }
                let c = word.count_ones() as usize;
                if successes + c > cap {
                    // Locate the (cap + 1 − successes)-th set bit: clear
                    // the lower ones, then index the survivor. The
                    // sequential loop would have stopped right after
                    // that trial, so rewind to its draw position.
                    let mut w = word;
                    for _ in 0..(cap - successes) {
                        w &= w - 1;
                    }
                    let idx = w.trailing_zeros() as usize;
                    rng.set_word_pos(start + 2 * (done + idx + 1) as u64);
                    return false;
                }
                successes += c;
                done += take;
            }
            true
        }
    }
}

impl DetRng {
    /// Root stream for a master seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent substream from a label. Uses FNV-1a over the
    /// label mixed into the master seed; labels must be unique per parent.
    pub fn substream(seed: u64, label: &str) -> Self {
        DetRng::new(seed ^ label_hash(label))
    }

    /// Derive the `task_id`-th child stream of a master seed —
    /// counter-based seed splitting for parallel execution.
    ///
    /// The contract that makes parallelism deterministic: trial `i`
    /// receives exactly this stream whether the run uses 1 thread or 32,
    /// because the child key is a pure function of `(seed, task_id)` and
    /// never depends on scheduling order. The mapping is a SplitMix64
    /// finalizer over the pair, so children of distinct task ids (and of
    /// distinct seeds) get unrelated ChaCha keys.
    pub fn stream(seed: u64, task_id: u64) -> Self {
        DetRng::new(mix64(seed ^ mix64(task_id.wrapping_add(GOLDEN))))
    }

    /// Labelled counter stream: the `task_id`-th child of `(seed, label)`.
    /// Used when one simulation needs several *families* of parallel
    /// streams (e.g. per-codeword data vs per-codeword noise) that must
    /// not collide.
    pub fn substream_indexed(seed: u64, label: &str, task_id: u64) -> Self {
        DetRng::stream(seed ^ label_hash(label), task_id)
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform u64.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Bulk draw: fill `out` with exactly the values [`DetRng::next_u64`]
    /// would return called `out.len()` times, amortizing the generator's
    /// buffer bookkeeping over the whole slab.
    #[inline]
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        self.inner.fill_u64s(out);
    }

    /// Absolute stream position in 32-bit keystream words. Every
    /// [`DetRng`] drawing method consumes whole `u64`s (two words), so
    /// the position advances by 2 per draw; the word granularity is the
    /// generator's, not a commitment of this API.
    #[inline]
    pub fn word_pos(&self) -> u64 {
        self.inner.word_pos()
    }

    /// Seek to an absolute stream position previously read with
    /// [`DetRng::word_pos`] — the rewind primitive that lets a batched
    /// kernel overdraw and then restore the exact draw consumption of
    /// its sequential oracle.
    #[inline]
    pub fn set_word_pos(&mut self, w: u64) {
        self.inner.set_word_pos(w);
    }

    /// Uniform integer in [0, n).
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.inner.gen::<f64>() < p
    }

    /// Bernoulli trial against a [`bernoulli_threshold`]-precomputed
    /// threshold: consumes exactly one `next_u64` draw, like
    /// [`DetRng::chance`], and returns the identical decision (see the
    /// exactness argument on `bernoulli_threshold`; pinned by the
    /// `threshold_chance_is_bit_identical` proptest).
    #[inline]
    pub fn chance_with_threshold(&mut self, threshold: u64) -> bool {
        (self.next_u64() >> 11) < threshold
    }

    /// Standard normal via Box-Muller (one value per call; simple and
    /// deterministic rather than cached-pair clever).
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// The uniform `[0, 1)` value [`DetRng::uniform`] derives from one
    /// raw [`DetRng::next_u64`] draw `d` — the exact 53-mantissa-bit
    /// transform of the `rand` shim, for slab-filled kernels.
    #[inline]
    pub fn uniform_of(d: u64) -> f64 {
        (d >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The [`DetRng::standard_normal`] value for two raw draws `(d1, d2)`
    /// in stream order — bit-identical to calling `standard_normal` when
    /// the generator would return `d1` then `d2` (pinned by the
    /// `raw_word_transforms_match_sequential` proptest). The `u1` clamp
    /// replays the shim's half-open-range guard float for float.
    #[inline]
    pub fn standard_normal_of(d1: u64, d2: u64) -> f64 {
        let u = Self::uniform_of(d1);
        let v = f64::MIN_POSITIVE + u * (1.0 - f64::MIN_POSITIVE);
        let u1 = if v >= 1.0 { 1.0f64.next_down() } else { v };
        let u2 = Self::uniform_of(d2);
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Geometric sample: number of failures before the first success with
    /// probability `p` — i.e. the gap to the next bit error at BER `p`.
    /// Saturates at `u64::MAX` for p ≈ 0.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            return u64::MAX;
        }
        if p >= 1.0 {
            return 0;
        }
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        // ln_1p keeps precision for tiny p, where (1.0 - p) would round to
        // exactly 1.0 and produce a zero denominator.
        let g = (u.ln() / (-p).ln_1p()).floor();
        if !g.is_finite() || g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Exponential inter-arrival sample with rate `lambda` (per unit time).
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "rate must be positive");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn substreams_are_independent_of_each_other() {
        let mut a = DetRng::substream(1, "channel-noise");
        let mut b = DetRng::substream(1, "fault-schedule");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        // And stable across construction order.
        let mut a2 = DetRng::substream(1, "channel-noise");
        assert_eq!(va[0], a2.next_u64());
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut r = DetRng::new(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = DetRng::new(9);
        let p = 0.01;
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.geometric(p) as f64).sum();
        let mean = total / n as f64;
        let expect = (1.0 - p) / p; // 99
        assert!(
            (mean / expect - 1.0).abs() < 0.05,
            "mean {mean} expect {expect}"
        );
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = DetRng::new(11);
        let lam = 2.5;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(lam)).sum::<f64>() / n as f64;
        assert!((mean * lam - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let mut r = DetRng::new(1);
        assert!(!r.chance_with_threshold(bernoulli_threshold(0.0)));
        assert!(r.chance_with_threshold(bernoulli_threshold(1.0)));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The integer-threshold Bernoulli must reproduce `chance(p)`
            /// decision-for-decision AND draw-for-draw (identical RNG
            /// state afterwards), for arbitrary p including the extremes
            /// and tiny sub-normal-adjacent values.
            #[test]
            fn threshold_chance_is_bit_identical(
                seed in any::<u64>(),
                p in prop_oneof![
                    Just(0.0),
                    Just(1.0),
                    Just(1e-300),
                    Just(f64::MIN_POSITIVE),
                    0.0f64..=1.0,
                ],
                draws in 1usize..200,
            ) {
                let mut a = DetRng::new(seed);
                let mut b = DetRng::new(seed);
                let t = bernoulli_threshold(p);
                for _ in 0..draws {
                    prop_assert_eq!(a.chance(p), b.chance_with_threshold(t));
                }
                // Same stream position afterwards.
                prop_assert_eq!(a.next_u64(), b.next_u64());
            }

            /// `Bernoulli::at_most` (packed 64-trials-per-word in the
            /// default build) must match the sequential early-break loop
            /// in both verdict and exact draw consumption, across slab
            /// boundaries (n = 1, 63..65, 128) and arbitrary caps —
            /// including caps the trial count can never exceed.
            #[test]
            fn at_most_matches_sequential_loop(
                seed in any::<u64>(),
                p in prop_oneof![Just(0.0), Just(1.0), Just(1e-4), 0.0f64..=1.0],
                n in prop_oneof![Just(0usize), Just(1), Just(63), Just(64), Just(65), Just(128), 0usize..200],
                cap in 0usize..80,
                rounds in 1usize..4,
            ) {
                let mut a = DetRng::new(seed);
                let mut b = DetRng::new(seed);
                let bern = Bernoulli::new(p);
                for _ in 0..rounds {
                    let expect = {
                        let mut successes = 0usize;
                        let mut ok = true;
                        for _ in 0..n {
                            if a.chance(p) {
                                successes += 1;
                                if successes > cap {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        ok
                    };
                    prop_assert_eq!(bern.at_most(n, cap, &mut b), expect);
                    prop_assert_eq!(a.word_pos(), b.word_pos());
                }
                // Downstream draws agree after interleaved early breaks.
                prop_assert_eq!(a.next_u64(), b.next_u64());
            }

            /// The raw-word transforms must reproduce the sequential
            /// draw methods bit for bit: `uniform_of` vs `uniform`/
            /// `chance`, and `standard_normal_of` vs `standard_normal`,
            /// from any stream position.
            #[test]
            fn raw_word_transforms_match_sequential(
                seed in any::<u64>(),
                pre in 0usize..40,
                p in 0.0f64..=1.0,
            ) {
                let mut a = DetRng::new(seed);
                let mut b = DetRng::new(seed);
                for _ in 0..pre {
                    prop_assert_eq!(a.next_u64(), b.next_u64());
                }
                let d = b.next_u64();
                prop_assert_eq!(a.uniform(), DetRng::uniform_of(d));
                let d = b.next_u64();
                prop_assert_eq!(a.chance(p), DetRng::uniform_of(d) < p);
                let (d1, d2) = (b.next_u64(), b.next_u64());
                let z_seq = a.standard_normal();
                let z_raw = DetRng::standard_normal_of(d1, d2);
                prop_assert_eq!(z_seq.to_bits(), z_raw.to_bits());
                prop_assert_eq!(a.next_u64(), b.next_u64());
            }

            /// Bulk `fill_u64` is a pure batching of `next_u64`.
            #[test]
            fn fill_u64_matches_sequential_draws(
                seed in any::<u64>(),
                len in prop_oneof![Just(0usize), Just(1), Just(31), Just(32), Just(33), 0usize..100],
                pre in 0usize..40,
            ) {
                let mut a = DetRng::new(seed);
                let mut b = DetRng::new(seed);
                for _ in 0..pre {
                    prop_assert_eq!(a.next_u64(), b.next_u64());
                }
                let mut got = vec![0u64; len];
                a.fill_u64(&mut got);
                for (i, &w) in got.iter().enumerate() {
                    prop_assert_eq!(w, b.next_u64(), "word {}", i);
                }
                prop_assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }
}
