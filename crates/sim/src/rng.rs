//! Deterministic random numbers with named substreams.
//!
//! Every stochastic component derives its own ChaCha8 stream from
//! `(master seed, label)`, so results are bit-reproducible across runs and
//! across code reorderings: adding a new consumer with a new label never
//! shifts the numbers another consumer sees. `rand`'s default generators
//! are explicitly *not* stability-guaranteed across versions, which is why
//! the workspace standardizes on seeded ChaCha here.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a strong 64→64-bit mixer (bijective, so
/// distinct inputs can never collide into one child seed).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a label.
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A deterministic RNG handle.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: ChaCha8Rng,
}

impl DetRng {
    /// Root stream for a master seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent substream from a label. Uses FNV-1a over the
    /// label mixed into the master seed; labels must be unique per parent.
    pub fn substream(seed: u64, label: &str) -> Self {
        DetRng::new(seed ^ label_hash(label))
    }

    /// Derive the `task_id`-th child stream of a master seed —
    /// counter-based seed splitting for parallel execution.
    ///
    /// The contract that makes parallelism deterministic: trial `i`
    /// receives exactly this stream whether the run uses 1 thread or 32,
    /// because the child key is a pure function of `(seed, task_id)` and
    /// never depends on scheduling order. The mapping is a SplitMix64
    /// finalizer over the pair, so children of distinct task ids (and of
    /// distinct seeds) get unrelated ChaCha keys.
    pub fn stream(seed: u64, task_id: u64) -> Self {
        DetRng::new(mix64(seed ^ mix64(task_id.wrapping_add(GOLDEN))))
    }

    /// Labelled counter stream: the `task_id`-th child of `(seed, label)`.
    /// Used when one simulation needs several *families* of parallel
    /// streams (e.g. per-codeword data vs per-codeword noise) that must
    /// not collide.
    pub fn substream_indexed(seed: u64, label: &str, task_id: u64) -> Self {
        DetRng::stream(seed ^ label_hash(label), task_id)
    }

    /// Uniform f64 in [0, 1).
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform u64.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform integer in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.inner.gen::<f64>() < p
    }

    /// Standard normal via Box-Muller (one value per call; simple and
    /// deterministic rather than cached-pair clever).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Geometric sample: number of failures before the first success with
    /// probability `p` — i.e. the gap to the next bit error at BER `p`.
    /// Saturates at `u64::MAX` for p ≈ 0.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            return u64::MAX;
        }
        if p >= 1.0 {
            return 0;
        }
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        // ln_1p keeps precision for tiny p, where (1.0 - p) would round to
        // exactly 1.0 and produce a zero denominator.
        let g = (u.ln() / (-p).ln_1p()).floor();
        if !g.is_finite() || g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Exponential inter-arrival sample with rate `lambda` (per unit time).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "rate must be positive");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn substreams_are_independent_of_each_other() {
        let mut a = DetRng::substream(1, "channel-noise");
        let mut b = DetRng::substream(1, "fault-schedule");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        // And stable across construction order.
        let mut a2 = DetRng::substream(1, "channel-noise");
        assert_eq!(va[0], a2.next_u64());
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut r = DetRng::new(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = DetRng::new(9);
        let p = 0.01;
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.geometric(p) as f64).sum();
        let mean = total / n as f64;
        let expect = (1.0 - p) / p; // 99
        assert!(
            (mean / expect - 1.0).abs() < 0.05,
            "mean {mean} expect {expect}"
        );
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = DetRng::new(11);
        let lam = 2.5;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(lam)).sum::<f64>() / n as f64;
        assert!((mean * lam - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
