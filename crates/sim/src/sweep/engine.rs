//! The execution core: scoped worker threads, self-scheduling off an
//! atomic counter, index-ordered reassembly.
//!
//! Everything here is *mechanism* — how a fixed task set fans out over a
//! worker pool deterministically. Policy (trial counts, seeds, retry
//! budgets, fidelity hints) lives in [`super::scheduler`], and the
//! panic-tolerant retry machinery in [`super::resilience`].

use crate::telemetry::Stopwatch;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Environment variable selecting the worker count (`1` = sequential).
pub const THREADS_ENV: &str = "MOSAIC_THREADS";

/// Render a panic payload as text (panics carry `&str` or `String` in
/// practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Parse a `MOSAIC_THREADS` value: a positive integer (`1` = sequential).
///
/// `"0"`, non-numeric text, and the empty string are structured
/// [`mosaic_units::MosaicError::InvalidConfig`] errors, never panics —
/// [`Exec::from_env`] documents the fallback it applies on such input.
pub fn parse_threads(raw: &str) -> mosaic_units::Result<usize> {
    let parsed = raw.trim().parse::<usize>().map_err(|_| {
        mosaic_units::MosaicError::invalid_config(
            THREADS_ENV,
            format!("must be a positive integer, got {raw:?}"),
        )
    })?;
    if parsed == 0 {
        return Err(mosaic_units::MosaicError::invalid_config(
            THREADS_ENV,
            "must be >= 1 (use 1 for a sequential run)",
        ));
    }
    Ok(parsed)
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An execution context: how many workers to fan out over.
#[derive(Debug, Clone, Copy)]
pub struct Exec {
    threads: usize,
}

impl Default for Exec {
    fn default() -> Self {
        Exec::from_env()
    }
}

impl Exec {
    /// Resolve from `MOSAIC_THREADS`, defaulting to available parallelism.
    ///
    /// Malformed values (`"0"`, `"abc"`, `""`) do **not** panic: the
    /// documented fallback is a one-line stderr warning plus the machine
    /// default, so a bad environment can degrade a run's parallelism but
    /// never abort it. Use [`Exec::try_from_env`] to surface the error.
    pub fn from_env() -> Self {
        match Exec::try_from_env() {
            Ok(exec) => exec,
            Err(e) => {
                eprintln!("[sweep] {e}; falling back to available parallelism");
                Exec::with_threads(default_parallelism())
            }
        }
    }

    /// Resolve from `MOSAIC_THREADS`, returning a structured error on a
    /// malformed value instead of applying [`Exec::from_env`]'s fallback.
    pub fn try_from_env() -> mosaic_units::Result<Self> {
        match std::env::var(THREADS_ENV) {
            Ok(v) => Ok(Exec::with_threads(parse_threads(&v)?)),
            Err(_) => Ok(Exec::with_threads(default_parallelism())),
        }
    }

    /// Fixed worker count (used by tests to compare 1 vs N threads).
    pub fn with_threads(threads: usize) -> Self {
        Exec {
            threads: threads.max(1),
        }
    }

    /// Worker count this context fans out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Infallible task fan-out for internal callers (the sweep/resilience
    /// machinery itself): panics once with the `WorkerFailed` message.
    /// The public entry points are [`super::TrialPlan::run`] and
    /// [`Exec::try_run_tasks`].
    pub(crate) fn run_tasks_infallible<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.try_run_tasks(n, f) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible task fan-out: run `n` independent tasks and return their
    /// results in task order; a panicking task closure surfaces as
    /// `Err(WorkerFailed)` carrying the worker index and the panic
    /// payload message.
    ///
    /// Tasks self-schedule off an atomic counter (coarse tasks of uneven
    /// cost still balance), collect `(index, result)` pairs per worker,
    /// and the results are reassembled by index — so the output is
    /// independent of which worker ran what.
    ///
    /// When several tasks panic, the reported failure is the one with the
    /// smallest task index — a pure function of the task set, so the
    /// error is as deterministic as the closure itself even though the
    /// task→worker mapping is not.
    pub fn try_run_tasks<T, F>(&self, n: usize, f: F) -> mosaic_units::Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(v) => out.push(v),
                    Err(p) => {
                        return Err(mosaic_units::MosaicError::WorkerFailed {
                            worker: 0,
                            message: panic_message(p),
                        })
                    }
                }
            }
            return Ok(out);
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
        // (task index, worker index, message) of observed panics.
        let mut failures: Vec<(usize, usize, String)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        let mut failure: Option<(usize, String)> = None;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                                Ok(v) => out.push((i, v)),
                                Err(p) => {
                                    failure = Some((i, panic_message(p)));
                                    break;
                                }
                            }
                        }
                        (out, failure)
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((out, failure)) => {
                        tagged.extend(out);
                        if let Some((task, message)) = failure {
                            failures.push((task, w, message));
                        }
                    }
                    // A panic that escaped catch_unwind (foreign
                    // unwinding, `panic = "abort"` payloads) still joins
                    // as Err; fold it in rather than re-panicking.
                    Err(p) => failures.push((usize::MAX, w, panic_message(p))),
                }
            }
        });
        if let Some((_, worker, message)) = failures.into_iter().min_by(|a, b| a.0.cmp(&b.0)) {
            return Err(mosaic_units::MosaicError::WorkerFailed { worker, message });
        }
        tagged.sort_unstable_by_key(|(i, _)| *i);
        Ok(tagged.into_iter().map(|(_, v)| v).collect())
    }

    /// Fallible task fan-out with one reusable scratch state per *worker*
    /// (not per task): `make_state` runs once per worker, and every task
    /// the worker claims folds through the same `&mut S`. This is how the
    /// Monte-Carlo kernels reuse decode buffers across codewords without
    /// per-word allocation. Panicking task closures (and panicking
    /// `make_state`) surface as `Err(WorkerFailed)`; failure selection
    /// follows [`Exec::try_run_tasks`]: smallest panicking task index
    /// wins.
    ///
    /// The state must not carry information between tasks that affects
    /// results (scratch buffers are overwritten, RNGs are rebuilt per
    /// task) — otherwise output would depend on the task→worker mapping.
    pub fn try_run_tasks_with<S, T, FS, F>(
        &self,
        n: usize,
        make_state: FS,
        f: F,
    ) -> mosaic_units::Result<Vec<T>>
    where
        T: Send,
        FS: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return match catch_unwind(AssertUnwindSafe(|| {
                let mut state = make_state();
                (0..n).map(|i| f(i, &mut state)).collect::<Vec<T>>()
            })) {
                Ok(v) => Ok(v),
                Err(p) => Err(mosaic_units::MosaicError::WorkerFailed {
                    worker: 0,
                    message: panic_message(p),
                }),
            };
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
        let mut failures: Vec<(usize, usize, String)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        let mut failure: Option<(usize, String)> = None;
                        let mut state = match catch_unwind(AssertUnwindSafe(&make_state)) {
                            Ok(state) => state,
                            Err(p) => {
                                // A dead make_state fails before claiming
                                // any task; report it at index 0 so it
                                // always wins failure selection.
                                return (out, Some((0, panic_message(p))));
                            }
                        };
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| f(i, &mut state))) {
                                Ok(v) => out.push((i, v)),
                                Err(p) => {
                                    failure = Some((i, panic_message(p)));
                                    break;
                                }
                            }
                        }
                        (out, failure)
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((out, failure)) => {
                        tagged.extend(out);
                        if let Some((task, message)) = failure {
                            failures.push((task, w, message));
                        }
                    }
                    Err(p) => failures.push((usize::MAX, w, panic_message(p))),
                }
            }
        });
        if let Some((_, worker, message)) = failures.into_iter().min_by(|a, b| a.0.cmp(&b.0)) {
            return Err(mosaic_units::MosaicError::WorkerFailed { worker, message });
        }
        tagged.sort_unstable_by_key(|(i, _)| *i);
        Ok(tagged.into_iter().map(|(_, v)| v).collect())
    }

    /// Fold `n` independent tasks straight into an accumulator — no
    /// intermediate per-task collection — with one reusable scratch state
    /// per worker. `make_acc` builds each worker's accumulator (and the
    /// merge target); `f(i, &mut state, &mut acc)` folds task `i`; worker
    /// accumulators merge at join time.
    ///
    /// **Determinism contract**: workers fold whichever task indices they
    /// claim, so the fold and `merge` must be *exactly* commutative and
    /// associative — integer adds, xor, min/max. Floating-point sums do
    /// **not** qualify (rounding is order-dependent); for those, use
    /// [`super::TrialPlan::run`] and fold the returned vector in index
    /// order.
    ///
    /// # Panics
    /// Panics (once, with the [`mosaic_units::MosaicError::WorkerFailed`]
    /// message) if a task closure panics; use
    /// [`Exec::try_fold_tasks_commutative`] to handle the failure as a
    /// `Result` instead.
    pub fn fold_tasks_commutative<S, A, FS, FA, F, M>(
        &self,
        n: usize,
        make_state: FS,
        make_acc: FA,
        f: F,
        merge: M,
    ) -> A
    where
        A: Send,
        FS: Fn() -> S + Sync,
        FA: Fn() -> A + Sync,
        F: Fn(usize, &mut S, &mut A) + Sync,
        M: Fn(&mut A, A),
    {
        match self.try_fold_tasks_commutative(n, make_state, make_acc, f, merge) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Exec::fold_tasks_commutative`]: panicking task closures
    /// surface as `Err(WorkerFailed)` instead of the former double panic
    /// at `join()`. A worker that panics mid-fold has a *partial*
    /// accumulator, so no partial results are merged on failure — the
    /// whole fold either completes or errors.
    pub fn try_fold_tasks_commutative<S, A, FS, FA, F, M>(
        &self,
        n: usize,
        make_state: FS,
        make_acc: FA,
        f: F,
        merge: M,
    ) -> mosaic_units::Result<A>
    where
        A: Send,
        FS: Fn() -> S + Sync,
        FA: Fn() -> A + Sync,
        F: Fn(usize, &mut S, &mut A) + Sync,
        M: Fn(&mut A, A),
    {
        if self.threads == 1 || n <= 1 {
            return match catch_unwind(AssertUnwindSafe(|| {
                let mut state = make_state();
                let mut acc = make_acc();
                for i in 0..n {
                    f(i, &mut state, &mut acc);
                }
                acc
            })) {
                Ok(acc) => Ok(acc),
                Err(p) => Err(mosaic_units::MosaicError::WorkerFailed {
                    worker: 0,
                    message: panic_message(p),
                }),
            };
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut total = make_acc();
        let mut failures: Vec<(usize, usize, String)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut state = match catch_unwind(AssertUnwindSafe(&make_state)) {
                            Ok(state) => state,
                            Err(p) => return Err((0usize, panic_message(p))),
                        };
                        let mut acc = match catch_unwind(AssertUnwindSafe(&make_acc)) {
                            Ok(acc) => acc,
                            Err(p) => return Err((0usize, panic_message(p))),
                        };
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            if let Err(p) =
                                catch_unwind(AssertUnwindSafe(|| f(i, &mut state, &mut acc)))
                            {
                                return Err((i, panic_message(p)));
                            }
                        }
                        Ok(acc)
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(Ok(acc)) => merge(&mut total, acc),
                    Ok(Err((task, message))) => failures.push((task, w, message)),
                    Err(p) => failures.push((usize::MAX, w, panic_message(p))),
                }
            }
        });
        if let Some((_, worker, message)) = failures.into_iter().min_by(|a, b| a.0.cmp(&b.0)) {
            return Err(mosaic_units::MosaicError::WorkerFailed { worker, message });
        }
        Ok(total)
    }

    /// Parameter sweep: map `f` over `points`, in parallel, preserving
    /// input order in the output.
    pub fn par_sweep<I, T, F>(&self, points: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run_tasks_infallible(points.len(), |i| f(&points[i]))
    }

    /// In-place parallel update of independent elements (e.g. one state
    /// per physical channel). Elements are partitioned into contiguous
    /// blocks; `f` receives the element's index in `items`.
    pub fn par_map_mut<I, F>(&self, items: &mut [I], f: F)
    where
        I: Send,
        F: Fn(usize, &mut I) + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = n.div_ceil(self.threads.min(n));
        std::thread::scope(|s| {
            for (ci, block) in items.chunks_mut(chunk).enumerate() {
                let f = &f;
                s.spawn(move || {
                    for (j, item) in block.iter_mut().enumerate() {
                        f(ci * chunk + j, item);
                    }
                });
            }
        });
    }
}

/// Fixed chunking of `total` units into tasks of `chunk` units: returns
/// the number of tasks. The chunk size is a call-site constant — *never*
/// derive it from the thread count, or output would depend on it.
pub fn chunk_count(total: u64, chunk: u64) -> u64 {
    assert!(chunk > 0, "chunk size must be positive");
    total.div_ceil(chunk)
}

/// Length of chunk `idx` when splitting `total` units into `chunk`-sized
/// tasks (the final chunk may be short).
pub fn chunk_len(idx: u64, total: u64, chunk: u64) -> u64 {
    let start = idx * chunk;
    debug_assert!(start < total || total == 0);
    chunk.min(total - start)
}

/// Per-run execution statistics a figure binary reports alongside its
/// results. Reported on **stderr** so result files stay byte-identical
/// across thread counts (wall time is the one legitimately
/// nondeterministic output).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Independent work units executed (trials, codewords, sweep cells).
    pub trials: u64,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Worker threads the run fanned out over.
    pub threads: usize,
    /// Trial panics caught by the resilient path (every attempt counts).
    pub panics: u64,
    /// Retries issued after caught panics (fresh substream per attempt).
    pub retries: u64,
    /// Trials whose retry budget ran dry without a successful attempt.
    pub failed_trials: u64,
}

impl RunStats {
    /// Stats for a clean run: `panics`/`retries`/`failed_trials` zero.
    pub fn new(trials: u64, wall: Duration, threads: usize) -> Self {
        RunStats {
            trials,
            wall,
            threads,
            panics: 0,
            retries: 0,
            failed_trials: 0,
        }
    }

    /// Throughput in work units per second.
    pub fn trials_per_sec(&self) -> f64 {
        self.trials as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Emit the one-line stats record to stderr (plus a fault line when
    /// the resilient path caught anything).
    pub fn report(&self, label: &str) {
        eprintln!(
            "[stats] {label}: trials={} wall={:.3}s trials/sec={:.0} threads={}",
            self.trials,
            self.wall.as_secs_f64(),
            self.trials_per_sec(),
            self.threads,
        );
        if self.panics > 0 || self.failed_trials > 0 {
            eprintln!(
                "[stats] {label}: faults: panics={} retries={} failed_trials={}",
                self.panics, self.retries, self.failed_trials,
            );
        }
    }
}

/// Run `f`, timing it into a [`RunStats`] with the given trial count and
/// the ambient thread configuration. Also records a `measured` telemetry
/// stage so manifest timings cover figure-level work.
pub fn measured<T>(trials: u64, f: impl FnOnce() -> T) -> (T, RunStats) {
    measured_as("measured", trials, f)
}

/// [`measured`] with an explicit telemetry stage label.
pub fn measured_as<T>(label: &str, trials: u64, f: impl FnOnce() -> T) -> (T, RunStats) {
    let threads = Exec::from_env().threads();
    let start = Stopwatch::start();
    let out = crate::telemetry::stage(label, trials, f);
    (out, RunStats::new(trials, start.elapsed(), threads))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_equals_seq_for_tasks() {
        let work = |i: usize| {
            // Uneven task cost to exercise self-scheduling.
            let spin = (i * 7919) % 97;
            (0..spin).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64))
        };
        let seq = Exec::with_threads(1).try_run_tasks(257, work).unwrap();
        for threads in [2, 3, 8, 32] {
            assert_eq!(
                seq,
                Exec::with_threads(threads)
                    .try_run_tasks(257, work)
                    .unwrap()
            );
        }
    }

    #[test]
    fn fold_tasks_commutative_is_thread_count_invariant() {
        let fold = |exec: &Exec| {
            exec.fold_tasks_commutative(
                311,
                || (),
                || 0u64,
                |i, _s, acc| *acc += (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32,
                |total, part| *total += part,
            )
        };
        let seq = fold(&Exec::with_threads(1));
        for threads in [2, 5, 16] {
            assert_eq!(seq, fold(&Exec::with_threads(threads)), "threads={threads}");
        }
    }

    #[test]
    fn par_sweep_preserves_order_and_values() {
        let points: Vec<f64> = (0..50).map(|i| i as f64 * 0.5).collect();
        let seq = Exec::with_threads(1).par_sweep(&points, |p| p * p);
        let par = Exec::with_threads(8).par_sweep(&points, |p| p * p);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_mut_touches_every_element_once() {
        for threads in [1, 2, 5, 16] {
            let mut items: Vec<u64> = vec![0; 103];
            Exec::with_threads(threads).par_map_mut(&mut items, |i, x| *x += i as u64 + 1);
            for (i, x) in items.iter().enumerate() {
                assert_eq!(*x, i as u64 + 1, "threads={threads} idx={i}");
            }
        }
    }

    #[test]
    fn chunking_covers_total_exactly() {
        for (total, chunk) in [(10u64, 3u64), (12, 4), (1, 5), (65_536, 4096), (100, 1)] {
            let n = chunk_count(total, chunk);
            let sum: u64 = (0..n).map(|i| chunk_len(i, total, chunk)).sum();
            assert_eq!(sum, total, "total={total} chunk={chunk}");
        }
    }

    #[test]
    fn measured_counts_and_times() {
        let (v, stats) = measured(42, || 7u32);
        assert_eq!(v, 7);
        assert_eq!(stats.trials, 42);
        assert!(stats.trials_per_sec() > 0.0);
        assert_eq!(stats.panics, 0);
        assert_eq!(stats.failed_trials, 0);
        stats.report("selftest");
    }

    #[test]
    fn parse_threads_rejects_malformed_values() {
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("abc").is_err());
        assert!(parse_threads("").is_err());
        assert!(parse_threads("-2").is_err());
        assert_eq!(parse_threads("1").unwrap(), 1);
        assert_eq!(parse_threads(" 8 ").unwrap(), 8);
        let msg = parse_threads("abc").unwrap_err().to_string();
        assert!(msg.contains(THREADS_ENV), "{msg}");
    }

    #[test]
    fn try_run_tasks_reports_worker_failed() {
        for threads in [1, 4] {
            let err = Exec::with_threads(threads)
                .try_run_tasks(64, |i| {
                    if i == 13 {
                        panic!("task 13 exploded");
                    }
                    i
                })
                .unwrap_err();
            match err {
                mosaic_units::MosaicError::WorkerFailed { message, .. } => {
                    assert!(message.contains("task 13 exploded"), "{message}");
                }
                other => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn try_run_tasks_with_reports_worker_failed() {
        let err = Exec::with_threads(3)
            .try_run_tasks_with(32, Vec::<u64>::new, |i, _buf| {
                if i == 5 {
                    panic!("scratch task died");
                }
                i
            })
            .unwrap_err();
        assert!(err.to_string().contains("scratch task died"));
    }

    #[test]
    fn try_fold_tasks_commutative_reports_worker_failed() {
        for threads in [1, 4] {
            let err = Exec::with_threads(threads)
                .try_fold_tasks_commutative(
                    48,
                    || (),
                    || 0u64,
                    |i, _s, acc| {
                        if i == 20 {
                            panic!("fold task died");
                        }
                        *acc += i as u64;
                    },
                    |total, part| *total += part,
                )
                .unwrap_err();
            assert!(
                err.to_string().contains("fold task died"),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn try_variants_match_infallible_on_clean_runs() {
        let exec = Exec::with_threads(4);
        assert_eq!(
            exec.try_run_tasks(50, |i| i * 2).unwrap(),
            exec.run_tasks_infallible(50, |i| i * 2)
        );
        let folded = exec
            .try_fold_tasks_commutative(
                50,
                || (),
                || 0u64,
                |i, _s, acc| *acc += i as u64,
                |t, p| *t += p,
            )
            .unwrap();
        assert_eq!(folded, (0..50u64).sum::<u64>());
    }
}
