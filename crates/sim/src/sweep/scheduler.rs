//! Trial planning: the builder-style [`TrialPlan`] API that unifies the
//! engine's Monte-Carlo entry points.
//!
//! A plan captures *what* a fan-out is — trial count, root seed, stream
//! label, per-trial retry budget, fidelity hint — separately from *how*
//! it executes (an [`Exec`] passed to the terminal method). One plan,
//! five terminal shapes:
//!
//! | terminal            | replaces                       | closure                           |
//! |---------------------|--------------------------------|-----------------------------------|
//! | [`TrialPlan::run`]  | `Exec::par_trials`             | `Fn(&mut TrialCtx) -> T`          |
//! | [`TrialPlan::sum`]  | `Exec::par_trials_sum`         | `Fn(&mut TrialCtx) -> u64`        |
//! | [`TrialPlan::run_with`] | `Exec::run_tasks_with`     | `Fn(&mut TrialCtx, &mut S) -> T`  |
//! | [`TrialPlan::fold`] | `Exec::fold_tasks_commutative` | `Fn(&mut TrialCtx, &mut S, &mut A)` |
//! | [`TrialPlan::run_resilient`] | `Exec::par_trials_resilient` | `Fn(&mut TrialCtx) -> T`   |
//!
//! Each trial's closure receives a [`TrialCtx`]: the trial index, the
//! retry attempt, and counter-derived RNG streams ([`TrialCtx::rng`] for
//! the plan's labelled stream, [`TrialCtx::stream`] for named stream
//! families like `"rs-data"`/`"rs-noise"`). Stream derivation is exactly
//! the engine's historic scheme, so a migrated call site is bit-identical
//! to the deprecated entry point it replaces.
//!
//! **Telemetry is label opt-in**: a plan with a label records the
//! `trials.{label}` counter and a `par_trials.{label}` stage, exactly as
//! the old labelled entry points did; an unlabelled plan records nothing
//! (the old `run_tasks`/`fold_tasks_commutative` behavior).

use super::engine::Exec;
use super::resilience::{self, ResilientRun};
use crate::rng::DetRng;

/// Advisory fidelity tier attached to a [`TrialPlan`] by the adaptive
/// engine (`sim::fidelity`). The scheduler carries the hint so kernels
/// and telemetry can see *why* a budget was chosen; it never changes how
/// trials execute — determinism stays a property of `(config, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FidelityHint {
    /// No tier decision attached (the default; full-fidelity call sites).
    #[default]
    Unspecified,
    /// Closed-form fast path; the plan's trials are an audit budget (often
    /// zero).
    Analytic,
    /// Full Monte-Carlo, possibly at a controller-adapted budget.
    FullMc,
    /// Rare-event tail sampling on stratified substreams.
    TailMc,
}

/// Per-trial execution context handed to [`TrialPlan`] closures.
///
/// Carries the trial index, the retry attempt (0 on the first try), and
/// derives counter-based RNG streams on demand — a pure function of
/// `(seed, label, trial, attempt)`, never of scheduling order.
#[derive(Debug)]
pub struct TrialCtx<'p> {
    trial: u64,
    attempt: u32,
    seed: u64,
    label: &'p str,
}

impl TrialCtx<'_> {
    /// Trial index in the fan-out (`0..trials`).
    pub fn trial(&self) -> u64 {
        self.trial
    }

    /// Retry attempt: `0` for the first try, `1..` for retries issued by
    /// [`TrialPlan::run_resilient`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// This trial's stream under the plan's label: identical to the
    /// historic `par_trials` derivation `(seed, label, trial)`; retries
    /// draw from the fresh `"{label}#retry{attempt}"` substream.
    pub fn rng(&self) -> DetRng {
        if self.attempt == 0 {
            // lint: allow(R5) reason=forwards the plan's label; collision checking happens at the literal call sites
            DetRng::substream_indexed(self.seed, self.label, self.trial)
        } else {
            // lint: allow(R5) reason=retry stream derived from the plan label; #retry{n} suffix cannot collide with a literal label
            DetRng::substream_indexed(
                self.seed,
                &format!("{}#retry{}", self.label, self.attempt),
                self.trial,
            )
        }
    }

    /// This trial's stream in a named family, for call sites that draw
    /// from several independent streams per trial (e.g. `"rs-data"` and
    /// `"rs-noise"`): `(seed, family, trial)`, exactly the historic
    /// direct `substream_indexed` derivation.
    pub fn stream(&self, family: &str) -> DetRng {
        // lint: allow(R5) reason=forwards the caller's family label; collision checking happens at the literal call sites
        DetRng::substream_indexed(self.seed, family, self.trial)
    }
}

/// A declarative Monte-Carlo fan-out: trial count, root seed, stream
/// label, retry budget, and fidelity hint, executed against an [`Exec`]
/// by one of the terminal methods. See the module docs for the mapping
/// from the deprecated `Exec` entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrialPlan<'a> {
    trials: u64,
    seed: u64,
    label: Option<&'a str>,
    retry_budget: u32,
    fidelity: FidelityHint,
}

impl<'a> TrialPlan<'a> {
    /// An empty plan: zero trials, seed 0, no label (telemetry off), no
    /// retries, no fidelity hint.
    pub fn new() -> Self {
        TrialPlan::default()
    }

    /// Set the number of independent trials.
    pub fn trials(mut self, n: u64) -> Self {
        self.trials = n;
        self
    }

    /// Set the root seed trials derive their streams from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Label the plan: names the RNG stream family *and* opts into
    /// telemetry (`trials.{label}` counter + `par_trials.{label}` stage).
    pub fn label(mut self, label: &'a str) -> Self {
        self.label = Some(label);
        self
    }

    /// Per-trial retry budget for [`TrialPlan::run_resilient`].
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Attach an advisory fidelity tier (see [`FidelityHint`]).
    pub fn fidelity(mut self, hint: FidelityHint) -> Self {
        self.fidelity = hint;
        self
    }

    /// Planned trial count.
    pub fn planned_trials(&self) -> u64 {
        self.trials
    }

    /// Root seed.
    pub fn planned_seed(&self) -> u64 {
        self.seed
    }

    /// Stream label, if set.
    pub fn planned_label(&self) -> Option<&'a str> {
        self.label
    }

    /// Retry budget.
    pub fn planned_retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// Attached fidelity hint.
    pub fn fidelity_hint(&self) -> FidelityHint {
        self.fidelity
    }

    fn stream_label(&self) -> &'a str {
        self.label.unwrap_or("")
    }

    fn record_trials(&self) {
        if let Some(label) = self.label {
            crate::telemetry::counter_add(&format!("trials.{label}"), self.trials);
        }
    }

    fn staged<T>(&self, f: impl FnOnce() -> T) -> T {
        match self.label {
            Some(label) => crate::telemetry::stage(&format!("par_trials.{label}"), self.trials, f),
            None => f(),
        }
    }

    fn ctx(&self, trial: u64) -> TrialCtx<'a> {
        TrialCtx {
            trial,
            attempt: 0,
            seed: self.seed,
            label: self.stream_label(),
        }
    }

    /// Run every trial, returning results in trial order.
    ///
    /// # Panics
    /// Panics (once, with the [`mosaic_units::MosaicError::WorkerFailed`]
    /// message) if a trial closure panics; use
    /// [`TrialPlan::run_resilient`] to tolerate panicking trials, or
    /// [`Exec::try_run_tasks`] for a `Result`.
    pub fn run<T, F>(&self, exec: &Exec, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut TrialCtx) -> T + Sync,
    {
        self.record_trials();
        self.staged(|| {
            exec.run_tasks_infallible(self.trials as usize, |i| f(&mut self.ctx(i as u64)))
        })
    }

    /// Run every trial with one reusable scratch state per worker (the
    /// historic `run_tasks_with` shape, now with a [`TrialCtx`]).
    ///
    /// # Panics
    /// As [`TrialPlan::run`]; use [`Exec::try_run_tasks_with`] for a
    /// `Result`.
    pub fn run_with<S, T, FS, F>(&self, exec: &Exec, make_scratch: FS, f: F) -> Vec<T>
    where
        T: Send,
        FS: Fn() -> S + Sync,
        F: Fn(&mut TrialCtx, &mut S) -> T + Sync,
    {
        self.record_trials();
        self.staged(|| {
            match exec.try_run_tasks_with(self.trials as usize, make_scratch, |i, scratch| {
                f(&mut self.ctx(i as u64), scratch)
            }) {
                Ok(v) => v,
                Err(e) => panic!("{e}"),
            }
        })
    }

    /// Sum a `u64` statistic over all trials: the allocation-free form of
    /// [`TrialPlan::run`]`(..).iter().sum()`. Exact integer addition, so
    /// the total is thread-count invariant.
    ///
    /// # Panics
    /// As [`TrialPlan::run`].
    pub fn sum<F>(&self, exec: &Exec, f: F) -> u64
    where
        F: Fn(&mut TrialCtx) -> u64 + Sync,
    {
        self.fold(
            exec,
            || (),
            || 0u64,
            |ctx, _scratch, acc| *acc += f(ctx),
            |total, part| *total += part,
        )
    }

    /// Fold trials straight into an accumulator with per-worker scratch
    /// (the historic `fold_tasks_commutative` shape, now with a
    /// [`TrialCtx`]). The fold and `merge` must be exactly commutative
    /// and associative — see [`Exec::fold_tasks_commutative`] for the
    /// determinism contract.
    ///
    /// # Panics
    /// As [`TrialPlan::run`]; use [`Exec::try_fold_tasks_commutative`]
    /// for a `Result`.
    pub fn fold<S, A, FS, FA, F, M>(
        &self,
        exec: &Exec,
        make_scratch: FS,
        make_acc: FA,
        f: F,
        merge: M,
    ) -> A
    where
        A: Send,
        FS: Fn() -> S + Sync,
        FA: Fn() -> A + Sync,
        F: Fn(&mut TrialCtx, &mut S, &mut A) + Sync,
        M: Fn(&mut A, A),
    {
        self.record_trials();
        self.staged(|| {
            exec.fold_tasks_commutative(
                self.trials as usize,
                make_scratch,
                make_acc,
                |i, scratch, acc| f(&mut self.ctx(i as u64), scratch, acc),
                merge,
            )
        })
    }

    /// Panic-tolerant fan-out: a panicking trial is caught, counted, and
    /// retried on a fresh `"{label}#retry{attempt}"` substream under the
    /// plan's per-trial [`TrialPlan::retry_budget`]. A trial that fails
    /// every attempt yields `None` and a
    /// [`super::TrialFailure`] record instead of aborting the sweep.
    ///
    /// Attempt `0` draws from the exact stream [`TrialPlan::run`] would
    /// use, so a run where nothing panics is bit-identical to the
    /// non-resilient path. The retry budget is *per trial* — a pure
    /// function of the trial index — so `values`, `failures`, and the
    /// fault counters are all thread-count invariant (DESIGN §10).
    pub fn run_resilient<T, F>(&self, exec: &Exec, f: F) -> ResilientRun<T>
    where
        T: Send,
        F: Fn(&mut TrialCtx) -> T + Sync,
    {
        self.record_trials();
        let run = self.staged(|| {
            resilience::run_trials_resilient(
                exec,
                self.trials,
                self.seed,
                self.stream_label(),
                self.retry_budget,
                |trial, attempt, _rng| {
                    let mut ctx = TrialCtx {
                        trial,
                        attempt,
                        seed: self.seed,
                        label: self.stream_label(),
                    };
                    f(&mut ctx)
                },
            )
        });
        // Fault counters are deterministic (which (trial, attempt) pairs
        // panic is a property of the closure), so they are safe to put in
        // value-checked telemetry.
        if let Some(label) = self.label {
            if run.stats.panics > 0 {
                crate::telemetry::counter_add(&format!("trial_panics.{label}"), run.stats.panics);
            }
            if run.stats.retries > 0 {
                crate::telemetry::counter_add(&format!("trial_retries.{label}"), run.stats.retries);
            }
            if run.stats.failed_trials > 0 {
                crate::telemetry::counter_add(
                    &format!("trial_failures.{label}"),
                    run.stats.failed_trials,
                );
            }
        }
        run
    }
}

/// The deprecated entry points, kept as thin wrappers over [`TrialPlan`]
/// so existing call sites keep compiling (and stay bit-identical — the
/// wrappers delegate, they do not reimplement).
impl Exec {
    /// Run `n` independent tasks and return their results in task order.
    ///
    /// # Panics
    /// Panics (once, with the [`mosaic_units::MosaicError::WorkerFailed`]
    /// message) if a task closure panics; use [`Exec::try_run_tasks`] to
    /// handle the failure as a `Result` instead.
    #[deprecated(note = "use TrialPlan::new().trials(n).run(exec, |ctx| ...)")]
    pub fn run_tasks<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        TrialPlan::new()
            .trials(n as u64)
            .run(self, |ctx| f(ctx.trial() as usize))
    }

    /// [`Exec::run_tasks`] with one reusable scratch state per worker.
    ///
    /// # Panics
    /// As [`Exec::run_tasks`]; use [`Exec::try_run_tasks_with`] for a
    /// `Result`.
    #[deprecated(note = "use TrialPlan::new().trials(n).run_with(exec, make_state, |ctx, s| ...)")]
    pub fn run_tasks_with<S, T, FS, F>(&self, n: usize, make_state: FS, f: F) -> Vec<T>
    where
        T: Send,
        FS: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        TrialPlan::new()
            .trials(n as u64)
            .run_with(self, make_state, |ctx, s| f(ctx.trial() as usize, s))
    }

    /// Monte-Carlo fan-out summing a `u64` statistic per trial.
    ///
    /// # Panics
    /// As [`Exec::run_tasks`].
    #[deprecated(note = "use TrialPlan::new().trials(n).seed(s).label(l).sum(exec, |ctx| ...)")]
    pub fn par_trials_sum<F>(&self, n: u64, seed: u64, label: &str, f: F) -> u64
    where
        F: Fn(u64, &mut DetRng) -> u64 + Sync,
    {
        TrialPlan::new()
            .trials(n)
            .seed(seed)
            .label(label)
            .sum(self, |ctx| {
                let mut rng = ctx.rng();
                f(ctx.trial(), &mut rng)
            })
    }

    /// Monte-Carlo fan-out: `n` trials, trial `i` running against its own
    /// counter-derived stream `(seed, label, i)`.
    ///
    /// # Panics
    /// As [`Exec::run_tasks`].
    #[deprecated(note = "use TrialPlan::new().trials(n).seed(s).label(l).run(exec, |ctx| ...)")]
    pub fn par_trials<T, F>(&self, n: u64, seed: u64, label: &str, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64, &mut DetRng) -> T + Sync,
    {
        TrialPlan::new()
            .trials(n)
            .seed(seed)
            .label(label)
            .run(self, |ctx| {
                let mut rng = ctx.rng();
                f(ctx.trial(), &mut rng)
            })
    }

    /// Panic-tolerant Monte-Carlo fan-out with a per-trial retry budget.
    #[deprecated(
        note = "use TrialPlan::new().trials(n).seed(s).label(l).retry_budget(r)\
                .run_resilient(exec, |ctx| ...)"
    )]
    pub fn par_trials_resilient<T, F>(
        &self,
        n: u64,
        seed: u64,
        label: &str,
        retry_budget: u32,
        f: F,
    ) -> ResilientRun<T>
    where
        T: Send,
        F: Fn(u64, u32, &mut DetRng) -> T + Sync,
    {
        TrialPlan::new()
            .trials(n)
            .seed(seed)
            .label(label)
            .retry_budget(retry_budget)
            .run_resilient(self, |ctx| {
                let mut rng = ctx.rng();
                f(ctx.trial(), ctx.attempt(), &mut rng)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_run_preserves_order() {
        let exec = Exec::with_threads(4);
        let out = TrialPlan::new()
            .trials(100)
            .run(&exec, |ctx| ctx.trial() * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn plan_streams_are_per_trial_and_match_direct_derivation() {
        let exec = Exec::with_threads(4);
        let draws = TrialPlan::new()
            .trials(16)
            .seed(9)
            .label("t")
            .run(&exec, |ctx| ctx.rng().next_u64());
        let mut uniq = draws.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), draws.len());
        let direct = DetRng::substream_indexed(9, "t", 3).next_u64();
        assert_eq!(draws[3], direct);
    }

    #[test]
    fn plan_stream_families_match_direct_derivation() {
        let exec = Exec::with_threads(2);
        let draws = TrialPlan::new().trials(8).seed(21).run(&exec, |ctx| {
            (
                ctx.stream("rs-data").next_u64(),
                ctx.stream("rs-noise").next_u64(),
            )
        });
        assert_eq!(
            draws[5].0,
            DetRng::substream_indexed(21, "rs-data", 5).next_u64()
        );
        assert_eq!(
            draws[5].1,
            DetRng::substream_indexed(21, "rs-noise", 5).next_u64()
        );
    }

    #[test]
    fn plan_sum_matches_plan_run() {
        let seq: u64 = TrialPlan::new()
            .trials(40)
            .seed(7)
            .label("sum-t")
            .run(&Exec::with_threads(1), |ctx| ctx.rng().next_u64() >> 40)
            .iter()
            .sum();
        for threads in [1, 4, 9] {
            let summed = TrialPlan::new()
                .trials(40)
                .seed(7)
                .label("sum-t")
                .sum(&Exec::with_threads(threads), |ctx| {
                    ctx.rng().next_u64() >> 40
                });
            assert_eq!(seq, summed, "threads={threads}");
        }
    }

    #[test]
    fn plan_run_with_matches_run() {
        let plain = TrialPlan::new()
            .trials(97)
            .run(&Exec::with_threads(1), |ctx| {
                ctx.trial().wrapping_mul(2654435761)
            });
        for threads in [1, 3, 8] {
            let with = TrialPlan::new().trials(97).run_with(
                &Exec::with_threads(threads),
                Vec::<u64>::new,
                |ctx, buf| {
                    buf.clear();
                    buf.push(ctx.trial().wrapping_mul(2654435761));
                    buf[0]
                },
            );
            assert_eq!(plain, with, "threads={threads}");
        }
    }

    #[test]
    fn plan_telemetry_is_label_opt_in() {
        let exec = Exec::with_threads(2);
        let label = "sched-telemetry-probe";
        let key = format!("trials.{label}");
        let before = crate::telemetry::snapshot()
            .counters
            .get(&key)
            .copied()
            .unwrap_or(0);
        TrialPlan::new()
            .trials(13)
            .seed(1)
            .label(label)
            .run(&exec, |ctx| ctx.trial());
        let after = crate::telemetry::snapshot()
            .counters
            .get(&key)
            .copied()
            .unwrap_or(0);
        assert_eq!(after - before, 13, "labelled plan must bump trials.{label}");

        // Unlabelled plans record nothing.
        let counters_before = crate::telemetry::snapshot().counters;
        TrialPlan::new().trials(5).run(&exec, |ctx| ctx.trial());
        let counters_after = crate::telemetry::snapshot().counters;
        assert_eq!(counters_before, counters_after);
    }

    #[test]
    fn plan_fidelity_hint_is_carried() {
        let plan = TrialPlan::new().trials(10).fidelity(FidelityHint::TailMc);
        assert_eq!(plan.fidelity_hint(), FidelityHint::TailMc);
        assert_eq!(TrialPlan::new().fidelity_hint(), FidelityHint::Unspecified);
    }

    #[test]
    fn plan_resilient_retry_uses_fresh_substream_deterministically() {
        // Trial 7 panics on attempt 0 only; its retry must draw from the
        // "{label}#retry1" substream, identically at every thread count.
        let run_at = |threads: usize| {
            TrialPlan::new()
                .trials(24)
                .seed(5)
                .label("res-b")
                .retry_budget(1)
                .run_resilient(&Exec::with_threads(threads), |ctx| {
                    if ctx.trial() == 7 && ctx.attempt() == 0 {
                        panic!("transient fault");
                    }
                    ctx.rng().next_u64()
                })
        };
        let seq = run_at(1);
        assert_eq!(seq.stats.panics, 1);
        assert_eq!(seq.stats.retries, 1);
        assert_eq!(seq.stats.failed_trials, 0);
        let expected = DetRng::substream_indexed(5, "res-b#retry1", 7).next_u64();
        assert_eq!(seq.values[7], Some(expected));
        for threads in [2, 8] {
            let par = run_at(threads);
            assert_eq!(seq.values, par.values, "threads={threads}");
            assert_eq!(seq.stats.panics, par.stats.panics);
        }
    }

    #[test]
    fn plan_resilient_budget_exhaustion_yields_none() {
        let run = TrialPlan::new()
            .trials(16)
            .seed(3)
            .label("res-c")
            .retry_budget(2)
            .run_resilient(&Exec::with_threads(4), |ctx| {
                if ctx.trial() == 4 {
                    panic!("permanent fault on trial {}", ctx.trial());
                }
                ctx.rng().next_u64()
            });
        assert_eq!(run.values[4], None);
        assert_eq!(run.stats.failed_trials, 1);
        assert_eq!(run.stats.panics, 3); // attempts 0..=2 all panicked
        assert_eq!(run.stats.retries, 2);
        assert_eq!(run.failures.len(), 1);
        assert_eq!(run.failures[0].trial, 4);
        assert_eq!(run.failures[0].attempts, 3);
        assert!(run.failures[0].message.contains("permanent fault"));
        assert_eq!(run.values.iter().filter(|v| v.is_some()).count(), 15);
    }

    // The deprecated wrappers must stay bit-identical to the plans they
    // delegate to: these are compatibility tests, not new API surface.
    mod deprecated_wrappers {
        #![allow(deprecated)]
        use super::*;

        #[test]
        fn run_tasks_matches_plan_run() {
            let exec = Exec::with_threads(4);
            let old = exec.run_tasks(64, |i| i * 7);
            let new = TrialPlan::new()
                .trials(64)
                .run(&exec, |ctx| ctx.trial() as usize * 7);
            assert_eq!(old, new);
        }

        #[test]
        fn par_trials_matches_plan_run() {
            let exec = Exec::with_threads(4);
            let old = exec.par_trials(32, 11, "wrap-a", |_i, rng| rng.next_u64());
            let new = TrialPlan::new()
                .trials(32)
                .seed(11)
                .label("wrap-a")
                .run(&exec, |ctx| ctx.rng().next_u64());
            assert_eq!(old, new);
        }

        #[test]
        fn par_trials_sum_matches_plan_sum() {
            for threads in [1, 4] {
                let exec = Exec::with_threads(threads);
                let old = exec.par_trials_sum(40, 7, "wrap-b", |_i, rng| rng.next_u64() >> 40);
                let new = TrialPlan::new()
                    .trials(40)
                    .seed(7)
                    .label("wrap-b")
                    .sum(&exec, |ctx| ctx.rng().next_u64() >> 40);
                assert_eq!(old, new, "threads={threads}");
            }
        }

        #[test]
        fn run_tasks_with_matches_plan_run_with() {
            let exec = Exec::with_threads(3);
            let old = exec.run_tasks_with(97, Vec::<u64>::new, |i, buf| {
                buf.clear();
                buf.push((i as u64).wrapping_mul(2654435761));
                buf[0]
            });
            let new = TrialPlan::new()
                .trials(97)
                .run_with(&exec, Vec::<u64>::new, |ctx, buf| {
                    buf.clear();
                    buf.push(ctx.trial().wrapping_mul(2654435761));
                    buf[0]
                });
            assert_eq!(old, new);
        }

        #[test]
        fn par_trials_resilient_no_panic_matches_par_trials() {
            // With nothing panicking, attempt 0 uses the exact par_trials
            // stream, so values match bit-for-bit and counters stay zero.
            let plain = Exec::with_threads(1).par_trials(32, 11, "res-a", |_i, rng| rng.next_u64());
            for threads in [1, 8] {
                let run = Exec::with_threads(threads).par_trials_resilient(
                    32,
                    11,
                    "res-a",
                    2,
                    |_i, _attempt, rng| rng.next_u64(),
                );
                let got: Vec<u64> = run.values.iter().map(|v| v.unwrap()).collect();
                assert_eq!(plain, got, "threads={threads}");
                assert_eq!(run.stats.panics, 0);
                assert_eq!(run.stats.retries, 0);
                assert_eq!(run.stats.failed_trials, 0);
                assert!(run.failures.is_empty());
            }
        }
    }
}
