//! Deterministic parallel sweep engine.
//!
//! Split into three layers:
//!
//! - [`engine`] — the [`Exec`] worker pool: scoped threads, atomic
//!   self-scheduling, fallible `try_*` task execution, commutative
//!   folds, chunk helpers, and [`RunStats`].
//! - [`resilience`] — panic-tolerant retries: [`TrialFailure`],
//!   [`ResilientRun`], and the bounded per-trial retry loop.
//! - [`scheduler`] — the [`TrialPlan`] builder API (trials, seed, label,
//!   retry budget, fidelity hint) with its [`TrialCtx`] per-trial
//!   context, plus the deprecated `Exec` entry points it replaces.
//!
//! Everything re-exports here, so `sim::sweep::Exec` and friends keep
//! their historic paths.
//!
//! # Determinism contract
//!
//! Results are a pure function of `(config, seed)`: trial RNG streams
//! are counter-derived (`DetRng::substream_indexed`), work is claimed
//! from an atomic counter but reassembled in task order, and integer
//! statistics are summed exactly — so any `MOSAIC_THREADS` value
//! produces bit-identical output (DESIGN §4, §10).

pub mod engine;
pub mod resilience;
pub mod scheduler;

pub use engine::{chunk_count, chunk_len, measured, measured_as, Exec, RunStats, THREADS_ENV};
pub use resilience::{ResilientRun, TrialFailure};
pub use scheduler::{FidelityHint, TrialCtx, TrialPlan};
