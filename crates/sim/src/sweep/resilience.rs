//! Panic-tolerant trial execution: bounded per-trial retries on fresh
//! RNG substreams.
//!
//! A trial that panics is caught, counted, and retried on the
//! `"{label}#retry{attempt}"` substream under a per-trial retry budget —
//! a pure function of the trial index, never a shared pool, so results
//! stay thread-count invariant (see DESIGN §10). The policy surface is
//! [`super::TrialPlan::run_resilient`]; this module owns the outcome
//! types and the retry loop.

use super::engine::{Exec, RunStats};
use crate::rng::DetRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// One trial that exhausted its retry budget in
/// [`super::TrialPlan::run_resilient`] without a successful attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// Trial index in the fan-out.
    pub trial: u64,
    /// Attempts made (`1 + retry_budget`).
    pub attempts: u32,
    /// Panic message of the *last* attempt.
    pub message: String,
}

/// Outcome of a resilient fan-out: per-trial values (`None` where the
/// retry budget ran dry), the exhausted trials, and run statistics
/// including fault counters.
#[derive(Debug, Clone)]
pub struct ResilientRun<T> {
    /// Trial results in trial order; `None` marks an exhausted trial.
    pub values: Vec<Option<T>>,
    /// Trials that failed every attempt, in trial order.
    pub failures: Vec<TrialFailure>,
    /// Trial/fault statistics for the run (wall time left at zero — the
    /// caller's [`super::measured_as`] wrapper owns timing).
    pub stats: RunStats,
}

/// The retry loop behind [`super::TrialPlan::run_resilient`]: the
/// closure receives `(trial, attempt, rng)`; attempt `0` draws from the
/// exact stream the non-resilient path would use, so a run where
/// nothing panics is bit-identical to it. Telemetry (the `trials.` /
/// `par_trials.` records and the fault counters) is the caller's job —
/// this function only executes.
pub(crate) fn run_trials_resilient<T, F>(
    exec: &Exec,
    n: u64,
    seed: u64,
    label: &str,
    retry_budget: u32,
    f: F,
) -> ResilientRun<T>
where
    T: Send,
    F: Fn(u64, u32, &mut DetRng) -> T + Sync,
{
    let outcomes: Vec<(Option<T>, u32, Option<String>)> =
        exec.run_tasks_infallible(n as usize, |i| {
            let i = i as u64;
            let mut panics = 0u32;
            let mut last_msg: Option<String> = None;
            for attempt in 0..=retry_budget {
                let mut rng = if attempt == 0 {
                    // lint: allow(R5) reason=forwards the caller's plan label; collision checking happens at the literal call sites
                    DetRng::substream_indexed(seed, label, i)
                } else {
                    // lint: allow(R5) reason=retry stream derived from the caller's label; #retry{n} suffix cannot collide with a literal label
                    DetRng::substream_indexed(seed, &format!("{label}#retry{attempt}"), i)
                };
                match catch_unwind(AssertUnwindSafe(|| f(i, attempt, &mut rng))) {
                    Ok(v) => return (Some(v), panics, last_msg),
                    Err(p) => {
                        panics += 1;
                        last_msg = Some(super::engine::panic_message(p));
                    }
                }
            }
            (None, panics, last_msg)
        });
    let mut values = Vec::with_capacity(outcomes.len());
    let mut failures = Vec::new();
    let mut total_panics = 0u64;
    for (i, (value, panics, last_msg)) in outcomes.into_iter().enumerate() {
        total_panics += u64::from(panics);
        if value.is_none() {
            failures.push(TrialFailure {
                trial: i as u64,
                attempts: retry_budget + 1,
                message: last_msg.unwrap_or_else(|| "no attempt recorded".to_string()),
            });
        }
        values.push(value);
    }
    let failed_trials = failures.len() as u64;
    let retries = total_panics - failed_trials.min(total_panics);
    ResilientRun {
        values,
        failures,
        stats: RunStats {
            trials: n,
            wall: Duration::ZERO,
            threads: exec.threads(),
            panics: total_panics,
            retries,
            failed_trials,
        },
    }
}
