//! Multi-year fleet failure/repair simulation.
//!
//! Event-driven over the whole fleet: each link fails as a Poisson process
//! at its FIT rate and is repaired after a deterministic MTTR. Outputs the
//! ticket count and the fleet-level link availability — the operational
//! numbers behind T2's reliability column.

use crate::assignment::Assignment;
use mosaic_sim::event::EventQueue;
use mosaic_sim::rng::DetRng;
use mosaic_sim::sweep::{Exec, TrialPlan};
use mosaic_units::{Duration, Fit};

/// Class-level Poisson hard-failure process: `count` statistically
/// identical links, each failing at `link_fit`, superpose to one
/// exponential stream at the summed rate. Exact for exponential
/// lifetimes — this is the analytic tier both [`simulate_fleet`] and
/// `hyperfleet`'s demoted link classes run on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassFailureProcess {
    rate_per_hour: f64,
}

impl ClassFailureProcess {
    /// Process for `count` links at `link_fit` each.
    pub fn new(link_fit: Fit, count: u64) -> Self {
        ClassFailureProcess {
            rate_per_hour: link_fit.per_hour() * count as f64,
        }
    }

    /// Superposed failure rate in events per hour.
    pub fn rate_per_hour(&self) -> f64 {
        self.rate_per_hour
    }

    /// Time of the first failure, or `None` for a zero-rate class.
    /// Draws exactly one exponential when the rate is positive.
    pub fn first_failure(&self, rng: &mut DetRng) -> Option<f64> {
        if self.rate_per_hour > 0.0 {
            Some(rng.exponential(self.rate_per_hour))
        } else {
            None
        }
    }

    /// Time of the next failure after one at `now`.
    pub fn next_failure(&self, now: f64, rng: &mut DetRng) -> f64 {
        now + rng.exponential(self.rate_per_hour)
    }
}

/// Result of a fleet failure simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureSimReport {
    /// Years simulated.
    pub years: f64,
    /// Repair tickets raised.
    pub tickets: u64,
    /// Link-hours lost to outages.
    pub downtime_link_hours: f64,
    /// Bandwidth-hours lost to outages (Gb/s × hours of dead links) —
    /// what the job scheduler actually feels.
    pub capacity_lost_gbps_hours: f64,
    /// Fleet link availability (1 − lost/total link-hours).
    pub availability: f64,
}

enum Event {
    Fail { class: usize },
    Repair,
}

/// Simulate `years` of fleet operation with `mttr` per repair.
///
/// Links within one class are statistically identical, so the class-level
/// Poisson process (rate = count × per-link rate) is simulated instead of
/// every link individually — exact for exponential lifetimes and fast
/// enough for 100k-link fleets over decades.
pub fn simulate_fleet(
    assignments: &[Assignment],
    years: f64,
    mttr: Duration,
    seed: u64,
) -> FailureSimReport {
    simulate_fleet_core(
        assignments,
        years,
        mttr,
        DetRng::substream(seed, "fleet-failures"),
    )
}

/// One fleet history replica `replica` of the `(seed, replicas)` ensemble —
/// a pure function of `(seed, replica)`, so replicas can run in parallel
/// in any order (see [`simulate_fleet_ensemble`]).
pub fn simulate_fleet_replica(
    assignments: &[Assignment],
    years: f64,
    mttr: Duration,
    seed: u64,
    replica: u64,
) -> FailureSimReport {
    simulate_fleet_core(
        assignments,
        years,
        mttr,
        DetRng::substream_indexed(seed, "fleet-failures", replica),
    )
}

/// Run `replicas` independent fleet histories in parallel and return
/// them in replica order. A single fleet history is an inherently
/// sequential event cascade, so the ensemble — not the event loop — is
/// the parallel dimension; it also turns T2's single-trajectory numbers
/// into mean ± spread.
pub fn simulate_fleet_ensemble(
    exec: &Exec,
    assignments: &[Assignment],
    years: f64,
    mttr: Duration,
    seed: u64,
    replicas: u64,
) -> Vec<FailureSimReport> {
    TrialPlan::new().trials(replicas).run(exec, |ctx| {
        simulate_fleet_replica(assignments, years, mttr, seed, ctx.trial())
    })
}

fn simulate_fleet_core(
    assignments: &[Assignment],
    years: f64,
    mttr: Duration,
    mut rng: DetRng,
) -> FailureSimReport {
    let horizon_h = Duration::from_years(years).as_hours();
    let mut q: EventQueue<Event> = EventQueue::new();

    // Seed the first failure for each class.
    for (i, a) in assignments.iter().enumerate() {
        let proc = ClassFailureProcess::new(a.choice.link_fit, a.class.count as u64);
        if let Some(t) = proc.first_failure(&mut rng) {
            q.schedule(t, Event::Fail { class: i });
        }
    }

    let mut tickets = 0u64;
    let mut downtime = 0.0f64;
    let mut capacity_lost = 0.0f64;
    while let Some((t, ev)) = q.pop() {
        if t > horizon_h {
            break;
        }
        match ev {
            Event::Fail { class } => {
                tickets += 1;
                let end = (t + mttr.as_hours()).min(horizon_h);
                downtime += end - t;
                capacity_lost += (end - t) * assignments[class].choice.aggregate.as_gbps();
                q.schedule(end, Event::Repair);
                // Next failure in this class.
                let a = &assignments[class];
                let proc = ClassFailureProcess::new(a.choice.link_fit, a.class.count as u64);
                q.schedule(proc.next_failure(t, &mut rng), Event::Fail { class });
            }
            Event::Repair => {}
        }
    }

    let total_links: usize = assignments.iter().map(|a| a.class.count).sum();
    let total_link_hours = total_links as f64 * horizon_h;
    FailureSimReport {
        years,
        tickets,
        downtime_link_hours: downtime,
        capacity_lost_gbps_hours: capacity_lost,
        availability: 1.0 - downtime / total_link_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{assign, Policy};
    use crate::topology::ClosTopology;
    use mosaic::compare::candidates;
    use mosaic_units::BitRate;

    fn assignments(policy: Policy) -> Vec<crate::assignment::Assignment> {
        let classes = ClosTopology::small().link_classes();
        let cands = candidates(BitRate::from_gbps(800.0));
        assign(&classes, &cands, policy)
    }

    #[test]
    fn ticket_count_matches_expected_rate() {
        let a = assignments(Policy::AllOptics);
        let years = 10.0;
        let sim = simulate_fleet(&a, years, Duration::from_hours(24.0), 3);
        let expected: f64 = a
            .iter()
            .map(|x| x.choice.link_fit.per_hour() * x.class.count as f64)
            .sum::<f64>()
            * Duration::from_years(years).as_hours();
        let ratio = sim.tickets as f64 / expected;
        assert!(
            (0.9..1.1).contains(&ratio),
            "tickets {} expected {expected}",
            sim.tickets
        );
    }

    #[test]
    fn mosaic_fleet_raises_fewer_tickets() {
        let optics = simulate_fleet(
            &assignments(Policy::AllOptics),
            10.0,
            Duration::from_hours(24.0),
            7,
        );
        let mosaic = simulate_fleet(
            &assignments(Policy::WithMosaic),
            10.0,
            Duration::from_hours(24.0),
            7,
        );
        assert!(
            (mosaic.tickets as f64) < 0.5 * optics.tickets as f64,
            "mosaic {} vs optics {}",
            mosaic.tickets,
            optics.tickets
        );
        assert!(mosaic.availability > optics.availability);
    }

    #[test]
    fn availability_is_high_and_bounded() {
        let sim = simulate_fleet(
            &assignments(Policy::CopperPlusOptics),
            5.0,
            Duration::from_hours(24.0),
            1,
        );
        assert!(sim.availability > 0.999 && sim.availability <= 1.0);
        // Capacity-hours lost = downtime × 800G (all links same rate here).
        assert!(
            (sim.capacity_lost_gbps_hours - sim.downtime_link_hours * 800.0).abs()
                < 1e-6 * sim.capacity_lost_gbps_hours.max(1.0)
        );
    }

    #[test]
    fn deterministic() {
        let a = assignments(Policy::WithMosaic);
        let x = simulate_fleet(&a, 5.0, Duration::from_hours(24.0), 42);
        let y = simulate_fleet(&a, 5.0, Duration::from_hours(24.0), 42);
        assert_eq!(x, y);
    }

    #[test]
    fn ensemble_is_thread_count_invariant() {
        let a = assignments(Policy::AllOptics);
        let seq = simulate_fleet_ensemble(
            &Exec::with_threads(1),
            &a,
            3.0,
            Duration::from_hours(24.0),
            42,
            6,
        );
        let par = simulate_fleet_ensemble(
            &Exec::with_threads(4),
            &a,
            3.0,
            Duration::from_hours(24.0),
            42,
            6,
        );
        assert_eq!(seq, par);
        // Replicas are genuinely distinct histories.
        assert!(seq.windows(2).any(|w| w[0] != w[1]));
    }
}
