//! Parametric 3-tier Clos topologies and their link-length inventories.

use mosaic_units::Length;

/// One class of links in the fabric: same tier, same length.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkClass {
    /// Human-readable tier name ("server-tor" etc.).
    pub tier: String,
    /// Number of links of this class.
    pub count: usize,
    /// Physical span each link must cover.
    pub length: Length,
}

/// A folded-Clos (fat-tree-style) fabric described by its radixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosTopology {
    /// Servers per rack (= server-facing ToR ports).
    pub servers_per_rack: usize,
    /// Racks per row/pod.
    pub racks_per_pod: usize,
    /// Number of pods.
    pub pods: usize,
    /// Uplinks per ToR into the aggregation tier.
    pub tor_uplinks: usize,
    /// Uplinks per aggregation switch into the spine.
    pub agg_uplinks: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
}

impl ClosTopology {
    /// A small cluster: 1024 servers (32 racks × 32 servers, 2 pods).
    pub fn small() -> Self {
        ClosTopology {
            servers_per_rack: 32,
            racks_per_pod: 16,
            pods: 2,
            tor_uplinks: 8,
            agg_uplinks: 8,
            aggs_per_pod: 8,
        }
    }

    /// A large cluster: 65536 servers.
    pub fn large() -> Self {
        ClosTopology {
            servers_per_rack: 32,
            racks_per_pod: 64,
            pods: 32,
            tor_uplinks: 16,
            agg_uplinks: 16,
            aggs_per_pod: 16,
        }
    }

    /// A hyperscale region: 786,432 servers across 192 pods — about
    /// 1.28 M links, the scale where spare exhaustion and ticket rates
    /// diverge from small-fleet extrapolation (experiment F18).
    pub fn hyperscale() -> Self {
        ClosTopology {
            servers_per_rack: 32,
            racks_per_pod: 128,
            pods: 192,
            tor_uplinks: 16,
            agg_uplinks: 16,
            aggs_per_pod: 32,
        }
    }

    /// Total servers.
    pub fn servers(&self) -> usize {
        self.servers_per_rack * self.racks_per_pod * self.pods
    }

    /// The fabric's link inventory with representative lengths:
    /// server↔ToR 2 m (intra-rack), ToR↔agg 20 m (in-row/pod),
    /// agg↔spine 100 m (cross-hall).
    pub fn link_classes(&self) -> Vec<LinkClass> {
        let racks = self.racks_per_pod * self.pods;
        let aggs = self.aggs_per_pod * self.pods;
        vec![
            LinkClass {
                tier: "server-tor".into(),
                count: self.servers(),
                length: Length::from_m(2.0),
            },
            LinkClass {
                tier: "tor-agg".into(),
                count: racks * self.tor_uplinks,
                length: Length::from_m(20.0),
            },
            LinkClass {
                tier: "agg-spine".into(),
                count: aggs * self.agg_uplinks,
                length: Length::from_m(100.0),
            },
        ]
    }

    /// Total links.
    pub fn total_links(&self) -> usize {
        self.link_classes().iter().map(|c| c.count).sum()
    }
}

/// A rail-optimized AI training fabric (the GPU back-end network that
/// motivates much of the paper's power math): every GPU gets one NIC per
/// rail, same-index NICs across a pod connect to one rail switch, and
/// rail switches uplink to a spine for cross-pod traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RailTopology {
    /// GPUs per server.
    pub gpus_per_server: usize,
    /// Servers per pod (= ports per rail switch).
    pub servers_per_pod: usize,
    /// Number of pods.
    pub pods: usize,
    /// Rails (= NICs per GPU-server position; typically = GPUs/server).
    pub rails: usize,
    /// Spine uplinks per rail switch.
    pub rail_uplinks: usize,
}

impl RailTopology {
    /// A 16k-GPU training cluster: 8-GPU servers, 8 rails, 64-server pods.
    pub fn gpu_16k() -> Self {
        RailTopology {
            gpus_per_server: 8,
            servers_per_pod: 64,
            pods: 32,
            rails: 8,
            rail_uplinks: 16,
        }
    }

    /// Total GPUs.
    pub fn gpus(&self) -> usize {
        self.gpus_per_server * self.servers_per_pod * self.pods
    }

    /// The fabric's link inventory. GPU↔rail-switch runs are in-row
    /// (~15 m — squarely Mosaic's band, and today served by expensive
    /// optics because copper cannot span a row); rail↔spine crosses the
    /// hall (~100 m).
    pub fn link_classes(&self) -> Vec<LinkClass> {
        let gpu_links = self.gpus(); // one back-end NIC per GPU
        let rail_switches = self.rails * self.pods;
        vec![
            LinkClass {
                tier: "gpu-rail".into(),
                count: gpu_links,
                length: Length::from_m(15.0),
            },
            LinkClass {
                tier: "rail-spine".into(),
                count: rail_switches * self.rail_uplinks,
                length: Length::from_m(100.0),
            },
        ]
    }

    /// Total links.
    pub fn total_links(&self) -> usize {
        self.link_classes().iter().map(|c| c.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rail_cluster_counts() {
        let t = RailTopology::gpu_16k();
        assert_eq!(t.gpus(), 16384);
        let classes = t.link_classes();
        assert_eq!(classes[0].count, 16384); // one NIC link per GPU
        assert_eq!(classes[1].count, 8 * 32 * 16);
    }

    #[test]
    fn rail_fabric_is_dominated_by_mosaic_band_links() {
        // The motivation: in AI clusters the *majority* of links are
        // in-row runs that copper cannot reach — today's optics tax.
        let t = RailTopology::gpu_16k();
        let classes = t.link_classes();
        let in_band: usize = classes
            .iter()
            .filter(|c| c.length.as_m() > 2.0 && c.length.as_m() <= 50.0)
            .map(|c| c.count)
            .sum();
        let frac = in_band as f64 / t.total_links() as f64;
        assert!(frac > 0.7, "in-band fraction {frac}");
    }

    #[test]
    fn small_cluster_counts() {
        let t = ClosTopology::small();
        assert_eq!(t.servers(), 1024);
        let classes = t.link_classes();
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0].count, 1024); // server-tor
        assert_eq!(classes[1].count, 32 * 8); // tor-agg
        assert_eq!(classes[2].count, 16 * 8); // agg-spine
    }

    #[test]
    fn short_links_dominate() {
        // The fleet argument: the overwhelming majority of links live in
        // the ≤20 m band where Mosaic plays.
        for t in [ClosTopology::small(), ClosTopology::large()] {
            let classes = t.link_classes();
            let short: usize = classes
                .iter()
                .filter(|c| c.length.as_m() <= 50.0)
                .map(|c| c.count)
                .sum();
            let frac = short as f64 / t.total_links() as f64;
            assert!(frac > 0.8, "short-link fraction {frac}");
        }
    }

    #[test]
    fn large_cluster_scales() {
        let t = ClosTopology::large();
        assert_eq!(t.servers(), 65536);
        assert!(t.total_links() > 90_000);
    }

    #[test]
    fn hyperscale_cluster_exceeds_one_million_links() {
        let t = ClosTopology::hyperscale();
        assert_eq!(t.servers(), 786_432);
        assert!(
            t.total_links() > 1_000_000,
            "links {} must exceed 1M for F18",
            t.total_links()
        );
        // tor-agg (the Mosaic band at 20 m) is the dominant non-server tier.
        let classes = t.link_classes();
        assert_eq!(classes[1].count, 128 * 192 * 16);
    }
}
