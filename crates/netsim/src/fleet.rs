//! Fleet-wide rollups: power, energy per bit, expected failures.

use crate::assignment::Assignment;
use mosaic_units::{Fit, Power};
use std::collections::BTreeMap;

/// Aggregated fleet metrics for one assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Total interconnect power (all links, both ends).
    pub total_power: Power,
    /// Total links.
    pub links: usize,
    /// Summed failure rate of every link.
    pub total_fit: Fit,
    /// Expected link-failure (repair) events per year across the fleet.
    pub failures_per_year: f64,
    /// Power by technology name.
    pub power_by_tech: BTreeMap<String, Power>,
    /// Link count by technology name.
    pub links_by_tech: BTreeMap<String, usize>,
}

/// Roll up an assignment into fleet totals.
///
/// The fold runs sequentially in assignment order: each partial is two
/// multiplications, so any parallel decomposition costs more in
/// collection and reassembly than it saves (the earlier `par_sweep`
/// form also cloned every technology name into an intermediate vector;
/// its successor `rollup_with` took an `Exec` it never used, so the
/// dead parameter is gone). Assignment-order accumulation is exactly
/// what the parallel form reassembled to, so the report — including
/// float accumulation order — is unchanged, and trivially identical at
/// every thread count.
pub fn rollup(assignments: &[Assignment]) -> FleetReport {
    let mut total_power = Power::ZERO;
    let mut total_fit = Fit::ZERO;
    let mut links = 0usize;
    let mut power_by_tech: BTreeMap<String, Power> = BTreeMap::new();
    let mut links_by_tech: BTreeMap<String, usize> = BTreeMap::new();
    for a in assignments {
        let n = a.class.count as f64;
        let p = a.choice.link_power * n;
        total_power += p;
        total_fit = total_fit + a.choice.link_fit * n;
        links += a.class.count;
        // `get_mut` first so steady-state updates never clone the name.
        if let Some(v) = power_by_tech.get_mut(&a.choice.name) {
            *v += p;
        } else {
            power_by_tech.insert(a.choice.name.clone(), p);
        }
        if let Some(v) = links_by_tech.get_mut(&a.choice.name) {
            *v += a.class.count;
        } else {
            links_by_tech.insert(a.choice.name.clone(), a.class.count);
        }
    }
    // Telemetry rollup: derived from the already-folded totals (not from
    // inside the sweep), so the values are thread-count invariant.
    mosaic_sim::telemetry::counter_add("fleet.rollups", 1);
    mosaic_sim::telemetry::counter_add("fleet.links", links as u64);
    FleetReport {
        total_power,
        links,
        failures_per_year: total_fit.afr(),
        total_fit,
        power_by_tech,
        links_by_tech,
    }
}

#[cfg(test)]
mod tests {
    use crate::assignment::{assign, Policy};
    use crate::topology::ClosTopology;
    use mosaic::compare::candidates;
    use mosaic_units::BitRate;

    fn report(policy: Policy) -> super::FleetReport {
        let classes = ClosTopology::small().link_classes();
        let cands = candidates(BitRate::from_gbps(800.0));
        super::rollup(&assign(&classes, &cands, policy))
    }

    #[test]
    fn mosaic_policy_cuts_fleet_power() {
        let optics = report(Policy::AllOptics);
        let mosaic = report(Policy::WithMosaic);
        let saving = 1.0 - mosaic.total_power / optics.total_power;
        // T2's headline: fleet interconnect power drops by a large
        // double-digit fraction.
        assert!(saving > 0.5, "saving {saving:.2}");
    }

    #[test]
    fn mosaic_policy_cuts_repair_tickets() {
        let optics = report(Policy::AllOptics);
        let mosaic = report(Policy::WithMosaic);
        assert!(
            mosaic.failures_per_year < 0.5 * optics.failures_per_year,
            "mosaic {} vs optics {}",
            mosaic.failures_per_year,
            optics.failures_per_year
        );
    }

    #[test]
    fn copper_policy_sits_between() {
        let optics = report(Policy::AllOptics);
        let copper = report(Policy::CopperPlusOptics);
        let mosaic = report(Policy::WithMosaic);
        assert!(copper.total_power.as_watts() < optics.total_power.as_watts());
        assert!(mosaic.total_power.as_watts() < copper.total_power.as_watts());
    }

    #[test]
    fn rollup_counts_every_link() {
        let r = report(Policy::WithMosaic);
        assert_eq!(r.links, ClosTopology::small().total_links());
        let by_tech: usize = r.links_by_tech.values().sum();
        assert_eq!(by_tech, r.links);
    }
}
