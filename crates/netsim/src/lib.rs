//! Datacenter fleet modeling for the Mosaic reproduction (experiment T2).
//!
//! The paper motivates Mosaic at fleet scale: most datacenter links are
//! short (intra-rack and in-row), exactly the 2–50 m band where Mosaic
//! wins, so replacing the optics there moves real megawatts and real
//! repair tickets. This crate builds that argument end to end:
//!
//! * [`topology`] — parametric 3-tier Clos/fat-tree link inventories with
//!   per-tier link-length mixes;
//! * [`assignment`] — technology-selection policies mapping each link to
//!   the cheapest candidate that reaches (per `mosaic::compare`);
//! * [`fleet`] — fleet-wide power, energy/bit and failure-rate rollups;
//! * [`failure_sim`] — a multi-year discrete-event failure/repair
//!   simulation over the whole fleet;
//! * [`hyperfleet`] — the sharded, event-sourced fleet engine: 10⁶+
//!   links with per-channel fault campaigns feeding per-link degrade
//!   controllers, memory bounded by shard size, kill/resume-safe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod failure_sim;
pub mod fleet;
pub mod hyperfleet;
pub mod topology;

pub use assignment::{assign, Policy};
pub use failure_sim::ClassFailureProcess;
pub use fleet::FleetReport;
pub use hyperfleet::{FleetRollup, HyperClass, HyperFleetConfig, HyperFleetReport, RollupStore};
pub use topology::{ClosTopology, LinkClass, RailTopology};
