//! Sharded, event-sourced hyperscale fleet simulation (experiment F18).
//!
//! [`failure_sim`](crate::failure_sim) answers the T2 question — tickets
//! and availability for a ~100k-link fleet — with a class-level Poisson
//! shortcut that never exercises the per-channel fault machinery. At
//! 10⁶–10⁷ links that shortcut hides exactly the effects the paper's
//! reliability claim rests on: spare-pool exhaustion, graceful lane
//! shedding, and the repair-ticket rate those produce. This module runs
//! the real thing, at scale, within bounded memory:
//!
//! * **Sharding.** The fleet is partitioned into per-class shards of at
//!   most [`HyperFleetConfig::shard_links`] links. Every shard is a pure
//!   function of `(config, seed, shard_id)`: its hard-failure stream is
//!   `substream_indexed(seed, "hyperfleet-hardfail", shard_id)` and each
//!   link's fault campaign derives from
//!   `substream_indexed(seed, "hyperfleet-link", global_link_id)` — no
//!   state crosses shard boundaries, so shards run in any order on any
//!   thread count with bit-identical results.
//! * **Event sourcing.** Hot (spared) link classes replay multi-year
//!   per-channel fault histories: a [`FaultCampaign`] per link feeds a
//!   [`DegradeController`] through an [`EventQueue`], with the epoch
//!   replay confined to *fault windows* (the epochs in which the
//!   controller can possibly act) — the supervisory-group granularity
//!   and window bounds are documented in DESIGN §13.
//! * **Incremental rollups.** Each shard folds its history into a
//!   [`FleetRollup`] of exact integers — float accumulations are
//!   quantized once per shard ([`ROLLUP_QUANT`]) — so the cross-shard
//!   merge is commutative and associative and runs through the
//!   [`TrialPlan::fold`] machinery: thread-count invariance is by
//!   construction, not by tolerance.
//! * **Checkpointing.** Batches of shards stream their cumulative
//!   rollup through a [`RollupStore`] (the bench crate persists these as
//!   manifest-fragment-style JSON files), so a killed run resumes from
//!   the last completed batch with byte-identical final results.
//! * **Fidelity demotion.** In adaptive mode the PR 7
//!   [`FidelityController`] demotes comfortably-healthy spared classes
//!   to the analytic class-level Poisson path (exact for the hard-fail
//!   component, and channel faults are negligible by the demotion
//!   criterion); unspared classes are always Poisson — for them the
//!   superposed exponential process *is* the exact model
//!   ([`Exactness::Exact`]).

use crate::assignment::Assignment;
use crate::failure_sim::ClassFailureProcess;
use mosaic::compare::TechnologyKind;
use mosaic_link::degrade::{CtlState, DegradeConfig, DegradeController};
use mosaic_sim::event::EventQueue;
use mosaic_sim::faults::{CampaignConfig, FaultCampaign, FaultEvent, Persistence};
use mosaic_sim::fidelity::{
    Assessment, Exactness, FidelityController, FidelityMode, Tier, TierDecision,
};
use mosaic_sim::rng::DetRng;
use mosaic_sim::sweep::{Exec, TrialPlan};
use mosaic_sim::telemetry;
use mosaic_units::{BitRate, Duration, Fit, MosaicError, Result};

/// Buckets of the spare-pool occupancy histogram: bucket `i` counts
/// event-sourced links that consumed exactly `i` spares over the
/// horizon (the last bucket is `>= SPARE_BUCKETS - 1`).
pub const SPARE_BUCKETS: usize = 8;

/// Fixed-point scale for quantized rollup aggregates: per-shard float
/// sums are rounded to `1 / ROLLUP_QUANT` hour (≈ 3.4 ms) resolution at
/// the shard boundary, after which all arithmetic is exact integer
/// addition — the property that makes the shard merge commutative.
pub const ROLLUP_QUANT: f64 = (1u64 << 20) as f64;

/// Monitored bits per controller epoch (one BER window per epoch).
pub const BITS_PER_EPOCH: u64 = 4096;

/// Epochs of active-fault replay before the controller is assumed to
/// have resolved a persistent fault (quarantine via dwell limits).
const RESOLVE_CAP: usize = 16;

/// One link class in the hyperscale fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperClass {
    /// Human-readable name (`"tor-agg/Mosaic"` etc.), part of the
    /// config digest.
    pub name: String,
    /// Links of this class.
    pub links: u64,
    /// Per-link hard-failure rate (electronics, connectors — everything
    /// *not* covered by the per-channel fault campaign).
    pub link_fit: Fit,
    /// Aggregate rate per link.
    pub aggregate: BitRate,
    /// Monitored channel groups per link (0 for technologies without
    /// per-channel sparing — they run the pure Poisson path).
    pub groups: usize,
    /// Groups carrying traffic; `groups - logical_groups` is the spare
    /// pool. Must satisfy `0 < logical_groups <= groups <= 64` when
    /// `groups > 0`.
    pub logical_groups: usize,
}

impl HyperClass {
    /// Provisioned spare groups.
    pub fn spare_groups(&self) -> usize {
        self.groups.saturating_sub(self.logical_groups)
    }
}

/// Configuration of one hyperfleet simulation. A simulation is a pure
/// function of `(config, seed)`; [`HyperFleetConfig::digest`] keys the
/// checkpoint store so stale checkpoints can never resume a different
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperFleetConfig {
    /// The fleet's link classes.
    pub classes: Vec<HyperClass>,
    /// Simulated horizon in years.
    pub years: f64,
    /// Mean time to repair a failed (or rebuilt) link.
    pub mttr: Duration,
    /// Maximum links per shard — the memory bound: peak state is
    /// O(shard_links + aggregates) regardless of fleet size.
    pub shard_links: u64,
    /// Shards per checkpoint batch. Part of the config digest (a resume
    /// must replay the same batch boundaries), but *not* part of the
    /// result: rollups merge commutatively, so any batching yields the
    /// same totals.
    pub shards_per_batch: u64,
    /// Mean channel-fault arrivals per monitor group per 1000 hours.
    pub faults_per_kilo_hour: f64,
    /// Maximum duration (hours) drawn for non-permanent channel faults.
    pub max_fault_duration: usize,
    /// Fraction of channel faults that are permanent.
    pub permanent_fraction: f64,
    /// A link is rebuilt (repair ticket) once it has shed this fraction
    /// of its logical groups.
    pub rebuild_lost_fraction: f64,
    /// Full (every spared class event-sourced) or adaptive (healthy
    /// classes demoted to the Poisson path).
    pub fidelity: FidelityMode,
}

impl HyperFleetConfig {
    /// Build a hyperfleet config from a technology assignment: Mosaic
    /// links get the 12-group / 10-logical supervisory-group channel
    /// model (DESIGN §13); every other technology has no per-channel
    /// sparing and runs the Poisson path.
    pub fn from_assignments(
        assignments: &[Assignment],
        years: f64,
        mttr: Duration,
        fidelity: FidelityMode,
    ) -> Self {
        let mut classes = Vec::with_capacity(assignments.len());
        for a in assignments {
            let (groups, logical) = if a.choice.kind == TechnologyKind::Mosaic {
                (12, 10)
            } else {
                (0, 0)
            };
            classes.push(HyperClass {
                name: format!("{}/{}", a.class.tier, a.choice.name),
                links: a.class.count as u64,
                link_fit: a.choice.link_fit,
                aggregate: a.choice.aggregate,
                groups,
                logical_groups: logical,
            });
        }
        HyperFleetConfig {
            classes,
            years,
            mttr,
            shard_links: 4096,
            shards_per_batch: 32,
            faults_per_kilo_hour: 0.004,
            max_fault_duration: 24,
            permanent_fraction: 0.25,
            rebuild_lost_fraction: 0.2,
            fidelity,
        }
    }

    /// Validate every invariant the engine relies on.
    pub fn validate(&self) -> Result<()> {
        if self.classes.is_empty() {
            return Err(MosaicError::invalid_config(
                "hyperfleet_classes",
                "at least one link class is required",
            ));
        }
        for c in &self.classes {
            if c.links == 0 {
                return Err(MosaicError::invalid_config(
                    "hyperfleet_class_links",
                    format!("class {} has zero links", c.name),
                ));
            }
            if c.groups > 64 {
                return Err(MosaicError::invalid_config(
                    "hyperfleet_groups",
                    format!("class {}: groups {} > 64 (bitmask bound)", c.name, c.groups),
                ));
            }
            if (c.groups == 0) != (c.logical_groups == 0) || c.logical_groups > c.groups {
                return Err(MosaicError::invalid_config(
                    "hyperfleet_groups",
                    format!(
                        "class {}: need 0 < logical <= groups (or both zero), got {}/{}",
                        c.name, c.logical_groups, c.groups
                    ),
                ));
            }
        }
        if self.years.is_nan() || self.years <= 0.0 {
            return Err(MosaicError::invalid_config(
                "hyperfleet_years",
                "horizon must be positive",
            ));
        }
        if self.shard_links == 0 || self.shards_per_batch == 0 {
            return Err(MosaicError::invalid_config(
                "hyperfleet_sharding",
                "shard_links and shards_per_batch must be >= 1",
            ));
        }
        if self.faults_per_kilo_hour.is_nan()
            || self.faults_per_kilo_hour < 0.0
            || self.max_fault_duration == 0
        {
            return Err(MosaicError::invalid_config(
                "hyperfleet_faults",
                "fault rate must be >= 0 and max duration >= 1",
            ));
        }
        if !(0.0..=1.0).contains(&self.permanent_fraction) {
            return Err(MosaicError::invalid_config(
                "hyperfleet_faults",
                "permanent_fraction must lie in [0, 1]",
            ));
        }
        if !(self.rebuild_lost_fraction > 0.0 && self.rebuild_lost_fraction <= 1.0) {
            return Err(MosaicError::invalid_config(
                "hyperfleet_rebuild",
                "rebuild_lost_fraction must lie in (0, 1]",
            ));
        }
        Ok(())
    }

    /// Simulated horizon in hours.
    pub fn horizon_hours(&self) -> f64 {
        Duration::from_years(self.years).as_hours()
    }

    /// Total links across all classes.
    pub fn total_links(&self) -> u64 {
        self.classes.iter().map(|c| c.links).sum()
    }

    /// FNV-1a digest over the full configuration and seed — the
    /// checkpoint-store key that makes stale checkpoints unloadable.
    pub fn digest(&self, seed: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        mix(seed);
        mix(self.years.to_bits());
        mix(self.mttr.as_hours().to_bits());
        mix(self.shard_links);
        mix(self.shards_per_batch);
        mix(self.faults_per_kilo_hour.to_bits());
        mix(self.max_fault_duration as u64);
        mix(self.permanent_fraction.to_bits());
        mix(self.rebuild_lost_fraction.to_bits());
        mix(match self.fidelity {
            FidelityMode::Full => 0,
            FidelityMode::Adaptive => 1,
        });
        mix(self.classes.len() as u64);
        for c in &self.classes {
            mix(c.name.len() as u64);
            for b in c.name.bytes() {
                mix(b as u64);
            }
            mix(c.links);
            mix(c.link_fit.as_fit().to_bits());
            mix(c.aggregate.as_gbps().to_bits());
            mix(c.groups as u64);
            mix(c.logical_groups as u64);
        }
        h
    }
}

/// Which simulation path a class runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassTier {
    /// Class-level superposed-exponential hard failures only.
    Poisson,
    /// Full per-link, per-channel event-sourced history (plus the same
    /// Poisson hard-fail stream).
    EventSourced,
}

impl ClassTier {
    /// Short name for table annotations.
    pub fn name(self) -> &'static str {
        match self {
            ClassTier::Poisson => "poisson",
            ClassTier::EventSourced => "event_sourced",
        }
    }
}

/// Classify one class. Unspared classes never consult the controller
/// (their Poisson model is exact); spared classes ask the PR 7 fidelity
/// controller whether channel activity over the horizon is hot enough
/// to warrant event sourcing. Pure in `(config)` — no environment.
fn classify_class(
    ctrl: &FidelityController,
    cfg: &HyperFleetConfig,
    class: &HyperClass,
) -> (ClassTier, Option<TierDecision>) {
    if class.groups == 0 || class.spare_groups() == 0 {
        return (ClassTier::Poisson, None);
    }
    // P(a link sees >= 1 channel fault over the horizon): the hotness
    // measure, argued against a 0.5 "typical link is quiet" threshold.
    let expected = cfg.faults_per_kilo_hour / 1000.0 * class.groups as f64 * cfg.horizon_hours();
    let p = 1.0 - (-expected).exp();
    let d = ctrl.classify(&Assessment {
        analytic_p: p,
        threshold: 0.5,
        full_trials: class.links,
        exactness: Exactness::Model,
        tail_available: false,
    });
    let tier = match d.tier {
        Tier::FullMc => ClassTier::EventSourced,
        Tier::Analytic | Tier::TailMc => ClassTier::Poisson,
    };
    (tier, Some(d))
}

/// Per-class tier decisions for `cfg` — what F18 annotates in adaptive
/// mode. Pure function of the config.
pub fn class_tiers(cfg: &HyperFleetConfig) -> Vec<ClassTier> {
    let ctrl = FidelityController::new(cfg.fidelity);
    cfg.classes
        .iter()
        .map(|c| classify_class(&ctrl, cfg, c).0)
        .collect()
}

/// The fleet-wide running aggregate: every field is an exact integer,
/// so [`FleetRollup::merge`] is commutative and associative and the
/// fold result is independent of shard order and thread count. Float
/// quantities (hours) are stored in [`ROLLUP_QUANT`] fixed point,
/// quantized once per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetRollup {
    /// Shards folded in.
    pub shards: u64,
    /// Links covered.
    pub links: u64,
    /// Links that ran the event-sourced path.
    pub event_sourced_links: u64,
    /// Repair tickets (hard failures + rebuilds).
    pub tickets: u64,
    /// Hard-failure tickets (Poisson stream, all tiers).
    pub hard_failures: u64,
    /// Rebuild tickets (spare exhaustion past the rebuild threshold).
    pub rebuilds: u64,
    /// Channel-fault events drawn by the campaigns.
    pub channel_faults: u64,
    /// Spares activated across the fleet.
    pub spares_activated: u64,
    /// Logical lanes shed after spare exhaustion.
    pub lanes_shed: u64,
    /// Event-sourced links that ever shed a lane.
    pub exhausted_links: u64,
    /// Full-outage downtime, link-hours × [`ROLLUP_QUANT`].
    pub downtime_q: u128,
    /// Degraded (shed-lane) time, lane-hours × [`ROLLUP_QUANT`].
    pub degraded_q: u128,
    /// Capacity lost to outages and shed lanes, Gb/s·h × [`ROLLUP_QUANT`].
    pub capacity_lost_q: u128,
    /// Spare-pool occupancy histogram over event-sourced links.
    pub spare_occupancy: [u64; SPARE_BUCKETS],
}

impl FleetRollup {
    /// Fold another rollup in. Exact integer addition throughout:
    /// `a.merge(b)` equals `b.merge(a)` bit for bit.
    pub fn merge(&mut self, other: &FleetRollup) {
        self.shards += other.shards;
        self.links += other.links;
        self.event_sourced_links += other.event_sourced_links;
        self.tickets += other.tickets;
        self.hard_failures += other.hard_failures;
        self.rebuilds += other.rebuilds;
        self.channel_faults += other.channel_faults;
        self.spares_activated += other.spares_activated;
        self.lanes_shed += other.lanes_shed;
        self.exhausted_links += other.exhausted_links;
        self.downtime_q += other.downtime_q;
        self.degraded_q += other.degraded_q;
        self.capacity_lost_q += other.capacity_lost_q;
        for (a, b) in self.spare_occupancy.iter_mut().zip(&other.spare_occupancy) {
            *a += b;
        }
    }

    /// Full-outage downtime in link-hours.
    pub fn downtime_link_hours(&self) -> f64 {
        dequantize(self.downtime_q)
    }

    /// Degraded (shed-lane) time in lane-hours.
    pub fn degraded_lane_hours(&self) -> f64 {
        dequantize(self.degraded_q)
    }

    /// Capacity lost in Gb/s·hours.
    pub fn capacity_lost_gbps_hours(&self) -> f64 {
        dequantize(self.capacity_lost_q)
    }
}

/// Quantize a non-negative float sum at a shard boundary.
fn quantize(x: f64) -> u128 {
    (x.max(0.0) * ROLLUP_QUANT).round() as u128
}

/// Back to float for reporting.
pub fn dequantize(q: u128) -> f64 {
    q as f64 / ROLLUP_QUANT
}

/// Persistence for cumulative batch rollups — the kill/resume seam.
/// The bench crate implements this over the manifest-fragment store;
/// [`NoStore`] runs without persistence.
pub trait RollupStore {
    /// Load the cumulative rollup checkpointed after `batch`, if present
    /// and stamped with `digest`.
    fn load(&mut self, batch: u64, digest: u64) -> Option<FleetRollup>;
    /// Persist the cumulative rollup after `batch`.
    fn save(&mut self, batch: u64, digest: u64, rollup: &FleetRollup) -> Result<()>;
}

/// A [`RollupStore`] that never persists: every run starts fresh.
#[derive(Debug, Default)]
pub struct NoStore;

impl RollupStore for NoStore {
    fn load(&mut self, _batch: u64, _digest: u64) -> Option<FleetRollup> {
        None
    }
    fn save(&mut self, _batch: u64, _digest: u64, _rollup: &FleetRollup) -> Result<()> {
        Ok(())
    }
}

/// One shard: a contiguous run of links within one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShardSpec {
    /// Global shard index (the hard-fail substream index).
    shard_id: u64,
    /// Index into `cfg.classes`.
    class: usize,
    /// Global id of the shard's first link (the campaign substream base).
    first_link: u64,
    /// Links in this shard.
    links: u64,
    /// Event-sourced (true) or Poisson-only (false).
    event_sourced: bool,
}

/// Deterministic shard layout: classes in config order, each split into
/// `ceil(links / shard_links)` shards; link ids are global across the
/// concatenated classes. Independent of thread count and batch size.
fn shard_specs(cfg: &HyperFleetConfig, tiers: &[ClassTier]) -> Vec<ShardSpec> {
    let mut specs = Vec::new();
    let mut shard_id = 0u64;
    let mut link_base = 0u64;
    for (ci, class) in cfg.classes.iter().enumerate() {
        let event_sourced = tiers[ci] == ClassTier::EventSourced;
        let mut first = 0u64;
        while first < class.links {
            let links = (class.links - first).min(cfg.shard_links);
            specs.push(ShardSpec {
                shard_id,
                class: ci,
                first_link: link_base + first,
                links,
                event_sourced,
            });
            shard_id += 1;
            first += links;
        }
        link_base += class.links;
    }
    specs
}

/// Hard-failure accumulator for [`drain_hard_failures`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HardFailTally {
    /// Failure tickets raised.
    pub tickets: u64,
    /// Link-hours of full outage.
    pub downtime_h: f64,
    /// Gb/s·hours lost to those outages.
    pub capacity_lost: f64,
}

/// Drain one shard's class-level Poisson hard-failure stream through a
/// pre-sized [`EventQueue`]: schedule the first failure, then walk
/// failure → repair → next failure to the horizon, accruing into
/// `tally`. Allocation-free after queue warm-up (lint rule R4): the
/// queue holds at most one pending event because repairs are accounted
/// at failure time.
pub fn drain_hard_failures(
    queue: &mut EventQueue<()>,
    rng: &mut DetRng,
    process: ClassFailureProcess,
    horizon_h: f64,
    mttr_h: f64,
    aggregate_gbps: f64,
    tally: &mut HardFailTally,
) {
    queue.reset();
    if let Some(t0) = process.first_failure(rng) {
        if t0 < horizon_h {
            queue.schedule(t0, ());
        }
    }
    while let Some((t, ())) = queue.pop() {
        tally.tickets += 1;
        let end = (t + mttr_h).min(horizon_h);
        tally.downtime_h += end - t;
        tally.capacity_lost += (end - t) * aggregate_gbps;
        let next = process.next_failure(t, rng);
        if next < horizon_h {
            queue.schedule(next, ());
        }
    }
}

/// Replay controller epochs `from_epoch..=to_epoch` of one link against
/// its campaign: active faults feed errors (or hard-dead reports) to
/// their monitor groups, quiet Suspect groups receive clean bits so
/// hysteresis can clear them, and the controller steps once per epoch.
/// Events starting before `rebuild_floor` belong to hardware that has
/// since been replaced and are skipped. Allocation-free on a warmed
/// controller (lint rule R4): the per-epoch active set is a u64 bitmask
/// (`groups <= 64`, enforced by config validation).
pub fn replay_fault_window(
    ctl: &mut DegradeController,
    events: &[FaultEvent],
    from_epoch: usize,
    to_epoch: usize,
    rebuild_floor: usize,
    bits_per_epoch: u64,
) {
    let physical = ctl.lane_map().logical_lanes() + ctl.provisioned_spares();
    for epoch in from_epoch..=to_epoch {
        let mut touched: u64 = 0;
        for ev in events {
            if ev.start < rebuild_floor || !ev.active_at(epoch) {
                continue;
            }
            touched |= 1u64 << (ev.channel as u64 & 63);
            let eff = ev.effect();
            if eff.dead {
                ctl.mark_dead(ev.channel);
            } else if eff.extra_ber > 0.0 {
                let errors = (eff.extra_ber.min(0.5) * bits_per_epoch as f64).round() as u64;
                if errors > 0 {
                    ctl.record(ev.channel, bits_per_epoch, errors);
                }
            }
        }
        for g in 0..physical {
            if touched & (1u64 << (g as u64 & 63)) != 0 {
                continue;
            }
            if ctl.state(g) == CtlState::Suspect {
                ctl.record(g, bits_per_epoch, 0);
            }
        }
        ctl.step();
    }
}

/// The degrade policy hyperfleet runs its supervisory groups under:
/// one 4096-bit window per hourly epoch, short dwells so a fault
/// window of [`RESOLVE_CAP`] + tail epochs always resolves.
pub fn degrade_policy() -> DegradeConfig {
    DegradeConfig {
        window_bits: BITS_PER_EPOCH,
        max_windows: 2,
        suspect_ber: 1e-4,
        clear_ber: 1e-5,
        quarantine_ber: 0.2,
        suspect_dwell_limit: 6,
        clear_epochs: 2,
        spared_dwell_limit: 4,
    }
}

/// Per-class replay constants, hoisted out of the per-link loop.
#[derive(Debug, Clone, Copy)]
struct ReplayParams {
    horizon_h: f64,
    horizon_epochs: usize,
    mttr_h: f64,
    logical: usize,
    rebuild_lanes: usize,
    tail: usize,
    aggregate_gbps: f64,
    group_gbps: f64,
}

impl ReplayParams {
    fn of(cfg: &HyperFleetConfig, class: &HyperClass) -> ReplayParams {
        let pol = degrade_policy();
        let horizon_h = cfg.horizon_hours();
        let logical = class.logical_groups;
        ReplayParams {
            horizon_h,
            horizon_epochs: horizon_h as usize,
            mttr_h: cfg.mttr.as_hours(),
            logical,
            rebuild_lanes: ((cfg.rebuild_lost_fraction * logical as f64).ceil() as usize).max(1),
            tail: pol.suspect_dwell_limit + pol.clear_epochs + 2,
            aggregate_gbps: class.aggregate.as_gbps(),
            group_gbps: class.aggregate.as_gbps() / logical.max(1) as f64,
        }
    }
}

/// Per-link discrete events: a campaign fault coming due, or a rebuilt
/// link returning to service.
#[derive(Debug, Clone, Copy)]
enum LinkEvent {
    Fault(u32),
    Rebuild,
}

/// Float accumulator for one shard; quantized once into a
/// [`FleetRollup`] when the shard completes.
#[derive(Debug, Clone, Copy, Default)]
struct ShardTally {
    tickets: u64,
    hard_failures: u64,
    rebuilds: u64,
    channel_faults: u64,
    spares_activated: u64,
    lanes_shed: u64,
    exhausted_links: u64,
    downtime_h: f64,
    degraded_lane_h: f64,
    capacity_lost: f64,
    occupancy: [u64; SPARE_BUCKETS],
}

/// Accrue shed-lane degradation from `last_t` to `t`.
fn accrue(tally: &mut ShardTally, shed: usize, group_gbps: f64, last_t: &mut f64, t: f64) {
    if t > *last_t && shed > 0 {
        let dt = t - *last_t;
        tally.degraded_lane_h += dt * shed as f64;
        tally.capacity_lost += dt * shed as f64 * group_gbps;
    }
    *last_t = t;
}

/// Replay one event-sourced link's multi-year history.
fn run_link_history(
    p: &ReplayParams,
    campaign: &FaultCampaign,
    ctl: &mut DegradeController,
    queue: &mut EventQueue<LinkEvent>,
    tally: &mut ShardTally,
) {
    queue.reset();
    ctl.reset();
    let events = campaign.events();
    for (i, ev) in events.iter().enumerate() {
        queue.schedule(ev.start as f64, LinkEvent::Fault(i as u32));
    }
    let mut done_through = 0usize; // first epoch not yet replayed
    let mut rebuild_floor = 0usize; // events starting earlier are void
    let mut rebuilding = false;
    let mut shed = 0usize; // lanes currently shed since last rebuild
    let mut last_t = 0.0f64; // shed-accrual cursor
    let mut link_spares = 0u64;
    let mut exhausted = false;
    let mut prev_spares = 0usize;
    let mut prev_lost = 0usize;
    while let Some((t, ev)) = queue.pop() {
        match ev {
            LinkEvent::Fault(i) => {
                tally.channel_faults += 1;
                if rebuilding {
                    continue; // link is out for repair; fault is moot
                }
                let fe = &events[i as usize];
                if fe.start < rebuild_floor {
                    continue; // struck hardware that has been replaced
                }
                let span = match fe.persistence {
                    Persistence::Permanent => RESOLVE_CAP,
                    _ => fe.duration.min(RESOLVE_CAP),
                };
                let from = fe.start.max(done_through);
                let to = (fe.start + span + p.tail).min(p.horizon_epochs.saturating_sub(1));
                if from > to {
                    continue; // window already covered by an earlier replay
                }
                replay_fault_window(ctl, events, from, to, rebuild_floor, BITS_PER_EPOCH);
                done_through = to + 1;
                let sp = ctl.spares_activated();
                let lost = ctl.lost_lanes();
                let dsp = (sp - prev_spares) as u64;
                let dlost = lost - prev_lost;
                prev_spares = sp;
                prev_lost = lost;
                link_spares += dsp;
                tally.spares_activated += dsp;
                if dlost > 0 {
                    exhausted = true;
                    tally.lanes_shed += dlost as u64;
                    accrue(tally, shed, p.group_gbps, &mut last_t, t);
                    shed = (shed + dlost).min(p.logical);
                    if shed >= p.rebuild_lanes {
                        tally.tickets += 1;
                        tally.rebuilds += 1;
                        let end = (t + p.mttr_h).min(p.horizon_h);
                        tally.downtime_h += end - t;
                        tally.capacity_lost += (end - t) * p.aggregate_gbps;
                        rebuilding = true;
                        if end < p.horizon_h {
                            queue.schedule(end, LinkEvent::Rebuild);
                        } else {
                            // Outage runs past the horizon: the full-rate
                            // charge above covers it, stop shed accrual.
                            shed = 0;
                            last_t = p.horizon_h;
                        }
                    }
                }
            }
            LinkEvent::Rebuild => {
                // Hardware swap: fresh controller state, full spare
                // pool; faults on the old hardware are void.
                ctl.reset();
                prev_spares = 0;
                prev_lost = 0;
                rebuild_floor = t.ceil() as usize;
                done_through = done_through.max(rebuild_floor);
                rebuilding = false;
                shed = 0;
                last_t = t;
            }
        }
    }
    if !rebuilding {
        accrue(tally, shed, p.group_gbps, &mut last_t, p.horizon_h);
    }
    tally.occupancy[(link_spares as usize).min(SPARE_BUCKETS - 1)] += 1;
    if exhausted {
        tally.exhausted_links += 1;
    }
}

/// Per-worker scratch: the reusable controller, and pre-sized event
/// queues, so the steady-state shard loop allocates only per-link
/// campaign vectors.
struct ShardScratch {
    ctl: Option<DegradeController>,
    geometry: Option<(usize, usize)>,
    hard_queue: EventQueue<()>,
    link_queue: EventQueue<LinkEvent>,
}

impl ShardScratch {
    fn new() -> ShardScratch {
        ShardScratch {
            ctl: None,
            geometry: None,
            hard_queue: EventQueue::with_capacity(2),
            link_queue: EventQueue::with_capacity(64),
        }
    }
}

/// Run one shard to completion: a pure function of
/// `(config, seed, shard_id)` returning its quantized rollup.
fn run_shard(
    cfg: &HyperFleetConfig,
    spec: &ShardSpec,
    seed: u64,
    scratch: &mut ShardScratch,
) -> FleetRollup {
    let class = &cfg.classes[spec.class];
    let mut tally = ShardTally::default();
    let mut hard = HardFailTally::default();
    let mut rng = DetRng::substream_indexed(seed, "hyperfleet-hardfail", spec.shard_id);
    drain_hard_failures(
        &mut scratch.hard_queue,
        &mut rng,
        ClassFailureProcess::new(class.link_fit, spec.links),
        cfg.horizon_hours(),
        cfg.mttr.as_hours(),
        class.aggregate.as_gbps(),
        &mut hard,
    );
    tally.tickets += hard.tickets;
    tally.hard_failures += hard.tickets;
    tally.downtime_h += hard.downtime_h;
    tally.capacity_lost += hard.capacity_lost;
    let mut event_sourced_links = 0u64;
    if spec.event_sourced {
        event_sourced_links = spec.links;
        let p = ReplayParams::of(cfg, class);
        let geometry = (class.logical_groups, class.groups);
        if scratch.geometry != Some(geometry) {
            scratch.ctl = Some(
                DegradeController::try_new(geometry.0, geometry.1, degrade_policy())
                    .expect("validated geometry"),
            );
            scratch.geometry = Some(geometry);
        }
        let ctl = scratch.ctl.as_mut().expect("controller just installed");
        let camp_cfg = CampaignConfig {
            channels: class.groups,
            epochs: p.horizon_epochs,
            faults_per_kilo_epoch: cfg.faults_per_kilo_hour,
            max_duration: cfg.max_fault_duration,
            permanent_fraction: cfg.permanent_fraction,
        };
        for l in 0..spec.links {
            let link_seed =
                DetRng::substream_indexed(seed, "hyperfleet-link", spec.first_link + l).next_u64();
            let campaign = FaultCampaign::generate(camp_cfg, link_seed);
            if campaign.events().is_empty() {
                tally.occupancy[0] += 1;
                continue;
            }
            run_link_history(&p, &campaign, ctl, &mut scratch.link_queue, &mut tally);
        }
    }
    FleetRollup {
        shards: 1,
        links: spec.links,
        event_sourced_links,
        tickets: tally.tickets,
        hard_failures: tally.hard_failures,
        rebuilds: tally.rebuilds,
        channel_faults: tally.channel_faults,
        spares_activated: tally.spares_activated,
        lanes_shed: tally.lanes_shed,
        exhausted_links: tally.exhausted_links,
        downtime_q: quantize(tally.downtime_h),
        degraded_q: quantize(tally.degraded_lane_h),
        capacity_lost_q: quantize(tally.capacity_lost),
        spare_occupancy: tally.occupancy,
    }
}

/// The finished fleet report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperFleetReport {
    /// Years simulated.
    pub years: f64,
    /// Total links simulated.
    pub links: u64,
    /// The merged fleet rollup.
    pub rollup: FleetRollup,
    /// Fleet link availability (1 − full-outage link-hours / total).
    pub availability: f64,
    /// Fraction of the provisioned capacity actually delivered
    /// (accounts for outages *and* shed-lane degradation).
    pub delivered_capacity_fraction: f64,
    /// Repair tickets per 1000 links per year.
    pub tickets_per_1k_link_years: f64,
    /// Fraction of event-sourced links that ever shed a lane.
    pub spare_exhausted_fraction: f64,
}

fn finish(cfg: &HyperFleetConfig, rollup: FleetRollup) -> HyperFleetReport {
    let horizon_h = cfg.horizon_hours();
    let links = cfg.total_links();
    let link_hours = links as f64 * horizon_h;
    let capacity_hours: f64 = cfg
        .classes
        .iter()
        .map(|c| c.links as f64 * c.aggregate.as_gbps() * horizon_h)
        .sum();
    telemetry::counter_add("hyperfleet.shards", rollup.shards);
    telemetry::counter_add("hyperfleet.links", rollup.links);
    telemetry::counter_add("hyperfleet.tickets", rollup.tickets);
    telemetry::counter_add("hyperfleet.hard_failures", rollup.hard_failures);
    telemetry::counter_add("hyperfleet.rebuilds", rollup.rebuilds);
    telemetry::counter_add("hyperfleet.channel_faults", rollup.channel_faults);
    telemetry::counter_add("hyperfleet.spares_activated", rollup.spares_activated);
    telemetry::counter_add("hyperfleet.lanes_shed", rollup.lanes_shed);
    telemetry::counter_add("hyperfleet.exhausted_links", rollup.exhausted_links);
    HyperFleetReport {
        years: cfg.years,
        links,
        rollup,
        availability: 1.0 - rollup.downtime_link_hours() / link_hours,
        delivered_capacity_fraction: 1.0 - rollup.capacity_lost_gbps_hours() / capacity_hours,
        tickets_per_1k_link_years: rollup.tickets as f64 / (links as f64 / 1000.0) / cfg.years,
        spare_exhausted_fraction: if rollup.event_sourced_links > 0 {
            rollup.exhausted_links as f64 / rollup.event_sourced_links as f64
        } else {
            0.0
        },
    }
}

/// Run the full simulation with checkpointing: shards execute in
/// batches of [`HyperFleetConfig::shards_per_batch`], each batch fanned
/// out through [`TrialPlan::fold`] and the cumulative rollup saved to
/// `store`. On entry the store is scanned (newest batch first) and the
/// run resumes after the last valid checkpoint. `stop_after_batches`
/// limits the batches executed *this invocation* (the kill/resume
/// drill); `Ok(None)` means the run stopped early and can be resumed.
pub fn simulate_with(
    cfg: &HyperFleetConfig,
    seed: u64,
    exec: &Exec,
    store: &mut dyn RollupStore,
    stop_after_batches: Option<u64>,
) -> Result<Option<HyperFleetReport>> {
    cfg.validate()?;
    let ctrl = FidelityController::new(cfg.fidelity);
    let mut tiers = Vec::with_capacity(cfg.classes.len());
    for class in &cfg.classes {
        let (tier, decision) = classify_class(&ctrl, cfg, class);
        if let Some(d) = decision {
            ctrl.note_decision(class.links, &d);
        }
        tiers.push(tier);
    }
    let specs = shard_specs(cfg, &tiers);
    let digest = cfg.digest(seed);
    let spb = cfg.shards_per_batch as usize;
    let batches = specs.len().div_ceil(spb);
    let mut cumulative = FleetRollup::default();
    let mut start_batch = 0usize;
    for b in (0..batches).rev() {
        if let Some(r) = store.load(b as u64, digest) {
            cumulative = r;
            start_batch = b + 1;
            break;
        }
    }
    for (executed, b) in (start_batch..batches).enumerate() {
        if let Some(limit) = stop_after_batches {
            if executed as u64 >= limit {
                return Ok(None);
            }
        }
        let first = b * spb;
        let batch = &specs[first..specs.len().min(first + spb)];
        let part = TrialPlan::new()
            .trials(batch.len() as u64)
            .seed(seed)
            .label("hyperfleet")
            .fold(
                exec,
                ShardScratch::new,
                FleetRollup::default,
                |ctx, scratch, acc| {
                    let r = run_shard(cfg, &batch[ctx.trial() as usize], seed, scratch);
                    acc.merge(&r);
                },
                |total, other| total.merge(&other),
            );
        cumulative.merge(&part);
        store.save(b as u64, digest, &cumulative)?;
    }
    Ok(Some(finish(cfg, cumulative)))
}

/// [`simulate_with`] without persistence or early stop.
pub fn simulate(cfg: &HyperFleetConfig, seed: u64, exec: &Exec) -> Result<HyperFleetReport> {
    match simulate_with(cfg, seed, exec, &mut NoStore, None)? {
        Some(report) => Ok(report),
        // Unreachable: no stop limit was set.
        None => Err(MosaicError::invalid_config(
            "hyperfleet_stop",
            "simulation stopped without a stop limit",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_units::{BitRate, Duration, Fit};

    fn tiny_cfg(fidelity: FidelityMode) -> HyperFleetConfig {
        HyperFleetConfig {
            classes: vec![
                HyperClass {
                    name: "poisson/SR".into(),
                    links: 500,
                    link_fit: Fit::new(1000.0),
                    aggregate: BitRate::from_gbps(800.0),
                    groups: 0,
                    logical_groups: 0,
                },
                HyperClass {
                    name: "hot/Mosaic".into(),
                    links: 300,
                    link_fit: Fit::new(120.0),
                    aggregate: BitRate::from_gbps(800.0),
                    groups: 12,
                    logical_groups: 10,
                },
            ],
            years: 2.0,
            mttr: Duration::from_hours(24.0),
            shard_links: 64,
            shards_per_batch: 4,
            faults_per_kilo_hour: 0.02,
            max_fault_duration: 24,
            permanent_fraction: 0.25,
            rebuild_lost_fraction: 0.2,
            fidelity,
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = tiny_cfg(FidelityMode::Full);
        assert!(cfg.validate().is_ok());
        cfg.classes[1].groups = 65;
        assert!(cfg.validate().is_err());
        let mut cfg = tiny_cfg(FidelityMode::Full);
        cfg.classes[1].logical_groups = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = tiny_cfg(FidelityMode::Full);
        cfg.shard_links = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = tiny_cfg(FidelityMode::Full);
        cfg.rebuild_lost_fraction = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn digest_distinguishes_configs_and_seeds() {
        let cfg = tiny_cfg(FidelityMode::Full);
        let mut other = cfg.clone();
        other.years = 3.0;
        assert_ne!(cfg.digest(1), other.digest(1));
        assert_ne!(cfg.digest(1), cfg.digest(2));
        assert_eq!(cfg.digest(1), tiny_cfg(FidelityMode::Full).digest(1));
    }

    #[test]
    fn full_mode_event_sources_spared_classes() {
        let cfg = tiny_cfg(FidelityMode::Full);
        let tiers = class_tiers(&cfg);
        assert_eq!(tiers[0], ClassTier::Poisson); // unspared: always exact
        assert_eq!(tiers[1], ClassTier::EventSourced);
    }

    #[test]
    fn adaptive_mode_demotes_quiet_spared_classes() {
        let mut cfg = tiny_cfg(FidelityMode::Adaptive);
        // Hot at the default rate (p ~ 1): stays event-sourced.
        assert_eq!(class_tiers(&cfg)[1], ClassTier::EventSourced);
        // Comfortably healthy: expected faults per link << 1 over the
        // horizon, multiple decades from the 0.5 threshold → demoted.
        cfg.faults_per_kilo_hour = 1e-5;
        assert_eq!(class_tiers(&cfg)[1], ClassTier::Poisson);
        // Full mode never demotes, whatever the rate.
        cfg.fidelity = FidelityMode::Full;
        assert_eq!(class_tiers(&cfg)[1], ClassTier::EventSourced);
    }

    #[test]
    fn rollup_merge_is_commutative() {
        let cfg = tiny_cfg(FidelityMode::Full);
        let tiers = class_tiers(&cfg);
        let specs = shard_specs(&cfg, &tiers);
        let mut scratch = ShardScratch::new();
        let rollups: Vec<FleetRollup> = specs
            .iter()
            .map(|s| run_shard(&cfg, s, 7, &mut scratch))
            .collect();
        let mut forward = FleetRollup::default();
        for r in &rollups {
            forward.merge(r);
        }
        let mut backward = FleetRollup::default();
        for r in rollups.iter().rev() {
            backward.merge(r);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.links, cfg.total_links());
    }

    #[test]
    fn shards_are_pure_functions_of_config_seed_shard() {
        let cfg = tiny_cfg(FidelityMode::Full);
        let tiers = class_tiers(&cfg);
        let specs = shard_specs(&cfg, &tiers);
        let mut s1 = ShardScratch::new();
        let mut s2 = ShardScratch::new();
        // Same shard, fresh vs reused scratch, any order: identical.
        let a = run_shard(&cfg, &specs[3], 7, &mut s1);
        let _ = run_shard(&cfg, &specs[0], 7, &mut s2);
        let b = run_shard(&cfg, &specs[3], 7, &mut s2);
        assert_eq!(a, b);
    }

    #[test]
    fn simulate_is_thread_count_invariant() {
        let cfg = tiny_cfg(FidelityMode::Full);
        let base = simulate(&cfg, 11, &Exec::with_threads(1)).unwrap();
        for threads in [2, 8] {
            let other = simulate(&cfg, 11, &Exec::with_threads(threads)).unwrap();
            assert_eq!(base, other, "threads={threads}");
        }
        assert!(base.availability > 0.9 && base.availability <= 1.0);
        assert!(base.rollup.tickets > 0, "a 2-year fleet must raise tickets");
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let mut cfg = tiny_cfg(FidelityMode::Full);
        let base = simulate(&cfg, 5, &Exec::with_threads(2)).unwrap();
        cfg.shards_per_batch = 1;
        let fine = simulate(&cfg, 5, &Exec::with_threads(2)).unwrap();
        assert_eq!(base.rollup, fine.rollup);
    }

    #[test]
    fn stop_and_resume_through_a_store_is_byte_identical() {
        #[derive(Default)]
        struct MemStore(std::collections::BTreeMap<u64, (u64, FleetRollup)>);
        impl RollupStore for MemStore {
            fn load(&mut self, batch: u64, digest: u64) -> Option<FleetRollup> {
                self.0
                    .get(&batch)
                    .filter(|(d, _)| *d == digest)
                    .map(|(_, r)| *r)
            }
            fn save(&mut self, batch: u64, digest: u64, r: &FleetRollup) -> Result<()> {
                self.0.insert(batch, (digest, *r));
                Ok(())
            }
        }
        let cfg = tiny_cfg(FidelityMode::Full);
        let exec = Exec::with_threads(2);
        let clean = simulate(&cfg, 9, &exec).unwrap();
        let mut store = MemStore::default();
        // Killed after one batch...
        let stopped = simulate_with(&cfg, 9, &exec, &mut store, Some(1)).unwrap();
        assert!(stopped.is_none());
        assert!(!store.0.is_empty());
        // ...resumed to completion: identical to the uninterrupted run.
        let resumed = simulate_with(&cfg, 9, &exec, &mut store, None)
            .unwrap()
            .expect("resume runs to completion");
        assert_eq!(clean, resumed);
        // A digest mismatch (different seed) must ignore the checkpoints.
        let fresh = simulate_with(&cfg, 10, &exec, &mut store, None)
            .unwrap()
            .expect("fresh run completes");
        assert_ne!(clean.rollup, fresh.rollup);
    }

    #[test]
    fn poisson_tier_matches_class_process_expectation() {
        // A Poisson-only fleet's ticket count should track rate × time.
        let mut cfg = tiny_cfg(FidelityMode::Full);
        cfg.classes.truncate(1);
        cfg.classes[0].links = 20_000;
        cfg.years = 10.0;
        let report = simulate(&cfg, 3, &Exec::with_threads(4)).unwrap();
        let expected =
            cfg.classes[0].link_fit.per_hour() * cfg.classes[0].links as f64 * cfg.horizon_hours();
        let ratio = report.rollup.tickets as f64 / expected;
        assert!((0.9..1.1).contains(&ratio), "tickets ratio {ratio}");
        assert_eq!(report.rollup.hard_failures, report.rollup.tickets);
        assert_eq!(report.rollup.event_sourced_links, 0);
    }

    #[test]
    fn event_sourcing_produces_channel_activity() {
        let cfg = tiny_cfg(FidelityMode::Full);
        let report = simulate(&cfg, 13, &Exec::with_threads(2)).unwrap();
        let r = &report.rollup;
        assert_eq!(r.event_sourced_links, 300);
        assert!(r.channel_faults > 0, "campaigns must draw faults");
        assert!(r.spares_activated > 0, "faults must consume spares");
        let hist_total: u64 = r.spare_occupancy.iter().sum();
        assert_eq!(hist_total, r.event_sourced_links);
        assert!(report.delivered_capacity_fraction > 0.9);
        assert!(report.spare_exhausted_fraction < 0.5);
    }
}
