//! Technology-selection policies over a fabric's link classes.

use crate::topology::LinkClass;
use mosaic::compare::{winner_at, LinkCandidate, TechnologyKind};

/// Which technologies a deployment is willing to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Optics everywhere (the conservative incumbent fleet).
    AllOptics,
    /// Copper where it reaches, optics elsewhere (today's cost-optimized
    /// fleet).
    CopperPlusOptics,
    /// Copper, then Mosaic, then optics — the paper's proposal.
    WithMosaic,
}

impl Policy {
    /// Candidate kinds admitted by this policy.
    pub fn admits(self, kind: TechnologyKind) -> bool {
        match self {
            Policy::AllOptics => {
                matches!(
                    kind,
                    TechnologyKind::Sr | TechnologyKind::Dr | TechnologyKind::Lpo
                )
            }
            Policy::CopperPlusOptics => !matches!(kind, TechnologyKind::Mosaic),
            Policy::WithMosaic => true,
        }
    }
}

/// One link class resolved to a technology.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The link class being served.
    pub class: LinkClass,
    /// The chosen candidate.
    pub choice: LinkCandidate,
}

/// Assign every link class the cheapest admitted candidate that reaches.
///
/// # Panics
/// Panics if some class cannot be served at all under the policy (a
/// mis-specified fabric).
pub fn assign(
    classes: &[LinkClass],
    candidates: &[LinkCandidate],
    policy: Policy,
) -> Vec<Assignment> {
    classes
        .iter()
        .map(|class| {
            let admitted: Vec<LinkCandidate> = candidates
                .iter()
                .filter(|c| policy.admits(c.kind))
                .cloned()
                .collect();
            let choice = winner_at(&admitted, class.length)
                .unwrap_or_else(|| {
                    panic!(
                        "no admitted technology reaches {} for {}",
                        class.length, class.tier
                    )
                })
                .clone();
            Assignment {
                class: class.clone(),
                choice,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic::compare::candidates;
    use mosaic_units::{BitRate, Length};

    fn classes() -> Vec<LinkClass> {
        crate::topology::ClosTopology::small().link_classes()
    }

    fn cands() -> Vec<LinkCandidate> {
        candidates(BitRate::from_gbps(800.0))
    }

    #[test]
    fn with_mosaic_policy_uses_mosaic_in_row() {
        let a = assign(&classes(), &cands(), Policy::WithMosaic);
        let by_tier: Vec<(&str, TechnologyKind)> = a
            .iter()
            .map(|x| (x.class.tier.as_str(), x.choice.kind))
            .collect();
        assert_eq!(by_tier[0], ("server-tor", TechnologyKind::Dac));
        assert_eq!(by_tier[1], ("tor-agg", TechnologyKind::Mosaic));
        assert_eq!(by_tier[2].0, "agg-spine");
        assert!(matches!(
            by_tier[2].1,
            TechnologyKind::Dr | TechnologyKind::Lpo
        ));
    }

    #[test]
    fn copper_plus_optics_never_picks_mosaic() {
        let a = assign(&classes(), &cands(), Policy::CopperPlusOptics);
        assert!(a.iter().all(|x| x.choice.kind != TechnologyKind::Mosaic));
    }

    #[test]
    fn all_optics_picks_only_optics() {
        let a = assign(&classes(), &cands(), Policy::AllOptics);
        for x in &a {
            assert!(matches!(
                x.choice.kind,
                TechnologyKind::Sr | TechnologyKind::Dr | TechnologyKind::Lpo
            ));
        }
    }

    #[test]
    #[should_panic]
    fn unreachable_class_panics() {
        let class = LinkClass {
            tier: "intercontinental".into(),
            count: 1,
            length: Length::from_km(100.0),
        };
        let _ = assign(&[class], &cands(), Policy::WithMosaic);
    }
}
