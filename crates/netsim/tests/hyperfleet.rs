//! Integration tests for the hyperfleet engine: thread-count and
//! batch-size invariance of the merged rollup at F18-like scale, resume
//! equivalence through a checkpoint store killed at every batch
//! boundary, and a property sweep over randomized small fleets.

use mosaic_netsim::hyperfleet::{
    simulate, simulate_with, FleetRollup, HyperClass, HyperFleetConfig, RollupStore,
};
use mosaic_sim::fidelity::FidelityMode;
use mosaic_sim::sweep::Exec;
use mosaic_units::{BitRate, Duration, Fit, Result};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn fleet_cfg(mosaic_links: u64, optics_links: u64, years: f64) -> HyperFleetConfig {
    HyperFleetConfig {
        classes: vec![
            HyperClass {
                name: "tor-agg/Mosaic".into(),
                links: mosaic_links,
                link_fit: Fit::new(120.0),
                aggregate: BitRate::from_gbps(800.0),
                groups: 12,
                logical_groups: 10,
            },
            HyperClass {
                name: "agg-spine/optics".into(),
                links: optics_links,
                link_fit: Fit::new(1200.0),
                aggregate: BitRate::from_gbps(800.0),
                groups: 0,
                logical_groups: 0,
            },
        ],
        years,
        mttr: Duration::from_hours(8.0),
        shard_links: 256,
        shards_per_batch: 4,
        faults_per_kilo_hour: 0.05,
        max_fault_duration: 24,
        permanent_fraction: 0.25,
        rebuild_lost_fraction: 0.2,
        fidelity: FidelityMode::Full,
    }
}

/// An in-memory store that records every checkpoint.
#[derive(Default)]
struct MemStore {
    saved: BTreeMap<u64, (u64, FleetRollup)>,
}

impl RollupStore for MemStore {
    fn load(&mut self, batch: u64, digest: u64) -> Option<FleetRollup> {
        self.saved
            .get(&batch)
            .filter(|(d, _)| *d == digest)
            .map(|(_, r)| *r)
    }
    fn save(&mut self, batch: u64, digest: u64, rollup: &FleetRollup) -> Result<()> {
        self.saved.insert(batch, (digest, *rollup));
        Ok(())
    }
}

#[test]
fn rollup_is_byte_identical_across_1_2_8_threads() {
    // ~6k links (12 event-sourced batches' worth) — big enough that the
    // 8-thread fold interleaves shard completions in earnest.
    let cfg = fleet_cfg(4096, 2048, 2.0);
    let base = simulate(&cfg, 505, &Exec::with_threads(1)).unwrap();
    assert!(base.rollup.channel_faults > 0, "faults must have fired");
    assert!(base.rollup.spares_activated > 0, "spares must have moved");
    for threads in [2, 8] {
        let r = simulate(&cfg, 505, &Exec::with_threads(threads)).unwrap();
        // FleetRollup is all integers: equality here is bit-exactness.
        assert_eq!(r.rollup, base.rollup, "threads={threads}");
        assert_eq!(r, base, "threads={threads}");
    }
}

#[test]
fn kill_at_every_batch_boundary_resumes_byte_identically() {
    let cfg = fleet_cfg(1024, 512, 1.5);
    let exec = Exec::with_threads(4);
    let clean = simulate(&cfg, 7, &exec).unwrap();
    let batches = (1024 / 256 + 512 / 256 + 3) / 4 + 1; // upper bound
    for stop in 1..=batches {
        let mut store = MemStore::default();
        // Run with a per-invocation batch limit until completion, as a
        // kill/restart loop would.
        let mut finished = None;
        for _ in 0..=batches {
            match simulate_with(&cfg, 7, &exec, &mut store, Some(stop as u64)).unwrap() {
                Some(report) => {
                    finished = Some(report);
                    break;
                }
                None => continue,
            }
        }
        let report = finished.expect("run must finish within the batch budget");
        assert_eq!(report, clean, "stop-after={stop}");
    }
}

#[test]
fn checkpoints_from_a_different_config_are_never_resumed() {
    let cfg_a = fleet_cfg(1024, 512, 1.5);
    let mut cfg_b = fleet_cfg(1024, 512, 1.5);
    cfg_b.faults_per_kilo_hour = 0.08;
    let exec = Exec::with_threads(2);
    let mut store = MemStore::default();
    // Partially run config A, then complete config B through the same
    // store: B must ignore A's checkpoints (digest mismatch) and match
    // a storeless run exactly.
    assert!(simulate_with(&cfg_a, 9, &exec, &mut store, Some(1))
        .unwrap()
        .is_none());
    let resumed = simulate_with(&cfg_b, 9, &exec, &mut store, None)
        .unwrap()
        .expect("no stop limit");
    let clean = simulate(&cfg_b, 9, &exec).unwrap();
    assert_eq!(resumed, clean);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariance holds over randomized small fleets, not just the
    /// hand-picked configs: any (links, rate, shard size, batch size)
    /// yields the same rollup at 1 and 4 threads and at a different
    /// batching.
    #[test]
    fn random_fleets_are_thread_and_batch_invariant(
        mosaic_links in 1u64..600,
        optics_links in 0u64..600,
        shard_links in 32u64..200,
        spb in 1u64..6,
        rate in 0.0f64..0.2,
        seed in 0u64..1000,
    ) {
        // At least one class must have links.
        let optics_links = optics_links.max(1);
        let mut cfg = fleet_cfg(mosaic_links, optics_links, 1.0);
        cfg.shard_links = shard_links;
        cfg.shards_per_batch = spb;
        cfg.faults_per_kilo_hour = rate;
        let base = simulate(&cfg, seed, &Exec::with_threads(1)).unwrap();
        let par = simulate(&cfg, seed, &Exec::with_threads(4)).unwrap();
        prop_assert_eq!(par.rollup, base.rollup);
        let mut rebatched = cfg.clone();
        rebatched.shards_per_batch = spb + 3;
        let re = simulate(&rebatched, seed, &Exec::with_threads(4)).unwrap();
        prop_assert_eq!(re.rollup, base.rollup);
    }
}
