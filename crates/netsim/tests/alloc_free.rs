//! Proof of the "allocation-free inner event loops" claim for the
//! hyperfleet engine: a counting global allocator wraps the system
//! allocator, and `drain_hard_failures` / `replay_fault_window` must
//! not touch it once their queue/controller state is warmed — at 10⁶+
//! links every shard streams through these, so a single per-link
//! allocation would dominate the run.
//!
//! Cross-checked against the `mosaic_lint` R4 no-alloc registry (the
//! sim- and fec-side twins are `crates/sim/tests/alloc_free.rs` and
//! `crates/fec/tests/alloc_free.rs`). Everything runs in a single
//! `#[test]` so no concurrent test can pollute the process-wide
//! counter.

use mosaic_link::degrade::DegradeController;
use mosaic_netsim::failure_sim::ClassFailureProcess;
use mosaic_netsim::hyperfleet::{self, HardFailTally, BITS_PER_EPOCH};
use mosaic_sim::event::EventQueue;
use mosaic_sim::faults::{CampaignConfig, FaultCampaign};
use mosaic_sim::rng::DetRng;
use mosaic_units::Fit;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations observed while running `f`.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

#[test]
fn hyperfleet_event_loops_do_not_allocate() {
    // --- Hard-failure stream: the queue holds at most one pending event,
    //     so a with_capacity(2) queue never regrows ----------------------
    let mut queue = EventQueue::<()>::with_capacity(2);
    let mut rng = DetRng::substream(11, "alloc-free-hardfail");
    let process = ClassFailureProcess::new(Fit::new(2000.0), 4096);
    let mut tally = HardFailTally::default();
    // Warm-up: one full drain before the first counter read, so the
    // libtest harness's own startup allocations cannot race the
    // measurement.
    hyperfleet::drain_hard_failures(
        &mut queue, &mut rng, process, 26280.0, 8.0, 800.0, &mut tally,
    );
    std::thread::sleep(std::time::Duration::from_millis(20));
    let n = allocs_during(|| {
        for _ in 0..8 {
            hyperfleet::drain_hard_failures(
                &mut queue, &mut rng, process, 26280.0, 8.0, 800.0, &mut tally,
            );
        }
    });
    assert_eq!(n, 0, "drain_hard_failures allocated {n} times");
    assert!(tally.tickets > 0, "the stream must have drawn failures");

    // --- Fault-window replay: controller containers (lane map, health
    //     histories, transition log) reach steady capacity on the first
    //     replay; reset() keeps the storage, so an identical replay is
    //     allocation-free -----------------------------------------------
    let mut ctl =
        DegradeController::try_new(10, 12, hyperfleet::degrade_policy()).expect("valid geometry");
    let campaign = FaultCampaign::generate(
        CampaignConfig {
            channels: 12,
            epochs: 2000,
            faults_per_kilo_epoch: 2.0,
            max_duration: 24,
            permanent_fraction: 0.25,
        },
        0x5eed,
    );
    let events = campaign.events();
    assert!(!events.is_empty(), "campaign must have drawn faults");
    hyperfleet::replay_fault_window(&mut ctl, events, 0, 1999, 0, BITS_PER_EPOCH);
    let warm_transitions = ctl.transitions().len();
    ctl.reset();
    let n = allocs_during(|| {
        hyperfleet::replay_fault_window(&mut ctl, events, 0, 1999, 0, BITS_PER_EPOCH);
    });
    assert_eq!(n, 0, "replay_fault_window allocated {n} times");
    // The replay is deterministic: the warmed capacities were exactly
    // refilled, so the zero count above measured real controller work.
    assert_eq!(ctl.transitions().len(), warm_transitions);
    assert!(
        warm_transitions > 0,
        "the replay must have driven the controller"
    );
}
