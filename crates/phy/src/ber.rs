//! Q-factor and bit-error-rate math, plus receiver sensitivity solving.
//!
//! The Gaussian-noise Q-factor formalism is the standard tool for optical
//! link budgets: with decision levels `i1 > i0` and per-level RMS noise
//! `σ1, σ0`, the optimum-threshold error rate for OOK is
//! `BER = Q(q)` with `q = (i1 − i0)/(σ1 + σ0)` and `Q(·)` the normal tail.

use crate::math::{normal_tail, normal_tail_inv, solve_increasing};
use crate::noise::NoiseBudget;
use crate::photodiode::Photodiode;
use mosaic_units::{Db, Power};

/// Q-factor for OOK given the two photocurrent levels and their noise.
pub fn q_factor_ook(i1: f64, i0: f64, sigma1: f64, sigma0: f64) -> f64 {
    assert!(sigma1 > 0.0 && sigma0 > 0.0, "noise must be positive");
    (i1 - i0) / (sigma1 + sigma0)
}

/// OOK bit-error rate at Q-factor `q`.
pub fn ber_ook(q: f64) -> f64 {
    normal_tail(q)
}

/// PAM4 bit-error rate at per-eye Q-factor `q`, Gray-coded:
/// `BER ≈ (3/4)·Q(q)` (3 eyes, 2 bits/symbol, adjacent-level errors).
pub fn ber_pam4(q: f64) -> f64 {
    0.75 * normal_tail(q)
}

/// The Q-factor required to achieve a target OOK BER.
pub fn q_for_ber(ber: f64) -> f64 {
    normal_tail_inv(ber)
}

/// An OOK optical receiver: photodiode + noise budget + the transmitter's
/// extinction ratio, enough to answer "what average power do I need?".
#[derive(Debug, Clone, PartialEq)]
pub struct OokReceiver {
    /// The detector.
    pub pd: Photodiode,
    /// The noise environment (TIA thermal + shot + optional RIN).
    pub noise: NoiseBudget,
    /// Transmitter extinction ratio `P1/P0` (linear, > 1).
    pub extinction_ratio: f64,
}

impl OokReceiver {
    /// Split an average received power into the one/zero levels implied by
    /// the extinction ratio: `P1 = 2·P·r/(r+1)`, `P0 = 2·P/(r+1)`.
    pub fn levels(&self, avg: Power) -> (Power, Power) {
        let r = self.extinction_ratio;
        assert!(r > 1.0, "extinction ratio must exceed 1, got {r}");
        let p = avg.as_watts();
        (
            Power::from_watts(2.0 * p * r / (r + 1.0)),
            Power::from_watts(2.0 * p / (r + 1.0)),
        )
    }

    /// Q-factor at a given average received power.
    pub fn q_at(&self, avg: Power) -> f64 {
        let (p1, p0) = self.levels(avg);
        let i1 = self.pd.photocurrent(p1) + self.pd.dark_current_a;
        let i0 = self.pd.photocurrent(p0) + self.pd.dark_current_a;
        q_factor_ook(i1, i0, self.noise.total_a(i1), self.noise.total_a(i0))
    }

    /// BER at a given average received power.
    pub fn ber_at(&self, avg: Power) -> f64 {
        ber_ook(self.q_at(avg))
    }

    /// Sensitivity: the lowest average received power achieving `target_ber`.
    /// Returns `None` if no power below ~1 W suffices (broken configuration).
    pub fn sensitivity(&self, target_ber: f64) -> Option<Power> {
        let q_target = q_for_ber(target_ber);
        let w = solve_increasing(1e-12, 1e-6, q_target, |p_w| {
            self.q_at(Power::from_watts(p_w))
        })?;
        if w > 1.0 {
            return None;
        }
        Some(Power::from_watts(w))
    }

    /// Link margin in dB between a received power and the sensitivity for
    /// `target_ber` (positive = healthy).
    pub fn margin(&self, received: Power, target_ber: f64) -> Option<Db> {
        let sens = self.sensitivity(target_ber)?;
        Some(received.ratio_to(sens))
    }
}

/// A PAM4 optical receiver: four equally spaced levels between the "off"
/// and "on" powers implied by the extinction ratio, three decision eyes,
/// Gray coding. Used for the Mosaic rate-scaling study (each channel
/// carries 2 bits/symbol at the same LED bandwidth, paying ~3× amplitude
/// per eye).
#[derive(Debug, Clone, PartialEq)]
pub struct Pam4Receiver {
    /// The detector.
    pub pd: Photodiode,
    /// The noise environment.
    pub noise: NoiseBudget,
    /// Outer extinction ratio `P3/P0` (linear, > 1).
    pub extinction_ratio: f64,
}

impl Pam4Receiver {
    /// The four level powers for an average received power.
    pub fn levels(&self, avg: Power) -> [Power; 4] {
        let r = self.extinction_ratio;
        assert!(r > 1.0, "extinction ratio must exceed 1, got {r}");
        // avg = (P0 + P1 + P2 + P3)/4 with equal spacing: avg = (P0+P3)/2.
        let p0 = 2.0 * avg.as_watts() / (r + 1.0);
        let p3 = p0 * r;
        let step = (p3 - p0) / 3.0;
        [
            Power::from_watts(p0),
            Power::from_watts(p0 + step),
            Power::from_watts(p0 + 2.0 * step),
            Power::from_watts(p3),
        ]
    }

    /// The worst per-eye Q-factor at an average received power (the top
    /// eye is worst: shot noise grows with level).
    pub fn q_at(&self, avg: Power) -> f64 {
        let levels = self.levels(avg);
        let currents: Vec<f64> = levels
            .iter()
            .map(|&p| self.pd.photocurrent(p) + self.pd.dark_current_a)
            .collect();
        (0..3)
            .map(|i| {
                q_factor_ook(
                    currents[i + 1],
                    currents[i],
                    self.noise.total_a(currents[i + 1]),
                    self.noise.total_a(currents[i]),
                )
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Gray-coded PAM4 BER at an average received power.
    pub fn ber_at(&self, avg: Power) -> f64 {
        ber_pam4(self.q_at(avg))
    }

    /// Sensitivity: lowest average power achieving `target_ber`.
    pub fn sensitivity(&self, target_ber: f64) -> Option<Power> {
        // BER = 0.75·Q(q) ⇒ required q = Q⁻¹(target/0.75).
        let q_target = normal_tail_inv((target_ber / 0.75).min(0.5));
        let w = solve_increasing(1e-12, 1e-6, q_target, |p_w| {
            self.q_at(Power::from_watts(p_w))
        })?;
        if w > 1.0 {
            return None;
        }
        Some(Power::from_watts(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_units::Frequency;
    use proptest::prelude::*;

    fn mosaic_rx() -> OokReceiver {
        OokReceiver {
            pd: Photodiode::silicon_blue(),
            noise: NoiseBudget {
                thermal_a: 3.0e-12 * (1.4e9f64).sqrt(),
                bandwidth: Frequency::from_ghz(1.4),
                rin_db_per_hz: None,
            },
            extinction_ratio: 6.0,
        }
    }

    #[test]
    fn q_anchors() {
        assert!((ber_ook(7.034) - 1e-12).abs() < 2e-13);
        assert!((q_for_ber(2.4e-4) - 3.49).abs() < 0.01);
    }

    #[test]
    fn pam4_worse_than_ook_at_same_swing() {
        // With the same total amplitude and noise, PAM4's per-eye Q is a
        // third of NRZ's — that 9.5 dB penalty dwarfs the 0.75 prefactor.
        let q_nrz = 6.0;
        assert!(ber_pam4(q_nrz / 3.0) > 1e3 * ber_ook(q_nrz));
    }

    #[test]
    fn mosaic_channel_sensitivity_is_tens_of_microwatts() {
        // A 2 Gb/s blue channel at the KP4 pre-FEC threshold should need
        // only a few µW average — this is what makes an LED launch viable.
        let rx = mosaic_rx();
        let sens = rx.sensitivity(2.4e-4).expect("solvable");
        assert!(
            sens.as_uw() > 0.3 && sens.as_uw() < 30.0,
            "sensitivity {sens} out of expected range"
        );
    }

    #[test]
    fn ber_at_sensitivity_matches_target() {
        let rx = mosaic_rx();
        let sens = rx.sensitivity(1e-6).unwrap();
        let ber = rx.ber_at(sens);
        assert!(ber > 0.5e-6 && ber < 2e-6, "got {ber}");
    }

    #[test]
    fn margin_positive_above_sensitivity() {
        let rx = mosaic_rx();
        let sens = rx.sensitivity(2.4e-4).unwrap();
        let m = rx.margin(sens.apply(Db::new(3.0)), 2.4e-4).unwrap();
        assert!((m.as_db() - 3.0).abs() < 0.01);
    }

    #[test]
    fn rin_degrades_sensitivity() {
        let mut rx = mosaic_rx();
        let clean = rx.sensitivity(1e-9).unwrap();
        rx.noise.rin_db_per_hz = Some(-125.0);
        let noisy = rx.sensitivity(1e-9).unwrap();
        assert!(noisy.as_watts() > clean.as_watts());
    }

    fn mosaic_pam4_rx() -> Pam4Receiver {
        Pam4Receiver {
            pd: Photodiode::silicon_blue(),
            noise: NoiseBudget {
                thermal_a: 3.0e-12 * (1.4e9f64).sqrt(),
                bandwidth: Frequency::from_ghz(1.4),
                rin_db_per_hz: None,
            },
            extinction_ratio: 6.0,
        }
    }

    #[test]
    fn pam4_levels_equally_spaced_and_average_correct() {
        let rx = mosaic_pam4_rx();
        let avg = Power::from_uw(40.0);
        let l = rx.levels(avg);
        let mean: f64 = l.iter().map(|p| p.as_watts()).sum::<f64>() / 4.0;
        assert!((mean / avg.as_watts() - 1.0).abs() < 1e-9);
        let d1 = l[1].as_watts() - l[0].as_watts();
        let d2 = l[2].as_watts() - l[1].as_watts();
        let d3 = l[3].as_watts() - l[2].as_watts();
        assert!((d1 - d2).abs() < 1e-15 && (d2 - d3).abs() < 1e-15);
        assert!((l[3].as_watts() / l[0].as_watts() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn pam4_needs_roughly_three_times_the_power() {
        // Same noise, same target: PAM4's per-eye swing is ~1/3 of OOK's,
        // so its sensitivity is ~4.4–5 dB worse (thermal-dominated).
        let ook = mosaic_rx().sensitivity(2.4e-4).unwrap();
        let pam4 = mosaic_pam4_rx().sensitivity(2.4e-4).unwrap();
        let ratio = pam4.as_watts() / ook.as_watts();
        assert!(ratio > 2.3 && ratio < 3.5, "ratio {ratio}");
    }

    #[test]
    fn pam4_sensitivity_inverts_ber() {
        let rx = mosaic_pam4_rx();
        let s = rx.sensitivity(1e-6).unwrap();
        let ber = rx.ber_at(s);
        assert!(ber > 0.5e-6 && ber < 2e-6, "got {ber}");
    }

    proptest! {
        #[test]
        fn pam4_ber_monotone_in_power(uw1 in 1f64..200.0, uw2 in 1f64..200.0) {
            let rx = mosaic_pam4_rx();
            let (lo, hi) = if uw1 < uw2 { (uw1, uw2) } else { (uw2, uw1) };
            prop_assert!(rx.ber_at(Power::from_uw(lo)) >= rx.ber_at(Power::from_uw(hi)) - 1e-30);
        }

        #[test]
        fn ber_monotone_in_power(uw1 in 0.5f64..100.0, uw2 in 0.5f64..100.0) {
            let rx = mosaic_rx();
            let (lo, hi) = if uw1 < uw2 { (uw1, uw2) } else { (uw2, uw1) };
            prop_assert!(rx.ber_at(Power::from_uw(lo)) >= rx.ber_at(Power::from_uw(hi)) - 1e-30);
        }

        #[test]
        fn higher_extinction_never_hurts(er1 in 2f64..20.0, er2 in 2f64..20.0, uw in 1f64..50.0) {
            let (lo, hi) = if er1 < er2 { (er1, er2) } else { (er2, er1) };
            let mut rx = mosaic_rx();
            rx.extinction_ratio = lo;
            let q_lo = rx.q_at(Power::from_uw(uw));
            rx.extinction_ratio = hi;
            let q_hi = rx.q_at(Power::from_uw(uw));
            prop_assert!(q_hi >= q_lo - 1e-12);
        }
    }
}
