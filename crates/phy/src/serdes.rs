//! Electrical I/O (SerDes) energy models.
//!
//! These curves are the quantitative heart of the wide-and-slow argument.
//! An electrical lane's energy/bit depends on what it has to drive:
//!
//! * **short reach** (mm–cm, on-package or chip-to-nearby-module): simple
//!   CMOS drivers/samplers, no equalization — a flat fraction of a pJ/bit
//!   regardless of rate (until the rate itself demands equalization);
//! * **long reach** (host trace + connector + cable/module): CTLE +
//!   FFE/DFE + CDR whose complexity grows superlinearly with lane rate,
//!   following the transceiver-survey trend `e(r) = e_ref · (r/r_ref)^γ`.
//!
//! Mosaic channels terminate in the first category at ~2 G/lane; the
//! narrow-and-fast baselines live in the second at 50–112 G/lane.

use crate::params::serdes as p;
use mosaic_units::{BitRate, EnergyPerBit};

/// What the electrical lane has to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SerdesReach {
    /// Millimetres to centimetres, unequalized (XSR/USR class).
    ShortReach,
    /// Host PCB trace + connector (LR/MR class, heavily equalized).
    LongReach,
}

/// Transmit+receive energy per bit for one electrical lane at `rate`.
pub fn lane_energy(rate: BitRate, reach: SerdesReach) -> EnergyPerBit {
    let r = rate.as_gbps();
    assert!(r > 0.0, "lane rate must be positive");
    match reach {
        SerdesReach::ShortReach => {
            // Flat base with a mild rise once the rate forces fractional
            // equalization (above ~25 G even XSR lanes add some TX FFE).
            let rise = 1.0 + (r / 100.0).powi(2);
            EnergyPerBit::from_pj_per_bit(p::SHORT_REACH_BASE_PJ * rise)
        }
        SerdesReach::LongReach => {
            let scaled = p::LR_REF_PJ * (r / p::LR_REF_RATE_GBPS).powf(p::LR_EXPONENT);
            // Equalized lanes never get cheaper than an unequalized lane
            // plus a CDR, no matter how slow they run.
            let floor = p::SHORT_REACH_BASE_PJ + p::CDR_FLOOR_PJ;
            EnergyPerBit::from_pj_per_bit(scaled.max(floor))
        }
    }
}

/// Clock-recovery energy for a receiving lane (paid once per lane even in
/// the short-reach case when the lane crosses a plesiochronous boundary —
/// e.g. each Mosaic receive channel recovers its own clock).
pub fn cdr_energy() -> EnergyPerBit {
    EnergyPerBit::from_pj_per_bit(p::CDR_FLOOR_PJ)
}

/// Total lane *power* at a rate/reach — convenience for budget tables.
pub fn lane_power(rate: BitRate, reach: SerdesReach) -> mosaic_units::Power {
    lane_energy(rate, reach).power_at(rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn survey_anchor_points() {
        let e25 = lane_energy(BitRate::from_gbps(25.0), SerdesReach::LongReach);
        let e112 = lane_energy(BitRate::from_gbps(112.0), SerdesReach::LongReach);
        let e224 = lane_energy(BitRate::from_gbps(224.0), SerdesReach::LongReach);
        assert!((e25.as_pj_per_bit() - 2.0).abs() < 0.1, "{e25}");
        assert!(
            e112.as_pj_per_bit() > 5.0 && e112.as_pj_per_bit() < 6.5,
            "{e112}"
        );
        assert!(
            e224.as_pj_per_bit() > 8.5 && e224.as_pj_per_bit() < 11.0,
            "{e224}"
        );
    }

    #[test]
    fn short_reach_is_sub_pj_at_mosaic_rates() {
        let e = lane_energy(BitRate::from_gbps(2.0), SerdesReach::ShortReach);
        assert!(e.as_pj_per_bit() < 0.5, "{e}");
    }

    #[test]
    fn long_reach_power_superlinear_in_rate() {
        // Doubling the lane rate should more than double lane power.
        let p56 = lane_power(BitRate::from_gbps(56.0), SerdesReach::LongReach);
        let p112 = lane_power(BitRate::from_gbps(112.0), SerdesReach::LongReach);
        assert!(p112.as_watts() > 2.2 * p56.as_watts());
    }

    #[test]
    fn equal_aggregate_wide_and_slow_wins() {
        // 800 G as 8×100 G long-reach vs 400×2 G short-reach (+CDR each):
        // the wide-and-slow electrical bill must be several times smaller.
        let fast = lane_power(BitRate::from_gbps(100.0), SerdesReach::LongReach) * 8.0;
        let slow = (lane_power(BitRate::from_gbps(2.0), SerdesReach::ShortReach)
            + cdr_energy().power_at(BitRate::from_gbps(2.0)))
            * 400.0;
        assert!(
            fast.as_watts() > 3.0 * slow.as_watts(),
            "fast={fast} slow={slow}"
        );
    }

    proptest! {
        #[test]
        fn long_reach_energy_monotone(r1 in 5f64..250.0, r2 in 5f64..250.0) {
            let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
            let e_lo = lane_energy(BitRate::from_gbps(lo), SerdesReach::LongReach);
            let e_hi = lane_energy(BitRate::from_gbps(hi), SerdesReach::LongReach);
            prop_assert!(e_lo.as_pj_per_bit() <= e_hi.as_pj_per_bit() + 1e-12);
        }

        #[test]
        fn long_reach_never_below_short_reach(r in 1f64..250.0) {
            let rate = BitRate::from_gbps(r);
            prop_assert!(
                lane_energy(rate, SerdesReach::LongReach).as_pj_per_bit()
                    >= lane_energy(rate, SerdesReach::ShortReach).as_pj_per_bit() * 0.99
            );
        }
    }
}
