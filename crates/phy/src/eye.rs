//! Inter-symbol interference and eye-opening analysis.
//!
//! Mosaic runs each channel close to (or a little above) the LED's −3 dB
//! bandwidth, so ISI is the dominant deterministic penalty. We model the
//! channel as a first-order lowpass (the LED's carrier response is a single
//! dominant pole) and compute the worst-case eye closure exactly, plus a
//! pattern-exhaustive simulator used to validate the closed form.

use mosaic_units::{BitRate, Db, Frequency};

/// Response of a first-order lowpass to one bit period: starting from
/// output level `y`, driving toward target `b` for time `t_bit` with time
/// constant `tau`, the end-of-period output.
fn settle(y: f64, b: f64, alpha: f64) -> f64 {
    b + (y - b) * alpha
}

/// The per-bit decay factor `α = exp(−T/τ)` for bit rate `rate` through a
/// first-order channel with −3 dB bandwidth `f3db`.
pub fn decay_factor(rate: BitRate, f3db: Frequency) -> f64 {
    let tau = 1.0 / (2.0 * core::f64::consts::PI * f3db.as_hz());
    let t_bit = 1.0 / rate.as_bps();
    (-t_bit / tau).exp()
}

/// Worst-case eye opening (fraction of full swing, 0..1) for NRZ through a
/// first-order channel, sampling at the end of each bit period.
///
/// The worst "one" is a single 1 after a long run of 0s (`1 − α`); the worst
/// "zero" is a single 0 after a long run of 1s (`α`); the eye is their
/// difference, `1 − 2α`, floored at zero (closed eye).
pub fn worst_case_eye_opening(rate: BitRate, f3db: Frequency) -> f64 {
    (1.0 - 2.0 * decay_factor(rate, f3db)).max(0.0)
}

/// ISI power penalty in dB (a non-negative *loss* to subtract from the link
/// budget), or `None` if the eye is fully closed at this rate/bandwidth.
///
/// Optical links budget eye closure as a power penalty because receiver Q
/// scales with the eye amplitude: `penalty = −10·log10(eye_opening)`.
pub fn isi_penalty(rate: BitRate, f3db: Frequency) -> Option<Db> {
    let eye = worst_case_eye_opening(rate, f3db);
    if eye <= 0.0 {
        None
    } else {
        Some(Db::from_linear(eye).invert()) // positive dB of penalty
    }
}

/// The highest NRZ bit rate with at least `min_eye` worst-case eye opening
/// through a first-order channel: solves `1 − 2α = min_eye` in closed form.
pub fn max_rate_for_eye(f3db: Frequency, min_eye: f64) -> BitRate {
    assert!(
        (0.0..1.0).contains(&min_eye),
        "eye fraction must be in [0,1)"
    );
    let alpha = (1.0 - min_eye) / 2.0;
    let tau = 1.0 / (2.0 * core::f64::consts::PI * f3db.as_hz());
    // T = −τ·ln(α)
    BitRate::from_bps(1.0 / (-tau * alpha.ln()))
}

/// Exhaustively simulate all `2^n`-bit patterns through the first-order
/// channel and report `(worst_one, best_zero_complement)` sample levels and
/// the measured eye opening. Used in tests to validate the closed form and
/// available to experiments for eye-diagram style output.
pub fn exhaustive_eye(rate: BitRate, f3db: Frequency, pattern_bits: u32) -> EyeMeasurement {
    assert!(
        (2..=16).contains(&pattern_bits),
        "pattern length must be 2..=16"
    );
    let alpha = decay_factor(rate, f3db);
    let n = pattern_bits;
    let mut min_one = f64::INFINITY;
    let mut max_zero = f64::NEG_INFINITY;
    // March every pattern, letting the channel reach the pattern-dependent
    // state; the final bit's sample is classified by the final bit value.
    for pattern in 0u32..(1 << n) {
        // Start from the worst prior state for this pattern's last bit.
        let last = (pattern >> (n - 1)) & 1;
        let mut y = if last == 1 { 0.0 } else { 1.0 };
        for k in 0..n {
            let b = ((pattern >> k) & 1) as f64;
            y = settle(y, b, alpha);
        }
        if last == 1 {
            min_one = min_one.min(y);
        } else {
            max_zero = max_zero.max(y);
        }
    }
    EyeMeasurement {
        worst_one_level: min_one,
        worst_zero_level: max_zero,
        eye_opening: (min_one - max_zero).max(0.0),
    }
}

/// Result of an exhaustive eye sweep (levels as fractions of full swing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EyeMeasurement {
    /// Lowest sampled level among bits transmitted as one.
    pub worst_one_level: f64,
    /// Highest sampled level among bits transmitted as zero.
    pub worst_zero_level: f64,
    /// `worst_one − worst_zero`, floored at zero.
    pub eye_opening: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wide_open_eye_when_bandwidth_ample() {
        // 2 Gb/s through 10 GHz: essentially no ISI.
        let eye = worst_case_eye_opening(BitRate::from_gbps(2.0), Frequency::from_ghz(10.0));
        assert!(eye > 0.99);
    }

    #[test]
    fn eye_closes_past_the_bandwidth_wall() {
        // 2 Gb/s through 100 MHz: fully closed.
        assert_eq!(
            worst_case_eye_opening(BitRate::from_gbps(2.0), Frequency::from_mhz(100.0)),
            0.0
        );
        assert!(isi_penalty(BitRate::from_gbps(2.0), Frequency::from_mhz(100.0)).is_none());
    }

    #[test]
    fn mosaic_operating_point_pays_a_modest_penalty() {
        // 2 Gb/s through a 1.1 GHz LED: open eye, penalty of a few dB.
        let pen = isi_penalty(BitRate::from_gbps(2.0), Frequency::from_ghz(1.1)).unwrap();
        assert!(pen.as_db() > 0.1 && pen.as_db() < 4.0, "got {pen}");
    }

    #[test]
    fn exhaustive_matches_closed_form() {
        let rate = BitRate::from_gbps(2.0);
        let f = Frequency::from_ghz(1.0);
        let m = exhaustive_eye(rate, f, 10);
        let analytic = worst_case_eye_opening(rate, f);
        assert!(
            (m.eye_opening - analytic).abs() < 1e-6,
            "sim {} vs analytic {}",
            m.eye_opening,
            analytic
        );
    }

    #[test]
    fn max_rate_inverts_eye_opening() {
        let f = Frequency::from_ghz(1.0);
        let r = max_rate_for_eye(f, 0.5);
        let eye = worst_case_eye_opening(r, f);
        assert!((eye - 0.5).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn penalty_monotone_in_rate(g1 in 0.2f64..5.0, g2 in 0.2f64..5.0) {
            let f = Frequency::from_ghz(1.2);
            let (lo, hi) = if g1 < g2 { (g1, g2) } else { (g2, g1) };
            let e_lo = worst_case_eye_opening(BitRate::from_gbps(lo), f);
            let e_hi = worst_case_eye_opening(BitRate::from_gbps(hi), f);
            prop_assert!(e_lo >= e_hi - 1e-12);
        }

        #[test]
        fn exhaustive_never_beats_closed_form(gbps in 0.5f64..4.0, ghz in 0.5f64..3.0, bits in 3u32..10) {
            // Longer finite patterns approach but never exceed the
            // infinite-run worst case.
            let rate = BitRate::from_gbps(gbps);
            let f = Frequency::from_ghz(ghz);
            let m = exhaustive_eye(rate, f, bits);
            prop_assert!(m.eye_opening + 1e-9 >= worst_case_eye_opening(rate, f));
        }
    }
}
