//! Transimpedance amplifier (receiver analog front-end) model.

use crate::params::tia;
use mosaic_units::{Frequency, Power};

/// A TIA + limiting-amplifier slice.
///
/// The two numbers that matter for the link budget are the input-referred
/// noise current density (sets sensitivity together with the PD) and the
/// electrical power of the slice (sets the receive-side energy/bit).
#[derive(Debug, Clone, PartialEq)]
pub struct Tia {
    /// Input-referred noise current density, A/√Hz.
    pub noise_density_a_rthz: f64,
    /// −3 dB bandwidth of the front-end.
    pub bandwidth: Frequency,
    /// Electrical power of the slice.
    pub power: Power,
}

impl Tia {
    /// A low-speed CMOS front-end sized for a Mosaic channel: bandwidth is
    /// set to ~0.7× the bit rate (standard NRZ receiver sizing), and power
    /// scales linearly from the [`tia`] low-speed anchor at 1.5 GHz.
    pub fn low_speed(bit_rate_gbps: f64) -> Self {
        let bw = Frequency::from_ghz(0.7 * bit_rate_gbps);
        Tia {
            noise_density_a_rthz: tia::NOISE_DENSITY_LOW_SPEED,
            bandwidth: bw,
            power: Power::from_watts(tia::POWER_LOW_SPEED_W * (bw.as_ghz() / 1.5).max(0.25)),
        }
    }

    /// A wideband datacom front-end for the laser-optics baselines
    /// (PAM4, ≥25 GBd).
    pub fn high_speed(symbol_rate_gbd: f64) -> Self {
        Tia {
            noise_density_a_rthz: tia::NOISE_DENSITY_HIGH_SPEED,
            bandwidth: Frequency::from_ghz(0.7 * symbol_rate_gbd),
            power: Power::from_watts(tia::POWER_HIGH_SPEED_W),
        }
    }

    /// RMS input-referred noise current over the front-end bandwidth, A.
    pub fn rms_noise_current(&self) -> f64 {
        self.noise_density_a_rthz * self.bandwidth.as_hz().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_integrates_over_bandwidth() {
        let t = Tia::low_speed(2.0); // 1.4 GHz BW
        let expect = tia::NOISE_DENSITY_LOW_SPEED * (1.4e9f64).sqrt();
        assert!((t.rms_noise_current() / expect - 1.0).abs() < 1e-9);
    }

    #[test]
    fn low_speed_front_end_is_cheaper_and_quieter() {
        let slow = Tia::low_speed(2.0);
        let fast = Tia::high_speed(53.125);
        assert!(slow.power.as_watts() < fast.power.as_watts());
        assert!(slow.rms_noise_current() < fast.rms_noise_current());
    }

    #[test]
    fn power_floors_at_fractional_bandwidth() {
        // Very slow channels still pay a minimum analog power.
        let t = Tia::low_speed(0.1);
        assert!(t.power.as_watts() >= tia::POWER_LOW_SPEED_W * 0.25 - 1e-12);
    }
}
