//! Numerical helpers: error functions and root finding.
//!
//! `std` does not provide `erf`/`erfc`, and we avoid pulling in a math crate
//! for two functions. The implementations below are the classic
//! double-precision rational approximations; BER work needs wide dynamic
//! range (down to 1e-18) more than it needs the last ulp.

/// Complementary error function.
///
/// Uses the Chebyshev-fitted approximation from Numerical Recipes ("erfcc"),
/// with fractional error below 1.2e-7 everywhere — far tighter than any
/// device-parameter uncertainty in this workspace.
///
/// `#[inline]` (with [`erf`]/[`normal_tail`] below): these sit inside the
/// figure sweeps' nested bisection solves, hundreds of calls per sweep
/// point, and are otherwise opaque across the crate boundary.
#[inline]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function, `erf(x) = 1 - erfc(x)`.
#[inline]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal upper-tail probability `Q(x) = P(N(0,1) > x)`.
#[inline]
pub fn normal_tail(x: f64) -> f64 {
    0.5 * erfc(x / core::f64::consts::SQRT_2)
}

/// Inverse of [`normal_tail`] by bisection on `[0, 40]`.
///
/// `p` must be in `(0, 0.5]`; values at or below ~1e-300 saturate at the
/// bracket edge. Used to convert a target BER into a required Q-factor.
pub fn normal_tail_inv(p: f64) -> f64 {
    assert!(
        p > 0.0 && p <= 0.5,
        "tail probability must be in (0, 0.5], got {p}"
    );
    let (mut lo, mut hi) = (0.0f64, 40.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if normal_tail(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Find a root of `f` on `[lo, hi]` by bisection; `f(lo)` and `f(hi)` must
/// bracket a sign change. Returns the midpoint after `iters` halvings.
pub fn bisect(mut lo: f64, mut hi: f64, iters: usize, f: impl Fn(f64) -> f64) -> f64 {
    let flo = f(lo);
    assert!(
        (flo <= 0.0) != (f(hi) <= 0.0),
        "bisect: no sign change on [{lo}, {hi}]"
    );
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if (f(mid) <= 0.0) == (flo <= 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Solve a monotonically *increasing* function for `f(x) = target` on a
/// log-spaced positive domain, expanding the bracket if needed.
pub fn solve_increasing(
    mut lo: f64,
    mut hi: f64,
    target: f64,
    f: impl Fn(f64) -> f64,
) -> Option<f64> {
    if f(lo) > target {
        return None; // already above target at the lower edge
    }
    let mut guard = 0;
    while f(hi) < target {
        hi *= 2.0;
        guard += 1;
        if guard > 200 {
            return None;
        }
    }
    for _ in 0..120 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erfc_anchors() {
        // erfc(0) = 1, erfc(1) ≈ 0.157299, erfc(2) ≈ 0.00467773.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_73).abs() < 1e-7);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.7, 1.5, 3.0] {
            assert!((erfc(-x) + erfc(x) - 2.0).abs() < 1e-7);
        }
    }

    #[test]
    fn q_of_7_is_1e_minus_12() {
        // The classic link-budget anchor: Q = 7.03 ⇔ BER 1e-12.
        let ber = normal_tail(7.034);
        assert!(ber > 0.9e-12 && ber < 1.1e-12, "got {ber}");
    }

    #[test]
    fn kp4_threshold_q() {
        // Pre-FEC BER 2.4e-4 (KP4 threshold) ⇔ Q ≈ 3.49.
        let q = normal_tail_inv(2.4e-4);
        assert!((q - 3.49).abs() < 0.01, "got {q}");
    }

    proptest! {
        #[test]
        fn tail_inverse_roundtrip(q in 0.1f64..8.0) {
            let p = normal_tail(q);
            let back = normal_tail_inv(p);
            prop_assert!((back - q).abs() < 1e-5);
        }

        #[test]
        fn tail_is_monotone_decreasing(a in 0f64..10.0, b in 0f64..10.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(normal_tail(lo) >= normal_tail(hi));
        }
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(0.0, 2.0, 100, |x| x * x - 2.0);
        assert!((root - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn solve_increasing_expands_bracket() {
        let x = solve_increasing(1.0, 2.0, 1000.0, |x| x).unwrap();
        assert!((x - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn solve_increasing_rejects_unreachable() {
        assert!(solve_increasing(10.0, 20.0, 5.0, |x| x).is_none());
    }
}
