//! Transmitter driver models: what it costs electrically to modulate a
//! microLED (Mosaic) or a laser (baselines).

use crate::laser::ThresholdLaser;
use crate::math::bisect;
use crate::microled::MicroLed;
use mosaic_units::{BitRate, EnergyPerBit, Power};

/// Energy per bit of the CMOS logic that gates a microLED driver
/// (pre-driver, level shifting); small because the load is a single tiny
/// LED, not a 50 Ω line.
pub const LED_DRIVER_LOGIC_PJ_PER_BIT: f64 = 0.3;

/// Supply/conversion overhead applied to all driver currents (regulator and
/// distribution losses).
pub const SUPPLY_OVERHEAD: f64 = 1.15;

/// Operating point of an OOK-modulated microLED channel.
#[derive(Debug, Clone, PartialEq)]
pub struct LedDrive {
    /// "One"-level drive current, A.
    pub i_on: f64,
    /// "Zero"-level drive current, A (kept above zero to preserve speed).
    pub i_off: f64,
    /// Achieved optical extinction ratio (linear).
    pub extinction_ratio: f64,
}

impl LedDrive {
    /// Choose drive levels for `led` such that the *on* level is `i_on` and
    /// the optical extinction ratio is `er` (linear > 1). Because the LED's
    /// L-I curve is sub-linear under droop, the off current is found
    /// numerically.
    pub fn with_extinction(led: &MicroLed, i_on: f64, er: f64) -> Self {
        assert!(er > 1.0, "extinction ratio must exceed 1");
        let p_on = led.optical_power(i_on).as_watts();
        let target = p_on / er;
        let i_off = bisect(i_on * 1e-6, i_on, 120, |i| {
            led.optical_power(i).as_watts() - target
        });
        LedDrive {
            i_on,
            i_off,
            extinction_ratio: er,
        }
    }

    /// Time-average drive current assuming balanced (DC-free) data.
    pub fn avg_current(&self) -> f64 {
        0.5 * (self.i_on + self.i_off)
    }

    /// Average electrical power of LED + driver at `rate`, including the
    /// CMOS gating logic and supply overhead.
    pub fn electrical_power(&self, led: &MicroLed, rate: BitRate) -> Power {
        let device = led.electrical_power(self.avg_current()) * SUPPLY_OVERHEAD;
        let logic = EnergyPerBit::from_pj_per_bit(LED_DRIVER_LOGIC_PJ_PER_BIT).power_at(rate);
        device + logic
    }

    /// Average *optical* launch power (into the coupling optics).
    pub fn launch_power(&self, led: &MicroLed) -> Power {
        (led.optical_power(self.i_on) + led.optical_power(self.i_off)) * 0.5
    }

    /// Optical modulation amplitude `P_on − P_off`.
    pub fn oma(&self, led: &MicroLed) -> Power {
        led.optical_power(self.i_on) - led.optical_power(self.i_off)
    }
}

/// Average electrical power to directly modulate a threshold laser with OOK
/// at extinction ratio `er`, producing average optical power `avg_optical`.
pub fn laser_drive_power<L: ThresholdLaser>(laser: &L, avg_optical: Power, er: f64) -> Power {
    assert!(er > 1.0, "extinction ratio must exceed 1");
    // Split average optical into on/off levels, map through the L-I curve.
    let p1 = avg_optical * (2.0 * er / (er + 1.0));
    let p0 = avg_optical * (2.0 / (er + 1.0));
    let i_avg = 0.5 * (laser.current_for_power(p1) + laser.current_for_power(p0));
    laser.electrical_power(i_avg) * SUPPLY_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laser::Vcsel;

    #[test]
    fn extinction_solver_hits_target() {
        let led = MicroLed::default();
        let i_on = led.current_for_density(3000.0);
        let drive = LedDrive::with_extinction(&led, i_on, 6.0);
        let p_on = led.optical_power(drive.i_on).as_watts();
        let p_off = led.optical_power(drive.i_off).as_watts();
        assert!((p_on / p_off - 6.0).abs() < 0.01);
    }

    #[test]
    fn off_current_below_on_current() {
        let led = MicroLed::default();
        let i_on = led.current_for_density(2000.0);
        let drive = LedDrive::with_extinction(&led, i_on, 8.0);
        assert!(drive.i_off > 0.0 && drive.i_off < drive.i_on);
    }

    #[test]
    fn channel_power_is_milliwatts() {
        // A Mosaic channel should cost single-digit mW — the premise of the
        // 69 % power claim.
        let led = MicroLed::default();
        let i_on = led.current_for_density(3000.0);
        let drive = LedDrive::with_extinction(&led, i_on, 6.0);
        let p = drive.electrical_power(&led, BitRate::from_gbps(2.0));
        assert!(p.as_mw() > 0.5 && p.as_mw() < 10.0, "got {p}");
    }

    #[test]
    fn laser_drive_pays_threshold_tax() {
        let v = Vcsel::default();
        let p = laser_drive_power(&v, Power::from_mw(1.0), 4.0);
        // Even at modest optical output the threshold keeps drive power
        // well above the LED channel's.
        assert!(p.as_mw() > 5.0, "got {p}");
    }

    #[test]
    fn oma_consistent_with_levels() {
        let led = MicroLed::default();
        let i_on = led.current_for_density(3000.0);
        let drive = LedDrive::with_extinction(&led, i_on, 6.0);
        let oma = drive.oma(&led).as_watts();
        let avg = drive.launch_power(&led).as_watts();
        // OMA = 2·avg·(er−1)/(er+1)
        let expect = 2.0 * avg * (6.0 - 1.0) / (6.0 + 1.0);
        assert!((oma / expect - 1.0).abs() < 0.01);
    }
}
