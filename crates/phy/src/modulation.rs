//! Modulation formats.

use mosaic_units::{BitRate, Frequency};

/// Modulation formats used across the workspace.
///
/// Mosaic channels run NRZ (simple slicers, no DSP); the narrow-and-fast
/// baselines run PAM4 (which is what makes their DSP mandatory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Non-return-to-zero on-off keying: 1 bit/symbol, 2 levels.
    Nrz,
    /// 4-level pulse-amplitude modulation: 2 bits/symbol, 4 levels.
    Pam4,
}

impl Modulation {
    /// Bits carried per symbol.
    pub fn bits_per_symbol(self) -> f64 {
        match self {
            Modulation::Nrz => 1.0,
            Modulation::Pam4 => 2.0,
        }
    }

    /// Number of amplitude levels.
    pub fn levels(self) -> usize {
        match self {
            Modulation::Nrz => 2,
            Modulation::Pam4 => 4,
        }
    }

    /// Symbol (baud) rate needed to carry `rate`.
    pub fn symbol_rate(self, rate: BitRate) -> Frequency {
        Frequency::from_hz(rate.symbol_rate_baud(self.bits_per_symbol()))
    }

    /// Analog −3 dB bandwidth conventionally required: ~0.7× baud for an
    /// unequalized receiver, less with equalization (handled separately as
    /// an ISI penalty, see [`crate::eye`]).
    pub fn required_bandwidth(self, rate: BitRate) -> Frequency {
        self.symbol_rate(rate) * 0.7
    }

    /// Eye-amplitude penalty relative to NRZ at the same total swing:
    /// PAM4 splits the swing into 3 eyes, each 1/3 of the NRZ eye
    /// (−9.5 dB), which is why PAM4 links need DSP and stronger FEC.
    pub fn eye_amplitude_factor(self) -> f64 {
        match self {
            Modulation::Nrz => 1.0,
            Modulation::Pam4 => 1.0 / 3.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pam4_halves_symbol_rate() {
        let r = BitRate::from_gbps(106.25);
        assert!((Modulation::Pam4.symbol_rate(r).as_ghz() - 53.125).abs() < 1e-9);
        assert!((Modulation::Nrz.symbol_rate(r).as_ghz() - 106.25).abs() < 1e-9);
    }

    #[test]
    fn pam4_eye_penalty_is_9_5_db() {
        let db = 20.0 * Modulation::Pam4.eye_amplitude_factor().log10();
        assert!((db + 9.54).abs() < 0.01);
    }

    #[test]
    fn bandwidth_rule_of_thumb() {
        // 2 Gb/s NRZ needs ~1.4 GHz.
        let bw = Modulation::Nrz.required_bandwidth(BitRate::from_gbps(2.0));
        assert!((bw.as_ghz() - 1.4).abs() < 1e-9);
    }
}
