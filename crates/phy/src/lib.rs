//! Device and signal-integrity models for the Mosaic reproduction.
//!
//! This crate replaces the physical hardware of the paper's testbed — GaN
//! microLED arrays, VCSEL/DFB lasers, photodiode + TIA receivers — with
//! parameterized analytical models, plus the classic optical-link math
//! (noise, Q-factor, BER, inter-symbol interference) that connects them.
//!
//! # Why these models
//!
//! Mosaic's core argument is *architectural*: the energy cost of a serial
//! channel grows superlinearly with its symbol rate (equalization, CDR, DSP),
//! while a directly-modulated microLED channel is cheap but caps out at a few
//! Gb/s because its modulation bandwidth is carrier-lifetime limited. Both
//! sides of that argument are physics, and both are modeled here from first
//! principles:
//!
//! * [`microled`] — ABC-model recombination: light output, efficiency droop,
//!   and modulation bandwidth all derive from one carrier-density solve, so
//!   the "per-channel rate saturates around 2–4 Gb/s" behaviour is emergent,
//!   not hard-coded.
//! * [`serdes`] — survey-calibrated energy/bit versus lane-rate curves for
//!   electrical I/O and retimers; the superlinear growth above ~25 G/lane is
//!   the quantitative heart of "wide-and-slow wins".
//! * [`ber`], [`noise`], [`eye`] — receiver sensitivity is computed, not
//!   assumed: shot + thermal (+ RIN for lasers) noise currents feed a
//!   Q-factor, and ISI from finite bandwidth adds an eye-closure penalty.
//!
//! All default constants live in [`params`] with provenance notes and are
//! plain struct fields, so every experiment can sweep them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod driver;
pub mod eye;
pub mod laser;
pub mod math;
pub mod microled;
pub mod modulation;
pub mod noise;
pub mod params;
pub mod photodiode;
pub mod serdes;
pub mod tia;

pub use ber::{ber_ook, ber_pam4, q_factor_ook, q_for_ber, OokReceiver, Pam4Receiver};
pub use eye::isi_penalty;
pub use laser::{DfbLaser, Vcsel};
pub use microled::MicroLed;
pub use modulation::Modulation;
pub use photodiode::Photodiode;
pub use tia::Tia;
