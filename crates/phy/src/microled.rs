//! Directly-modulated GaN microLED model (the Mosaic transmitter).
//!
//! A single ABC-recombination solve yields, for any drive current:
//!
//! * the steady-state carrier density `n` in the quantum well,
//! * internal quantum efficiency (IQE) including efficiency droop,
//! * optical output power (via extraction efficiency and photon energy),
//! * modulation bandwidth from the *differential* carrier lifetime,
//!   cascaded with the RC pole of the junction capacitance.
//!
//! This is the standard small-device LED model; its important emergent
//! property for Mosaic is that bandwidth rises with current density (you can
//! buy speed with drive) but IQE droops, so there is a finite practical
//! per-channel rate in the low-GHz range — forcing the wide-and-slow
//! architecture.

use crate::params::gan;
use mosaic_units::{photon_energy_j, Frequency, Power, ELEMENTARY_CHARGE};

/// A GaN microLED with a circular mesa.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroLed {
    /// Mesa diameter, metres.
    pub diameter_m: f64,
    /// SRH coefficient `A`, 1/s.
    pub a_srh: f64,
    /// Radiative coefficient `B`, cm³/s.
    pub b_rad: f64,
    /// Auger coefficient `C`, cm⁶/s.
    pub c_auger: f64,
    /// Effective active-region thickness, cm.
    pub active_thickness_cm: f64,
    /// Light-extraction efficiency (0..1).
    pub extraction_eff: f64,
    /// Emission wavelength, metres.
    pub wavelength_m: f64,
    /// Forward voltage at operating point, volts.
    pub forward_voltage_v: f64,
    /// Junction capacitance per area, F/cm².
    pub capacitance_per_cm2: f64,
    /// Fixed parasitic (pad + interconnect) capacitance, F. For micro-scale
    /// devices this dominates the junction term and sets an RC bandwidth
    /// ceiling of a few GHz regardless of drive.
    pub pad_capacitance_f: f64,
    /// Series resistance (device + driver output), ohms.
    pub series_resistance_ohm: f64,
}

impl Default for MicroLed {
    /// A 4 µm blue GaN microLED with the [`gan`] default constants — the
    /// device class the Mosaic prototype's 100-channel array is built from.
    fn default() -> Self {
        MicroLed {
            diameter_m: 4e-6,
            a_srh: gan::A_SRH,
            b_rad: gan::B_RAD,
            c_auger: gan::C_AUGER,
            active_thickness_cm: gan::ACTIVE_THICKNESS_CM,
            extraction_eff: gan::EXTRACTION_EFF,
            wavelength_m: gan::WAVELENGTH_M,
            forward_voltage_v: gan::FORWARD_VOLTAGE_V,
            capacitance_per_cm2: gan::CAPACITANCE_PER_CM2,
            pad_capacitance_f: gan::PAD_CAPACITANCE_F,
            series_resistance_ohm: gan::SERIES_RESISTANCE_OHM,
        }
    }
}

impl MicroLed {
    /// A copy of this device at junction temperature `celsius`, relative
    /// to the 25 °C characterization point of the default coefficients.
    ///
    /// The dominant thermal effects on InGaN LEDs:
    /// * SRH non-radiative recombination is thermally activated —
    ///   `A(T) = A₀·exp(ΔT/T_A)` with `T_A ≈ 55 K` (hot-carrier escape and
    ///   defect capture), which droops IQE at temperature;
    /// * Auger grows mildly — `C(T) = C₀·(1 + ΔT/400)`;
    /// * **carrier leakage** — thermally activated electron overflow past
    ///   the wells, the dominant hot-LED loss at high current density;
    ///   modeled as an EQE multiplier `exp(−ΔT/150 K)` (≈ −1.7 dB of
    ///   light at +60 K, matching published hot/cold L-I ratios);
    /// * the emission wavelength red-shifts ~0.03 nm/K (band-gap
    ///   shrinkage);
    /// * forward voltage drops ~1.5 mV/K (slightly *helping* efficiency).
    ///
    /// `B` is treated as constant over the datacenter range; its weak
    /// `T^{-3/2}` dependence is second-order next to the SRH term.
    pub fn at_temperature(&self, celsius: f64) -> MicroLed {
        let dt = celsius - 25.0;
        MicroLed {
            a_srh: self.a_srh * (dt / 55.0).exp(),
            c_auger: self.c_auger * (1.0 + dt / 400.0).max(0.1),
            extraction_eff: (self.extraction_eff * (-dt / 150.0).exp()).min(0.9),
            wavelength_m: self.wavelength_m + 0.03e-9 * dt,
            forward_voltage_v: (self.forward_voltage_v - 1.5e-3 * dt).max(2.5),
            ..self.clone()
        }
    }

    /// Mesa area in cm².
    pub fn area_cm2(&self) -> f64 {
        let r_cm = self.diameter_m * 1e2 / 2.0;
        core::f64::consts::PI * r_cm * r_cm
    }

    /// Current density in A/cm² at drive current `amps`.
    pub fn current_density(&self, amps: f64) -> f64 {
        amps / self.area_cm2()
    }

    /// Drive current (A) that produces current density `j_a_per_cm2`.
    pub fn current_for_density(&self, j_a_per_cm2: f64) -> f64 {
        j_a_per_cm2 * self.area_cm2()
    }

    /// Steady-state carrier density (cm⁻³) at drive current `amps`,
    /// solving `J/(q·d) = A·n + B·n² + C·n³` by Newton iteration.
    ///
    /// # Panics
    /// Panics on negative drive current.
    pub fn carrier_density(&self, amps: f64) -> f64 {
        assert!(amps >= 0.0, "drive current must be non-negative");
        if amps == 0.0 {
            return 0.0;
        }
        let g = self.current_density(amps) / (ELEMENTARY_CHARGE * self.active_thickness_cm);
        // Initial guess from the radiative term alone, then Newton.
        let mut n = (g / self.b_rad).sqrt().max(1.0);
        for _ in 0..80 {
            let f = self.a_srh * n + self.b_rad * n * n + self.c_auger * n * n * n - g;
            let df = self.a_srh + 2.0 * self.b_rad * n + 3.0 * self.c_auger * n * n;
            let step = f / df;
            n -= step;
            if n <= 0.0 {
                n = 1.0;
            }
            if (step / n).abs() < 1e-12 {
                break;
            }
        }
        n
    }

    /// Internal quantum efficiency at drive current `amps`:
    /// `IQE = B·n² / (A·n + B·n² + C·n³)`.
    pub fn iqe(&self, amps: f64) -> f64 {
        if amps == 0.0 {
            return 0.0;
        }
        let n = self.carrier_density(amps);
        let total = self.a_srh * n + self.b_rad * n * n + self.c_auger * n * n * n;
        self.b_rad * n * n / total
    }

    /// External quantum efficiency (IQE × extraction).
    pub fn eqe(&self, amps: f64) -> f64 {
        self.iqe(amps) * self.extraction_eff
    }

    /// Optical power emitted from the die at drive current `amps`:
    /// `P = EQE · (hν/q) · I`.
    pub fn optical_power(&self, amps: f64) -> Power {
        let photon_v = photon_energy_j(self.wavelength_m) / ELEMENTARY_CHARGE;
        Power::from_watts(self.eqe(amps) * photon_v * amps)
    }

    /// Differential carrier lifetime at drive current `amps`, seconds:
    /// `1/τ = A + 2B·n + 3C·n²` (small-signal linearization).
    pub fn differential_lifetime_s(&self, amps: f64) -> f64 {
        let n = self.carrier_density(amps);
        1.0 / (self.a_srh + 2.0 * self.b_rad * n + 3.0 * self.c_auger * n * n)
    }

    /// Carrier-limited −3 dB modulation bandwidth: `f = 1/(2π·τ_diff)`.
    pub fn carrier_bandwidth(&self, amps: f64) -> Frequency {
        Frequency::from_hz(1.0 / (2.0 * core::f64::consts::PI * self.differential_lifetime_s(amps)))
    }

    /// RC-limited bandwidth from junction + pad capacitance and series
    /// resistance.
    pub fn rc_bandwidth(&self) -> Frequency {
        let c = self.capacitance_per_cm2 * self.area_cm2() + self.pad_capacitance_f;
        Frequency::from_hz(1.0 / (2.0 * core::f64::consts::PI * self.series_resistance_ohm * c))
    }

    /// Net −3 dB modulation bandwidth (carrier and RC poles cascaded).
    pub fn modulation_bandwidth(&self, amps: f64) -> Frequency {
        self.carrier_bandwidth(amps).cascade(self.rc_bandwidth())
    }

    /// Electrical power drawn from the supply at drive current `amps`
    /// (junction drop plus resistive loss).
    pub fn electrical_power(&self, amps: f64) -> Power {
        Power::from_watts(self.forward_voltage_v * amps + self.series_resistance_ohm * amps * amps)
    }

    /// Wall-plug efficiency: optical watts out per electrical watt in.
    pub fn wall_plug_efficiency(&self, amps: f64) -> f64 {
        if amps == 0.0 {
            return 0.0;
        }
        self.optical_power(amps) / self.electrical_power(amps)
    }

    /// Smallest drive current (A) whose modulation bandwidth reaches
    /// `target`, or `None` if the device cannot reach it at any current up
    /// to `max_density_a_per_cm2` (bandwidth saturates via droop + RC).
    pub fn current_for_bandwidth(
        &self,
        target: Frequency,
        max_density_a_per_cm2: f64,
    ) -> Option<f64> {
        let i_max = self.current_for_density(max_density_a_per_cm2);
        if self.modulation_bandwidth(i_max).as_hz() < target.as_hz() {
            return None;
        }
        let i_min = self.current_for_density(0.1);
        if self.modulation_bandwidth(i_min).as_hz() >= target.as_hz() {
            return Some(i_min);
        }
        Some(crate::math::bisect(i_min, i_max, 120, |i| {
            self.modulation_bandwidth(i).as_hz() - target.as_hz()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn led() -> MicroLed {
        MicroLed::default()
    }

    #[test]
    fn carrier_density_balances_generation() {
        let d = led();
        let i = d.current_for_density(1000.0);
        let n = d.carrier_density(i);
        let recomb = d.a_srh * n + d.b_rad * n * n + d.c_auger * n * n * n;
        let gen = 1000.0 / (ELEMENTARY_CHARGE * d.active_thickness_cm);
        assert!((recomb / gen - 1.0).abs() < 1e-9);
    }

    #[test]
    fn iqe_droops_at_high_density() {
        let d = led();
        // Efficiency climbs out of the SRH-dominated region at very low
        // density, peaks, then droops under Auger — the thin-well defaults
        // put the peak at tens of A/cm².
        let srh = d.iqe(d.current_for_density(0.1));
        let peak = d.iqe(d.current_for_density(50.0));
        let mid = d.iqe(d.current_for_density(500.0));
        let high = d.iqe(d.current_for_density(20_000.0));
        assert!(peak > srh, "peak={peak} srh={srh}");
        assert!(mid < peak, "mid={mid} peak={peak}");
        assert!(high < mid, "high={high} mid={mid}");
        assert!(high > 0.0 && high < 1.0);
    }

    #[test]
    fn bandwidth_reaches_gigahertz_at_high_drive() {
        // The architectural premise: a small GaN microLED reaches ~1 GHz
        // (enough for ~2 Gb/s NRZ with mild equalization) at kA/cm² drive.
        let d = led();
        let f = d.modulation_bandwidth(d.current_for_density(3000.0));
        assert!(f.as_ghz() > 0.7, "got {f}");
        assert!(f.as_ghz() < 5.0, "got {f}");
    }

    #[test]
    fn bandwidth_rises_with_current() {
        let d = led();
        let f1 = d.modulation_bandwidth(d.current_for_density(100.0));
        let f2 = d.modulation_bandwidth(d.current_for_density(1000.0));
        assert!(f2.as_hz() > f1.as_hz());
    }

    #[test]
    fn sub_milliwatt_optical_output_at_operating_point() {
        // ~1 mA drive on a 4 µm device → hundreds of µW optical.
        let d = led();
        let i = d.current_for_density(3000.0);
        let p = d.optical_power(i);
        assert!(p.as_uw() > 100.0 && p.as_uw() < 3000.0, "got {p}");
    }

    #[test]
    fn current_for_bandwidth_inverts_bandwidth() {
        let d = led();
        let target = Frequency::from_ghz(1.0);
        let i = d
            .current_for_bandwidth(target, 20_000.0)
            .expect("reachable");
        let f = d.modulation_bandwidth(i);
        assert!((f.as_hz() / target.as_hz() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn unreachable_bandwidth_returns_none() {
        let d = led();
        assert!(d
            .current_for_bandwidth(Frequency::from_ghz(100.0), 20_000.0)
            .is_none());
    }

    #[test]
    fn smaller_devices_same_density_same_bandwidth() {
        // Carrier dynamics depend on density, not absolute current.
        let big = MicroLed {
            diameter_m: 8e-6,
            ..led()
        };
        let small = MicroLed {
            diameter_m: 2e-6,
            ..led()
        };
        let fb = big.carrier_bandwidth(big.current_for_density(2000.0));
        let fs = small.carrier_bandwidth(small.current_for_density(2000.0));
        assert!((fb.as_hz() / fs.as_hz() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hot_device_emits_less_light() {
        let cold = led();
        let hot = cold.at_temperature(85.0);
        let i = cold.current_for_density(3000.0);
        let p_cold = cold.optical_power(i);
        let p_hot = hot.optical_power(i);
        assert!(p_hot.as_watts() < p_cold.as_watts());
        // …but degradation over the datacenter range stays moderate
        // (within ~3 dB), which is what makes uncooled operation viable.
        assert!(
            p_hot.as_watts() > 0.5 * p_cold.as_watts(),
            "hot {p_hot} cold {p_cold}"
        );
    }

    #[test]
    fn temperature_red_shifts_and_droops() {
        let cold = led();
        let hot = cold.at_temperature(85.0);
        assert!(hot.wavelength_m > cold.wavelength_m);
        let i = cold.current_for_density(3000.0);
        assert!(hot.iqe(i) < cold.iqe(i));
        // 25 °C is the identity.
        let same = cold.at_temperature(25.0);
        assert!((same.iqe(i) - cold.iqe(i)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn optical_power_monotone_decreasing_in_temperature(t1 in 0f64..100.0, t2 in 0f64..100.0) {
            let d = led();
            let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
            let i = d.current_for_density(3000.0);
            let p_lo = d.at_temperature(lo).optical_power(i);
            let p_hi = d.at_temperature(hi).optical_power(i);
            prop_assert!(p_lo.as_watts() >= p_hi.as_watts() * (1.0 - 1e-9));
        }

        #[test]
        fn carrier_density_monotone_in_current(j1 in 1f64..2e4, j2 in 1f64..2e4) {
            let d = led();
            let (lo, hi) = if j1 < j2 { (j1, j2) } else { (j2, j1) };
            let n_lo = d.carrier_density(d.current_for_density(lo));
            let n_hi = d.carrier_density(d.current_for_density(hi));
            prop_assert!(n_lo <= n_hi * (1.0 + 1e-9));
        }

        #[test]
        fn efficiencies_bounded(j in 1f64..5e4) {
            let d = led();
            let i = d.current_for_density(j);
            let iqe = d.iqe(i);
            prop_assert!(iqe > 0.0 && iqe < 1.0);
            prop_assert!(d.wall_plug_efficiency(i) < iqe);
        }

        #[test]
        fn optical_power_monotone(j1 in 1f64..2e4, j2 in 1f64..2e4) {
            let d = led();
            let (lo, hi) = if j1 < j2 { (j1, j2) } else { (j2, j1) };
            let p_lo = d.optical_power(d.current_for_density(lo));
            let p_hi = d.optical_power(d.current_for_density(hi));
            prop_assert!(p_lo.as_watts() <= p_hi.as_watts() * (1.0 + 1e-9));
        }
    }
}
