//! Laser transmitter models for the conventional-optics baselines.
//!
//! Only the behaviour the comparison needs is modeled: L-I characteristics
//! (threshold + slope), electrical power, and RIN (which enters the receiver
//! noise budget). Laser *reliability* — the other half of the Mosaic
//! argument — is handled in `mosaic-reliability` via FIT values.

use crate::params::{dfb, vcsel};
use mosaic_units::Power;

/// A directly-modulated VCSEL (850 nm multimode datacom, SR-class links).
#[derive(Debug, Clone, PartialEq)]
pub struct Vcsel {
    /// Threshold current, A.
    pub threshold_a: f64,
    /// Slope efficiency above threshold, W/A.
    pub slope_w_per_a: f64,
    /// Relative intensity noise, dB/Hz.
    pub rin_db_per_hz: f64,
    /// Forward voltage, V.
    pub forward_voltage_v: f64,
    /// Emission wavelength, m.
    pub wavelength_m: f64,
}

impl Default for Vcsel {
    fn default() -> Self {
        Vcsel {
            threshold_a: vcsel::THRESHOLD_A,
            slope_w_per_a: vcsel::SLOPE_W_PER_A,
            rin_db_per_hz: vcsel::RIN_DB_PER_HZ,
            forward_voltage_v: vcsel::FORWARD_VOLTAGE_V,
            wavelength_m: vcsel::WAVELENGTH_M,
        }
    }
}

/// A DFB laser (1310 nm single-mode, DR/FR-class links). Typically CW with
/// an external or integrated modulator, so its drive is a constant bias.
#[derive(Debug, Clone, PartialEq)]
pub struct DfbLaser {
    /// Threshold current, A.
    pub threshold_a: f64,
    /// Slope efficiency above threshold, W/A.
    pub slope_w_per_a: f64,
    /// Relative intensity noise, dB/Hz.
    pub rin_db_per_hz: f64,
    /// Forward voltage, V.
    pub forward_voltage_v: f64,
    /// Emission wavelength, m.
    pub wavelength_m: f64,
}

impl Default for DfbLaser {
    fn default() -> Self {
        DfbLaser {
            threshold_a: dfb::THRESHOLD_A,
            slope_w_per_a: dfb::SLOPE_W_PER_A,
            rin_db_per_hz: dfb::RIN_DB_PER_HZ,
            forward_voltage_v: dfb::FORWARD_VOLTAGE_V,
            wavelength_m: dfb::WAVELENGTH_M,
        }
    }
}

/// Shared L-I behaviour of threshold lasers.
pub trait ThresholdLaser {
    /// Threshold current in amps.
    fn threshold_a(&self) -> f64;
    /// Slope efficiency in W/A.
    fn slope_w_per_a(&self) -> f64;
    /// Forward voltage in volts.
    fn forward_voltage_v(&self) -> f64;
    /// Relative intensity noise in dB/Hz.
    fn rin_db_per_hz(&self) -> f64;

    /// Optical output at drive current `amps` (zero below threshold).
    fn optical_power(&self, amps: f64) -> Power {
        let above = (amps - self.threshold_a()).max(0.0);
        Power::from_watts(self.slope_w_per_a() * above)
    }

    /// Drive current needed for a target optical output.
    fn current_for_power(&self, power: Power) -> f64 {
        self.threshold_a() + power.as_watts() / self.slope_w_per_a()
    }

    /// Electrical power at drive current `amps`.
    fn electrical_power(&self, amps: f64) -> Power {
        Power::from_watts(self.forward_voltage_v() * amps)
    }

    /// Wall-plug efficiency at drive current `amps`.
    fn wall_plug_efficiency(&self, amps: f64) -> f64 {
        if amps <= 0.0 {
            return 0.0;
        }
        self.optical_power(amps) / self.electrical_power(amps)
    }
}

impl ThresholdLaser for Vcsel {
    fn threshold_a(&self) -> f64 {
        self.threshold_a
    }
    fn slope_w_per_a(&self) -> f64 {
        self.slope_w_per_a
    }
    fn forward_voltage_v(&self) -> f64 {
        self.forward_voltage_v
    }
    fn rin_db_per_hz(&self) -> f64 {
        self.rin_db_per_hz
    }
}

impl ThresholdLaser for DfbLaser {
    fn threshold_a(&self) -> f64 {
        self.threshold_a
    }
    fn slope_w_per_a(&self) -> f64 {
        self.slope_w_per_a
    }
    fn forward_voltage_v(&self) -> f64 {
        self.forward_voltage_v
    }
    fn rin_db_per_hz(&self) -> f64 {
        self.rin_db_per_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_light_below_threshold() {
        let v = Vcsel::default();
        assert!(v.optical_power(v.threshold_a * 0.5).is_zero());
    }

    #[test]
    fn li_curve_linear_above_threshold() {
        let v = Vcsel::default();
        let i = v.threshold_a + 4e-3;
        let p = v.optical_power(i);
        assert!((p.as_mw() - 4.0 * v.slope_w_per_a).abs() < 1e-9);
    }

    #[test]
    fn current_for_power_inverts() {
        let d = DfbLaser::default();
        let target = Power::from_mw(5.0);
        let i = d.current_for_power(target);
        assert!((d.optical_power(i).as_mw() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_makes_lasers_inefficient_at_low_power() {
        // At low optical output the threshold bias dominates: WPE collapses.
        // This is one physical reason a many-channel laser array would be
        // wasteful and why Mosaic uses LEDs instead.
        let d = DfbLaser::default();
        let low = d.wall_plug_efficiency(d.current_for_power(Power::from_uw(100.0)));
        let high = d.wall_plug_efficiency(d.current_for_power(Power::from_mw(10.0)));
        assert!(low < 0.1 * high, "low={low} high={high}");
    }
}
