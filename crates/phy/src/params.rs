//! Default device constants, in one place, with provenance notes.
//!
//! Every value here is a published ballpark for the component class, not a
//! measurement of the paper's devices (which are not public). Experiments
//! sweep these, so conclusions rest on the *shape* of the physics rather
//! than any single constant. Units are stated per field; CGS is used for
//! recombination coefficients because the LED literature does.

/// GaN/InGaN recombination coefficients (ABC model), typical of blue
/// (~430–460 nm) InGaN quantum wells.
pub mod gan {
    /// Shockley-Read-Hall non-radiative coefficient `A`, 1/s.
    pub const A_SRH: f64 = 1.0e7;
    /// Radiative coefficient `B`, cm³/s.
    pub const B_RAD: f64 = 2.0e-11;
    /// Auger coefficient `C`, cm⁶/s — the source of efficiency droop.
    pub const C_AUGER: f64 = 1.0e-30;
    /// Effective recombination-volume thickness, cm (a few nm of quantum
    /// well; thin wells raise carrier density and therefore bandwidth).
    pub const ACTIVE_THICKNESS_CM: f64 = 3.0e-7; // 3 nm
    /// Light-extraction efficiency: photons escaping the die / photons
    /// generated. Micro-scale GaN LEDs with shaped mesas reach 30–60 %.
    pub const EXTRACTION_EFF: f64 = 0.4;
    /// Peak emission wavelength, metres.
    pub const WAVELENGTH_M: f64 = 450e-9;
    /// Forward voltage at operating current density, volts. GaN junctions
    /// drop ~2.9–3.3 V plus series resistance; 3.3 V is a mid estimate.
    pub const FORWARD_VOLTAGE_V: f64 = 3.3;
    /// Junction + parasitic capacitance per unit area, F/cm²
    /// (≈ 1.5 fF/µm², mesa-etched microLED).
    pub const CAPACITANCE_PER_CM2: f64 = 1.5e-7;
    /// Fixed pad/interconnect capacitance per device, F (~300 fF of bond
    /// pad and routing — dominates for µm-scale mesas and caps the RC
    /// bandwidth near 4 GHz with the default series resistance).
    pub const PAD_CAPACITANCE_F: f64 = 300e-15;
    /// Series resistance of a microLED plus driver output, ohms.
    pub const SERIES_RESISTANCE_OHM: f64 = 120.0;
}

/// Silicon photodiode constants for the blue/visible band.
pub mod si_pd {
    /// Responsivity at 450 nm, A/W. Silicon peaks near 900 nm (~0.6 A/W);
    /// blue responsivity is lower because absorption is shallow.
    pub const RESPONSIVITY_A_PER_W: f64 = 0.25;
    /// Dark current, A (small-area PD).
    pub const DARK_CURRENT_A: f64 = 1.0e-9;
    /// Capacitance per unit area, F/cm² (≈ 0.8 fF/µm²).
    pub const CAPACITANCE_PER_CM2: f64 = 8.0e-8;
}

/// InGaAs photodiode constants for the datacom infrared band (baselines).
pub mod ingaas_pd {
    /// Responsivity at 1310 nm, A/W.
    pub const RESPONSIVITY_A_PER_W: f64 = 0.9;
    /// Dark current, A.
    pub const DARK_CURRENT_A: f64 = 5.0e-9;
}

/// Receiver analog front-end (TIA + limiting amp) constants.
pub mod tia {
    /// Input-referred noise current density for a low-bandwidth (≤3 GHz)
    /// CMOS TIA, A/√Hz.
    pub const NOISE_DENSITY_LOW_SPEED: f64 = 3.0e-12;
    /// Input-referred noise current density for a multi-ten-GHz datacom
    /// TIA, A/√Hz (wideband front-ends are noisier).
    pub const NOISE_DENSITY_HIGH_SPEED: f64 = 12.0e-12;
    /// Power of a low-speed (≤3 GHz) TIA + LA slice, watts.
    pub const POWER_LOW_SPEED_W: f64 = 0.004;
    /// Power of a >25 GBd datacom TIA + LA slice, watts.
    pub const POWER_HIGH_SPEED_W: f64 = 0.25;
}

/// VCSEL constants (850 nm datacom, for the SR baseline).
pub mod vcsel {
    /// Threshold current, A.
    pub const THRESHOLD_A: f64 = 0.8e-3;
    /// Slope efficiency, W/A.
    pub const SLOPE_W_PER_A: f64 = 0.45;
    /// Relative intensity noise, dB/Hz.
    pub const RIN_DB_PER_HZ: f64 = -140.0;
    /// Forward voltage, V.
    pub const FORWARD_VOLTAGE_V: f64 = 2.2;
    /// Wavelength, m.
    pub const WAVELENGTH_M: f64 = 850e-9;
}

/// DFB laser constants (1310 nm, for the DR/FR baselines).
pub mod dfb {
    /// Threshold current, A.
    pub const THRESHOLD_A: f64 = 8.0e-3;
    /// Slope efficiency, W/A.
    pub const SLOPE_W_PER_A: f64 = 0.3;
    /// Relative intensity noise, dB/Hz.
    pub const RIN_DB_PER_HZ: f64 = -150.0;
    /// Forward voltage, V.
    pub const FORWARD_VOLTAGE_V: f64 = 1.8;
    /// Wavelength, m.
    pub const WAVELENGTH_M: f64 = 1310e-9;
}

/// Electrical I/O (SerDes) energy-efficiency survey anchors.
///
/// These reproduce the well-known survey curve (ISSCC transceiver surveys):
/// short-reach unequalized CMOS I/O sits well below 1 pJ/bit; long-reach
/// equalized SerDes climbs from ~2 pJ/bit at 25 G to 5–7 pJ/bit at 112 G and
/// beyond 10 pJ/bit at 224 G because equalization/DSP complexity grows
/// superlinearly with lane rate.
pub mod serdes {
    /// Energy/bit of a minimal CMOS transceiver slice at ≤5 G/lane, pJ/bit
    /// (drives mm–cm on-package or chip-to-module traces; no equalization).
    pub const SHORT_REACH_BASE_PJ: f64 = 0.35;
    /// Reference lane rate for the long-reach scaling law, Gb/s.
    pub const LR_REF_RATE_GBPS: f64 = 25.0;
    /// Energy/bit of a long-reach SerDes at the reference rate, pJ/bit.
    pub const LR_REF_PJ: f64 = 2.0;
    /// Exponent of long-reach energy/bit versus lane rate (energy/bit grows
    /// as `rate^0.7`, i.e. lane *power* grows as `rate^1.7` — superlinear).
    /// Calibrated to survey anchors: ~2 pJ/bit at 25 G, ~5.7 at 112 G,
    /// ~9.3 at 224 G.
    pub const LR_EXPONENT: f64 = 0.7;
    /// Clock-recovery energy floor for any receiving lane, pJ/bit.
    pub const CDR_FLOOR_PJ: f64 = 0.15;
}

/// Module-level DSP (PAM4 ADC/DSP retimer chips inside optical modules).
pub mod dsp {
    /// DSP energy per bit for a 100G-class PAM4 lane (ADC + FFE/DFE + FEC
    /// termination), pJ/bit. An 800G DSP chip at ~7 W is ≈ 8.75 pJ/bit.
    pub const PAM4_DSP_PJ_PER_BIT: f64 = 8.75;
    /// Fraction of DSP power that remains in "linear drive" (LPO) modules
    /// which drop the retimer but keep host-side equalization burden.
    pub const LPO_RESIDUAL_FRACTION: f64 = 0.35;
}

#[cfg(test)]
mod tests {
    /// The constants must satisfy the coarse ordering relations the
    /// architecture argument rests on; if someone re-tunes them into an
    /// unphysical regime, fail loudly here.
    #[test]
    #[allow(clippy::assertions_on_constants)] // regression guard on const tuning
    fn sanity_orderings() {
        assert!(super::tia::NOISE_DENSITY_LOW_SPEED < super::tia::NOISE_DENSITY_HIGH_SPEED);
        assert!(super::tia::POWER_LOW_SPEED_W < super::tia::POWER_HIGH_SPEED_W);
        assert!(super::si_pd::RESPONSIVITY_A_PER_W < super::ingaas_pd::RESPONSIVITY_A_PER_W);
        assert!(super::vcsel::THRESHOLD_A < super::dfb::THRESHOLD_A);
        assert!(super::serdes::SHORT_REACH_BASE_PJ < super::serdes::LR_REF_PJ);
        assert!(super::gan::EXTRACTION_EFF > 0.0 && super::gan::EXTRACTION_EFF < 1.0);
    }
}
