//! Receiver noise-current budget.
//!
//! Three classical contributors, all expressed as RMS currents at the
//! decision circuit so they can be root-sum-squared:
//!
//! * **thermal** — the TIA's input-referred noise, signal-independent;
//! * **shot** — `√(2·q·I·B)`, grows with photocurrent, so the "one" level
//!   is noisier than the "zero" level;
//! * **RIN** — laser relative-intensity noise, proportional to photocurrent
//!   (absent for LEDs, whose spontaneous emission has no cavity-induced
//!   intensity noise peaks; we conservatively allow a RIN-like term anyway
//!   if the caller supplies one).

use mosaic_units::{Frequency, ELEMENTARY_CHARGE};

/// Per-level noise budget for a received optical signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseBudget {
    /// TIA thermal RMS noise current, A.
    pub thermal_a: f64,
    /// Receiver noise bandwidth.
    pub bandwidth: Frequency,
    /// Laser RIN in dB/Hz, or `None` for RIN-free sources (LEDs).
    pub rin_db_per_hz: Option<f64>,
}

impl NoiseBudget {
    /// Shot-noise RMS current for a given DC photocurrent, A.
    pub fn shot_a(&self, photocurrent_a: f64) -> f64 {
        (2.0 * ELEMENTARY_CHARGE * photocurrent_a.max(0.0) * self.bandwidth.as_hz()).sqrt()
    }

    /// RIN-induced RMS current for a given photocurrent, A.
    pub fn rin_a(&self, photocurrent_a: f64) -> f64 {
        match self.rin_db_per_hz {
            None => 0.0,
            Some(rin_db) => {
                let rin_lin = 10f64.powf(rin_db / 10.0);
                photocurrent_a * (rin_lin * self.bandwidth.as_hz()).sqrt()
            }
        }
    }

    /// Total RMS noise current at a signal level producing `photocurrent_a`,
    /// root-sum-squared across contributors.
    pub fn total_a(&self, photocurrent_a: f64) -> f64 {
        let t = self.thermal_a;
        let s = self.shot_a(photocurrent_a);
        let r = self.rin_a(photocurrent_a);
        (t * t + s * s + r * r).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn budget(rin: Option<f64>) -> NoiseBudget {
        NoiseBudget {
            thermal_a: 100e-9,
            bandwidth: Frequency::from_ghz(1.4),
            rin_db_per_hz: rin,
        }
    }

    #[test]
    fn shot_noise_anchor() {
        // 1 mA over 1 GHz: σ_shot = √(2·q·1e-3·1e9) ≈ 566 nA.
        let b = NoiseBudget {
            thermal_a: 0.0,
            bandwidth: Frequency::from_ghz(1.0),
            rin_db_per_hz: None,
        };
        assert!((b.shot_a(1e-3) - 566e-9).abs() < 10e-9);
    }

    #[test]
    fn thermal_dominates_at_low_signal() {
        let b = budget(None);
        // At 1 µA photocurrent shot noise is ~21 nA « 100 nA thermal.
        let total = b.total_a(1e-6);
        assert!((total / b.thermal_a - 1.0).abs() < 0.05, "total={total}");
    }

    #[test]
    fn rin_grows_with_signal() {
        let b = budget(Some(-140.0));
        assert!(b.rin_a(2e-3) > b.rin_a(1e-3));
        // RIN-free (LED) total is strictly lower at equal photocurrent.
        let led = budget(None);
        assert!(led.total_a(1e-3) < b.total_a(1e-3));
    }

    proptest! {
        #[test]
        fn total_at_least_each_component(i in 0f64..1e-2) {
            let b = budget(Some(-145.0));
            let total = b.total_a(i);
            prop_assert!(total >= b.thermal_a - 1e-18);
            prop_assert!(total >= b.shot_a(i) - 1e-18);
            prop_assert!(total >= b.rin_a(i) - 1e-18);
            // And no larger than the arithmetic sum.
            prop_assert!(total <= b.thermal_a + b.shot_a(i) + b.rin_a(i) + 1e-18);
        }
    }
}
