//! Systematic Reed-Solomon codec: Berlekamp-Massey + Chien + Forney.
//!
//! Codewords are stored highest-degree-first: index 0 holds the x^(n−1)
//! coefficient (the first data symbol), index n−1 the x^0 coefficient (the
//! last parity symbol). The generator uses first consecutive root α^0
//! (`b = 0`), matching the IEEE 802.3 KP4/KR4 definitions. Shortened codes
//! (n below the field's natural 2^m − 1) work directly: a shortened word is
//! the natural word with leading zero data symbols never transmitted.

use crate::gf::GaloisField;
use crate::scratch::DecodeScratch;
use mosaic_units::{MosaicError, Result};

/// Outcome of a decode attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// The word was already a codeword.
    Clean,
    /// Errors were found and corrected (count of corrected symbols).
    Corrected(usize),
    /// More errors than the code can correct: decoding failure *detected*.
    /// The word is left unmodified.
    Failure,
}

/// A systematic RS(n, k) code over GF(2^m).
#[derive(Debug, Clone, PartialEq)]
pub struct ReedSolomon {
    field: GaloisField,
    n: usize,
    k: usize,
    /// Generator polynomial, lowest-degree coefficient first, monic.
    generator: Vec<u16>,
    /// Host-side multiply-by-root tables for the syndrome kernel, built
    /// once per code: row `i` (stride = field size) holds
    /// `T_i[v] = v · α^i`, so the Horner step `acc·α^i + c` becomes one
    /// lookup and one XOR (see DESIGN §11). ~2·two_t·2^m bytes — 60 KB
    /// for KP4, built once per sweep config.
    synd_tables: Vec<u16>,
    /// Chien-search root table: `chien_roots[p] = α^{−p}` for each of the
    /// n valid positions, hoisting the modular exponent arithmetic out of
    /// the per-position search loop.
    chien_roots: Vec<u16>,
}

impl ReedSolomon {
    /// Construct RS(n, k) over GF(2^m).
    ///
    /// # Panics
    /// Panics on invalid parameters; use [`ReedSolomon::try_new`] to
    /// handle the error instead.
    pub fn new(m: u32, n: usize, k: usize) -> Self {
        match Self::try_new(m, n, k) {
            Ok(rs) => rs,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ReedSolomon::new`]: errors unless `1 ≤ k < n ≤ 2^m − 1`.
    pub fn try_new(m: u32, n: usize, k: usize) -> Result<Self> {
        let field = GaloisField::try_new(m)?;
        if k < 1 || k >= n {
            return Err(MosaicError::invalid_code(format!(
                "need 1 ≤ k < n, got n={n} k={k}"
            )));
        }
        if n > field.order() {
            return Err(MosaicError::invalid_code(format!(
                "n={n} exceeds field order {} (oversubscribed block)",
                field.order()
            )));
        }
        let two_t = n - k;
        // Generator g(x) = Π_{i=0}^{2t−1} (x − α^i), built lowest-first.
        let mut generator = vec![1u16];
        for i in 0..two_t {
            let root = field.alpha_pow(i);
            // Multiply by (x + root) — characteristic 2, so minus is plus.
            generator = field.poly_mul(&generator, &[root, 1]);
        }
        // Host-side table precompute (DESIGN §11): per-root multiply
        // tables for the syndrome kernel and the Chien root sequence.
        // Each entry is the exact `field.mul`/`alpha_pow` value the inner
        // loops would otherwise recompute per symbol/position.
        let size = field.size();
        let mut synd_tables = vec![0u16; two_t * size];
        for i in 0..two_t {
            let root = field.alpha_pow(i);
            for v in 0..size {
                synd_tables[i * size + v] = field.mul(v as u16, root);
            }
        }
        let order = field.order();
        let chien_roots: Vec<u16> = (0..n)
            .map(|p| field.alpha_pow((order - p % order) % order))
            .collect();
        Ok(ReedSolomon {
            field,
            n,
            k,
            generator,
            synd_tables,
            chien_roots,
        })
    }

    /// IEEE 802.3 "KP4" RS(544,514) over GF(2¹⁰): t = 15.
    pub fn kp4() -> Self {
        ReedSolomon::new(10, 544, 514)
    }

    /// IEEE 802.3 "KR4" RS(528,514) over GF(2¹⁰): t = 7.
    pub fn kr4() -> Self {
        ReedSolomon::new(10, 528, 514)
    }

    /// Classic CCSDS-style RS(255,223) over GF(2⁸): t = 16.
    pub fn rs_255_223() -> Self {
        ReedSolomon::new(8, 255, 223)
    }

    /// Block length n in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data length k in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Symbol-correcting capability t = (n − k)/2.
    pub fn t(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Bits per symbol (the field's m).
    pub fn symbol_bits(&self) -> u32 {
        self.field.m()
    }

    /// Code overhead ratio n/k (transmitted per payload).
    pub fn overhead(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    /// The underlying field (for callers mapping bits to symbols).
    pub fn field(&self) -> &GaloisField {
        &self.field
    }

    /// Systematically encode `data` (k symbols, each < 2^m) into an
    /// n-symbol codeword: data first, parity appended.
    ///
    /// # Panics
    /// Panics on malformed input; use [`ReedSolomon::try_encode`] to
    /// handle the error instead.
    pub fn encode(&self, data: &[u16]) -> Vec<u16> {
        match self.try_encode(data) {
            Ok(word) => word,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ReedSolomon::encode`]: errors if `data` is not exactly
    /// k symbols or contains out-of-field values.
    pub fn try_encode(&self, data: &[u16]) -> Result<Vec<u16>> {
        let mut word = Vec::new();
        self.try_encode_into(data, &mut word)?;
        Ok(word)
    }

    /// [`ReedSolomon::try_encode`] into a caller-owned buffer: `word` is
    /// cleared and refilled with the n-symbol codeword, allocating nothing
    /// once the buffer has reached capacity. On error the buffer contents
    /// are unspecified.
    pub fn try_encode_into(&self, data: &[u16], word: &mut Vec<u16>) -> Result<()> {
        if data.len() != self.k {
            return Err(MosaicError::LengthMismatch {
                what: "RS data block",
                expected: self.k,
                got: data.len(),
            });
        }
        let mask = (self.field.size() - 1) as u16;
        let two_t = self.n - self.k;
        word.clear();
        word.extend_from_slice(data);
        word.resize(self.n, 0);
        // Long division of data·x^{2t} by g(x); remainder becomes parity.
        // The parity region `word[k..]` doubles as the running remainder.
        let (data_part, rem) = word.split_at_mut(self.k);
        for &d in data_part.iter() {
            if d > mask {
                // lint: allow(R4) reason=cold error path; allocates only on invalid input
                return Err(MosaicError::invalid_code(format!(
                    "data symbol {d:#x} outside GF(2^{})",
                    self.field.m()
                )));
            }
            let factor = self.field.add(d, rem[0]);
            // Shift remainder left by one, feed in zero.
            rem.rotate_left(1);
            rem[two_t - 1] = 0;
            if factor != 0 {
                for (j, r) in rem.iter_mut().enumerate() {
                    // generator is lowest-first; we need the coefficient of
                    // x^{2t−1−j} which is generator[2t−1−j].
                    let g = self.generator[two_t - 1 - j];
                    *r = self.field.add(*r, self.field.mul(factor, g));
                }
            }
        }
        Ok(())
    }

    /// Compute the 2t syndromes of a word. All-zero means "is a codeword".
    ///
    /// # Panics
    /// Panics unless `word` is exactly n symbols.
    pub fn syndromes(&self, word: &[u16]) -> Vec<u16> {
        assert_eq!(word.len(), self.n, "expected {}-symbol word", self.n);
        self.syndromes_unchecked(word)
    }

    /// [`ReedSolomon::syndromes`] on a length-validated word (the decode
    /// paths validate once up front and must stay panic-free). Kept as
    /// the per-syndrome reference for the fused kernel below; the public
    /// [`ReedSolomon::syndromes`] still routes through it.
    fn syndromes_unchecked(&self, word: &[u16]) -> Vec<u16> {
        let two_t = self.n - self.k;
        (0..two_t)
            .map(|i| {
                let x = self.field.alpha_pow(i);
                // Evaluate with index 0 = highest degree (Horner forward).
                let mut acc = 0u16;
                for &c in word {
                    acc = self.field.add(self.field.mul(acc, x), c);
                }
                acc
            })
            .collect()
    }

    /// Fused Horner syndrome kernel into `s.synd`; returns true when the
    /// word is already a codeword (all syndromes zero).
    ///
    /// One pass over the word updates all 2t accumulators — the loop
    /// interchange versus [`ReedSolomon::syndromes_unchecked`] performs the
    /// same exact GF(2^m) operations per accumulator, so the results are
    /// bit-identical while the word streams through cache once.
    ///
    /// The default build drives each accumulator through its precomputed
    /// multiply-by-root table (`acc ← T_i[acc] ⊕ c`, one batched lookup
    /// per root per symbol, all 2t dependency chains independent);
    /// `--features scalar-kernels` retains the log/exp `field.mul` form.
    /// `T_i[v] = v·α^i` by construction, so the two are value-identical
    /// (pinned by the `fused_syndromes_match_reference` proptest).
    fn syndromes_into(&self, word: &[u16], s: &mut DecodeScratch) -> bool {
        let two_t = self.n - self.k;
        s.roots.clear();
        s.roots.extend((0..two_t).map(|i| self.field.alpha_pow(i)));
        s.synd.clear();
        s.synd.resize(two_t, 0);
        #[cfg(feature = "scalar-kernels")]
        for &c in word {
            for (acc, &x) in s.synd.iter_mut().zip(&s.roots) {
                *acc = self.field.add(self.field.mul(*acc, x), c);
            }
        }
        #[cfg(not(feature = "scalar-kernels"))]
        {
            let stride = self.field.size();
            for &c in word {
                for (acc, table) in s.synd.iter_mut().zip(self.synd_tables.chunks_exact(stride)) {
                    *acc = table[*acc as usize] ^ c;
                }
            }
        }
        s.synd.iter().all(|&v| v == 0)
    }

    /// Decode in place: detect, locate and correct up to t symbol errors.
    ///
    /// Errors only on malformed input (wrong word length); an
    /// uncorrectable word is the `Ok(`[`DecodeOutcome::Failure`]`)` case,
    /// not an `Err`.
    pub fn decode(&self, word: &mut [u16]) -> Result<DecodeOutcome> {
        self.decode_scratch(word, &mut DecodeScratch::new())
    }

    /// [`ReedSolomon::decode`] with caller-owned working storage: zero
    /// heap allocation per word once the scratch buffers are sized.
    pub fn decode_scratch(
        &self,
        word: &mut [u16],
        scratch: &mut DecodeScratch,
    ) -> Result<DecodeOutcome> {
        self.decode_with_erasures_scratch(word, &[], scratch)
    }

    /// Decode in place with known erasure positions (symbol indices the
    /// caller knows are unreliable — e.g. symbols that rode a channel the
    /// lane monitor has flagged). A Reed-Solomon code corrects any
    /// combination with `2·errors + erasures ≤ n − k`, so flagging dead
    /// Mosaic channels doubles the code's effective strength on them.
    ///
    /// Implementation: errors-and-erasures via the standard transformation
    /// — build the erasure locator Γ(x) from the known positions, run
    /// Berlekamp-Massey on the Γ-modified syndromes to find the *error*
    /// locator Λ(x), then correct with the combined locator Ψ = Λ·Γ.
    pub fn decode_with_erasures(
        &self,
        word: &mut [u16],
        erasures: &[usize],
    ) -> Result<DecodeOutcome> {
        self.decode_with_erasures_scratch(word, erasures, &mut DecodeScratch::new())
    }

    /// [`ReedSolomon::decode_with_erasures`] with caller-owned working
    /// storage. Every buffer lives in `scratch`; once its buffers are
    /// sized (after the first decode of a given code), no heap allocation
    /// happens per word. Values are bit-identical to the allocating path:
    /// GF(2^m) arithmetic is exact and the operation sequence is unchanged.
    pub fn decode_with_erasures_scratch(
        &self,
        word: &mut [u16],
        erasures: &[usize],
        scratch: &mut DecodeScratch,
    ) -> Result<DecodeOutcome> {
        if word.len() != self.n {
            return Err(MosaicError::LengthMismatch {
                what: "RS codeword",
                expected: self.n,
                got: word.len(),
            });
        }
        let two_t = self.n - self.k;
        if erasures.len() > two_t {
            return Ok(DecodeOutcome::Failure);
        }
        for &e in erasures {
            if e >= self.n {
                return Err(MosaicError::IndexOutOfRange {
                    what: "erasure",
                    index: e,
                    limit: self.n,
                });
            }
        }
        if self.syndromes_into(word, scratch) {
            // Fused syndromes say the word is clean: skip the decode
            // machinery entirely (the common case at operating BERs).
            return Ok(DecodeOutcome::Clean);
        }

        // Erasure locator Γ(x) = Π (1 + X_j x), X_j = α^{n−1−index}
        // (characteristic 2: minus is plus). Built in place: multiplying
        // by (1 + X·x) descending-index is exactly the poly_mul update.
        scratch.gamma.clear();
        scratch.gamma.push(1);
        for &idx in erasures {
            let x = self.field.alpha_pow(self.n - 1 - idx);
            scratch.gamma.push(0);
            for i in (1..scratch.gamma.len()).rev() {
                scratch.gamma[i] = self
                    .field
                    .add(scratch.gamma[i], self.field.mul(x, scratch.gamma[i - 1]));
            }
        }
        Ok(self.finish_decode(word, erasures.len(), scratch))
    }

    /// Shared tail of error / errors-and-erasures decoding: Γ-initialized
    /// Berlekamp-Massey, Chien search and Forney on the combined locator.
    /// Expects syndromes in `s.synd` and the erasure locator in `s.gamma`.
    fn finish_decode(
        &self,
        word: &mut [u16],
        n_erasures: usize,
        s: &mut DecodeScratch,
    ) -> DecodeOutcome {
        let two_t = self.n - self.k;

        // Berlekamp-Massey initialized with the erasure locator: Λ starts
        // as Γ, the register length starts at e, and iterations begin at
        // r = e. With no erasures this is the textbook errors-only BM.
        // The output Λ is the *combined* locator Ψ = Γ·(error locator).
        let e = n_erasures;
        s.lambda.clear();
        s.lambda.resize(two_t + 1, 0);
        s.prev.clear();
        s.prev.resize(two_t + 1, 0);
        s.cand.clear();
        s.cand.resize(two_t + 1, 0);
        let glen = s.gamma.len();
        s.lambda[..glen].copy_from_slice(&s.gamma);
        s.prev[..glen].copy_from_slice(&s.gamma);
        let mut l = e; // current LFSR length
        let mut shift = 1usize; // x-power multiplying prev
        let mut b = 1u16; // last non-zero discrepancy
        for r in e..two_t {
            // Discrepancy δ = Σ_i Λ_i · S_{r−i}.
            let mut delta = 0u16;
            for i in 0..=r.min(two_t) {
                if s.lambda[i] != 0 {
                    delta = self
                        .field
                        .add(delta, self.field.mul(s.lambda[i], s.synd[r - i]));
                }
            }
            if delta == 0 {
                shift += 1;
                continue;
            }
            let coeff = self.field.div(delta, b);
            // candidate = Λ − coeff · x^shift · prev
            s.cand.copy_from_slice(&s.lambda);
            for i in shift..=two_t {
                if s.prev[i - shift] != 0 {
                    s.cand[i] = self
                        .field
                        .add(s.cand[i], self.field.mul(coeff, s.prev[i - shift]));
                }
            }
            if 2 * l <= r + e {
                // prev := old Λ, Λ := candidate — as buffer swaps instead
                // of the reference path's clone-and-move.
                std::mem::swap(&mut s.prev, &mut s.lambda);
                b = delta;
                l = r + 1 - l + e;
                shift = 1;
            } else {
                shift += 1;
            }
            std::mem::swap(&mut s.lambda, &mut s.cand);
        }
        let deg = s.lambda.iter().rposition(|&c| c != 0).unwrap_or(0);
        // 2·errors + erasures ≤ 2t ⇒ deg Ψ = errors + erasures ≤ t + e/2.
        let max_deg = (2 * self.t() + e) / 2;
        if deg == 0 || deg > max_deg {
            return DecodeOutcome::Failure;
        }

        // Chien search over the n valid positions. A root Λ(α^{−p}) = 0
        // marks an error at polynomial power p, i.e. word index n−1−p.
        // `chien_roots[p]` is the precomputed α^{−p} (same `alpha_pow`
        // expression, evaluated once at construction — see DESIGN §11).
        s.positions.clear();
        for (p, &x_inv) in self.chien_roots.iter().enumerate() {
            if self.field.poly_eval(&s.lambda, x_inv) == 0 {
                s.positions.push(p);
            }
        }
        if s.positions.len() != deg {
            return DecodeOutcome::Failure;
        }

        // Forney: Ω(x) = S(x)·Λ(x) mod x^{2t}; with b = 0 the magnitude at
        // location X = α^p is e = X · Ω(X⁻¹) / Λ'(X⁻¹). Computed directly
        // into scratch, accumulating only the surviving (< 2t) terms —
        // the same xors poly_mul-then-truncate performs.
        s.omega.clear();
        s.omega.resize(two_t, 0);
        for (i, &si) in s.synd.iter().enumerate() {
            if si == 0 {
                continue;
            }
            for (j, &lj) in s.lambda.iter().enumerate() {
                if i + j >= two_t {
                    break;
                }
                s.omega[i + j] = self.field.add(s.omega[i + j], self.field.mul(si, lj));
            }
        }
        // Formal derivative of Λ (characteristic 2: even terms vanish).
        s.deriv.clear();
        s.deriv.resize(two_t, 0);
        for i in (1..s.lambda.len()).step_by(2) {
            s.deriv[i - 1] = s.lambda[i];
        }

        let mut corrected = 0usize;
        for &p in &s.positions {
            let x = self.field.alpha_pow(p);
            let x_inv = self.field.inv(x);
            let denom = self.field.poly_eval(&s.deriv, x_inv);
            if denom == 0 {
                return DecodeOutcome::Failure;
            }
            let num = self.field.poly_eval(&s.omega, x_inv);
            let magnitude = self.field.mul(x, self.field.div(num, denom));
            let idx = self.n - 1 - p;
            word[idx] = self.field.add(word[idx], magnitude);
            corrected += 1;
        }

        // Guard against miscorrection: the result must be a codeword.
        // The syndrome buffers are free again at this point.
        if !self.syndromes_into(word, s) {
            return DecodeOutcome::Failure;
        }
        DecodeOutcome::Corrected(corrected)
    }
}

/// The PR-2-era allocating decoder, retained verbatim as the differential
/// oracle for the scratch-based path (see the `scratch_matches_reference`
/// proptests).
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    /// Allocating errors-and-erasures decode, pre-scratch implementation.
    pub fn decode_with_erasures(
        rs: &ReedSolomon,
        word: &mut [u16],
        erasures: &[usize],
    ) -> Result<DecodeOutcome> {
        if word.len() != rs.n {
            return Err(MosaicError::LengthMismatch {
                what: "RS codeword",
                expected: rs.n,
                got: word.len(),
            });
        }
        let two_t = rs.n - rs.k;
        if erasures.len() > two_t {
            return Ok(DecodeOutcome::Failure);
        }
        for &e in erasures {
            if e >= rs.n {
                return Err(MosaicError::IndexOutOfRange {
                    what: "erasure",
                    index: e,
                    limit: rs.n,
                });
            }
        }
        let synd = rs.syndromes_unchecked(word);
        if synd.iter().all(|&s| s == 0) {
            return Ok(DecodeOutcome::Clean);
        }
        let mut gamma = vec![1u16];
        for &idx in erasures {
            let x = rs.field.alpha_pow(rs.n - 1 - idx);
            gamma = rs.field.poly_mul(&gamma, &[1, x]);
        }
        Ok(finish_decode(rs, word, &synd, &gamma, erasures.len()))
    }

    fn finish_decode(
        rs: &ReedSolomon,
        word: &mut [u16],
        synd: &[u16],
        gamma: &[u16],
        n_erasures: usize,
    ) -> DecodeOutcome {
        let two_t = rs.n - rs.k;
        let e = n_erasures;
        let mut lambda = vec![0u16; two_t + 1];
        let mut prev = vec![0u16; two_t + 1];
        lambda[..gamma.len()].copy_from_slice(gamma);
        prev[..gamma.len()].copy_from_slice(gamma);
        let mut l = e;
        let mut shift = 1usize;
        let mut b = 1u16;
        for r in e..two_t {
            let mut delta = 0u16;
            for i in 0..=r.min(two_t) {
                if lambda[i] != 0 {
                    delta = rs.field.add(delta, rs.field.mul(lambda[i], synd[r - i]));
                }
            }
            if delta == 0 {
                shift += 1;
                continue;
            }
            let coeff = rs.field.div(delta, b);
            let mut cand = lambda.clone();
            for i in shift..=two_t {
                if prev[i - shift] != 0 {
                    cand[i] = rs.field.add(cand[i], rs.field.mul(coeff, prev[i - shift]));
                }
            }
            if 2 * l <= r + e {
                prev = lambda;
                b = delta;
                l = r + 1 - l + e;
                shift = 1;
            } else {
                shift += 1;
            }
            lambda = cand;
        }
        let deg = lambda.iter().rposition(|&c| c != 0).unwrap_or(0);
        let max_deg = (2 * rs.t() + e) / 2;
        if deg == 0 || deg > max_deg {
            return DecodeOutcome::Failure;
        }
        let mut error_powers = Vec::with_capacity(deg);
        for p in 0..rs.n {
            let x_inv = rs
                .field
                .alpha_pow((rs.field.order() - p % rs.field.order()) % rs.field.order());
            if rs.field.poly_eval(&lambda, x_inv) == 0 {
                error_powers.push(p);
            }
        }
        if error_powers.len() != deg {
            return DecodeOutcome::Failure;
        }
        let s_poly: Vec<u16> = synd.to_vec();
        let mut omega = rs.field.poly_mul(&s_poly, &lambda);
        omega.truncate(two_t);
        let mut lambda_deriv = vec![0u16; lambda.len().saturating_sub(1)];
        for i in (1..lambda.len()).step_by(2) {
            lambda_deriv[i - 1] = lambda[i];
        }
        let mut corrected = 0usize;
        for &p in &error_powers {
            let x = rs.field.alpha_pow(p);
            let x_inv = rs.field.inv(x);
            let denom = rs.field.poly_eval(&lambda_deriv, x_inv);
            if denom == 0 {
                return DecodeOutcome::Failure;
            }
            let num = rs.field.poly_eval(&omega, x_inv);
            let magnitude = rs.field.mul(x, rs.field.div(num, denom));
            let idx = rs.n - 1 - p;
            word[idx] = rs.field.add(word[idx], magnitude);
            corrected += 1;
        }
        if rs.syndromes_unchecked(word).iter().any(|&s| s != 0) {
            return DecodeOutcome::Failure;
        }
        DecodeOutcome::Corrected(corrected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn inject_errors(rs: &ReedSolomon, word: &mut [u16], count: usize, rng: &mut StdRng) {
        let mask = (rs.field().size() - 1) as u16;
        let mut positions: Vec<usize> = (0..word.len()).collect();
        for i in 0..count {
            let j = rng.gen_range(i..positions.len());
            positions.swap(i, j);
            let pos = positions[i];
            let old = word[pos];
            loop {
                let v = rng.gen::<u16>() & mask;
                if v != old {
                    word[pos] = v;
                    break;
                }
            }
        }
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        assert!(ReedSolomon::try_new(8, 300, 10).is_err()); // n > 2^8 − 1
        assert!(ReedSolomon::try_new(8, 31, 0).is_err());
        assert!(ReedSolomon::try_new(8, 31, 31).is_err());
        assert!(ReedSolomon::try_new(99, 31, 23).is_err());
        let rs = ReedSolomon::new(8, 31, 23);
        assert!(rs.try_encode(&[0u16; 5]).is_err());
        assert!(rs.try_encode(&[0x100u16; 23]).is_err());
        let mut short = vec![0u16; 10];
        assert!(rs.decode(&mut short).is_err());
        let mut word = rs.encode(&[0u16; 23]);
        assert!(rs.decode_with_erasures(&mut word, &[31]).is_err());
    }

    #[test]
    fn kp4_parameters() {
        let rs = ReedSolomon::kp4();
        assert_eq!((rs.n(), rs.k(), rs.t()), (544, 514, 15));
        assert_eq!(rs.symbol_bits(), 10);
        assert!((rs.overhead() - 544.0 / 514.0).abs() < 1e-12);
    }

    #[test]
    fn encode_appends_parity_systematically() {
        let rs = ReedSolomon::new(8, 15, 11);
        let data: Vec<u16> = (1..=11).collect();
        let word = rs.encode(&data);
        assert_eq!(&word[..11], data.as_slice());
        assert_eq!(word.len(), 15);
        // Valid codeword: all syndromes zero.
        assert!(rs.syndromes(&word).iter().all(|&s| s == 0));
    }

    #[test]
    fn clean_word_decodes_clean() {
        let rs = ReedSolomon::new(8, 15, 11);
        let mut word = rs.encode(&(1..=11).collect::<Vec<_>>());
        assert_eq!(rs.decode(&mut word).unwrap(), DecodeOutcome::Clean);
    }

    #[test]
    fn corrects_exactly_t_errors() {
        let rs = ReedSolomon::rs_255_223();
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u16> = (0..223).map(|_| rng.gen::<u16>() & 0xFF).collect();
        let clean = rs.encode(&data);
        let mut word = clean.clone();
        inject_errors(&rs, &mut word, rs.t(), &mut rng);
        assert_eq!(
            rs.decode(&mut word).unwrap(),
            DecodeOutcome::Corrected(rs.t())
        );
        assert_eq!(word, clean);
    }

    #[test]
    fn kp4_corrects_fifteen_errors() {
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(42);
        let data: Vec<u16> = (0..514).map(|_| rng.gen::<u16>() & 0x3FF).collect();
        let clean = rs.encode(&data);
        let mut word = clean.clone();
        inject_errors(&rs, &mut word, 15, &mut rng);
        assert_eq!(rs.decode(&mut word).unwrap(), DecodeOutcome::Corrected(15));
        assert_eq!(word, clean);
    }

    #[test]
    fn detects_beyond_capacity_most_of_the_time() {
        // With t+a few errors, BM either fails or Chien mismatches; a
        // miscorrection is possible in principle but vanishingly unlikely
        // for these seeds — assert we at least never *silently corrupt* in
        // a way the final syndrome check misses.
        let rs = ReedSolomon::new(8, 31, 23); // t = 4
        let mut rng = StdRng::seed_from_u64(3);
        let mut failures = 0;
        for _ in 0..50 {
            let data: Vec<u16> = (0..23).map(|_| rng.gen::<u16>() & 0xFF).collect();
            let clean = rs.encode(&data);
            let mut word = clean.clone();
            inject_errors(&rs, &mut word, rs.t() + 3, &mut rng);
            match rs.decode(&mut word).unwrap() {
                DecodeOutcome::Failure => failures += 1,
                DecodeOutcome::Corrected(_) => {
                    // If it "corrected", it must at least be a codeword —
                    // i.e. a miscorrection to another codeword, not garbage.
                    assert!(rs.syndromes(&word).iter().all(|&s| s == 0));
                }
                DecodeOutcome::Clean => panic!("corrupted word reported clean"),
            }
        }
        assert!(failures >= 45, "only {failures}/50 detected");
    }

    #[test]
    fn kr4_corrects_seven() {
        let rs = ReedSolomon::kr4();
        assert_eq!(rs.t(), 7);
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<u16> = (0..514).map(|_| rng.gen::<u16>() & 0x3FF).collect();
        let clean = rs.encode(&data);
        let mut word = clean.clone();
        inject_errors(&rs, &mut word, 7, &mut rng);
        assert_eq!(rs.decode(&mut word).unwrap(), DecodeOutcome::Corrected(7));
        assert_eq!(word, clean);
    }

    #[test]
    fn erasures_alone_up_to_2t() {
        // With all corruption flagged as erasures, the code corrects up to
        // 2t = 8 of them — double the blind-error capability.
        let rs = ReedSolomon::new(8, 31, 23); // t = 4
        let mut rng = StdRng::seed_from_u64(21);
        let data: Vec<u16> = (0..23).map(|_| rng.gen::<u16>() & 0xFF).collect();
        let clean = rs.encode(&data);
        let mut word = clean.clone();
        let positions = [0usize, 5, 9, 14, 18, 22, 27, 30]; // 8 = 2t
        for &p in &positions {
            word[p] ^= 0xA5;
        }
        let out = rs.decode_with_erasures(&mut word, &positions).unwrap();
        assert_eq!(out, DecodeOutcome::Corrected(8));
        assert_eq!(word, clean);
    }

    #[test]
    fn mixed_errors_and_erasures() {
        // 2·errors + erasures ≤ 2t: with t = 4, three erasures plus two
        // blind errors (2·2 + 3 = 7 ≤ 8) must decode.
        let rs = ReedSolomon::new(8, 31, 23);
        let mut rng = StdRng::seed_from_u64(31);
        let data: Vec<u16> = (0..23).map(|_| rng.gen::<u16>() & 0xFF).collect();
        let clean = rs.encode(&data);
        let mut word = clean.clone();
        let erased = [2usize, 11, 25];
        for &p in &erased {
            word[p] ^= 0x3C;
        }
        word[7] ^= 0x81;
        word[19] ^= 0x42;
        let out = rs.decode_with_erasures(&mut word, &erased).unwrap();
        assert_eq!(out, DecodeOutcome::Corrected(5));
        assert_eq!(word, clean);
    }

    #[test]
    fn erased_but_actually_correct_symbols_are_harmless() {
        // Flagging healthy symbols as erasures must not corrupt them.
        let rs = ReedSolomon::new(8, 31, 23);
        let data: Vec<u16> = (0..23).collect();
        let clean = rs.encode(&data);
        let mut word = clean.clone();
        word[4] ^= 0xFF; // one real error
        let erased = [10usize, 20]; // two false alarms
        let out = rs.decode_with_erasures(&mut word, &erased).unwrap();
        assert!(matches!(out, DecodeOutcome::Corrected(_)));
        assert_eq!(word, clean);
    }

    #[test]
    fn too_many_erasures_rejected() {
        let rs = ReedSolomon::new(8, 31, 23);
        let data: Vec<u16> = (0..23).collect();
        let mut word = rs.encode(&data);
        let erased: Vec<usize> = (0..9).collect(); // 9 > 2t = 8
        word[0] ^= 1;
        assert_eq!(
            rs.decode_with_erasures(&mut word, &erased).unwrap(),
            DecodeOutcome::Failure
        );
    }

    #[test]
    fn kp4_dead_channel_scenario() {
        // Mosaic scenario: a dead channel flags ~1/30 of a KP4 word's
        // symbols as erasures (18 symbols), plus a few random errors on
        // other channels: 2·6 + 18 = 30 = 2t exactly.
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(77);
        let data: Vec<u16> = (0..514).map(|_| rng.gen::<u16>() & 0x3FF).collect();
        let clean = rs.encode(&data);
        let mut word = clean.clone();
        let erased: Vec<usize> = (0..18).map(|i| i * 30).collect();
        for &p in &erased {
            word[p] ^= 0x2AA;
        }
        for i in 0..6 {
            word[7 + i * 90] ^= 0x155;
        }
        let out = rs.decode_with_erasures(&mut word, &erased).unwrap();
        assert_eq!(out, DecodeOutcome::Corrected(24));
        assert_eq!(word, clean);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn erasure_roundtrip_random(
            seed in 0u64..300,
            n_erase in 0usize..=8,
            n_err_extra in 0usize..=4,
        ) {
            // Any combination with 2·errors + erasures ≤ 2t must decode.
            let rs = ReedSolomon::new(8, 31, 23); // 2t = 8
            let n_err = n_err_extra.min((8 - n_erase) / 2);
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<u16> = (0..23).map(|_| rng.gen::<u16>() & 0xFF).collect();
            let clean = rs.encode(&data);
            let mut word = clean.clone();
            let mut pos: Vec<usize> = (0..31).collect();
            for i in 0..(n_erase + n_err) {
                let j = rng.gen_range(i..pos.len());
                pos.swap(i, j);
            }
            let erased = &pos[..n_erase];
            for &p in erased {
                let flip = (rng.gen::<u16>() & 0xFF).max(1);
                word[p] ^= flip;
            }
            for &p in &pos[n_erase..n_erase + n_err] {
                let flip = (rng.gen::<u16>() & 0xFF).max(1);
                word[p] ^= flip;
            }
            let out = rs.decode_with_erasures(&mut word, erased).unwrap();
            prop_assert_eq!(word, clean);
            if n_erase + n_err == 0 {
                prop_assert_eq!(out, DecodeOutcome::Clean);
            }
        }

        #[test]
        fn roundtrip_under_random_errors(
            seed in 0u64..1000,
            nerr in 0usize..=4,
        ) {
            let rs = ReedSolomon::new(8, 31, 23); // t = 4
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<u16> = (0..23).map(|_| rng.gen::<u16>() & 0xFF).collect();
            let clean = rs.encode(&data);
            let mut word = clean.clone();
            inject_errors(&rs, &mut word, nerr, &mut rng);
            let out = rs.decode(&mut word).unwrap();
            prop_assert_eq!(word, clean);
            if nerr == 0 {
                prop_assert_eq!(out, DecodeOutcome::Clean);
            } else {
                prop_assert_eq!(out, DecodeOutcome::Corrected(nerr));
            }
        }

        #[test]
        fn scratch_matches_reference(
            seed in 0u64..5000,
            nerr in 0usize..=7,
            n_erase in 0usize..=9,
        ) {
            // Differential oracle: for random words — including garbage far
            // from any codeword and overloaded error patterns — the scratch
            // path must agree with the retained allocating decoder on both
            // outcome and final word contents, with and without erasures.
            let rs = ReedSolomon::new(8, 31, 23); // t = 4
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<u16> = (0..23).map(|_| rng.gen::<u16>() & 0xFF).collect();
            let mut word = rs.encode(&data);
            let mut pos: Vec<usize> = (0..31).collect();
            for i in 0..(n_erase + nerr).min(31) {
                let j = rng.gen_range(i..pos.len());
                pos.swap(i, j);
            }
            let erased = &pos[..n_erase];
            for &p in &pos[..(n_erase + nerr).min(31)] {
                word[p] ^= (rng.gen::<u16>() & 0xFF).max(1);
            }
            let mut word_ref = word.clone();
            let mut word_new = word.clone();
            let mut scratch = DecodeScratch::new();
            let out_ref = reference::decode_with_erasures(&rs, &mut word_ref, erased).unwrap();
            let out_new = rs
                .decode_with_erasures_scratch(&mut word_new, erased, &mut scratch)
                .unwrap();
            prop_assert_eq!(out_new, out_ref);
            prop_assert_eq!(word_new, word_ref);
        }

        #[test]
        fn fused_syndromes_match_reference(seed in 0u64..2000) {
            let rs = ReedSolomon::new(8, 31, 23);
            let mut rng = StdRng::seed_from_u64(seed);
            let word: Vec<u16> = (0..31).map(|_| rng.gen::<u16>() & 0xFF).collect();
            let mut scratch = DecodeScratch::new();
            let all_zero = rs.syndromes_into(&word, &mut scratch);
            let reference = rs.syndromes_unchecked(&word);
            prop_assert_eq!(&scratch.synd, &reference);
            prop_assert_eq!(all_zero, reference.iter().all(|&s| s == 0));
        }

        #[test]
        fn encode_into_matches_encode(seed in 0u64..2000) {
            let rs = ReedSolomon::new(8, 31, 23);
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<u16> = (0..23).map(|_| rng.gen::<u16>() & 0xFF).collect();
            let mut word = vec![0xFFFFu16; 7]; // stale garbage must not leak
            rs.try_encode_into(&data, &mut word).unwrap();
            prop_assert_eq!(word, rs.encode(&data));
        }

        #[test]
        fn shortened_codes_roundtrip(seed in 0u64..200) {
            // A shortened RS(20,12) over GF(2^8), t = 4.
            let rs = ReedSolomon::new(8, 20, 12);
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<u16> = (0..12).map(|_| rng.gen::<u16>() & 0xFF).collect();
            let clean = rs.encode(&data);
            let mut word = clean.clone();
            inject_errors(&rs, &mut word, 4, &mut rng);
            prop_assert_eq!(rs.decode(&mut word).unwrap(), DecodeOutcome::Corrected(4));
            prop_assert_eq!(word, clean);
        }
    }
}
