//! Block interleaving.
//!
//! Mosaic stripes FEC codewords across hundreds of channels. Interleaving
//! turns a burst on one channel (e.g. a transient SNR dip or a dying lane)
//! into isolated symbol errors spread over many codewords, keeping each
//! word within its correction budget. A classic rows×cols block
//! interleaver suffices and is what hardware would implement.

use mosaic_units::{MosaicError, Result};

/// A rows×cols block interleaver: write row-major, read column-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInterleaver {
    /// Number of rows (typically: codewords in flight).
    pub rows: usize,
    /// Number of columns (typically: symbols per codeword).
    pub cols: usize,
}

impl BlockInterleaver {
    /// Construct; both dimensions must be non-zero.
    ///
    /// # Panics
    /// Panics on zero dimensions; use [`BlockInterleaver::try_new`] to
    /// handle the error instead.
    pub fn new(rows: usize, cols: usize) -> Self {
        match Self::try_new(rows, cols) {
            Ok(il) => il,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`BlockInterleaver::new`]: errors on zero dimensions.
    pub fn try_new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(MosaicError::invalid_config(
                "interleaver",
                format!("dimensions must be non-zero, got {rows}×{cols}"),
            ));
        }
        Ok(BlockInterleaver { rows, cols })
    }

    /// Total block size.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True if the block is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interleave one block: output index `c·rows + r` takes input
    /// `r·cols + c`.
    ///
    /// # Panics
    /// Panics on a block-size mismatch; use
    /// [`BlockInterleaver::try_interleave`] to handle the error instead.
    pub fn interleave<T: Copy>(&self, input: &[T]) -> Vec<T> {
        match self.try_interleave(input) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`BlockInterleaver::interleave`].
    pub fn try_interleave<T: Copy>(&self, input: &[T]) -> Result<Vec<T>> {
        if input.len() != self.len() {
            return Err(MosaicError::LengthMismatch {
                what: "interleaver block",
                expected: self.len(),
                got: input.len(),
            });
        }
        let mut out = Vec::with_capacity(input.len());
        for c in 0..self.cols {
            for r in 0..self.rows {
                out.push(input[r * self.cols + c]);
            }
        }
        Ok(out)
    }

    /// Invert [`BlockInterleaver::interleave`].
    ///
    /// # Panics
    /// Panics on a block-size mismatch; use
    /// [`BlockInterleaver::try_deinterleave`] to handle the error instead.
    pub fn deinterleave<T: Copy + Default>(&self, input: &[T]) -> Vec<T> {
        match self.try_deinterleave(input) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`BlockInterleaver::deinterleave`].
    pub fn try_deinterleave<T: Copy + Default>(&self, input: &[T]) -> Result<Vec<T>> {
        if input.len() != self.len() {
            return Err(MosaicError::LengthMismatch {
                what: "interleaver block",
                expected: self.len(),
                got: input.len(),
            });
        }
        let mut out = vec![T::default(); input.len()];
        for (i, &v) in input.iter().enumerate() {
            let (c, r) = (i / self.rows, i % self.rows);
            out[r * self.cols + c] = v;
        }
        Ok(out)
    }

    /// The longest error burst (in transmitted positions) that lands at
    /// most one error in any row: exactly `rows` positions.
    pub fn burst_tolerance_per_row(&self) -> usize {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_example() {
        // 2×3: [a b c / d e f] reads out as a d b e c f.
        let il = BlockInterleaver::new(2, 3);
        let out = il.interleave(&['a', 'b', 'c', 'd', 'e', 'f']);
        assert_eq!(out, vec!['a', 'd', 'b', 'e', 'c', 'f']);
    }

    #[test]
    fn burst_spreads_across_rows() {
        // A burst of `rows` consecutive transmitted symbols must hit each
        // row exactly once.
        let il = BlockInterleaver::new(4, 8);
        let data: Vec<usize> = (0..32).collect();
        let tx = il.interleave(&data);
        // Corrupt transmitted positions 8..12 (a 4-burst).
        let corrupted: Vec<usize> = tx
            .iter()
            .enumerate()
            .map(|(i, &v)| if (8..12).contains(&i) { 999 } else { v })
            .collect();
        let rx = il.deinterleave(&corrupted);
        for r in 0..4 {
            let row = &rx[r * 8..(r + 1) * 8];
            let errors = row.iter().filter(|&&v| v == 999).count();
            assert_eq!(errors, 1, "row {r} took {errors} errors");
        }
    }

    proptest! {
        #[test]
        fn roundtrip(rows in 1usize..16, cols in 1usize..16, seed in 0u64..100) {
            let il = BlockInterleaver::new(rows, cols);
            let data: Vec<u64> = (0..il.len() as u64).map(|i| i.wrapping_mul(seed + 1)).collect();
            let rt = il.deinterleave(&il.interleave(&data));
            prop_assert_eq!(rt, data);
        }

        #[test]
        fn interleave_is_permutation(rows in 1usize..12, cols in 1usize..12) {
            let il = BlockInterleaver::new(rows, cols);
            let data: Vec<usize> = (0..il.len()).collect();
            let mut out = il.interleave(&data);
            out.sort_unstable();
            prop_assert_eq!(out, data);
        }
    }
}
