//! Block interleaving.
//!
//! Mosaic stripes FEC codewords across hundreds of channels. Interleaving
//! turns a burst on one channel (e.g. a transient SNR dip or a dying lane)
//! into isolated symbol errors spread over many codewords, keeping each
//! word within its correction budget. A classic rows×cols block
//! interleaver suffices and is what hardware would implement.

/// A rows×cols block interleaver: write row-major, read column-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInterleaver {
    /// Number of rows (typically: codewords in flight).
    pub rows: usize,
    /// Number of columns (typically: symbols per codeword).
    pub cols: usize,
}

impl BlockInterleaver {
    /// Construct; both dimensions must be non-zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "interleaver dimensions must be non-zero"
        );
        BlockInterleaver { rows, cols }
    }

    /// Total block size.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True if the block is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interleave one block: output index `c·rows + r` takes input
    /// `r·cols + c`.
    pub fn interleave<T: Copy>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.len(), "block size mismatch");
        let mut out = Vec::with_capacity(input.len());
        for c in 0..self.cols {
            for r in 0..self.rows {
                out.push(input[r * self.cols + c]);
            }
        }
        out
    }

    /// Invert [`BlockInterleaver::interleave`].
    pub fn deinterleave<T: Copy + Default>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.len(), "block size mismatch");
        let mut out = vec![T::default(); input.len()];
        let mut it = input.iter();
        for c in 0..self.cols {
            for r in 0..self.rows {
                out[r * self.cols + c] = *it.next().unwrap();
            }
        }
        out
    }

    /// The longest error burst (in transmitted positions) that lands at
    /// most one error in any row: exactly `rows` positions.
    pub fn burst_tolerance_per_row(&self) -> usize {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_example() {
        // 2×3: [a b c / d e f] reads out as a d b e c f.
        let il = BlockInterleaver::new(2, 3);
        let out = il.interleave(&['a', 'b', 'c', 'd', 'e', 'f']);
        assert_eq!(out, vec!['a', 'd', 'b', 'e', 'c', 'f']);
    }

    #[test]
    fn burst_spreads_across_rows() {
        // A burst of `rows` consecutive transmitted symbols must hit each
        // row exactly once.
        let il = BlockInterleaver::new(4, 8);
        let data: Vec<usize> = (0..32).collect();
        let tx = il.interleave(&data);
        // Corrupt transmitted positions 8..12 (a 4-burst).
        let corrupted: Vec<usize> = tx
            .iter()
            .enumerate()
            .map(|(i, &v)| if (8..12).contains(&i) { 999 } else { v })
            .collect();
        let rx = il.deinterleave(&corrupted);
        for r in 0..4 {
            let row = &rx[r * 8..(r + 1) * 8];
            let errors = row.iter().filter(|&&v| v == 999).count();
            assert_eq!(errors, 1, "row {r} took {errors} errors");
        }
    }

    proptest! {
        #[test]
        fn roundtrip(rows in 1usize..16, cols in 1usize..16, seed in 0u64..100) {
            let il = BlockInterleaver::new(rows, cols);
            let data: Vec<u64> = (0..il.len() as u64).map(|i| i.wrapping_mul(seed + 1)).collect();
            let rt = il.deinterleave(&il.interleave(&data));
            prop_assert_eq!(rt, data);
        }

        #[test]
        fn interleave_is_permutation(rows in 1usize..12, cols in 1usize..12) {
            let il = BlockInterleaver::new(rows, cols);
            let data: Vec<usize> = (0..il.len()).collect();
            let mut out = il.interleave(&data);
            out.sort_unstable();
            prop_assert_eq!(out, data);
        }
    }
}
