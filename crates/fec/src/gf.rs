//! GF(2^m) finite-field arithmetic via log/antilog tables.
//!
//! One table pair per field instance; elements are `u16` (fields up to
//! m = 12 cover every code in this workspace: GF(256) for classic RS,
//! GF(1024) for KP4/KR4, GF(2^m) for BCH locator fields).

use mosaic_units::{MosaicError, Result};

/// A binary extension field GF(2^m), 2 ≤ m ≤ 12.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaloisField {
    m: u32,
    poly: u32,
    /// exp[i] = α^i, doubled in length so products need no modulo.
    exp: Vec<u16>,
    /// log[x] = i with α^i = x; log[0] is unused.
    log: Vec<u16>,
}

/// Default primitive polynomials (x^m + … + 1), low bits only.
fn default_poly(m: u32) -> Option<u32> {
    Some(match m {
        2 => 0b111,
        3 => 0b1011,
        4 => 0b1_0011,
        5 => 0b10_0101,
        6 => 0b100_0011,
        7 => 0b1000_1001,
        8 => 0b1_0001_1101, // 0x11D, the CCSDS/Ethernet GF(256) polynomial
        9 => 0b10_0001_0001,
        10 => 0b100_0000_1001, // 0x409 = x^10 + x^3 + 1, the KP4 field
        11 => 0b1000_0000_0101,
        12 => 0b1_0000_0101_0011,
        _ => return None,
    })
}

impl GaloisField {
    /// Construct GF(2^m) with the standard primitive polynomial.
    ///
    /// # Panics
    /// Panics on invalid `m`; use [`GaloisField::try_new`] to handle the
    /// error instead.
    pub fn new(m: u32) -> Self {
        match Self::try_new(m) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`GaloisField::new`]: errors unless 2 ≤ m ≤ 12.
    pub fn try_new(m: u32) -> Result<Self> {
        let poly = default_poly(m).ok_or_else(|| {
            MosaicError::invalid_code(format!("unsupported field order m={m} (need 2..=12)"))
        })?;
        Self::try_with_poly(m, poly)
    }

    /// Construct GF(2^m) with an explicit primitive polynomial (including
    /// the x^m term).
    ///
    /// # Panics
    /// Panics on invalid parameters; see [`GaloisField::try_with_poly`].
    pub fn with_poly(m: u32, poly: u32) -> Self {
        match Self::try_with_poly(m, poly) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`GaloisField::with_poly`]: errors unless 2 ≤ m ≤ 12 and
    /// `poly` is primitive for GF(2^m).
    pub fn try_with_poly(m: u32, poly: u32) -> Result<Self> {
        if !(2..=12).contains(&m) {
            return Err(MosaicError::invalid_code(format!(
                "supported field orders are m=2..=12, got m={m}"
            )));
        }
        let size = 1usize << m;
        let mut exp = vec![0u16; 2 * (size - 1)];
        let mut log = vec![0u16; size];
        let mut x: u32 = 1;
        for (i, e) in exp.iter_mut().take(size - 1).enumerate() {
            *e = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        if x != 1 {
            return Err(MosaicError::invalid_code(format!(
                "polynomial {poly:#x} is not primitive for m={m}"
            )));
        }
        for i in 0..(size - 1) {
            exp[size - 1 + i] = exp[i];
        }
        Ok(GaloisField { m, poly, exp, log })
    }

    /// Field order exponent m.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of elements, 2^m.
    pub fn size(&self) -> usize {
        1 << self.m
    }

    /// Multiplicative-group order, 2^m − 1.
    pub fn order(&self) -> usize {
        self.size() - 1
    }

    /// The primitive polynomial in use.
    pub fn poly(&self) -> u32 {
        self.poly
    }

    /// α^i (i may exceed the group order; it is reduced).
    #[inline]
    pub fn alpha_pow(&self, i: usize) -> u16 {
        self.exp[i % self.order()]
    }

    /// Discrete log of a non-zero element.
    ///
    /// # Panics
    /// Panics on zero, which has no logarithm.
    #[inline]
    pub fn log(&self, x: u16) -> u16 {
        assert!(x != 0, "log of zero");
        self.log[x as usize]
    }

    /// Addition (= subtraction) in characteristic 2.
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Multiplication.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    #[inline]
    pub fn inv(&self, a: u16) -> u16 {
        assert!(a != 0, "inverse of zero");
        self.exp[self.order() - self.log[a as usize] as usize]
    }

    /// Division `a / b`.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        assert!(b != 0, "division by zero");
        if a == 0 {
            0
        } else {
            let d = self.order() + self.log[a as usize] as usize - self.log[b as usize] as usize;
            self.exp[d % self.order()]
        }
    }

    /// Exponentiation `a^k`.
    #[inline]
    pub fn pow(&self, a: u16, k: usize) -> u16 {
        if a == 0 {
            return if k == 0 { 1 } else { 0 };
        }
        let e = (self.log[a as usize] as usize * k) % self.order();
        self.exp[e]
    }

    /// Evaluate a polynomial (coefficients `poly[i]` for x^i) at `x`
    /// by Horner's rule.
    #[inline]
    pub fn poly_eval(&self, poly: &[u16], x: u16) -> u16 {
        let mut acc = 0u16;
        for &c in poly.iter().rev() {
            acc = self.add(self.mul(acc, x), c);
        }
        acc
    }

    /// Multiply two polynomials (coefficient vectors, `[i]` = x^i term).
    pub fn poly_mul(&self, a: &[u16], b: &[u16]) -> Vec<u16> {
        if a.is_empty() || b.is_empty() {
            return vec![];
        }
        let mut out = vec![0u16; a.len() + b.len() - 1];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                out[i + j] = self.add(out[i + j], self.mul(ai, bj));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gf256_known_products() {
        // With poly 0x11D: α = 2, α^7 = 0x80, and α^8 reduces to 0x1D.
        let f = GaloisField::new(8);
        assert_eq!(f.alpha_pow(7), 0x80);
        assert_eq!(f.mul(0x80, 2), 0x1D);
        assert_eq!(f.alpha_pow(8), 0x1D);
    }

    #[test]
    fn alpha_generates_the_group() {
        for m in [4u32, 8, 10] {
            let f = GaloisField::new(m);
            let mut seen = vec![false; f.size()];
            for i in 0..f.order() {
                let v = f.alpha_pow(i) as usize;
                assert!(!seen[v], "α^{i} repeats in GF(2^{m})");
                seen[v] = true;
            }
        }
    }

    #[test]
    fn poly_eval_horner() {
        let f = GaloisField::new(8);
        // p(x) = 3 + 2x + x², p(1) = 3^2^1 = 0 (xor), p(0) = 3.
        let p = [3u16, 2, 1];
        assert_eq!(f.poly_eval(&p, 0), 3);
        assert_eq!(f.poly_eval(&p, 1), 3 ^ 2 ^ 1);
    }

    #[test]
    #[should_panic]
    fn non_primitive_poly_rejected() {
        // x^4 + 1 is not primitive.
        let _ = GaloisField::with_poly(4, 0b1_0001);
    }

    fn any_field() -> impl Strategy<Value = GaloisField> {
        prop_oneof![Just(4u32), Just(8), Just(10)].prop_map(GaloisField::new)
    }

    proptest! {
        #[test]
        fn field_axioms(f in any_field(), a in 0u16..1024, b in 0u16..1024, c in 0u16..1024) {
            let mask = (f.size() - 1) as u16;
            let (a, b, c) = (a & mask, b & mask, c & mask);
            // Commutativity and associativity of multiplication.
            prop_assert_eq!(f.mul(a, b), f.mul(b, a));
            prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
            // Distributivity over xor-addition.
            prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
            // Identities.
            prop_assert_eq!(f.mul(a, 1), a);
            prop_assert_eq!(f.add(a, 0), a);
        }

        #[test]
        fn inverses(f in any_field(), a in 1u16..1024) {
            let a = (a % (f.order() as u16)) + 1;
            prop_assert_eq!(f.mul(a, f.inv(a)), 1);
            prop_assert_eq!(f.div(a, a), 1);
        }

        #[test]
        fn pow_matches_repeated_mul(f in any_field(), a in 0u16..1024, k in 0usize..20) {
            let mask = (f.size() - 1) as u16;
            let a = a & mask;
            let mut acc = 1u16;
            for _ in 0..k {
                acc = f.mul(acc, a);
            }
            prop_assert_eq!(f.pow(a, k), acc);
        }

        #[test]
        fn poly_mul_then_eval(f in any_field(), x in 0u16..255) {
            let x = x & ((f.size() - 1) as u16);
            let a = [1u16, 2, 3];
            let b = [5u16, 7];
            let prod = f.poly_mul(&a, &b);
            prop_assert_eq!(
                f.poly_eval(&prod, x),
                f.mul(f.poly_eval(&a, x), f.poly_eval(&b, x))
            );
        }
    }
}
