//! Analytic post-FEC error rates.
//!
//! Monte-Carlo can only reach BERs down to ~1e-9 in reasonable time; the
//! claims of interest live at 1e-13..1e-15. Under the random-error
//! assumption the exact binomial tail gives the uncorrectable-codeword
//! probability, evaluated in the log domain for numerical range. The
//! simulator cross-checks these formulas where both are feasible
//! (integration tests), then the experiments extrapolate with them.

/// Natural log of Γ(x) by the Lanczos approximation (g = 7, n = 9),
/// accurate to ~1e-13 for x > 0 — ample for binomial coefficients.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula for small arguments.
        let pi = core::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * core::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of the binomial coefficient C(n, k).
pub fn ln_choose(n: usize, k: usize) -> f64 {
    assert!(k <= n, "C({n},{k}) undefined");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Probability of exactly `k` successes in `n` Bernoulli(p) trials,
/// computed in the log domain.
pub fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// Upper binomial tail `P(X > t)` for X ~ Binomial(n, p), log-domain sum.
pub fn binomial_tail_above(n: usize, t: usize, p: f64) -> f64 {
    ((t + 1)..=n).map(|k| binomial_pmf(n, k, p)).sum()
}

/// Probability a random bit error (rate `ber`) corrupts an m-bit symbol.
pub fn symbol_error_prob(ber: f64, m: u32) -> f64 {
    1.0 - (1.0 - ber).powi(m as i32)
}

/// Post-FEC analysis of an (n, k, t) symbol-correcting code with m-bit
/// symbols under independent random bit errors at `pre_ber`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodePerformance {
    /// Probability a codeword is uncorrectable.
    pub codeword_failure_prob: f64,
    /// Approximate post-FEC bit error rate.
    pub post_ber: f64,
    /// Approximate post-FEC frame-loss-equivalent symbol error rate.
    pub post_ser: f64,
}

/// Evaluate an RS-like code (n symbols, corrects ≤ t symbol errors, m-bit
/// symbols) at a given pre-FEC random BER.
///
/// Post-FEC rates use the standard approximation: an uncorrectable word is
/// handed up with its symbol errors intact (no miscorrection inflation),
/// so `post_SER ≈ Σ_{i>t} (i/n)·P(i errors)` and a corrupted symbol
/// carries on average half its bits in error.
pub fn rs_performance(n: usize, t: usize, m: u32, pre_ber: f64) -> CodePerformance {
    let ps = symbol_error_prob(pre_ber, m);
    let fail = binomial_tail_above(n, t, ps);
    let mut post_ser = 0.0;
    for i in (t + 1)..=n {
        post_ser += (i as f64 / n as f64) * binomial_pmf(n, i, ps);
    }
    CodePerformance {
        codeword_failure_prob: fail,
        post_ser,
        post_ber: post_ser * 0.5,
    }
}

/// Evaluate a binary code (n bits, corrects ≤ t bit errors) at `pre_ber`.
pub fn binary_performance(n: usize, t: usize, pre_ber: f64) -> CodePerformance {
    let fail = binomial_tail_above(n, t, pre_ber);
    let mut post_ber = 0.0;
    for i in (t + 1)..=n {
        post_ber += (i as f64 / n as f64) * binomial_pmf(n, i, pre_ber);
    }
    CodePerformance {
        codeword_failure_prob: fail,
        post_ser: post_ber,
        post_ber,
    }
}

/// The pre-FEC BER at which an RS-like code first achieves `target_post`
/// post-FEC BER (found by bisection on the monotone curve).
pub fn rs_ber_threshold(n: usize, t: usize, m: u32, target_post: f64) -> f64 {
    let (mut lo, mut hi) = (1e-12f64, 0.4f64);
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric bisection over decades
        if rs_performance(n, t, m, mid).post_ber > target_post {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (lo * hi).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_gamma_anchors() {
        // Γ(1)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - core::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn choose_anchors() {
        assert!((ln_choose(10, 3).exp() - 120.0).abs() < 1e-6);
        let exact = (544.0f64 * 543.0 / 2.0).ln();
        assert!((ln_choose(544, 2) - exact).abs() < 1e-9);
    }

    #[test]
    fn pmf_sums_to_one() {
        let total: f64 = (0..=50).map(|k| binomial_pmf(50, k, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn kp4_threshold_matches_convention() {
        // RS(544,514) t=15 m=10 should hit ~1e-15 post-FEC around a
        // pre-FEC BER of 2e-4 (the quoted KP4 threshold is 2.4e-4 for a
        // slightly different output target; same decade).
        let th = rs_ber_threshold(544, 15, 10, 1e-15);
        assert!(th > 5e-5 && th < 5e-4, "got {th}");
    }

    #[test]
    fn kp4_at_threshold_input() {
        let perf = rs_performance(544, 15, 10, crate::KP4_BER_THRESHOLD);
        assert!(perf.post_ber < 1e-12, "post-FEC {} too high", perf.post_ber);
    }

    #[test]
    fn kr4_weaker_than_kp4() {
        let pre = 1e-4;
        let kp4 = rs_performance(544, 15, 10, pre).post_ber;
        let kr4 = rs_performance(528, 7, 10, pre).post_ber;
        assert!(kr4 > kp4 * 1e3, "kr4={kr4} kp4={kp4}");
    }

    #[test]
    fn binary_code_performance_sane() {
        // BCH(1023, t=8) at 1e-4: comfortably below 1e-12.
        let perf = binary_performance(1023, 8, 1e-4);
        assert!(perf.post_ber < 1e-12, "got {}", perf.post_ber);
        // And at 1e-2 it is visibly struggling.
        let bad = binary_performance(1023, 8, 1e-2);
        assert!(bad.post_ber > 1e-6);
    }

    proptest! {
        #[test]
        fn post_ber_monotone_in_pre_ber(e1 in -6f64..-1.0, e2 in -6f64..-1.0) {
            let (lo, hi) = if e1 < e2 { (e1, e2) } else { (e2, e1) };
            let p_lo = rs_performance(544, 15, 10, 10f64.powf(lo)).post_ber;
            let p_hi = rs_performance(544, 15, 10, 10f64.powf(hi)).post_ber;
            prop_assert!(p_lo <= p_hi * (1.0 + 1e-9) + 1e-300);
        }

        #[test]
        fn coding_gain_positive_below_threshold(exp in -5f64..-3.5) {
            // Below threshold the code must improve on no code.
            let pre = 10f64.powf(exp);
            let perf = rs_performance(544, 15, 10, pre);
            prop_assert!(perf.post_ber < pre);
        }

        #[test]
        fn tail_bounded_by_one(n in 1usize..600, p in 0f64..0.5) {
            let t = n / 10;
            let tail = binomial_tail_above(n, t, p);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&tail));
        }
    }
}
