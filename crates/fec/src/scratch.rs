//! Caller-owned scratch storage for allocation-free decoding.
//!
//! Monte-Carlo sweeps decode millions of codewords; allocating syndrome,
//! locator and evaluator polynomials per word dominated the decode cost.
//! A [`DecodeScratch`] owns every buffer the RS and BCH decoders need, so
//! a caller that keeps one scratch per worker decodes with zero heap
//! allocation per word (after the first decode sizes the buffers).
//!
//! Ownership rules (see DESIGN.md §8):
//! * The decoder never reads scratch contents on entry — every buffer is
//!   cleared/overwritten before use, so one scratch can serve codes of
//!   different sizes and both RS and BCH interchangeably.
//! * Buffers only grow; steady-state decode does not touch the allocator.
//! * A scratch is plain data: `Clone` for fan-out, `Default`/[`new`] for
//!   construction, no lifetime ties to any particular code.
//!
//! [`new`]: DecodeScratch::new

/// Reusable working storage for [`crate::rs::ReedSolomon`] and
/// [`crate::bch::Bch`] decoding.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    /// Syndromes S_0..S_{2t−1} (RS) or S_1..S_{2t} (BCH).
    pub(crate) synd: Vec<u16>,
    /// Horner evaluation points α^i for the fused syndrome kernel.
    pub(crate) roots: Vec<u16>,
    /// Erasure locator Γ(x).
    pub(crate) gamma: Vec<u16>,
    /// Error/combined locator Λ(x) (Berlekamp-Massey state).
    pub(crate) lambda: Vec<u16>,
    /// Previous locator B(x) (Berlekamp-Massey state).
    pub(crate) prev: Vec<u16>,
    /// Update candidate (Berlekamp-Massey state).
    pub(crate) cand: Vec<u16>,
    /// Error evaluator Ω(x) (Forney).
    pub(crate) omega: Vec<u16>,
    /// Formal derivative Λ′(x) (Forney).
    pub(crate) deriv: Vec<u16>,
    /// Chien-search hits: error polynomial powers (RS) or bit indices (BCH).
    pub(crate) positions: Vec<usize>,
}

impl DecodeScratch {
    /// Empty scratch; buffers are sized lazily by the first decode.
    pub fn new() -> Self {
        Self::default()
    }
}
