//! Binary BCH codes.
//!
//! The middle point of the FEC trade study: stronger than Hamming, lighter
//! than Reed-Solomon, and the natural choice for protecting individual
//! low-rate channels (bit-oriented errors, no symbol structure). We build
//! BCH(n, k, t) over GF(2^m) with n = 2^m − 1 (optionally shortened),
//! generator = lcm of the minimal polynomials of α¹..α^{2t}, and decode via
//! syndromes + Berlekamp-Massey + Chien search (binary: flipping located
//! bits, no magnitudes needed).

use crate::gf::GaloisField;
use crate::scratch::DecodeScratch;
use mosaic_units::{MosaicError, Result};

/// Outcome of a BCH decode attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BchOutcome {
    /// Word was already a codeword.
    Clean,
    /// Errors corrected (bit count).
    Corrected(usize),
    /// Uncorrectable pattern detected; word unmodified.
    Failure,
}

/// A binary BCH code. Bits are stored one per `u8` (0/1) highest-degree
/// first, mirroring the RS layout; this favors clarity over packing (the
/// simulator's hot loops operate on whole codewords, not bits).
#[derive(Debug, Clone, PartialEq)]
pub struct Bch {
    field: GaloisField,
    n: usize,
    k: usize,
    t: usize,
    /// Generator polynomial over GF(2), lowest-degree first (0/1 coeffs).
    generator: Vec<u8>,
    /// Host-side multiply-by-root tables for the syndrome kernel, built
    /// once per code: row `i` (stride = field size) holds
    /// `T_i[v] = v · α^{i+1}` (BCH syndromes start at α¹), so the Horner
    /// step `acc·α^{i+1} + c` becomes one lookup and one XOR (see
    /// DESIGN §11).
    synd_tables: Vec<u16>,
    /// Chien-search root table: `chien_roots[p] = α^{−p}` for each of the
    /// n valid positions, hoisting the modular exponent arithmetic out of
    /// the per-position search loop.
    chien_roots: Vec<u16>,
}

impl Bch {
    /// Construct a BCH code over GF(2^m) with designed correction `t`,
    /// shortened to length `n` (n ≤ 2^m − 1). `k` follows from the
    /// generator degree.
    ///
    /// # Panics
    /// Panics on invalid parameters; use [`Bch::try_new`] to handle the
    /// error instead.
    pub fn new(m: u32, n: usize, t: usize) -> Self {
        match Self::try_new(m, n, t) {
            Ok(code) => code,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Bch::new`]: errors when `n > 2^m − 1`, `t < 1`, or the
    /// generator polynomial leaves no room for data at length `n` (an
    /// oversubscribed code).
    pub fn try_new(m: u32, n: usize, t: usize) -> Result<Self> {
        let field = GaloisField::try_new(m)?;
        if n > field.order() {
            return Err(MosaicError::invalid_code(format!(
                "n={n} exceeds 2^m−1={}",
                field.order()
            )));
        }
        if t < 1 {
            return Err(MosaicError::invalid_code("BCH t must be at least 1"));
        }

        // Generator = lcm of minimal polynomials of α^1 .. α^{2t}.
        // Collect cyclotomic cosets of the exponents and multiply the
        // corresponding minimal polynomials together.
        let order = field.order();
        let mut covered = vec![false; order];
        let mut generator: Vec<u8> = vec![1];
        for e in 1..=(2 * t) {
            let e = e % order;
            if covered[e] {
                continue;
            }
            // Cyclotomic coset of e: {e, 2e, 4e, ...} mod (2^m − 1).
            let mut coset = vec![];
            let mut cur = e;
            loop {
                covered[cur] = true;
                coset.push(cur);
                cur = (cur * 2) % order;
                if cur == e {
                    break;
                }
            }
            // Minimal polynomial = Π_{j in coset} (x − α^j), computed in
            // GF(2^m); its coefficients land in GF(2).
            let mut min_poly: Vec<u16> = vec![1];
            for &j in &coset {
                min_poly = field.poly_mul(&min_poly, &[field.alpha_pow(j), 1]);
            }
            debug_assert!(
                min_poly.iter().all(|&c| c <= 1),
                "minimal polynomial must have binary coefficients"
            );
            // Multiply generator (GF(2)) by min_poly.
            let mut next = vec![0u8; generator.len() + min_poly.len() - 1];
            for (i, &gi) in generator.iter().enumerate() {
                if gi == 0 {
                    continue;
                }
                for (j, &mj) in min_poly.iter().enumerate() {
                    next[i + j] ^= mj as u8;
                }
            }
            generator = next;
        }
        let parity = generator.len() - 1;
        if n <= parity {
            return Err(MosaicError::invalid_code(format!(
                "oversubscribed BCH: length {n} cannot fit {parity} parity bits (t={t})"
            )));
        }
        let k = n - parity;
        // Host-side table precompute (DESIGN §11): per-root multiply
        // tables for the syndrome kernel and the Chien root sequence,
        // mirroring the RS decoder. Each entry is the exact
        // `field.mul`/`alpha_pow` value the inner loops would otherwise
        // recompute per bit/position.
        let two_t = 2 * t;
        let size = field.size();
        let mut synd_tables = vec![0u16; two_t * size];
        for (i, table) in synd_tables.chunks_exact_mut(size).enumerate() {
            let root = field.alpha_pow(i + 1);
            for (v, slot) in table.iter_mut().enumerate() {
                *slot = field.mul(v as u16, root);
            }
        }
        let chien_roots: Vec<u16> = (0..n)
            .map(|p| field.alpha_pow((order - p % order) % order))
            .collect();
        Ok(Bch {
            field,
            n,
            k,
            t,
            generator,
            synd_tables,
            chien_roots,
        })
    }

    /// The common BCH(1023, ·, t) family over GF(2¹⁰), full length.
    pub fn bch_1023(t: usize) -> Self {
        Bch::new(10, 1023, t)
    }

    /// Block length in bits.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data length in bits.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Designed error-correcting capability in bits.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Overhead ratio n/k.
    pub fn overhead(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    /// Systematic encode: `data` (k bits as 0/1 bytes) → n-bit codeword,
    /// data first, parity appended.
    ///
    /// # Panics
    /// Panics on malformed input; use [`Bch::try_encode`] to handle the
    /// error instead.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        match self.try_encode(data) {
            Ok(word) => word,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Bch::encode`]: errors unless `data` is exactly k bits.
    pub fn try_encode(&self, data: &[u8]) -> Result<Vec<u8>> {
        if data.len() != self.k {
            return Err(MosaicError::LengthMismatch {
                what: "BCH data block",
                expected: self.k,
                got: data.len(),
            });
        }
        let parity_len = self.n - self.k;
        let mut word = Vec::with_capacity(self.n);
        word.extend_from_slice(data);
        word.resize(self.n, 0);
        // Polynomial long division over GF(2).
        let mut rem = vec![0u8; parity_len];
        for &d in data {
            debug_assert!(d <= 1, "bits must be 0/1");
            let feedback = d ^ rem[0];
            rem.rotate_left(1);
            rem[parity_len - 1] = 0;
            if feedback == 1 {
                for (j, r) in rem.iter_mut().enumerate() {
                    *r ^= self.generator[parity_len - 1 - j];
                }
            }
        }
        word[self.k..].copy_from_slice(&rem);
        Ok(word)
    }

    /// Syndromes S_1..S_{2t} in GF(2^m). Retained as the per-syndrome
    /// reference for the fused kernel (used by the differential tests).
    #[cfg(test)]
    fn syndromes(&self, word: &[u8]) -> Vec<u16> {
        (1..=(2 * self.t))
            .map(|i| {
                let x = self.field.alpha_pow(i);
                let mut acc = 0u16;
                for &c in word {
                    acc = self.field.add(self.field.mul(acc, x), c as u16);
                }
                acc
            })
            .collect()
    }

    /// Fused Horner syndrome kernel into `s.synd`; returns true when the
    /// word is already a codeword. Same exact GF operations per
    /// accumulator as [`Bch::syndromes`], one pass over the word. The
    /// default build replaces the per-bit `mul` with the precomputed
    /// `synd_tables` lookup (`T_i[acc] ^ c` — identical values, see
    /// DESIGN §11); `--features scalar-kernels` retains the explicit
    /// multiply form as the differential oracle.
    fn syndromes_into(&self, word: &[u8], s: &mut DecodeScratch) -> bool {
        let two_t = 2 * self.t;
        s.roots.clear();
        s.roots.extend((1..=two_t).map(|i| self.field.alpha_pow(i)));
        s.synd.clear();
        s.synd.resize(two_t, 0);
        #[cfg(feature = "scalar-kernels")]
        for &c in word {
            for (acc, &x) in s.synd.iter_mut().zip(&s.roots) {
                *acc = self.field.add(self.field.mul(*acc, x), c as u16);
            }
        }
        #[cfg(not(feature = "scalar-kernels"))]
        {
            let stride = self.field.size();
            for &c in word {
                for (acc, table) in s.synd.iter_mut().zip(self.synd_tables.chunks_exact(stride)) {
                    *acc = table[*acc as usize] ^ c as u16;
                }
            }
        }
        s.synd.iter().all(|&v| v == 0)
    }

    /// Decode in place: locate and flip up to t bit errors.
    ///
    /// Errors only on malformed input (wrong word length); an
    /// uncorrectable pattern is the `Ok(`[`BchOutcome::Failure`]`)` case,
    /// not an `Err`.
    pub fn decode(&self, word: &mut [u8]) -> Result<BchOutcome> {
        self.decode_scratch(word, &mut DecodeScratch::new())
    }

    /// [`Bch::decode`] with caller-owned working storage: zero heap
    /// allocation per word once the scratch buffers are sized.
    pub fn decode_scratch(&self, word: &mut [u8], s: &mut DecodeScratch) -> Result<BchOutcome> {
        if word.len() != self.n {
            return Err(MosaicError::LengthMismatch {
                what: "BCH codeword",
                expected: self.n,
                got: word.len(),
            });
        }
        if self.syndromes_into(word, s) {
            return Ok(BchOutcome::Clean);
        }
        let two_t = 2 * self.t;

        // Berlekamp-Massey (same structure as the RS decoder), on scratch
        // buffers with swaps replacing the reference path's clone-and-move.
        s.lambda.clear();
        s.lambda.resize(two_t + 1, 0);
        s.prev.clear();
        s.prev.resize(two_t + 1, 0);
        s.cand.clear();
        s.cand.resize(two_t + 1, 0);
        s.lambda[0] = 1;
        s.prev[0] = 1;
        let mut l = 0usize;
        let mut shift = 1usize;
        let mut b = 1u16;
        for r in 0..two_t {
            let mut delta = 0u16;
            for i in 0..=l.min(r) {
                delta = self
                    .field
                    .add(delta, self.field.mul(s.lambda[i], s.synd[r - i]));
            }
            if delta == 0 {
                shift += 1;
                continue;
            }
            let coeff = self.field.div(delta, b);
            s.cand.copy_from_slice(&s.lambda);
            for i in shift..=two_t {
                if s.prev[i - shift] != 0 {
                    s.cand[i] = self
                        .field
                        .add(s.cand[i], self.field.mul(coeff, s.prev[i - shift]));
                }
            }
            if 2 * l <= r {
                std::mem::swap(&mut s.prev, &mut s.lambda);
                b = delta;
                l = r + 1 - l;
                shift = 1;
            } else {
                shift += 1;
            }
            std::mem::swap(&mut s.lambda, &mut s.cand);
        }
        let deg = s.lambda.iter().rposition(|&c| c != 0).unwrap_or(0);
        if deg == 0 || deg > self.t {
            return Ok(BchOutcome::Failure);
        }

        // Chien search restricted to the transmitted length.
        // `chien_roots[p]` is the precomputed α^{−p} (same `alpha_pow`
        // expression, evaluated once at construction — see DESIGN §11).
        s.positions.clear();
        for (p, &x_inv) in self.chien_roots.iter().enumerate() {
            if self.field.poly_eval(&s.lambda, x_inv) == 0 {
                s.positions.push(self.n - 1 - p);
            }
        }
        if s.positions.len() != deg {
            return Ok(BchOutcome::Failure);
        }
        for &idx in &s.positions {
            word[idx] ^= 1;
        }
        if !self.syndromes_into(word, s) {
            // Undo and report failure rather than hand back garbage.
            for &idx in &s.positions {
                word[idx] ^= 1;
            }
            return Ok(BchOutcome::Failure);
        }
        Ok(BchOutcome::Corrected(s.positions.len()))
    }
}

/// The PR-2-era allocating decoder, retained verbatim as the differential
/// oracle for the scratch-based path.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    /// Allocating BCH decode, pre-scratch implementation.
    pub fn decode(code: &Bch, word: &mut [u8]) -> Result<BchOutcome> {
        if word.len() != code.n {
            return Err(MosaicError::LengthMismatch {
                what: "BCH codeword",
                expected: code.n,
                got: word.len(),
            });
        }
        let synd = code.syndromes(word);
        if synd.iter().all(|&s| s == 0) {
            return Ok(BchOutcome::Clean);
        }
        let two_t = 2 * code.t;
        let mut lambda = vec![0u16; two_t + 1];
        let mut prev = vec![0u16; two_t + 1];
        lambda[0] = 1;
        prev[0] = 1;
        let mut l = 0usize;
        let mut shift = 1usize;
        let mut b = 1u16;
        for r in 0..two_t {
            let mut delta = 0u16;
            for i in 0..=l.min(r) {
                delta = code
                    .field
                    .add(delta, code.field.mul(lambda[i], synd[r - i]));
            }
            if delta == 0 {
                shift += 1;
                continue;
            }
            let coeff = code.field.div(delta, b);
            let mut cand = lambda.clone();
            for i in shift..=two_t {
                if prev[i - shift] != 0 {
                    cand[i] = code
                        .field
                        .add(cand[i], code.field.mul(coeff, prev[i - shift]));
                }
            }
            if 2 * l <= r {
                prev = lambda;
                b = delta;
                l = r + 1 - l;
                shift = 1;
            } else {
                shift += 1;
            }
            lambda = cand;
        }
        let deg = lambda.iter().rposition(|&c| c != 0).unwrap_or(0);
        if deg == 0 || deg > code.t {
            return Ok(BchOutcome::Failure);
        }
        let order = code.field.order();
        let mut flips = Vec::with_capacity(deg);
        for p in 0..code.n {
            let x_inv = code.field.alpha_pow((order - p % order) % order);
            if code.field.poly_eval(&lambda, x_inv) == 0 {
                flips.push(code.n - 1 - p);
            }
        }
        if flips.len() != deg {
            return Ok(BchOutcome::Failure);
        }
        for &idx in &flips {
            word[idx] ^= 1;
        }
        if code.syndromes(word).iter().any(|&s| s != 0) {
            for &idx in &flips {
                word[idx] ^= 1;
            }
            return Ok(BchOutcome::Failure);
        }
        Ok(BchOutcome::Corrected(flips.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn oversubscribed_code_is_an_error() {
        // Shortened BCH(10, t=3) over GF(2^4) needs 10 parity bits — the
        // whole block — leaving no room for data.
        assert!(Bch::try_new(4, 10, 3).is_err());
        assert!(Bch::try_new(4, 16, 2).is_err()); // n > 2^4 − 1
        assert!(Bch::try_new(4, 15, 0).is_err());
        let code = Bch::new(4, 15, 2);
        assert!(code.try_encode(&[0u8; 3]).is_err());
        let mut short = vec![0u8; 3];
        assert!(code.decode(&mut short).is_err());
    }

    #[test]
    fn bch_15_7_2_parameters() {
        // The textbook BCH(15,7) corrects 2 errors; generator degree 8.
        let code = Bch::new(4, 15, 2);
        assert_eq!((code.n(), code.k(), code.t()), (15, 7, 2));
    }

    #[test]
    fn bch_255_t5() {
        // BCH over GF(2^8) with t=5: k = 255 − 40 = 215.
        let code = Bch::new(8, 255, 5);
        assert_eq!(code.k(), 215);
    }

    #[test]
    fn encode_is_codeword() {
        let code = Bch::new(4, 15, 2);
        let data = [1u8, 0, 1, 1, 0, 0, 1];
        let word = code.encode(&data);
        assert_eq!(&word[..7], &data);
        assert!(code.syndromes(&word).iter().all(|&s| s == 0));
    }

    #[test]
    fn corrects_up_to_t_bits() {
        let code = Bch::new(8, 255, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<u8> = (0..code.k()).map(|_| rng.gen_range(0..2u8)).collect();
        let clean = code.encode(&data);
        for nerr in 1..=5 {
            let mut word = clean.clone();
            let mut pos: Vec<usize> = (0..code.n()).collect();
            for i in 0..nerr {
                let j = rng.gen_range(i..pos.len());
                pos.swap(i, j);
                word[pos[i]] ^= 1;
            }
            assert_eq!(
                code.decode(&mut word).unwrap(),
                BchOutcome::Corrected(nerr),
                "nerr={nerr}"
            );
            assert_eq!(word, clean);
        }
    }

    #[test]
    fn shortened_bch_roundtrip() {
        let code = Bch::new(8, 120, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<u8> = (0..code.k()).map(|_| rng.gen_range(0..2u8)).collect();
        let clean = code.encode(&data);
        let mut word = clean.clone();
        word[3] ^= 1;
        word[77] ^= 1;
        word[119] ^= 1;
        assert_eq!(code.decode(&mut word).unwrap(), BchOutcome::Corrected(3));
        assert_eq!(word, clean);
    }

    #[test]
    fn overload_detected_and_word_untouched() {
        let code = Bch::new(4, 15, 2);
        let data = [1u8, 1, 0, 1, 0, 1, 0];
        let clean = code.encode(&data);
        let mut detected = 0;
        let mut tried = 0;
        // Try many 4-error patterns (t=2): failures must leave the word
        // unmodified; miscorrections must still be codewords.
        for a in 0..6 {
            for b in 6..10 {
                for c in 10..13 {
                    for d in 13..15 {
                        let mut word = clean.clone();
                        for idx in [a, b, c, d] {
                            word[idx] ^= 1;
                        }
                        let snapshot = word.clone();
                        tried += 1;
                        match code.decode(&mut word).unwrap() {
                            BchOutcome::Failure => {
                                detected += 1;
                                assert_eq!(word, snapshot);
                            }
                            BchOutcome::Corrected(_) => {
                                assert!(code.syndromes(&word).iter().all(|&s| s == 0));
                            }
                            BchOutcome::Clean => panic!("4 errors reported clean"),
                        }
                    }
                }
            }
        }
        assert!(detected > 0, "no failures detected in {tried} patterns");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn scratch_matches_reference(seed in 0u64..2000, nerr in 0usize..=6) {
            // Differential oracle over clean, correctable and overloaded
            // patterns (t = 3): outcome and word must match bit-for-bit.
            let code = Bch::new(8, 63, 3);
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<u8> = (0..code.k()).map(|_| rng.gen_range(0..2u8)).collect();
            let mut word = code.encode(&data);
            let mut pos: Vec<usize> = (0..code.n()).collect();
            for i in 0..nerr {
                let j = rng.gen_range(i..pos.len());
                pos.swap(i, j);
                word[pos[i]] ^= 1;
            }
            let mut word_ref = word.clone();
            let mut word_new = word.clone();
            let mut scratch = crate::scratch::DecodeScratch::new();
            let out_ref = reference::decode(&code, &mut word_ref).unwrap();
            let out_new = code.decode_scratch(&mut word_new, &mut scratch).unwrap();
            prop_assert_eq!(out_new, out_ref);
            prop_assert_eq!(word_new, word_ref);
        }

        #[test]
        fn fused_syndromes_match_reference(seed in 0u64..1000) {
            let code = Bch::new(8, 63, 3);
            let mut rng = StdRng::seed_from_u64(seed);
            let word: Vec<u8> = (0..code.n()).map(|_| rng.gen_range(0..2u8)).collect();
            let mut scratch = crate::scratch::DecodeScratch::new();
            let all_zero = code.syndromes_into(&word, &mut scratch);
            let reference = code.syndromes(&word);
            prop_assert_eq!(&scratch.synd, &reference);
            prop_assert_eq!(all_zero, reference.iter().all(|&s| s == 0));
        }

        #[test]
        fn random_roundtrip(seed in 0u64..500, nerr in 0usize..=3) {
            let code = Bch::new(8, 63, 3);
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<u8> = (0..code.k()).map(|_| rng.gen_range(0..2u8)).collect();
            let clean = code.encode(&data);
            let mut word = clean.clone();
            let mut pos: Vec<usize> = (0..code.n()).collect();
            for i in 0..nerr {
                let j = rng.gen_range(i..pos.len());
                pos.swap(i, j);
                word[pos[i]] ^= 1;
            }
            let out = code.decode(&mut word).unwrap();
            prop_assert_eq!(word, clean);
            if nerr == 0 {
                prop_assert_eq!(out, BchOutcome::Clean);
            } else {
                prop_assert_eq!(out, BchOutcome::Corrected(nerr));
            }
        }
    }
}
