//! Extended Hamming(72,64) SEC-DED.
//!
//! The lightest FEC option in the trade study (F10): corrects one bit and
//! detects two per 72-bit word, at 12.5 % overhead and near-zero decoder
//! energy. Useful as the "almost no FEC" point against KR4/KP4.

/// Outcome of a Hamming decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HammingOutcome {
    /// No error detected.
    Clean,
    /// One bit corrected (position within the 72-bit word).
    Corrected(u32),
    /// A double-bit error was detected (uncorrectable).
    DoubleError,
}

/// Extended Hamming code: 64 data bits + 7 Hamming parity bits + 1 overall
/// parity bit, laid out as `data:u64` plus `check:u8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hamming7264;

impl Hamming7264 {
    /// Number of data bits per word.
    pub const DATA_BITS: u32 = 64;
    /// Number of check bits per word.
    pub const CHECK_BITS: u32 = 8;

    /// Map data-bit index (0..64) to its position in the (1-based)
    /// Hamming layout, skipping power-of-two positions.
    fn hamming_position(data_bit: u32) -> u32 {
        // Positions 1..=71; powers of two hold parity.
        let mut pos: u32 = 1;
        let mut seen = 0;
        loop {
            if !pos.is_power_of_two() {
                if seen == data_bit {
                    return pos;
                }
                seen += 1;
            }
            pos += 1;
        }
    }

    /// Compute the 7 Hamming parity bits + overall parity for `data`.
    pub fn encode(&self, data: u64) -> u8 {
        let mut syndrome_acc: u32 = 0;
        let mut ones = 0u32;
        for bit in 0..64 {
            if (data >> bit) & 1 == 1 {
                syndrome_acc ^= Self::hamming_position(bit);
                ones += 1;
            }
        }
        // 7 parity bits are the syndrome accumulator; overall parity covers
        // data + the 7 parity bits (even parity).
        let parity7 = (syndrome_acc & 0x7F) as u8;
        let overall = ((ones + parity7.count_ones()) & 1) as u8;
        parity7 | (overall << 7)
    }

    /// Decode a received `(data, check)` pair in place.
    pub fn decode(&self, data: &mut u64, check: &mut u8) -> HammingOutcome {
        let expect = self.encode(*data);
        let parity_diff = (expect ^ *check) & 0x7F;
        let overall_received = (*check >> 7) & 1;
        let overall_expected = (expect >> 7) & 1;
        // Recompute overall parity across the *received* word: data bits +
        // received parity7 bits.
        let received_ones =
            data.count_ones() + ((*check & 0x7F) as u32).count_ones() + overall_received as u32;
        let overall_ok = received_ones.is_multiple_of(2);

        if parity_diff == 0 {
            if overall_ok {
                return HammingOutcome::Clean;
            }
            // Overall parity bit itself flipped.
            *check ^= 0x80;
            return HammingOutcome::Corrected(71);
        }
        if overall_ok {
            // Syndrome non-zero but overall parity consistent: two errors.
            let _ = overall_expected;
            return HammingOutcome::DoubleError;
        }
        // Single error at Hamming position `parity_diff`.
        let pos = parity_diff as u32;
        if pos.is_power_of_two() {
            // A parity bit flipped; fix it in `check`.
            let parity_index = pos.trailing_zeros();
            *check ^= 1 << parity_index;
            return HammingOutcome::Corrected(64 + parity_index);
        }
        // A data bit flipped: find which data index maps to this position.
        for bit in 0..64 {
            if Self::hamming_position(bit) == pos {
                *data ^= 1u64 << bit;
                return HammingOutcome::Corrected(bit);
            }
        }
        // Syndrome points past the word (corrupted beyond recognition).
        HammingOutcome::DoubleError
    }

    /// Code overhead ratio (transmitted bits per payload bit).
    pub fn overhead(&self) -> f64 {
        72.0 / 64.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_roundtrip() {
        let h = Hamming7264;
        let data = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut d = data;
        let mut c = h.encode(data);
        assert_eq!(h.decode(&mut d, &mut c), HammingOutcome::Clean);
        assert_eq!(d, data);
    }

    #[test]
    fn corrects_any_single_data_bit() {
        let h = Hamming7264;
        let data = 0x0123_4567_89AB_CDEFu64;
        for bit in 0..64 {
            let mut d = data ^ (1u64 << bit);
            let mut c = h.encode(data);
            let out = h.decode(&mut d, &mut c);
            assert_eq!(out, HammingOutcome::Corrected(bit), "bit {bit}");
            assert_eq!(d, data, "bit {bit}");
        }
    }

    #[test]
    fn corrects_parity_bit_flips() {
        let h = Hamming7264;
        let data = 0xFFFF_0000_FFFF_0000u64;
        for pbit in 0..8 {
            let mut d = data;
            let mut c = h.encode(data) ^ (1 << pbit);
            let out = h.decode(&mut d, &mut c);
            assert!(matches!(out, HammingOutcome::Corrected(_)), "pbit {pbit}");
            assert_eq!(d, data);
            assert_eq!(c, h.encode(data));
        }
    }

    #[test]
    fn detects_double_errors() {
        let h = Hamming7264;
        let data = 0x5555_AAAA_5555_AAAAu64;
        let mut detected = 0;
        let mut total = 0;
        for b1 in (0..64).step_by(7) {
            for b2 in (b1 + 1..64).step_by(11) {
                let mut d = data ^ (1u64 << b1) ^ (1u64 << b2);
                let mut c = h.encode(data);
                total += 1;
                if h.decode(&mut d, &mut c) == HammingOutcome::DoubleError {
                    detected += 1;
                }
            }
        }
        assert_eq!(detected, total, "SEC-DED must flag every double error");
    }

    proptest! {
        #[test]
        fn random_single_flip_roundtrip(data: u64, bit in 0u32..64) {
            let h = Hamming7264;
            let mut d = data ^ (1u64 << bit);
            let mut c = h.encode(data);
            prop_assert_eq!(h.decode(&mut d, &mut c), HammingOutcome::Corrected(bit));
            prop_assert_eq!(d, data);
        }

        #[test]
        fn random_double_flip_detected(data: u64, b1 in 0u32..64, b2 in 0u32..64) {
            prop_assume!(b1 != b2);
            let h = Hamming7264;
            let mut d = data ^ (1u64 << b1) ^ (1u64 << b2);
            let mut c = h.encode(data);
            prop_assert_eq!(h.decode(&mut d, &mut c), HammingOutcome::DoubleError);
        }
    }
}
