//! Mapping FEC codewords onto parallel channels, and turning channel
//! health into erasure information.
//!
//! Mosaic stripes each RS codeword's symbols round-robin across its
//! channels. That mapping is what makes channel faults benign:
//!
//! * a *burst* on one channel touches ~n/C symbols of any word — spread,
//!   not concentrated ([`crate::interleave`] handles the time axis);
//! * a *dead or degraded* channel contributes a *known* set of symbol
//!   positions, which the decoder can treat as erasures — worth twice as
//!   much correction as blind errors (`2·errors + erasures ≤ n − k`).
//!
//! [`ChannelMap`] owns that position arithmetic and the erasure-budget
//! queries the link layer asks before deciding whether it must fail over
//! or can ride a sick channel.

use crate::rs::{DecodeOutcome, ReedSolomon};
use mosaic_units::{MosaicError, Result};

/// Round-robin assignment of an n-symbol codeword across C channels:
/// symbol `i` rides channel `i mod C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelMap {
    n: usize,
    channels: usize,
}

impl ChannelMap {
    /// Map an `n`-symbol codeword over `channels` channels.
    ///
    /// # Panics
    /// Panics on invalid parameters; use [`ChannelMap::try_new`] to
    /// handle the error instead.
    pub fn new(n: usize, channels: usize) -> Self {
        match Self::try_new(n, channels) {
            Ok(map) => map,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ChannelMap::new`]: errors unless `1 ≤ channels ≤ n`.
    pub fn try_new(n: usize, channels: usize) -> Result<Self> {
        if channels < 1 || channels > n {
            return Err(MosaicError::invalid_config(
                "channels",
                format!("need 1 ≤ channels ≤ n={n}, got {channels}"),
            ));
        }
        Ok(ChannelMap { n, channels })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The symbol positions carried by `channel`.
    pub fn positions_of(&self, channel: usize) -> Vec<usize> {
        assert!(channel < self.channels, "channel {channel} out of range");
        (channel..self.n).step_by(self.channels).collect()
    }

    /// Symbols per channel (the maximum across channels).
    pub fn symbols_per_channel(&self) -> usize {
        self.n.div_ceil(self.channels)
    }

    /// The erasure list implied by a set of suspect channels.
    ///
    /// # Panics
    /// Panics on out-of-range channels; use
    /// [`ChannelMap::try_erasures_for`] to handle the error instead.
    pub fn erasures_for(&self, suspect_channels: &[usize]) -> Vec<usize> {
        match self.try_erasures_for(suspect_channels) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ChannelMap::erasures_for`].
    pub fn try_erasures_for(&self, suspect_channels: &[usize]) -> Result<Vec<usize>> {
        let mut out = Vec::new();
        for &c in suspect_channels {
            if c >= self.channels {
                return Err(MosaicError::IndexOutOfRange {
                    what: "channel",
                    index: c,
                    limit: self.channels,
                });
            }
            out.extend((c..self.n).step_by(self.channels));
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// How many whole channels the code can lose to erasure decoding while
    /// still correcting `reserve_errors` blind symbol errors elsewhere:
    /// the erasure budget is `n − k − 2·reserve_errors` symbols.
    pub fn erasable_channels(&self, rs: &ReedSolomon, reserve_errors: usize) -> usize {
        assert_eq!(rs.n(), self.n, "map/code length mismatch");
        let parity = rs.n() - rs.k();
        let budget = parity.saturating_sub(2 * reserve_errors);
        budget / self.symbols_per_channel()
    }

    /// Decode a word whose `suspect_channels` are flagged by the lane
    /// monitors: their symbols become erasures. Errors only on malformed
    /// input (out-of-range channels, wrong word length).
    pub fn decode_with_suspects(
        &self,
        rs: &ReedSolomon,
        word: &mut [u16],
        suspect_channels: &[usize],
    ) -> Result<DecodeOutcome> {
        let erasures = self.try_erasures_for(suspect_channels)?;
        rs.decode_with_erasures(word, &erasures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn positions_partition_the_word() {
        let map = ChannelMap::new(544, 30);
        let mut all: Vec<usize> = (0..30).flat_map(|c| map.positions_of(c)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..544).collect::<Vec<_>>());
    }

    #[test]
    fn kp4_over_30_channels_can_erase_one_channel() {
        // 544 symbols over 30 channels → ≤19 symbols per channel; the
        // 30-symbol parity budget covers one dead channel with room for
        // 5 blind errors elsewhere (2·5 + 19 ≤ 30... 29 ≤ 30).
        let rs = ReedSolomon::kp4();
        let map = ChannelMap::new(rs.n(), 30);
        assert_eq!(map.symbols_per_channel(), 19);
        assert_eq!(map.erasable_channels(&rs, 0), 1);
        assert_eq!(map.erasable_channels(&rs, 5), 1);
        assert_eq!(map.erasable_channels(&rs, 8), 0);
    }

    #[test]
    fn suspect_channel_decodes_via_erasures() {
        let rs = ReedSolomon::kp4();
        let map = ChannelMap::new(rs.n(), 30);
        let data: Vec<u16> = (0..rs.k() as u16).map(|v| v & 0x3FF).collect();
        let clean = rs.encode(&data);
        let mut word = clean.clone();
        for &p in &map.positions_of(7) {
            word[p] ^= 0x155; // channel 7 goes bad
        }
        word[0] ^= 0x2AA; // plus one blind error on channel 0
        let out = map.decode_with_suspects(&rs, &mut word, &[7]).unwrap();
        assert!(matches!(out, DecodeOutcome::Corrected(_)), "got {out:?}");
        assert_eq!(word, clean);
    }

    #[test]
    fn blind_decode_of_a_dead_channel_fails() {
        // The same fault without the suspect flag exceeds t = 15.
        let rs = ReedSolomon::kp4();
        let map = ChannelMap::new(rs.n(), 30);
        let data: Vec<u16> = (0..rs.k() as u16).map(|v| v & 0x3FF).collect();
        let mut word = rs.encode(&data);
        for &p in &map.positions_of(7) {
            word[p] ^= 0x155;
        }
        assert_eq!(rs.decode(&mut word).unwrap(), DecodeOutcome::Failure);
        assert!(map.decode_with_suspects(&rs, &mut word, &[99]).is_err());
    }

    proptest! {
        #[test]
        fn erasures_count_matches_channel_size(channels in 1usize..64, suspects in 0usize..4) {
            let map = ChannelMap::new(544, channels.min(544));
            let suspect_list: Vec<usize> = (0..suspects.min(map.channels())).collect();
            let erasures = map.erasures_for(&suspect_list);
            let expect: usize = suspect_list.iter().map(|&c| map.positions_of(c).len()).sum();
            prop_assert_eq!(erasures.len(), expect);
        }

        #[test]
        fn positions_disjoint(channels in 2usize..32, c1 in 0usize..32, c2 in 0usize..32) {
            let map = ChannelMap::new(300, channels);
            let (a, b) = (c1 % channels, c2 % channels);
            prop_assume!(a != b);
            let pa = map.positions_of(a);
            let pb = map.positions_of(b);
            for p in &pa {
                prop_assert!(!pb.contains(p));
            }
        }
    }
}
