//! Forward error correction for the Mosaic reproduction.
//!
//! Mosaic inherits the Ethernet convention that the host-side FEC (KP4,
//! i.e. RS(544,514) over GF(2¹⁰)) protects the whole link, and its
//! wide-and-slow channels must deliver a pre-FEC BER below the KP4
//! threshold (2.4e-4). This crate implements the codes *for real* — encode
//! and decode run on actual symbols, so the link simulator corrects actual
//! injected errors rather than applying a formula:
//!
//! * [`gf`] — GF(2^m) arithmetic with log/antilog tables (m ≤ 12);
//! * [`rs`] — systematic Reed-Solomon with Berlekamp-Massey, Chien search
//!   and Forney's algorithm; constructors for KP4 RS(544,514) and KR4
//!   RS(528,514);
//! * [`bch`] — binary BCH codes (syndrome + BM + Chien bit-flipping);
//! * [`hamming`] — extended Hamming(72,64) SEC-DED;
//! * [`interleave`] — block interleaving to spread burst errors;
//! * [`channel_map`] — codeword↔channel position arithmetic: turns lane
//!   monitors' "channel X is sick" into erasure lists for the decoder;
//! * [`scratch`] — caller-owned buffers making the RS/BCH decode paths
//!   allocation-free in Monte-Carlo loops;
//! * [`analysis`] — analytic post-FEC error rates from pre-FEC BER
//!   (binomial tails, evaluated in the log domain), used to cross-check
//!   Monte-Carlo results and to run sweeps far below simulable BERs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bch;
pub mod channel_map;
pub mod gf;
pub mod hamming;
pub mod interleave;
pub mod rs;
pub mod scratch;

pub use bch::{Bch, BchOutcome};
pub use channel_map::ChannelMap;
pub use gf::GaloisField;
pub use hamming::Hamming7264;
pub use interleave::BlockInterleaver;
pub use rs::{DecodeOutcome, ReedSolomon};
pub use scratch::DecodeScratch;

/// The workspace error type, re-exported for FEC callers.
pub use mosaic_units::{MosaicError, Result};

/// The pre-FEC BER threshold conventionally quoted for KP4 RS(544,514):
/// random errors at this rate decode to better than 1e-15 post-FEC.
pub const KP4_BER_THRESHOLD: f64 = 2.4e-4;

/// The pre-FEC BER threshold conventionally quoted for KR4 RS(528,514).
pub const KR4_BER_THRESHOLD: f64 = 2.1e-5;
