//! Proof of the "zero heap allocations per decoded codeword" claim: a
//! counting global allocator wraps the system allocator, and decoding
//! through a warmed [`DecodeScratch`] must not touch it.
//!
//! Everything runs in a single `#[test]` so no concurrent test can
//! pollute the process-wide counter.

use mosaic_fec::{Bch, BchOutcome, DecodeOutcome, DecodeScratch, ReedSolomon};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn scratch_decode_paths_do_not_allocate() {
    // --- Reed-Solomon: KP4 with a correctable error burst ---------------
    let rs = ReedSolomon::kp4();
    let data: Vec<u16> = (0..rs.k() as u16).map(|v| v & 0x3FF).collect();
    let clean = rs.encode(&data);
    let mut corrupted = clean.clone();
    for i in 0..rs.t() {
        corrupted[i * 36] ^= 0x155;
    }
    let mut word = corrupted.clone();
    let mut scratch = DecodeScratch::new();
    // Warm-up decode sizes every scratch buffer.
    assert_eq!(
        rs.decode_scratch(&mut word, &mut scratch).unwrap(),
        DecodeOutcome::Corrected(rs.t())
    );

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..50 {
        word.copy_from_slice(&corrupted);
        let out = rs.decode_scratch(&mut word, &mut scratch).unwrap();
        assert!(matches!(out, DecodeOutcome::Corrected(_)));
    }
    // Clean words exercise the fused-syndrome early exit.
    word.copy_from_slice(&clean);
    for _ in 0..50 {
        let out = rs.decode_scratch(&mut word, &mut scratch).unwrap();
        assert!(matches!(out, DecodeOutcome::Clean));
    }
    let rs_allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        rs_allocs, 0,
        "RS scratch decode allocated {rs_allocs} times"
    );

    // --- Erasure path reuses the same scratch ---------------------------
    let erasures: Vec<usize> = (0..10).map(|i| i * 36).collect();
    word.copy_from_slice(&corrupted);
    rs.decode_with_erasures_scratch(&mut word, &erasures, &mut scratch)
        .unwrap();
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..50 {
        word.copy_from_slice(&corrupted);
        rs.decode_with_erasures_scratch(&mut word, &erasures, &mut scratch)
            .unwrap();
    }
    let er_allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        er_allocs, 0,
        "RS erasure scratch decode allocated {er_allocs} times"
    );

    // --- Encode into a warmed buffer ------------------------------------
    let mut enc = Vec::new();
    rs.try_encode_into(&data, &mut enc).unwrap();
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..50 {
        rs.try_encode_into(&data, &mut enc).unwrap();
    }
    let enc_allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(enc_allocs, 0, "RS encode_into allocated {enc_allocs} times");
    assert_eq!(enc, clean);

    // --- BCH: same scratch object, different code entirely ---------------
    let bch = Bch::new(8, 255, 5);
    let bdata: Vec<u8> = (0..bch.k()).map(|i| (i % 2) as u8).collect();
    let bclean = bch.encode(&bdata);
    let mut bcorrupt = bclean.clone();
    for i in 0..bch.t() {
        bcorrupt[i * 50] ^= 1;
    }
    let mut bword = bcorrupt.clone();
    bch.decode_scratch(&mut bword, &mut scratch).unwrap();
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..50 {
        bword.copy_from_slice(&bcorrupt);
        let out = bch.decode_scratch(&mut bword, &mut scratch).unwrap();
        assert!(matches!(out, BchOutcome::Corrected(_)));
    }
    let bch_allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        bch_allocs, 0,
        "BCH scratch decode allocated {bch_allocs} times"
    );
}
