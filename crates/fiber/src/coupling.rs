//! Lens/facet coupling efficiencies and connector losses.
//!
//! Mosaic's optics are deliberately simple: one molded lens pair images the
//! LED array onto the fiber facet, another images the far facet onto the PD
//! array. The budget entries are geometric capture (an LED is a Lambertian
//! emitter — a lens of finite NA captures only part of it), facet fill
//! factor (light landing between cores is lost), Fresnel/coating losses,
//! and an optional expanded-beam connector per mated pair.

use mosaic_units::Db;

/// Coupling budget of one end-to-end optical path (TX optics + fiber entry
/// + fiber exit + RX optics), excluding propagation loss.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingBudget {
    /// Fraction of Lambertian LED emission captured by the TX lens (set by
    /// lens NA²; 0.35 is a realistic molded-optics value).
    pub tx_capture: f64,
    /// Fraction of imaged light entering guided core modes (facet fill
    /// factor × NA match).
    pub facet_fill: f64,
    /// Transmission of each lens group (Fresnel + absorption), applied
    /// twice (TX and RX).
    pub lens_transmission: f64,
    /// Fraction of exit light collected onto the PD pixel.
    pub rx_capture: f64,
    /// Loss per mated expanded-beam connector, dB (positive).
    pub connector_db: f64,
    /// Number of mated connector pairs in the path.
    pub connectors: usize,
}

impl CouplingBudget {
    /// Default Mosaic coupling stack: ≈7.6 dB total with no connectors.
    pub fn mosaic_default() -> Self {
        CouplingBudget {
            tx_capture: 0.35,
            facet_fill: 0.70,
            lens_transmission: 0.92,
            rx_capture: 0.85,
            connector_db: 1.0,
            connectors: 0,
        }
    }

    /// Total coupling efficiency as a linear ratio (0..1).
    pub fn efficiency(&self) -> f64 {
        let optics = self.tx_capture
            * self.facet_fill
            * self.lens_transmission
            * self.lens_transmission
            * self.rx_capture;
        let connectors = 10f64.powf(-(self.connector_db * self.connectors as f64) / 10.0);
        optics * connectors
    }

    /// Total coupling loss as a negative-dB gain.
    pub fn loss(&self) -> Db {
        Db::from_linear(self.efficiency())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_about_eight_db() {
        let loss = CouplingBudget::mosaic_default().loss();
        assert!(loss.as_db() < -6.0 && loss.as_db() > -10.0, "got {loss}");
    }

    #[test]
    fn connectors_add_a_db_each() {
        let mut b = CouplingBudget::mosaic_default();
        let base = b.loss().as_db();
        b.connectors = 2;
        assert!((b.loss().as_db() - (base - 2.0)).abs() < 1e-9);
    }

    #[test]
    fn efficiency_in_unit_interval() {
        let b = CouplingBudget::mosaic_default();
        assert!(b.efficiency() > 0.0 && b.efficiency() < 1.0);
    }
}
