//! End-to-end optical path assembly: one [`ImagingFiber`] plus coupling
//! optics yields a per-channel [`ChannelPath`] budget that the link-level
//! code consumes.

use crate::attenuation::Attenuation;
use crate::coupling::CouplingBudget;
use crate::crosstalk::CrosstalkModel;
use crate::dispersion::ModalDispersion;
use crate::geometry::CoreLattice;
use mosaic_units::{Db, Frequency, Length};

/// A massively multicore imaging fiber with its coupling optics — the
/// Mosaic medium.
#[derive(Debug, Clone, PartialEq)]
pub struct ImagingFiber {
    /// The core lattice carrying the channels.
    pub lattice: CoreLattice,
    /// Span length.
    pub length: Length,
    /// Glass attenuation model.
    pub attenuation: Attenuation,
    /// Modal dispersion model.
    pub dispersion: ModalDispersion,
    /// Crosstalk and misalignment model.
    pub crosstalk: CrosstalkModel,
    /// Coupling budget for every channel.
    pub coupling: CouplingBudget,
}

impl ImagingFiber {
    /// A Mosaic-default fiber with `channels` assigned cores at 20 µm pitch
    /// over `length`.
    pub fn mosaic_default(channels: usize, length: Length) -> Self {
        ImagingFiber {
            lattice: CoreLattice::spiral(channels, Length::from_um(20.0)),
            length,
            attenuation: Attenuation::imaging_glass(),
            dispersion: ModalDispersion::imaging_core(),
            crosstalk: CrosstalkModel::default_aligned(),
            coupling: CouplingBudget::mosaic_default(),
        }
    }

    /// Number of assigned channels.
    pub fn channels(&self) -> usize {
        self.lattice.len()
    }

    /// Per-channel path budget at emission wavelength `wavelength_m`.
    ///
    /// # Panics
    /// Panics if `channel` is out of range.
    pub fn channel_path(&self, channel: usize, wavelength_m: f64) -> ChannelPath {
        assert!(channel < self.channels(), "channel {channel} out of range");
        let propagation = self.attenuation.loss(self.length, wavelength_m);
        let coupling = self.coupling.loss();
        let self_coupling = Db::from_linear(
            self.crosstalk
                .self_coupling(&self.lattice, channel)
                .max(1e-12),
        );
        let xt = self
            .crosstalk
            .total_crosstalk(&self.lattice, channel, self.length);
        ChannelPath {
            channel,
            loss: propagation + coupling + self_coupling,
            modal_bandwidth: self.dispersion.bandwidth_at(self.length),
            crosstalk_ratio: xt,
            crosstalk_penalty: crate::crosstalk::crosstalk_penalty(xt),
        }
    }

    /// Budgets for every channel.
    pub fn all_paths(&self, wavelength_m: f64) -> Vec<ChannelPath> {
        (0..self.channels())
            .map(|c| self.channel_path(c, wavelength_m))
            .collect()
    }
}

/// The optical budget of one channel through the fiber assembly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelPath {
    /// Channel index (spiral order from the lattice center).
    pub channel: usize,
    /// Total path loss (propagation + coupling + misalignment), ≤ 0 dB.
    pub loss: Db,
    /// Modal bandwidth available over this span.
    pub modal_bandwidth: Frequency,
    /// Total incoherent crosstalk ratio from neighbors.
    pub crosstalk_ratio: f64,
    /// Worst-case crosstalk eye penalty (positive dB), `None` if closed.
    pub crosstalk_penalty: Option<Db>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crosstalk::Misalignment;

    const BLUE: f64 = 450e-9;

    #[test]
    fn prototype_budget_is_plausible() {
        // 100 channels, 10 m: loss should be coupling (~8 dB) plus ~0.8 dB
        // of glass — well under 15 dB, leaving margin for an LED launch.
        let f = ImagingFiber::mosaic_default(100, Length::from_m(10.0));
        let p = f.channel_path(0, BLUE);
        assert!(
            p.loss.as_db() < -7.0 && p.loss.as_db() > -15.0,
            "{}",
            p.loss
        );
        assert!(p.crosstalk_penalty.is_some());
        assert!(p.modal_bandwidth.as_ghz() > 5.0);
    }

    #[test]
    fn fifty_metres_still_usable_at_2g() {
        let f = ImagingFiber::mosaic_default(400, Length::from_m(50.0));
        let p = f.channel_path(0, BLUE);
        // ~4 dB glass + ~8 dB coupling; modal bandwidth ≈ 2 GHz.
        assert!(p.loss.as_db() > -16.0, "{}", p.loss);
        assert!(p.modal_bandwidth.as_ghz() > 1.4, "{}", p.modal_bandwidth);
    }

    #[test]
    fn loss_grows_with_length() {
        let short = ImagingFiber::mosaic_default(100, Length::from_m(5.0));
        let long = ImagingFiber::mosaic_default(100, Length::from_m(50.0));
        assert!(long.channel_path(0, BLUE).loss.as_db() < short.channel_path(0, BLUE).loss.as_db());
    }

    #[test]
    fn misaligned_outer_channels_pay_more() {
        let mut f = ImagingFiber::mosaic_default(127, Length::from_m(10.0));
        f.crosstalk.misalignment = Misalignment {
            lateral: Length::from_um(3.0),
            rotation_rad: 0.03,
        };
        let center = f.channel_path(0, BLUE);
        let outer = f.channel_path(126, BLUE);
        assert!(outer.loss.as_db() < center.loss.as_db());
    }

    #[test]
    fn all_paths_covers_every_channel() {
        let f = ImagingFiber::mosaic_default(61, Length::from_m(10.0));
        let paths = f.all_paths(BLUE);
        assert_eq!(paths.len(), 61);
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(p.channel, i);
        }
    }
}
