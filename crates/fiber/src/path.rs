//! End-to-end optical path assembly: one [`ImagingFiber`] plus coupling
//! optics yields a per-channel [`ChannelPath`] budget that the link-level
//! code consumes.

use crate::attenuation::Attenuation;
use crate::coupling::CouplingBudget;
use crate::crosstalk::CrosstalkModel;
use crate::dispersion::ModalDispersion;
use crate::geometry::CoreLattice;
use mosaic_units::{Db, Frequency, Length};

/// A massively multicore imaging fiber with its coupling optics — the
/// Mosaic medium.
#[derive(Debug, Clone, PartialEq)]
pub struct ImagingFiber {
    /// The core lattice carrying the channels.
    pub lattice: CoreLattice,
    /// Span length.
    pub length: Length,
    /// Glass attenuation model.
    pub attenuation: Attenuation,
    /// Modal dispersion model.
    pub dispersion: ModalDispersion,
    /// Crosstalk and misalignment model.
    pub crosstalk: CrosstalkModel,
    /// Coupling budget for every channel.
    pub coupling: CouplingBudget,
}

impl ImagingFiber {
    /// A Mosaic-default fiber with `channels` assigned cores at 20 µm pitch
    /// over `length`.
    pub fn mosaic_default(channels: usize, length: Length) -> Self {
        ImagingFiber {
            lattice: CoreLattice::spiral(channels, Length::from_um(20.0)),
            length,
            attenuation: Attenuation::imaging_glass(),
            dispersion: ModalDispersion::imaging_core(),
            crosstalk: CrosstalkModel::default_aligned(),
            coupling: CouplingBudget::mosaic_default(),
        }
    }

    /// Number of assigned channels.
    pub fn channels(&self) -> usize {
        self.lattice.len()
    }

    /// The length- and wavelength-dependent but channel-*independent*
    /// parts of every [`ChannelPath`]: propagation loss, coupling loss,
    /// modal bandwidth, and the per-neighbor intrinsic crosstalk unit.
    /// Sweep loops that budget many channels at one span length compute
    /// this once instead of once per channel (the host-side precompute
    /// discipline of DESIGN §11); the per-channel remainder is applied by
    /// [`ImagingFiber::channel_path_with`].
    pub fn span_budget(&self, wavelength_m: f64) -> SpanBudget {
        SpanBudget {
            propagation: self.attenuation.loss(self.length, wavelength_m),
            coupling: self.coupling.loss(),
            modal_bandwidth: self.dispersion.bandwidth_at(self.length),
            xt_unit: self.crosstalk.xt_unit(&self.lattice, self.length),
        }
    }

    /// Per-channel path budget at emission wavelength `wavelength_m`.
    ///
    /// # Panics
    /// Panics if `channel` is out of range.
    pub fn channel_path(&self, channel: usize, wavelength_m: f64) -> ChannelPath {
        self.channel_path_with(&self.span_budget(wavelength_m), channel)
    }

    /// [`ImagingFiber::channel_path`] with the span-level terms already
    /// computed — bit-identical to the one-shot form (the span terms are
    /// pure functions of the same inputs, combined in the same order).
    ///
    /// # Panics
    /// Panics if `channel` is out of range.
    pub fn channel_path_with(&self, span: &SpanBudget, channel: usize) -> ChannelPath {
        self.channel_path_cached(span, &self.channel_statics(channel), channel)
    }

    /// The length-independent per-channel terms of a [`ChannelPath`]:
    /// misalignment self-coupling loss and the crosstalk statics. A reach
    /// bisection computes these once per channel and re-evaluates only the
    /// [`SpanBudget`] per length probe.
    ///
    /// # Panics
    /// Panics if `channel` is out of range.
    pub fn channel_statics(&self, channel: usize) -> ChannelStatics {
        assert!(channel < self.channels(), "channel {channel} out of range");
        ChannelStatics {
            self_coupling: Db::from_linear(
                self.crosstalk
                    .self_coupling(&self.lattice, channel)
                    .max(1e-12),
            ),
            xt: self.crosstalk.xt_statics(&self.lattice, channel),
        }
    }

    /// Assemble a [`ChannelPath`] from cached span and channel terms — the
    /// same float sequence as the one-shot form, so bit-identical.
    pub fn channel_path_cached(
        &self,
        span: &SpanBudget,
        statics: &ChannelStatics,
        channel: usize,
    ) -> ChannelPath {
        let xt = self
            .crosstalk
            .total_crosstalk_cached(&statics.xt, span.xt_unit);
        ChannelPath {
            channel,
            loss: span.propagation + span.coupling + statics.self_coupling,
            modal_bandwidth: span.modal_bandwidth,
            crosstalk_ratio: xt,
            crosstalk_penalty: crate::crosstalk::crosstalk_penalty(xt),
        }
    }

    /// Budgets for every channel.
    pub fn all_paths(&self, wavelength_m: f64) -> Vec<ChannelPath> {
        (0..self.channels())
            .map(|c| self.channel_path(c, wavelength_m))
            .collect()
    }
}

/// The length-independent per-channel half of a [`ChannelPath`]. Built by
/// [`ImagingFiber::channel_statics`], consumed by
/// [`ImagingFiber::channel_path_cached`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelStatics {
    /// Misalignment self-coupling loss (≤ 0 dB).
    pub self_coupling: Db,
    /// Crosstalk statics (neighbor count, misalignment spill).
    pub xt: crate::crosstalk::XtStatics,
}

/// The channel-independent half of a [`ChannelPath`]: everything that
/// depends only on span length and wavelength. Built by
/// [`ImagingFiber::span_budget`], consumed by
/// [`ImagingFiber::channel_path_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanBudget {
    /// Glass propagation loss over the span.
    pub propagation: Db,
    /// Coupling-optics loss (length-independent, carried for convenience).
    pub coupling: Db,
    /// Modal bandwidth available over the span.
    pub modal_bandwidth: Frequency,
    /// Accumulated per-neighbor intrinsic crosstalk (linear ratio).
    pub xt_unit: f64,
}

/// The optical budget of one channel through the fiber assembly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelPath {
    /// Channel index (spiral order from the lattice center).
    pub channel: usize,
    /// Total path loss (propagation + coupling + misalignment), ≤ 0 dB.
    pub loss: Db,
    /// Modal bandwidth available over this span.
    pub modal_bandwidth: Frequency,
    /// Total incoherent crosstalk ratio from neighbors.
    pub crosstalk_ratio: f64,
    /// Worst-case crosstalk eye penalty (positive dB), `None` if closed.
    pub crosstalk_penalty: Option<Db>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crosstalk::Misalignment;

    const BLUE: f64 = 450e-9;

    #[test]
    fn prototype_budget_is_plausible() {
        // 100 channels, 10 m: loss should be coupling (~8 dB) plus ~0.8 dB
        // of glass — well under 15 dB, leaving margin for an LED launch.
        let f = ImagingFiber::mosaic_default(100, Length::from_m(10.0));
        let p = f.channel_path(0, BLUE);
        assert!(
            p.loss.as_db() < -7.0 && p.loss.as_db() > -15.0,
            "{}",
            p.loss
        );
        assert!(p.crosstalk_penalty.is_some());
        assert!(p.modal_bandwidth.as_ghz() > 5.0);
    }

    #[test]
    fn fifty_metres_still_usable_at_2g() {
        let f = ImagingFiber::mosaic_default(400, Length::from_m(50.0));
        let p = f.channel_path(0, BLUE);
        // ~4 dB glass + ~8 dB coupling; modal bandwidth ≈ 2 GHz.
        assert!(p.loss.as_db() > -16.0, "{}", p.loss);
        assert!(p.modal_bandwidth.as_ghz() > 1.4, "{}", p.modal_bandwidth);
    }

    #[test]
    fn loss_grows_with_length() {
        let short = ImagingFiber::mosaic_default(100, Length::from_m(5.0));
        let long = ImagingFiber::mosaic_default(100, Length::from_m(50.0));
        assert!(long.channel_path(0, BLUE).loss.as_db() < short.channel_path(0, BLUE).loss.as_db());
    }

    #[test]
    fn misaligned_outer_channels_pay_more() {
        let mut f = ImagingFiber::mosaic_default(127, Length::from_m(10.0));
        f.crosstalk.misalignment = Misalignment {
            lateral: Length::from_um(3.0),
            rotation_rad: 0.03,
        };
        let center = f.channel_path(0, BLUE);
        let outer = f.channel_path(126, BLUE);
        assert!(outer.loss.as_db() < center.loss.as_db());
    }

    #[test]
    fn all_paths_covers_every_channel() {
        let f = ImagingFiber::mosaic_default(61, Length::from_m(10.0));
        let paths = f.all_paths(BLUE);
        assert_eq!(paths.len(), 61);
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(p.channel, i);
        }
    }
}
