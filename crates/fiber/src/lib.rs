//! Massively multicore *imaging fiber* models for the Mosaic reproduction.
//!
//! Mosaic's optical medium is not a telecom fiber but an imaging fiber —
//! thousands of small step-index cores on a hexagonal lattice, drawn as one
//! strand, normally used for endoscopy. A lens images the 2-D microLED
//! array onto the fiber facet and a second lens images the far facet onto a
//! photodiode array, so each LED "pixel" rides its own core (or small group
//! of cores).
//!
//! The physical effects that bound the architecture, each with its own
//! module:
//!
//! * [`geometry`] — the hexagonal core lattice, channel→core assignment and
//!   neighbor relations (crosstalk is a nearest-neighbor affair);
//! * [`attenuation`] — visible-band loss per metre (imaging glass is far
//!   lossier than telecom silica; this is one of the two reach limits);
//! * [`dispersion`] — modal bandwidth×length products of the small
//!   multimode cores (the other reach limit);
//! * [`crosstalk`] — inter-core coupling vs. pitch and length, plus the
//!   lateral/rotational misalignment spill between imaged pixels;
//! * [`color`] — wavelength (RGB) multiplexing plans: ×3 capacity per
//!   core against the green gap and filter leakage;
//! * [`coupling`] — lens/facet coupling efficiencies and connector losses;
//! * [`path`] — everything combined into a per-channel optical path budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attenuation;
pub mod color;
pub mod coupling;
pub mod crosstalk;
pub mod dispersion;
pub mod geometry;
pub mod path;

pub use geometry::{CoreLattice, HexCoord};
pub use path::{ChannelPath, ImagingFiber, SpanBudget};
