//! Visible-band attenuation of imaging-fiber glass.
//!
//! Imaging fibers are drawn from high-index multicomponent glass, not
//! telecom silica: attenuation in the blue is tenths of a dB per *metre*
//! (versus tenths of a dB per *kilometre* for SMF-28). This is fine for
//! Mosaic's ≤50 m ambitions and hopeless beyond — which is exactly the
//! regime boundary the paper's trade-off map shows.

use mosaic_units::{Db, Length};

/// Attenuation model: a base dB/m at a reference wavelength plus a simple
/// Rayleigh-like `λ⁻⁴` scaling for nearby wavelengths.
#[derive(Debug, Clone, PartialEq)]
pub struct Attenuation {
    /// Loss at the reference wavelength, dB/m (positive number).
    pub db_per_m_at_ref: f64,
    /// Reference wavelength, metres.
    pub ref_wavelength_m: f64,
}

impl Attenuation {
    /// Default imaging-fiber glass: 0.10 dB/m at 450 nm (multicomponent
    /// glass imaging bundles are quoted at 0.05–0.5 dB/m in the visible;
    /// we take a good-but-not-heroic value).
    pub fn imaging_glass() -> Self {
        Attenuation {
            db_per_m_at_ref: 0.10,
            ref_wavelength_m: 450e-9,
        }
    }

    /// Telecom-grade OM4 multimode silica (for baselines): 2.3 dB/km at
    /// 850 nm.
    pub fn om4_850() -> Self {
        Attenuation {
            db_per_m_at_ref: 0.0023,
            ref_wavelength_m: 850e-9,
        }
    }

    /// Single-mode silica at 1310 nm (for DR baselines): 0.32 dB/km.
    pub fn smf_1310() -> Self {
        Attenuation {
            db_per_m_at_ref: 0.00032,
            ref_wavelength_m: 1310e-9,
        }
    }

    /// Loss per metre at `wavelength_m`, dB (positive).
    pub fn db_per_m(&self, wavelength_m: f64) -> f64 {
        let scale = (self.ref_wavelength_m / wavelength_m).powi(4);
        self.db_per_m_at_ref * scale
    }

    /// Total fiber loss over `length` at `wavelength_m`, as a negative-dB
    /// gain ready to apply to a power level.
    pub fn loss(&self, length: Length, wavelength_m: f64) -> Db {
        Db::new(-self.db_per_m(wavelength_m) * length.as_m())
    }

    /// Longest length whose loss stays within `budget` dB (positive number).
    pub fn max_length(&self, budget_db: f64, wavelength_m: f64) -> Length {
        assert!(budget_db >= 0.0, "loss budget must be non-negative");
        Length::from_m(budget_db / self.db_per_m(wavelength_m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn imaging_fiber_50m_loss_is_single_digit_db() {
        let a = Attenuation::imaging_glass();
        let loss = a.loss(Length::from_m(50.0), 450e-9);
        assert!((loss.as_db() + 5.0).abs() < 0.01, "got {loss}");
    }

    #[test]
    fn silica_is_orders_of_magnitude_better() {
        let img = Attenuation::imaging_glass().db_per_m(450e-9);
        let smf = Attenuation::smf_1310().db_per_m(1310e-9);
        assert!(img / smf > 100.0);
    }

    #[test]
    fn bluer_light_attenuates_more() {
        let a = Attenuation::imaging_glass();
        assert!(a.db_per_m(420e-9) > a.db_per_m(520e-9));
    }

    #[test]
    fn max_length_inverts_loss() {
        let a = Attenuation::imaging_glass();
        let l = a.max_length(4.0, 450e-9);
        let loss = a.loss(l, 450e-9);
        assert!((loss.as_db() + 4.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn loss_linear_in_length(m1 in 0.1f64..100.0, m2 in 0.1f64..100.0) {
            let a = Attenuation::imaging_glass();
            let l1 = a.loss(Length::from_m(m1), 450e-9).as_db();
            let l2 = a.loss(Length::from_m(m2), 450e-9).as_db();
            let sum = a.loss(Length::from_m(m1 + m2), 450e-9).as_db();
            prop_assert!((l1 + l2 - sum).abs() < 1e-9);
        }
    }
}
