//! Modal dispersion of the small multimode cores.
//!
//! Each imaging-fiber core is a few µm of step-index multimode guide. Its
//! temporal response is characterized — as for all multimode fiber — by a
//! modal bandwidth×length product: the usable channel bandwidth falls as
//! `1/L`. Together with attenuation this sets Mosaic's reach ceiling: at
//! 2 Gb/s per channel the dispersion wall sits near 50–100 m, which is why
//! the paper quotes "up to 50 m".

use mosaic_units::{BitRate, Frequency, Length};

/// Modal-dispersion model for one core family.
#[derive(Debug, Clone, PartialEq)]
pub struct ModalDispersion {
    /// Bandwidth×length product, Hz·m (e.g. 100 MHz·km = 1e11 Hz·m).
    pub bandwidth_length_hz_m: f64,
}

impl ModalDispersion {
    /// Default imaging-fiber core: small (≈3 µm) cores guide few modes and
    /// couple strongly, giving an effective ~100 MHz·km — far better than
    /// large-core step-index POF, far worse than laser-optimized OM4.
    pub fn imaging_core() -> Self {
        ModalDispersion {
            bandwidth_length_hz_m: 100e6 * 1000.0,
        }
    }

    /// OM4 multimode at 850 nm: 4700 MHz·km effective modal bandwidth.
    pub fn om4() -> Self {
        ModalDispersion {
            bandwidth_length_hz_m: 4700e6 * 1000.0,
        }
    }

    /// −3 dB modal bandwidth of a span of `length`.
    pub fn bandwidth_at(&self, length: Length) -> Frequency {
        assert!(length.as_m() > 0.0, "span length must be positive");
        Frequency::from_hz(self.bandwidth_length_hz_m / length.as_m())
    }

    /// Longest span whose modal bandwidth still reaches `needed`.
    pub fn max_length(&self, needed: Frequency) -> Length {
        assert!(needed.as_hz() > 0.0, "required bandwidth must be positive");
        Length::from_m(self.bandwidth_length_hz_m / needed.as_hz())
    }

    /// Longest span supporting NRZ at `rate` with the conventional 0.7×
    /// bandwidth-to-bitrate requirement.
    pub fn max_length_for_rate(&self, rate: BitRate) -> Length {
        self.max_length(Frequency::from_hz(0.7 * rate.as_bps()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_gbps_reaches_tens_of_metres() {
        // C5 anchor: the dispersion wall for a 2 Gb/s channel sits around
        // 50–100 m for the default imaging core.
        let d = ModalDispersion::imaging_core();
        let l = d.max_length_for_rate(BitRate::from_gbps(2.0));
        assert!(l.as_m() > 50.0 && l.as_m() < 120.0, "got {l}");
    }

    #[test]
    fn faster_channels_reach_less() {
        let d = ModalDispersion::imaging_core();
        let l2 = d.max_length_for_rate(BitRate::from_gbps(2.0));
        let l10 = d.max_length_for_rate(BitRate::from_gbps(10.0));
        assert!((l2.as_m() / l10.as_m() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_halves_when_length_doubles() {
        let d = ModalDispersion::imaging_core();
        let b1 = d.bandwidth_at(Length::from_m(10.0));
        let b2 = d.bandwidth_at(Length::from_m(20.0));
        assert!((b1.as_hz() / b2.as_hz() - 2.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn max_length_inverts_bandwidth(ghz in 0.1f64..10.0) {
            let d = ModalDispersion::imaging_core();
            let f = Frequency::from_ghz(ghz);
            let l = d.max_length(f);
            let back = d.bandwidth_at(l);
            prop_assert!((back.as_hz() / f.as_hz() - 1.0).abs() < 1e-9);
        }
    }
}
