//! Inter-core crosstalk and misalignment spill.
//!
//! Two mechanisms put a neighbor's light into a victim channel:
//!
//! 1. **Intrinsic core-to-core coupling** inside the fiber. It accumulates
//!    linearly with length and falls off exponentially with core pitch —
//!    the standard coupled-mode behaviour for phase-mismatched multimode
//!    cores.
//! 2. **Imaging misalignment** at either facet: if the lens images the LED
//!    (or core) grid onto the pixel grid with a lateral offset or a small
//!    rotation, a Gaussian-ish spot spills into the adjacent pixel.
//!
//! Because microLED channels are mutually *incoherent*, crosstalk adds in
//! optical power (no coherent beating), and the worst-case eye penalty for
//! a total relative crosstalk `x` is `−10·log10(1 − 2x)`.

use crate::geometry::CoreLattice;
use mosaic_units::{Db, Length};

/// Intrinsic core-to-core coupling model.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreCoupling {
    /// Per-metre nearest-neighbor crosstalk (linear power ratio) at the
    /// reference pitch.
    pub xt_per_m_at_ref: f64,
    /// Reference pitch.
    pub ref_pitch: Length,
    /// Exponential pitch sensitivity, 1/µm of *extra* pitch. 0.46/µm ≈
    /// −2 dB of crosstalk per additional µm of separation.
    pub gamma_per_um: f64,
}

impl CoreCoupling {
    /// Default imaging-fiber coupling: −40 dB/m per neighbor at 20 µm pitch.
    pub fn imaging_default() -> Self {
        CoreCoupling {
            xt_per_m_at_ref: 1e-4,
            ref_pitch: Length::from_um(20.0),
            gamma_per_um: 0.46,
        }
    }

    /// Per-metre nearest-neighbor crosstalk (linear) at a given pitch.
    pub fn xt_per_m(&self, pitch: Length) -> f64 {
        let extra_um = pitch.as_um() - self.ref_pitch.as_um();
        self.xt_per_m_at_ref * (-self.gamma_per_um * extra_um).exp()
    }

    /// Accumulated nearest-neighbor crosstalk (linear) over `length`,
    /// saturating at 0.5 (fully mixed).
    pub fn xt_total(&self, pitch: Length, length: Length) -> f64 {
        (self.xt_per_m(pitch) * length.as_m()).min(0.5)
    }
}

/// Static misalignment of the imaging optics relative to the pixel grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Misalignment {
    /// Lateral image offset at the array plane.
    pub lateral: Length,
    /// Image rotation, radians (offset grows with radial position).
    pub rotation_rad: f64,
}

impl Misalignment {
    /// Perfect alignment.
    pub const NONE: Misalignment = Misalignment {
        lateral: Length::ZERO,
        rotation_rad: 0.0,
    };

    /// Effective offset magnitude for a channel at radius `r` from the
    /// optical axis: lateral and rotational (`r·θ`) contributions in
    /// quadrature.
    pub fn offset_at(&self, r: Length) -> Length {
        let lat = self.lateral.as_m();
        let rot = r.as_m() * self.rotation_rad;
        Length::from_m((lat * lat + rot * rot).sqrt())
    }
}

/// Gaussian-spot overlap: fraction of a spot of 1/e² radius `w` landing on
/// a pixel centred `d` away, relative to perfect centring.
fn gaussian_overlap(d: Length, w: Length) -> f64 {
    let x = d.as_m() / w.as_m();
    (-2.0 * x * x).exp()
}

/// Length-independent crosstalk terms of one channel, cached across the
/// length probes of a reach bisection. Built by
/// [`CrosstalkModel::xt_statics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XtStatics {
    /// Populated neighbor count, as the f64 factor used by the model.
    pub neighbors: f64,
    /// Misalignment spill term (linear ratio), already neighbor-weighted.
    pub spill: f64,
}

/// Per-channel crosstalk analysis over a lattice.
#[derive(Debug, Clone, PartialEq)]
pub struct CrosstalkModel {
    /// Intrinsic coupling.
    pub coupling: CoreCoupling,
    /// Static imaging misalignment.
    pub misalignment: Misalignment,
    /// Imaged spot 1/e² radius as a fraction of the pitch (≈0.35 for a
    /// well-designed relay).
    pub spot_fraction: f64,
}

impl CrosstalkModel {
    /// A well-aligned default model.
    pub fn default_aligned() -> Self {
        CrosstalkModel {
            coupling: CoreCoupling::imaging_default(),
            misalignment: Misalignment::NONE,
            spot_fraction: 0.35,
        }
    }

    /// Self-coupling efficiency (0..1) of channel `idx`: how much of its
    /// own light still lands on its own pixel given misalignment. This is
    /// a *loss* applied to the signal path.
    pub fn self_coupling(&self, lattice: &CoreLattice, idx: usize) -> f64 {
        let r = lattice.radius_of(idx);
        let d = self.misalignment.offset_at(r);
        let w = lattice.pitch * self.spot_fraction;
        gaussian_overlap(d, w)
    }

    /// The channel-independent factor of [`CrosstalkModel::total_crosstalk`]:
    /// accumulated per-neighbor intrinsic crosstalk over `length`. Hoist it
    /// once per span when budgeting many channels (DESIGN §11).
    pub fn xt_unit(&self, lattice: &CoreLattice, length: Length) -> f64 {
        self.coupling.xt_total(lattice.pitch, length)
    }

    /// Total relative crosstalk (linear power ratio, aggressors vs. signal)
    /// landing on channel `idx` over a fiber of `length`.
    pub fn total_crosstalk(&self, lattice: &CoreLattice, idx: usize, length: Length) -> f64 {
        self.total_crosstalk_with_unit(lattice, idx, self.xt_unit(lattice, length))
    }

    /// [`CrosstalkModel::total_crosstalk`] with the length-dependent
    /// [`CrosstalkModel::xt_unit`] already computed — bit-identical to the
    /// one-shot form (same operands, same combination order).
    pub fn total_crosstalk_with_unit(
        &self,
        lattice: &CoreLattice,
        idx: usize,
        xt_unit: f64,
    ) -> f64 {
        self.total_crosstalk_cached(&self.xt_statics(lattice, idx), xt_unit)
    }

    /// The length-*independent* pieces of [`CrosstalkModel::total_crosstalk`]
    /// for one channel: neighbor count and misalignment spill. Reach
    /// bisections cache these per channel and re-evaluate only the
    /// length-dependent [`CrosstalkModel::xt_unit`] per probe (DESIGN §11).
    pub fn xt_statics(&self, lattice: &CoreLattice, idx: usize) -> XtStatics {
        let neighbors = lattice.neighbor_count(idx);

        // Misalignment spill: each neighbor's (equally misaligned) spot is
        // displaced from my pixel by (pitch ⊖ offset); take the dominant
        // nearest approach — offset directly toward me.
        let w = lattice.pitch * self.spot_fraction;
        let r = lattice.radius_of(idx);
        let offset = self.misalignment.offset_at(r);
        let gap = Length::from_m((lattice.pitch.as_m() - offset.as_m()).max(0.0));
        let spill = gaussian_overlap(gap, w) * neighbors.min(2) as f64;
        XtStatics {
            neighbors: neighbors as f64,
            spill,
        }
    }

    /// Combine cached [`XtStatics`] with a span's `xt_unit` — the same
    /// float sequence as the one-shot `total_crosstalk`, so bit-identical.
    pub fn total_crosstalk_cached(&self, statics: &XtStatics, xt_unit: f64) -> f64 {
        let intrinsic = xt_unit * statics.neighbors;
        (intrinsic + statics.spill).min(0.9)
    }

    /// Worst-case incoherent crosstalk power penalty for channel `idx`,
    /// or `None` if crosstalk has fully closed the eye (x ≥ 0.5).
    pub fn penalty(&self, lattice: &CoreLattice, idx: usize, length: Length) -> Option<Db> {
        let x = self.total_crosstalk(lattice, idx, length);
        crosstalk_penalty(x)
    }
}

/// Worst-case incoherent eye penalty for total relative crosstalk `x`:
/// `−10·log10(1 − 2x)`, positive dB; `None` once the eye closes.
pub fn crosstalk_penalty(x: f64) -> Option<Db> {
    assert!(x >= 0.0, "crosstalk ratio cannot be negative");
    if x >= 0.5 {
        return None;
    }
    Some(Db::from_linear(1.0 - 2.0 * x).invert())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lattice() -> CoreLattice {
        CoreLattice::spiral(127, Length::from_um(20.0))
    }

    #[test]
    fn calibration_anchor() {
        // −40 dB/m at 20 µm ⇒ over 10 m one neighbor contributes −30 dB.
        let c = CoreCoupling::imaging_default();
        let xt = c.xt_total(Length::from_um(20.0), Length::from_m(10.0));
        assert!((10.0 * xt.log10() + 30.0).abs() < 0.01);
    }

    #[test]
    fn wider_pitch_reduces_crosstalk() {
        let c = CoreCoupling::imaging_default();
        let near = c.xt_per_m(Length::from_um(15.0));
        let far = c.xt_per_m(Length::from_um(30.0));
        assert!(near / far > 100.0);
    }

    #[test]
    fn aligned_center_channel_penalty_is_small() {
        let m = CrosstalkModel::default_aligned();
        let lat = lattice();
        let pen = m.penalty(&lat, 0, Length::from_m(10.0)).unwrap();
        assert!(pen.as_db() < 0.2, "got {pen}");
        assert!(pen.as_db() > 0.0);
    }

    #[test]
    fn edge_channels_see_less_intrinsic_crosstalk() {
        // Fewer populated neighbors at the lattice edge.
        let m = CrosstalkModel::default_aligned();
        let lat = lattice();
        let center = m.total_crosstalk(&lat, 0, Length::from_m(10.0));
        let edge = m.total_crosstalk(&lat, lat.len() - 1, Length::from_m(10.0));
        assert!(edge < center);
    }

    #[test]
    fn misalignment_costs_signal_and_adds_spill() {
        let lat = lattice();
        let mut m = CrosstalkModel::default_aligned();
        let clean_self = m.self_coupling(&lat, 0);
        let clean_xt = m.total_crosstalk(&lat, 0, Length::from_m(10.0));
        m.misalignment = Misalignment {
            lateral: Length::from_um(6.0),
            rotation_rad: 0.0,
        };
        assert!(m.self_coupling(&lat, 0) < clean_self);
        assert!(m.total_crosstalk(&lat, 0, Length::from_m(10.0)) > clean_xt);
    }

    #[test]
    fn rotation_hits_outer_channels_hardest() {
        let lat = lattice();
        let m = CrosstalkModel {
            misalignment: Misalignment {
                lateral: Length::ZERO,
                rotation_rad: 0.05,
            },
            ..CrosstalkModel::default_aligned()
        };
        let center = m.self_coupling(&lat, 0);
        let outer = m.self_coupling(&lat, lat.len() - 1);
        assert!(outer < center);
        assert!((center - 1.0).abs() < 1e-9); // axis channel unaffected
    }

    #[test]
    fn penalty_closes_eye_at_half() {
        assert!(crosstalk_penalty(0.5).is_none());
        assert!(crosstalk_penalty(0.49).is_some());
        assert!((crosstalk_penalty(0.0).unwrap().as_db()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn penalty_monotone(x1 in 0f64..0.49, x2 in 0f64..0.49) {
            let (lo, hi) = if x1 < x2 { (x1, x2) } else { (x2, x1) };
            let p_lo = crosstalk_penalty(lo).unwrap().as_db();
            let p_hi = crosstalk_penalty(hi).unwrap().as_db();
            prop_assert!(p_lo <= p_hi + 1e-12);
        }

        #[test]
        fn self_coupling_bounded(um in 0f64..15.0) {
            let lat = lattice();
            let m = CrosstalkModel {
                misalignment: Misalignment { lateral: Length::from_um(um), rotation_rad: 0.0 },
                ..CrosstalkModel::default_aligned()
            };
            for idx in [0usize, 3, 60, 126] {
                let s = m.self_coupling(&lat, idx);
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }

        #[test]
        fn crosstalk_grows_with_length(m1 in 1f64..50.0, m2 in 1f64..50.0) {
            let lat = lattice();
            let model = CrosstalkModel::default_aligned();
            let (lo, hi) = if m1 < m2 { (m1, m2) } else { (m2, m1) };
            let x_lo = model.total_crosstalk(&lat, 0, Length::from_m(lo));
            let x_hi = model.total_crosstalk(&lat, 0, Length::from_m(hi));
            prop_assert!(x_lo <= x_hi + 1e-15);
        }
    }
}
