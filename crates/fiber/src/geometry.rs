//! Hexagonal core lattice geometry and channel→core assignment.
//!
//! Imaging fibers pack cores on a triangular (hexagonal) lattice. We use
//! axial coordinates `(q, r)`: the six neighbors of a core are at unit
//! steps, and Euclidean positions follow from the pitch. Channels are
//! assigned to cores spiralling outward from the center, which matches how
//! an imaged square-ish LED array lands on the facet and keeps early
//! channels in the best (central, least-aberrated) region.

use mosaic_units::Length;

/// Axial hex-lattice coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HexCoord {
    /// Axial q coordinate.
    pub q: i32,
    /// Axial r coordinate.
    pub r: i32,
}

impl HexCoord {
    /// The origin (central core).
    pub const CENTER: HexCoord = HexCoord { q: 0, r: 0 };

    /// The six axial direction steps, in counter-clockwise order.
    pub const DIRECTIONS: [HexCoord; 6] = [
        HexCoord { q: 1, r: 0 },
        HexCoord { q: 1, r: -1 },
        HexCoord { q: 0, r: -1 },
        HexCoord { q: -1, r: 0 },
        HexCoord { q: -1, r: 1 },
        HexCoord { q: 0, r: 1 },
    ];

    /// Hex-grid distance (number of lattice steps) to another coordinate.
    pub fn distance(self, other: HexCoord) -> u32 {
        let dq = (self.q - other.q).abs();
        let dr = (self.r - other.r).abs();
        let ds = (self.q + self.r - other.q - other.r).abs();
        ((dq + dr + ds) / 2) as u32
    }

    /// Ring index (distance from center).
    pub fn ring(self) -> u32 {
        self.distance(HexCoord::CENTER)
    }

    /// The six lattice neighbors.
    pub fn neighbors(self) -> [HexCoord; 6] {
        let mut out = [HexCoord::CENTER; 6];
        for (o, d) in out.iter_mut().zip(Self::DIRECTIONS) {
            *o = HexCoord {
                q: self.q + d.q,
                r: self.r + d.r,
            };
        }
        out
    }

    /// Euclidean position in metres for a lattice with the given pitch.
    pub fn position(self, pitch: Length) -> (f64, f64) {
        let p = pitch.as_m();
        let x = p * (self.q as f64 + self.r as f64 / 2.0);
        let y = p * (3f64.sqrt() / 2.0) * self.r as f64;
        (x, y)
    }
}

/// Number of cores in a filled hex lattice of `rings` rings
/// (ring 0 = just the center): `1 + 3·k·(k+1)`.
pub fn cores_in_rings(rings: u32) -> usize {
    1 + 3 * rings as usize * (rings as usize + 1)
}

/// Smallest ring count whose filled lattice holds at least `n` cores.
pub fn rings_for_cores(n: usize) -> u32 {
    let mut k = 0;
    while cores_in_rings(k) < n {
        k += 1;
    }
    k
}

/// A concrete core lattice: coordinates of every usable core, in spiral
/// (center-out) order, with the physical pitch.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreLattice {
    /// Core coordinates in spiral assignment order.
    pub cores: Vec<HexCoord>,
    /// Center-to-center core pitch.
    pub pitch: Length,
    /// Per-core populated-neighbor indices in `DIRECTIONS` order,
    /// `NO_NEIGHBOR` marking unpopulated directions. Precomputed once at
    /// construction so the budget engine's per-channel crosstalk query is
    /// O(1) instead of a linear scan over the whole lattice.
    adjacency: Vec<[u32; 6]>,
}

/// Sentinel for an unpopulated neighbor slot in the adjacency table.
const NO_NEIGHBOR: u32 = u32::MAX;

fn build_adjacency(cores: &[HexCoord]) -> Vec<[u32; 6]> {
    // BTreeMap rather than HashMap (lint rule R1): lookup-only today, but
    // deterministic order keeps any future iteration safe by default.
    let index: std::collections::BTreeMap<HexCoord, u32> = cores
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i as u32))
        .collect();
    cores
        .iter()
        .map(|c| {
            let mut slots = [NO_NEIGHBOR; 6];
            for (slot, n) in slots.iter_mut().zip(c.neighbors()) {
                if let Some(&i) = index.get(&n) {
                    *slot = i;
                }
            }
            slots
        })
        .collect()
}

impl CoreLattice {
    /// Build a lattice with exactly `count` cores assigned spiralling out
    /// from the center.
    pub fn spiral(count: usize, pitch: Length) -> Self {
        assert!(count >= 1, "a lattice needs at least one core");
        let mut cores = Vec::with_capacity(count);
        cores.push(HexCoord::CENTER);
        let mut ring = 1u32;
        'outer: while cores.len() < count {
            // Walk the ring counter-clockwise starting from the "east" spoke.
            let mut c = HexCoord {
                q: ring as i32,
                r: 0,
            };
            for dir in [2usize, 3, 4, 5, 0, 1] {
                for _ in 0..ring {
                    cores.push(c);
                    if cores.len() == count {
                        break 'outer;
                    }
                    let d = HexCoord::DIRECTIONS[dir];
                    c = HexCoord {
                        q: c.q + d.q,
                        r: c.r + d.r,
                    };
                }
            }
            ring += 1;
        }
        let adjacency = build_adjacency(&cores);
        CoreLattice {
            cores,
            pitch,
            adjacency,
        }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True if the lattice is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Indices of populated lattice neighbors of core `idx` (the crosstalk
    /// aggressor set), in `DIRECTIONS` order.
    pub fn neighbor_indices(&self, idx: usize) -> Vec<usize> {
        self.adjacency[idx]
            .iter()
            .filter(|&&n| n != NO_NEIGHBOR)
            .map(|&n| n as usize)
            .collect()
    }

    /// Number of populated lattice neighbors of core `idx`. Allocation-free;
    /// the crosstalk model only needs the aggressor count.
    pub fn neighbor_count(&self, idx: usize) -> usize {
        self.adjacency[idx]
            .iter()
            .filter(|&&n| n != NO_NEIGHBOR)
            .count()
    }

    /// Euclidean distance from the lattice center of core `idx`, metres —
    /// drives radially-varying effects (lens aberration, vignetting).
    pub fn radius_of(&self, idx: usize) -> Length {
        let (x, y) = self.cores[idx].position(self.pitch);
        Length::from_m((x * x + y * y).sqrt())
    }

    /// The largest core radius in the lattice (the image-circle radius the
    /// coupling optics must cover).
    pub fn image_radius(&self) -> Length {
        (0..self.len())
            .map(|i| self.radius_of(i))
            .fold(Length::ZERO, Length::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ring_population() {
        assert_eq!(cores_in_rings(0), 1);
        assert_eq!(cores_in_rings(1), 7);
        assert_eq!(cores_in_rings(2), 19);
        assert_eq!(cores_in_rings(5), 91);
        assert_eq!(rings_for_cores(100), 6); // 127 cores
    }

    #[test]
    fn spiral_has_unique_cores() {
        let lat = CoreLattice::spiral(127, Length::from_um(20.0));
        let mut set: Vec<_> = lat.cores.clone();
        set.sort();
        set.dedup();
        assert_eq!(set.len(), 127);
    }

    #[test]
    fn spiral_fills_rings_in_order() {
        let lat = CoreLattice::spiral(19, Length::from_um(20.0));
        // First 7 cores are rings 0–1, the rest ring 2.
        assert!(lat.cores[..7].iter().all(|c| c.ring() <= 1));
        assert!(lat.cores[7..].iter().all(|c| c.ring() == 2));
    }

    #[test]
    fn interior_core_has_six_neighbors() {
        let lat = CoreLattice::spiral(19, Length::from_um(20.0));
        assert_eq!(lat.neighbor_indices(0).len(), 6); // center
                                                      // A ring-2 (outermost) corner core has fewer populated neighbors.
        let outer = lat.cores.iter().position(|c| c.ring() == 2).unwrap();
        assert!(lat.neighbor_indices(outer).len() < 6);
    }

    #[test]
    fn neighbor_distance_equals_pitch() {
        let pitch = Length::from_um(20.0);
        let a = HexCoord::CENTER.position(pitch);
        for n in HexCoord::CENTER.neighbors() {
            let b = n.position(pitch);
            let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
            assert!((d - pitch.as_m()).abs() < 1e-12);
        }
    }

    #[test]
    fn image_radius_grows_with_core_count() {
        let pitch = Length::from_um(20.0);
        let small = CoreLattice::spiral(7, pitch).image_radius();
        let big = CoreLattice::spiral(127, pitch).image_radius();
        assert!(big.as_m() > small.as_m());
        // 127 cores = 6 rings → radius 6·pitch.
        assert!((big.as_um() - 120.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn hex_distance_symmetric(q1 in -8i32..8, r1 in -8i32..8, q2 in -8i32..8, r2 in -8i32..8) {
            let a = HexCoord { q: q1, r: r1 };
            let b = HexCoord { q: q2, r: r2 };
            prop_assert_eq!(a.distance(b), b.distance(a));
        }

        #[test]
        fn hex_distance_triangle_inequality(
            q1 in -6i32..6, r1 in -6i32..6,
            q2 in -6i32..6, r2 in -6i32..6,
            q3 in -6i32..6, r3 in -6i32..6,
        ) {
            let a = HexCoord { q: q1, r: r1 };
            let b = HexCoord { q: q2, r: r2 };
            let c = HexCoord { q: q3, r: r3 };
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c));
        }

        #[test]
        fn spiral_count_exact(n in 1usize..400) {
            let lat = CoreLattice::spiral(n, Length::from_um(20.0));
            prop_assert_eq!(lat.len(), n);
        }

        #[test]
        fn adjacency_matches_linear_scan(n in 1usize..200) {
            // The precomputed table must agree with the original O(n) search
            // (same indices, same DIRECTIONS order).
            let lat = CoreLattice::spiral(n, Length::from_um(20.0));
            for idx in 0..lat.len() {
                let me = lat.cores[idx];
                let scanned: Vec<usize> = me
                    .neighbors()
                    .iter()
                    .filter_map(|n| lat.cores.iter().position(|c| c == n))
                    .collect();
                prop_assert_eq!(&lat.neighbor_indices(idx), &scanned);
                prop_assert_eq!(lat.neighbor_count(idx), scanned.len());
            }
        }

        #[test]
        fn neighbors_are_at_unit_distance(q in -8i32..8, r in -8i32..8) {
            let c = HexCoord { q, r };
            for n in c.neighbors() {
                prop_assert_eq!(c.distance(n), 1);
            }
        }
    }
}
