//! Wavelength (color) multiplexing over the imaging fiber.
//!
//! MicroLED arrays exist in blue, green and red; stacking one emitter of
//! each color per core — with a matching dichroic/filter mosaic on the PD
//! array — multiplies the per-core capacity without touching the fiber.
//! The price: the "green gap" (green InGaN is markedly less efficient),
//! redder silicon responsivity (actually a *gain*), higher imaging-glass
//! attenuation in the blue, and finite filter rejection leaking each
//! color into its neighbors. This module carries the color-specific
//! constants; the core crate's budget engine handles each color as a
//! wavelength-shifted LED.

use mosaic_units::Db;

/// One emitter color.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Color {
    /// Display name.
    pub name: &'static str,
    /// Center wavelength, m.
    pub wavelength_m: f64,
    /// Wall-plug efficiency multiplier relative to blue InGaN at the same
    /// drive (the "green gap": green ~0.55×; AlInGaP red ~0.8× at micro
    /// scale).
    pub efficiency_vs_blue: f64,
}

/// Blue InGaN (the paper's baseline).
pub const BLUE: Color = Color {
    name: "blue",
    wavelength_m: 450e-9,
    efficiency_vs_blue: 1.0,
};

/// Green InGaN (the green gap).
pub const GREEN: Color = Color {
    name: "green",
    wavelength_m: 520e-9,
    efficiency_vs_blue: 0.55,
};

/// Red AlInGaP (harder at micro scale: surface recombination).
pub const RED: Color = Color {
    name: "red",
    wavelength_m: 630e-9,
    efficiency_vs_blue: 0.8,
};

/// A color-multiplexing plan for one core.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorPlan {
    /// The colors stacked per core.
    pub colors: Vec<Color>,
    /// Dichroic/filter rejection of each *adjacent* color band, dB
    /// (positive; 20–25 dB is routine for absorptive filter mosaics).
    pub filter_rejection_db: f64,
}

impl ColorPlan {
    /// Single-color (the paper's design point).
    pub fn single() -> Self {
        ColorPlan {
            colors: vec![BLUE],
            filter_rejection_db: 25.0,
        }
    }

    /// Full RGB: ×3 capacity per core.
    pub fn rgb() -> Self {
        ColorPlan {
            colors: vec![BLUE, GREEN, RED],
            filter_rejection_db: 25.0,
        }
    }

    /// Capacity multiplier per core.
    pub fn channels_per_core(&self) -> usize {
        self.colors.len()
    }

    /// Total color-leak ratio a victim color sees from the others
    /// (incoherent, power-additive — same math as spatial crosstalk).
    pub fn color_crosstalk_ratio(&self) -> f64 {
        let leak = 10f64.powf(-self.filter_rejection_db / 10.0);
        leak * (self.colors.len().saturating_sub(1)) as f64
    }

    /// The eye penalty from color leakage, `None` if it closes the eye.
    pub fn color_crosstalk_penalty(&self) -> Option<Db> {
        crate::crosstalk::crosstalk_penalty(self.color_crosstalk_ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_triples_capacity() {
        assert_eq!(ColorPlan::rgb().channels_per_core(), 3);
        assert_eq!(ColorPlan::single().channels_per_core(), 1);
    }

    #[test]
    fn single_color_has_no_color_crosstalk() {
        let p = ColorPlan::single();
        assert_eq!(p.color_crosstalk_ratio(), 0.0);
        assert_eq!(p.color_crosstalk_penalty().unwrap().as_db(), 0.0);
    }

    #[test]
    fn rgb_penalty_is_small_with_good_filters() {
        let p = ColorPlan::rgb();
        let pen = p.color_crosstalk_penalty().unwrap();
        assert!(pen.as_db() > 0.0 && pen.as_db() < 0.1, "got {pen}");
    }

    #[test]
    fn bad_filters_close_the_eye() {
        let p = ColorPlan {
            colors: vec![BLUE, GREEN, RED],
            filter_rejection_db: 5.0,
        };
        // 2 × 10^-0.5 ≈ 0.63 > 0.5: unusable.
        assert!(p.color_crosstalk_penalty().is_none());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // regression guard on const tuning
    fn green_gap_ordering() {
        assert!(GREEN.efficiency_vs_blue < RED.efficiency_vs_blue);
        assert!(RED.efficiency_vs_blue < BLUE.efficiency_vs_blue);
    }
}
