//! Component-resolved power accounting.
//!
//! Every technology model in the workspace reports its power as a
//! [`PowerBreakdown`] — an ordered list of named components — rather than a
//! single number, because the paper's claims are about *where* the power
//! goes (the DSP you deleted, the laser you replaced), and Table 1 of the
//! evaluation reproduces exactly that decomposition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mosaic_units::{BitRate, EnergyPerBit, Power};
use std::fmt;

/// An ordered, named decomposition of a power budget.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerBreakdown {
    entries: Vec<(String, Power)>,
}

impl PowerBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a component (merging into an existing entry of the same name).
    pub fn add(&mut self, name: &str, power: Power) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
            e.1 += power;
        } else {
            self.entries.push((name.to_string(), power));
        }
    }

    /// Builder-style [`PowerBreakdown::add`].
    pub fn with(mut self, name: &str, power: Power) -> Self {
        self.add(name, power);
        self
    }

    /// Total power.
    pub fn total(&self) -> Power {
        self.entries.iter().map(|&(_, p)| p).sum()
    }

    /// Energy per bit at a given rate.
    pub fn per_bit(&self, rate: BitRate) -> EnergyPerBit {
        self.total().per_bit(rate)
    }

    /// The entries in insertion order.
    pub fn entries(&self) -> &[(String, Power)] {
        &self.entries
    }

    /// Power of one named component, zero if absent.
    pub fn get(&self, name: &str) -> Power {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, p)| p)
            .unwrap_or(Power::ZERO)
    }

    /// Fraction of the total attributed to `name` (0 if total is zero).
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self.get(name) / total
        }
    }

    /// Merge another breakdown into this one (summing same-named entries).
    pub fn merge(&mut self, other: &PowerBreakdown) {
        for (name, p) in other.entries() {
            self.add(name, *p);
        }
    }

    /// Scale every entry (e.g. per-lane → per-module).
    pub fn scaled(&self, factor: f64) -> PowerBreakdown {
        PowerBreakdown {
            entries: self
                .entries
                .iter()
                .map(|(n, p)| (n.clone(), *p * factor))
                .collect(),
        }
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for (name, p) in &self.entries {
            let pct = if total.is_zero() {
                0.0
            } else {
                *p / total * 100.0
            };
            writeln!(f, "  {name:<24} {:>12}  {pct:5.1} %", format!("{p}"))?;
        }
        writeln!(f, "  {:<24} {:>12}", "TOTAL", format!("{total}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_and_total() {
        let b = PowerBreakdown::new()
            .with("laser", Power::from_watts(1.0))
            .with("dsp", Power::from_watts(7.0))
            .with("laser", Power::from_watts(0.5));
        assert!((b.total().as_watts() - 8.5).abs() < 1e-12);
        assert!((b.get("laser").as_watts() - 1.5).abs() < 1e-12);
        assert_eq!(b.entries().len(), 2, "same-name entries merge");
    }

    #[test]
    fn fractions() {
        let b = PowerBreakdown::new()
            .with("dsp", Power::from_watts(7.0))
            .with("rest", Power::from_watts(7.0));
        assert!((b.fraction("dsp") - 0.5).abs() < 1e-12);
        assert_eq!(b.fraction("absent"), 0.0);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = PowerBreakdown::new().with("x", Power::from_watts(1.0));
        let b = PowerBreakdown::new()
            .with("x", Power::from_watts(2.0))
            .with("y", Power::from_watts(3.0));
        a.merge(&b);
        let doubled = a.scaled(2.0);
        assert!((doubled.get("x").as_watts() - 6.0).abs() < 1e-12);
        assert!((doubled.total().as_watts() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders_every_row() {
        let b = PowerBreakdown::new()
            .with("driver", Power::from_mw(350.0))
            .with("tia", Power::from_mw(150.0));
        let s = format!("{b}");
        assert!(s.contains("driver") && s.contains("tia") && s.contains("TOTAL"));
    }

    proptest! {
        #[test]
        fn total_equals_sum_of_entries(
            watts in proptest::collection::vec(0f64..10.0, 1..12)
        ) {
            let mut b = PowerBreakdown::new();
            for (i, w) in watts.iter().enumerate() {
                b.add(&format!("c{i}"), Power::from_watts(*w));
            }
            let sum: f64 = watts.iter().sum();
            prop_assert!((b.total().as_watts() - sum).abs() < 1e-9);
        }
    }
}
