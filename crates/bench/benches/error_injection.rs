//! Criterion benches: the Monte-Carlo substrate (error injection and the
//! Gaussian receiver).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mosaic_sim::inject::BitErrorInjector;
use mosaic_sim::rng::DetRng;

fn bench_injection(c: &mut Criterion) {
    let mut g = c.benchmark_group("inject");
    let words = vec![0u64; 16384];
    g.throughput(Throughput::Bytes(words.len() as u64 * 8));
    for &ber in &[1e-3, 1e-6, 1e-9] {
        g.bench_function(format!("corrupt_128kB_ber_{ber:.0e}"), |b| {
            b.iter_with_setup(
                || (BitErrorInjector::new(ber, DetRng::new(1)), words.clone()),
                |(mut inj, mut ws)| {
                    for w in ws.iter_mut() {
                        inj.corrupt_word(w);
                    }
                    ws
                },
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these are smoke/regression benches, not a tuning lab.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_injection
}
criterion_main!(benches);
