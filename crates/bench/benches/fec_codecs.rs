//! Criterion benches: FEC codec throughput (the gearbox's hottest loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mosaic_fec::bch::Bch;
use mosaic_fec::hamming::Hamming7264;
use mosaic_fec::rs::ReedSolomon;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_rs(c: &mut Criterion) {
    let mut g = c.benchmark_group("reed_solomon");
    g.sample_size(20);
    for (name, rs) in [
        ("kp4_544_514", ReedSolomon::kp4()),
        ("kr4_528_514", ReedSolomon::kr4()),
    ] {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u16> = (0..rs.k()).map(|_| rng.gen::<u16>() & 0x3FF).collect();
        let clean = rs.encode(&data);
        let payload_bits = (rs.k() as u64) * 10;
        g.throughput(Throughput::Elements(payload_bits));
        g.bench_with_input(BenchmarkId::new("encode", name), &data, |b, d| {
            b.iter(|| rs.encode(d));
        });
        // Decode with t/2 errors injected (realistic operating point).
        let mut corrupted = clean.clone();
        for i in 0..rs.t() / 2 {
            corrupted[i * 37 % rs.n()] ^= 0x155;
        }
        g.bench_with_input(
            BenchmarkId::new("decode_t_half", name),
            &corrupted,
            |b, w| {
                b.iter(|| {
                    let mut word = w.clone();
                    rs.decode(&mut word)
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("decode_clean", name), &clean, |b, w| {
            b.iter(|| {
                let mut word = w.clone();
                rs.decode(&mut word)
            });
        });
    }
    g.finish();
}

fn bench_bch(c: &mut Criterion) {
    let mut g = c.benchmark_group("bch");
    g.sample_size(20);
    let code = Bch::new(10, 1023, 8);
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<u8> = (0..code.k()).map(|_| rng.gen_range(0..2u8)).collect();
    let clean = code.encode(&data);
    g.throughput(Throughput::Elements(code.k() as u64));
    g.bench_function("encode_1023_t8", |b| b.iter(|| code.encode(&data)));
    let mut corrupted = clean.clone();
    for i in 0..4 {
        corrupted[i * 251] ^= 1;
    }
    g.bench_function("decode_1023_t8_4err", |b| {
        b.iter(|| {
            let mut w = corrupted.clone();
            code.decode(&mut w)
        })
    });
    g.finish();
}

fn bench_hamming(c: &mut Criterion) {
    let h = Hamming7264;
    let mut g = c.benchmark_group("hamming");
    g.throughput(Throughput::Elements(64));
    g.bench_function("encode_72_64", |b| {
        b.iter(|| h.encode(0xDEAD_BEEF_F00D_CAFE))
    });
    g.bench_function("decode_72_64_1err", |b| {
        let check = h.encode(0xDEAD_BEEF_F00D_CAFE);
        b.iter(|| {
            let mut d = 0xDEAD_BEEF_F00D_CAFEu64 ^ (1 << 33);
            let mut c = check;
            h.decode(&mut d, &mut c)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these are smoke/regression benches, not a tuning lab.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_rs, bench_bch, bench_hamming
}
criterion_main!(benches);
