//! Criterion benches: link-budget evaluation and the design explorer.

use criterion::{criterion_group, criterion_main, Criterion};
use mosaic::budget::BudgetEngine;
use mosaic::config::MosaicConfig;
use mosaic_units::{BitRate, Length};

fn bench_budget(c: &mut Criterion) {
    let mut g = c.benchmark_group("budget");
    g.sample_size(20);
    let cfg = MosaicConfig::builder()
        .bit_rate(BitRate::from_gbps(800.0))
        .reach(Length::from_m(10.0))
        .build()
        .unwrap();
    g.bench_function("engine_build_428ch", |b| b.iter(|| BudgetEngine::new(&cfg)));
    let engine = BudgetEngine::new(&cfg);
    g.bench_function("all_channels_428", |b| {
        b.iter(|| engine.all_channels(&cfg.led))
    });
    g.bench_function("full_evaluate_800g", |b| b.iter(|| cfg.evaluate()));
    g.finish();
}

fn bench_devices(c: &mut Criterion) {
    let mut g = c.benchmark_group("devices");
    let led = mosaic_phy::microled::MicroLed::default();
    let i = led.current_for_density(3000.0);
    g.bench_function("microled_operating_point", |b| {
        b.iter(|| (led.optical_power(i), led.modulation_bandwidth(i)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these are smoke/regression benches, not a tuning lab.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_budget, bench_devices
}
criterion_main!(benches);
