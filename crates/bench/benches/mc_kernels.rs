//! Criterion benches: the allocation-free Monte-Carlo kernels against
//! their allocating predecessors.
//!
//! Three comparisons, one per rewritten kernel:
//!   * RS decode through a reused [`DecodeScratch`] vs the
//!     allocate-per-word `decode` wrapper (corrected and clean words —
//!     the clean case isolates the fused Horner syndrome early exit);
//!   * symbol-domain error injection (`corrupt_symbols`) vs the
//!     serialize → `corrupt_bits` → reassemble round trip;
//!   * the end-to-end coded-channel step (`run_rs_channel_with`), whose
//!     wall time is what the manifest perf gate tracks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mosaic_fec::{DecodeScratch, ReedSolomon};
use mosaic_sim::inject::BitErrorInjector;
use mosaic_sim::montecarlo::run_rs_channel_with;
use mosaic_sim::rng::DetRng;
use mosaic_sim::sweep::Exec;

fn bench_scratch_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_scratch_decode");
    g.sample_size(20);
    let rs = ReedSolomon::kp4();
    let data: Vec<u16> = (0..rs.k() as u16).map(|v| v & 0x3FF).collect();
    let clean = rs.encode(&data);
    let mut corrupted = clean.clone();
    for i in 0..rs.t() / 2 {
        corrupted[i * 37 % rs.n()] ^= 0x155;
    }
    g.throughput(Throughput::Elements((rs.k() as u64) * 10));
    for (case, word) in [("t_half", &corrupted), ("clean", &clean)] {
        g.bench_with_input(BenchmarkId::new("alloc_per_word", case), word, |b, w| {
            b.iter(|| {
                let mut word = w.clone();
                rs.decode(&mut word)
            });
        });
        g.bench_with_input(BenchmarkId::new("scratch", case), word, |b, w| {
            let mut scratch = DecodeScratch::new();
            let mut word = w.clone();
            b.iter(|| {
                word.copy_from_slice(w);
                rs.decode_scratch(&mut word, &mut scratch)
            });
        });
    }
    g.finish();
}

fn bench_corrupt_symbols(c: &mut Criterion) {
    let mut g = c.benchmark_group("error_injection_symbols");
    g.sample_size(20);
    let rs = ReedSolomon::kp4();
    let m = rs.symbol_bits();
    let data: Vec<u16> = (0..rs.k() as u16).map(|v| v & 0x3FF).collect();
    let clean = rs.encode(&data);
    let ber = 1e-3;
    g.throughput(Throughput::Elements(rs.n() as u64 * m as u64));
    g.bench_function("serialize_round_trip", |b| {
        let mut inj = BitErrorInjector::new(ber, DetRng::new(7));
        b.iter(|| {
            let mut bits: Vec<u8> = Vec::with_capacity(rs.n() * m as usize);
            for &s in &clean {
                for bit in 0..m {
                    bits.push(((s >> bit) & 1) as u8);
                }
            }
            inj.corrupt_bits(&mut bits);
            let word: Vec<u16> = bits
                .chunks(m as usize)
                .map(|chunk| {
                    chunk
                        .iter()
                        .enumerate()
                        .fold(0u16, |acc, (i, &b)| acc | ((b as u16) << i))
                })
                .collect();
            word
        });
    });
    g.bench_function("corrupt_symbols", |b| {
        let mut inj = BitErrorInjector::new(ber, DetRng::new(7));
        let mut word = clean.clone();
        b.iter(|| {
            word.copy_from_slice(&clean);
            inj.corrupt_symbols(&mut word, m)
        });
    });
    g.finish();
}

fn bench_rs_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_channel");
    g.sample_size(10);
    let rs = ReedSolomon::new(8, 31, 23);
    let exec = Exec::with_threads(1);
    g.throughput(Throughput::Elements(200));
    g.bench_function("run_rs_channel_200w", |b| {
        b.iter(|| run_rs_channel_with(&exec, &rs, 2e-2, 200, 11));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these are smoke/regression benches, not a tuning lab.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_scratch_decode, bench_corrupt_symbols, bench_rs_channel
}
criterion_main!(benches);
