//! Criterion benches: the gearbox transmit/receive pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mosaic_link::gearbox::Gearbox;
use mosaic_link::scrambler::Scrambler;
use mosaic_link::striping::{Deskewer, Distributor, StripeConfig};

fn bench_gearbox(c: &mut Criterion) {
    let mut g = c.benchmark_group("gearbox");
    g.sample_size(20);
    let payloads: Vec<Vec<u8>> = (0..16).map(|i| vec![i as u8; 1024]).collect();
    let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
    let bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("transmit_100ch_16k", |b| {
        b.iter_with_setup(|| Gearbox::new(100, 108, 32), |mut tx| tx.transmit(&refs))
    });
    g.bench_function("roundtrip_100ch_16k", |b| {
        b.iter_with_setup(
            || (Gearbox::new(100, 108, 32), Gearbox::new(100, 108, 32)),
            |(mut tx, mut rx)| {
                let ch = tx.transmit(&refs);
                rx.receive(&ch).unwrap()
            },
        )
    });
    g.finish();
}

fn bench_striping(c: &mut Criterion) {
    let mut g = c.benchmark_group("striping");
    let cfg = StripeConfig::new(64, 16);
    let payload: Vec<u64> = (0..64 * 16 * 8).collect();
    g.throughput(Throughput::Bytes(payload.len() as u64 * 8));
    g.bench_function("stripe_64lanes", |b| {
        b.iter_with_setup(|| Distributor::new(cfg), |mut d| d.stripe(&payload, 0))
    });
    let streams = Distributor::new(cfg).stripe(&payload, 0);
    g.bench_function("deskew_64lanes", |b| {
        b.iter(|| Deskewer::new(cfg).reassemble(&streams).unwrap())
    });
    g.finish();
}

fn bench_scrambler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scrambler");
    let words: Vec<u64> = (0..4096).map(|i| i * 0x9E37_79B9_7F4A_7C15).collect();
    g.throughput(Throughput::Bytes(words.len() as u64 * 8));
    g.bench_function("scramble_32kB", |b| {
        b.iter_with_setup(Scrambler::new, |mut s| {
            words
                .iter()
                .map(|&w| s.scramble_word(w))
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these are smoke/regression benches, not a tuning lab.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_gearbox, bench_striping, bench_scrambler
}
criterion_main!(benches);
