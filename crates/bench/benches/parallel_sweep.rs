//! Monte-Carlo speedup benchmark for the deterministic sweep engine:
//! the same OOK-slicer and pool-lifetime workloads at 1 thread vs 8.
//!
//! On a multi-core box the 8-thread rows should come in at ≥3× the
//! 1-thread throughput (the work is embarrassingly parallel; the only
//! overheads are thread spawn and the index-ordered merge). On a 1-core
//! container the two rows collapse to parity — that is the machine, not
//! the engine; CI runs this on multi-core workers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mosaic_phy::ber::OokReceiver;
use mosaic_phy::noise::NoiseBudget;
use mosaic_phy::photodiode::Photodiode;
use mosaic_phy::tia::Tia;
use mosaic_reliability::montecarlo::simulate_pool_no_repair_with;
use mosaic_sim::montecarlo::simulate_ook_ber_par;
use mosaic_sim::sweep::Exec;
use mosaic_units::{Duration as SimDuration, Fit, Power};
use std::time::Duration;

fn receiver() -> OokReceiver {
    let tia = Tia::low_speed(2.0);
    OokReceiver {
        pd: Photodiode::silicon_blue(),
        noise: NoiseBudget {
            thermal_a: tia.rms_noise_current(),
            bandwidth: tia.bandwidth,
            rin_db_per_hz: None,
        },
        extinction_ratio: 6.0,
    }
}

fn bench_parallel_sweep(c: &mut Criterion) {
    let rx = receiver();
    let p = rx.sensitivity(1e-3).unwrap_or(Power::from_dbm(-25.0));
    const BITS: u64 = 1_000_000;
    let mut g = c.benchmark_group("ook_mc");
    g.sample_size(5);
    g.throughput(Throughput::Elements(BITS));
    for threads in [1usize, 8] {
        let exec = Exec::with_threads(threads);
        g.bench_function(format!("{threads}threads"), |b| {
            b.iter(|| simulate_ook_ber_par(&exec, &rx, p, BITS, 7));
        });
    }
    g.finish();

    const TRIALS: u64 = 100_000;
    let horizon = SimDuration::from_years(7.0);
    let mut g = c.benchmark_group("pool_mc");
    g.sample_size(5);
    g.throughput(Throughput::Elements(TRIALS));
    for threads in [1usize, 8] {
        let exec = Exec::with_threads(threads);
        g.bench_function(format!("{threads}threads"), |b| {
            b.iter(|| {
                simulate_pool_no_repair_with(&exec, 428, 432, Fit::new(500.0), horizon, TRIALS, 6)
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2));
    targets = bench_parallel_sweep
);
criterion_main!(benches);
