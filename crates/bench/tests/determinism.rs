//! The determinism gate, in-process form: the figure pipelines named in
//! the acceptance criteria must produce byte-identical output — and
//! byte-identical telemetry *values* (counters, histograms, series) —
//! whether they run sequentially or fanned out over many threads. CI
//! runs the same check against the built binaries (`MOSAIC_THREADS=1`
//! vs default) and diffs the manifests with `bench-report`.
//!
//! One `#[test]` only: the experiments read `MOSAIC_THREADS` from the
//! environment and share the process-global telemetry collector, and
//! tests in one binary run concurrently — a second env- or
//! telemetry-mutating test would race.

#[test]
fn figure_outputs_are_thread_count_invariant() {
    // Quick mode keeps this at smoke-test cost; quick vs full changes
    // trial counts, not the determinism contract under test.
    std::env::set_var(mosaic_bench::runcfg::QUICK_ENV, "1");

    // Each figure runs with a fresh telemetry collector; the snapshot's
    // values JSON (counters/histograms/series — no timings) rides along
    // with the output text so both get the byte-identical check.
    type Runner = fn() -> String;
    let run_all_figs = || {
        let figs: [(&str, Runner); 4] = [
            ("F4", mosaic_bench::fig4_ber_waterfall::run),
            ("F10", mosaic_bench::fig10_fec_study::run),
            ("F12", mosaic_bench::fig12_sparing_ablation::run),
            ("T2", mosaic_bench::tab2_datacenter::run),
        ];
        figs.map(|(id, runner)| {
            mosaic_sim::telemetry::reset();
            let output = runner();
            let values = mosaic_sim::telemetry::take()
                .values_json()
                .to_string_compact();
            (id, output, values)
        })
    };

    std::env::set_var(mosaic_sim::sweep::THREADS_ENV, "1");
    let sequential = run_all_figs();
    for threads in ["2", "8"] {
        std::env::set_var(mosaic_sim::sweep::THREADS_ENV, threads);
        for ((id, seq_out, seq_vals), (_, par_out, par_vals)) in
            sequential.iter().zip(run_all_figs())
        {
            assert_eq!(
                *seq_out, par_out,
                "{id} output diverged at MOSAIC_THREADS={threads}"
            );
            assert_eq!(
                *seq_vals, par_vals,
                "{id} telemetry values diverged at MOSAIC_THREADS={threads}"
            );
        }
    }
    std::env::remove_var(mosaic_sim::sweep::THREADS_ENV);
}
