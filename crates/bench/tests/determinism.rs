//! The determinism gate, in-process form: the figure pipelines named in
//! the acceptance criteria must produce byte-identical output whether
//! they run sequentially or fanned out over many threads. CI runs the
//! same check against the built binaries (`MOSAIC_THREADS=1` vs default)
//! and diffs the files.
//!
//! One `#[test]` only: the experiments read `MOSAIC_THREADS` from the
//! environment, and tests in one binary run concurrently — a second
//! env-mutating test would race.

#[test]
fn figure_outputs_are_thread_count_invariant() {
    // Quick mode keeps this at smoke-test cost; quick vs full changes
    // trial counts, not the determinism contract under test.
    std::env::set_var(mosaic_bench::runcfg::QUICK_ENV, "1");

    let run_all_figs = || {
        [
            ("F4", mosaic_bench::fig4_ber_waterfall::run()),
            ("F10", mosaic_bench::fig10_fec_study::run()),
            ("F12", mosaic_bench::fig12_sparing_ablation::run()),
            ("T2", mosaic_bench::tab2_datacenter::run()),
        ]
    };

    std::env::set_var(mosaic_sim::sweep::THREADS_ENV, "1");
    let sequential = run_all_figs();
    for threads in ["2", "8"] {
        std::env::set_var(mosaic_sim::sweep::THREADS_ENV, threads);
        for ((id, seq), (_, par)) in sequential.iter().zip(run_all_figs()) {
            assert_eq!(
                *seq, par,
                "{id} output diverged at MOSAIC_THREADS={threads}"
            );
        }
    }
    std::env::remove_var(mosaic_sim::sweep::THREADS_ENV);
}
