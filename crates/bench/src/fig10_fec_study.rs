//! F10 — FEC trade study on Mosaic channels: post-FEC output, overhead,
//! and decoder cost for each candidate code, with a Monte-Carlo
//! cross-check against the real decoders.

use crate::cells;
use crate::runcfg;
use crate::table::Table;
use mosaic::config::FecChoice;
use mosaic_fec::analysis::{binary_performance, rs_performance};
use mosaic_fec::rs::ReedSolomon;
use mosaic_sim::fidelity::{Assessment, Exactness, FidelityController};
use mosaic_sim::montecarlo::{run_rs_channel_with, wilson_ci};
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::Stopwatch;

/// Rough decoder energy per bit (pJ) for each code class — hardware
/// synthesis ballparks: Hamming is trivial, BCH needs BM over GF(2^10),
/// RS adds Forney magnitudes; all are small next to a PAM4 DSP.
fn decoder_pj(fec: FecChoice) -> f64 {
    match fec {
        FecChoice::None => 0.0,
        FecChoice::Hamming => 0.05,
        FecChoice::Bch { .. } => 0.35,
        FecChoice::Kr4 => 0.5,
        FecChoice::Kp4 => 0.8,
    }
}

/// Run the experiment.
pub fn run() -> String {
    let codes: Vec<(&str, FecChoice)> = vec![
        ("none", FecChoice::None),
        ("Hamming(72,64)", FecChoice::Hamming),
        ("BCH(1023,t=8)", FecChoice::Bch { t: 8 }),
        ("KR4 RS(528,514)", FecChoice::Kr4),
        ("KP4 RS(544,514)", FecChoice::Kp4),
    ];

    let mut out = String::from("F10a: post-FEC BER by code and pre-FEC channel BER\n");
    let mut t = Table::new(&[
        "code",
        "overhead",
        "pJ/bit dec",
        "pre 1e-3",
        "pre 2.4e-4",
        "pre 1e-5",
    ]);
    for (name, fec) in &codes {
        let post = |pre: f64| -> String {
            let v = match *fec {
                FecChoice::None => pre,
                FecChoice::Hamming => binary_performance(72, 1, pre).post_ber,
                FecChoice::Bch { t } => binary_performance(1023, t, pre).post_ber,
                FecChoice::Kr4 => rs_performance(528, 7, 10, pre).post_ber,
                FecChoice::Kp4 => rs_performance(544, 15, 10, pre).post_ber,
            };
            format!("{v:.1e}")
        };
        t.row(cells![
            name,
            format!("{:.3}x", fec.overhead()),
            format!("{:.2}", decoder_pj(*fec)),
            post(1e-3),
            post(2.4e-4),
            post(1e-5)
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nF10b: Monte-Carlo cross-check (real decoders, KP4-class RS at pre-FEC 2e-2, scaled-down code)\n");
    // Full KP4 failures at its threshold are ~1e-15 — unobservable; the
    // cross-check uses a weak RS code at harsh BER where the analytic and
    // measured failure rates are both large. The analytic machinery being
    // validated is identical.
    let rs = ReedSolomon::new(8, 31, 23);
    let exec = Exec::from_env();
    let ctrl = FidelityController::new(runcfg::fidelity());
    let codewords = runcfg::trials(4000, 600);
    let start = Stopwatch::start();
    let mut word_failure = Vec::new();
    let mut word_lo = Vec::new();
    let mut word_hi = Vec::new();
    let mut mc_words = 0u64;
    for &ber in &[1e-2, 2e-2, 4e-2] {
        let analytic = rs_performance(rs.n(), rs.t(), rs.symbol_bits(), ber);
        // The analytic word-failure curve ignores miscorrection, so it is
        // a model, not the sampler's exact mean; margin-zero assessment
        // (threshold = prediction) keeps the point on the MC tier at an
        // events-targeted budget.
        let assessment = Assessment {
            analytic_p: analytic.codeword_failure_prob,
            threshold: analytic.codeword_failure_prob,
            full_trials: codewords,
            exactness: Exactness::Model,
            tail_available: false,
        };
        let decision = ctrl.classify(&assessment);
        ctrl.note_decision(codewords, &decision);
        let run = run_rs_channel_with(&exec, &rs, ber, decision.trials, 17);
        mc_words += decision.trials;
        let (lo, hi) = wilson_ci(run.failures + run.miscorrected, run.codewords);
        word_failure.push(run.failure_prob());
        word_lo.push(lo);
        word_hi.push(hi);
        out.push_str(&format!(
            "  RS(31,23) @BER {ber:.0e}: measured word-failure {:.3e}, analytic {:.3e}\n",
            run.failure_prob(),
            analytic.codeword_failure_prob
        ));
    }
    RunStats::new(mc_words, start.elapsed(), exec.threads()).report("F10");
    mosaic_sim::telemetry::record_series("f10.rs_word_failure", &word_failure);
    mosaic_sim::telemetry::record_series("f10.rs_word_failure_ci_lo", &word_lo);
    mosaic_sim::telemetry::record_series("f10.rs_word_failure_ci_hi", &word_hi);

    out.push_str("\nF10c: FEC threshold (pre-FEC BER for 1e-15 output)\n");
    for (name, fec) in &codes {
        out.push_str(&format!("  {:<16} {:.2e}\n", name, fec.ber_threshold()));
    }
    out
}
