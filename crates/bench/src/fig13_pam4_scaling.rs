//! F13 — Rate-scaling ablation: PAM4 on Mosaic channels (the "and beyond"
//! of claim C5). Two bits per symbol at the same LED bandwidth halves the
//! channel count (and the array) but spends ~4.8 dB of per-eye margin.

use crate::cells;
use crate::table::Table;
use mosaic::budget::max_reach;
use mosaic::config::MosaicConfig;
use mosaic_phy::modulation::Modulation;
use mosaic_units::{BitRate, Length};

fn eval(
    aggregate: f64,
    modulation: Modulation,
    ch_gbps: f64,
) -> (MosaicConfig, mosaic::LinkReport) {
    let mut cfg = MosaicConfig::builder()
        .bit_rate(BitRate::from_gbps(aggregate))
        .reach(Length::from_m(10.0))
        .build()
        .unwrap();
    cfg.set_modulation(modulation);
    cfg.set_channel_rate(BitRate::from_gbps(ch_gbps));
    let report = cfg.evaluate();
    (cfg, report)
}

/// Run the experiment.
pub fn run() -> String {
    let mut out = String::from("F13: NRZ vs PAM4 Mosaic channels (10 m span)\n");
    let mut t = Table::new(&[
        "config",
        "ch rate",
        "GBd",
        "channels",
        "margin dB",
        "module W",
        "reach",
        "array",
    ]);
    for (label, agg, m, ch) in [
        ("800G NRZ (paper)", 800.0, Modulation::Nrz, 2.0),
        ("800G PAM4", 800.0, Modulation::Pam4, 4.0),
        ("1.6T NRZ", 1600.0, Modulation::Nrz, 2.0),
        ("1.6T PAM4", 1600.0, Modulation::Pam4, 4.0),
        ("3.2T PAM4", 3200.0, Modulation::Pam4, 4.0),
    ] {
        let (cfg, r) = eval(agg, m, ch);
        let reach = max_reach(&cfg)
            .map(|x| format!("{x}"))
            .unwrap_or_else(|| "-".into());
        t.row(cells![
            label,
            format!("{ch:.0}G"),
            format!("{:.1}", cfg.baud_gbd()),
            cfg.active_channels(),
            r.worst_margin
                .map(|x| format!("{:.2}", x.as_db()))
                .unwrap_or_else(|| "closed".into()),
            format!("{:.2}", r.module_power.total().as_watts()),
            reach,
            format!("{}", r.array_radius)
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nshape: PAM4 halves channels/array and keeps modules feasible at 10 m,\n\
         at the cost of most of the reach margin — the paper's NRZ choice is\n\
         the long-reach point, PAM4 the density point.\n",
    );
    out
}
