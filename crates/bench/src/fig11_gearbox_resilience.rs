//! F11 — Gearbox resilience (claim C6): frames striped over hundreds of
//! channels survive skew and channel kills via hot sparing.

use crate::cells;
use crate::runcfg;
use crate::table::Table;
use mosaic_sim::faults::{Fault, FaultSchedule};
use mosaic_sim::fidelity::FidelityController;
use mosaic_sim::link_sim::{simulate_link_at_fidelity, LinkSimConfig};
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::Stopwatch;

fn base(spares: usize) -> LinkSimConfig {
    LinkSimConfig {
        logical_lanes: 64,
        physical_channels: 64 + spares,
        am_period: 16,
        per_channel_ber: vec![1e-9; 64 + spares],
        epochs: 12,
        frames_per_epoch: 24,
        frame_size: 512,
        seed: 11,
        faults: FaultSchedule::new(),
        degrade_threshold: Some(1e-5),
        monitor_window_bits: 5_000,
    }
}

/// Run the experiment.
pub fn run() -> String {
    let mut out =
        String::from("F11: 64-lane gearbox under a 3-channel kill schedule (epochs 3, 6, 9)\n");
    let mut t = Table::new(&[
        "spares",
        "delivered",
        "sent",
        "ratio",
        "remaps",
        "down epochs",
        "silent corruption",
    ]);
    let exec = Exec::from_env();
    let ctrl = FidelityController::new(runcfg::fidelity());
    let mut frames = 0u64;
    let start = Stopwatch::start();
    for spares in [0usize, 1, 2, 4, 8] {
        let mut cfg = base(spares);
        cfg.faults = FaultSchedule::new()
            .at(3, Fault::Kill { channel: 10 })
            .at(6, Fault::Kill { channel: 20 })
            .at(9, Fault::Kill { channel: 30 });
        let r = simulate_link_at_fidelity(&ctrl, &exec, &cfg);
        frames += r.frames_sent;
        t.row(cells![
            spares,
            r.frames_delivered,
            r.frames_sent,
            format!("{:.3}", r.delivery_ratio()),
            r.remaps,
            r.deskew_failed_epochs,
            r.frames_silently_corrupted
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\ndegraded-channel retirement (persistent BER 1e-3 on one channel, monitor threshold 1e-5):\n");
    let mut cfg = base(4);
    cfg.frame_size = 2048; // enough bits per channel to close monitor windows
    cfg.per_channel_ber[5] = 1e-3;
    let r = simulate_link_at_fidelity(&ctrl, &exec, &cfg);
    frames += r.frames_sent;
    RunStats::new(frames, start.elapsed(), exec.threads()).report("F11");
    out.push_str(&format!(
        "  retired by monitor: {}, remaps: {}, delivery after retirement recovers to {:.3}\n",
        r.retired_by_monitor,
        r.remaps,
        r.delivery_ratio()
    ));
    out
}
