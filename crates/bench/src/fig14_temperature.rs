//! F14 — Thermal robustness: uncooled operation across datacenter inlet
//! temperatures. SRH droop costs light as the junction heats; the link
//! budget must keep closing without a TEC (one of the power savings over
//! laser optics).

use crate::cells;
use crate::table::Table;
use mosaic::budget::{max_reach, BudgetEngine};
use mosaic::config::MosaicConfig;
use mosaic_units::{BitRate, Length};

/// Run the experiment.
pub fn run() -> String {
    let mut out = String::from("F14: 800G link vs junction temperature (uncooled, 10 m)\n");
    let mut t = Table::new(&[
        "junction °C",
        "rel. light dB",
        "worst margin dB",
        "feasible",
        "reach limit",
    ]);
    let base = MosaicConfig::builder()
        .bit_rate(BitRate::from_gbps(800.0))
        .reach(Length::from_m(10.0))
        .build()
        .unwrap();
    let i = base.drive_current();
    let p25 = base.led.optical_power(i).as_watts();
    let mut rel_light_db = Vec::new();
    for &celsius in &[25.0, 45.0, 65.0, 85.0, 105.0, 125.0] {
        let mut cfg = base.clone();
        cfg.led = base.led.at_temperature(celsius);
        let rel_db = 10.0 * (cfg.led.optical_power(i).as_watts() / p25).log10();
        rel_light_db.push(rel_db);
        let engine = BudgetEngine::new(&cfg);
        let (margin, feasible) = match engine.worst_margin(&cfg.led) {
            Some(m) => (format!("{:.2}", m.as_db()), m.as_db() >= 0.0),
            None => ("closed".into(), false),
        };
        let reach = if feasible {
            max_reach(&cfg)
                .map(|x| format!("{x}"))
                .unwrap_or_else(|| "-".into())
        } else {
            "-".into()
        };
        t.row(cells![
            format!("{celsius:.0}"),
            format!("{rel_db:.2}"),
            margin,
            feasible,
            reach
        ]);
    }
    out.push_str(&t.render());
    mosaic_sim::telemetry::record_series("f14.rel_light_db", &rel_light_db);
    out.push_str("\nshape: graceful margin erosion through the 85 °C class limit; no cliff\nuntil well past datacenter conditions — uncooled operation holds.\n");
    out
}
