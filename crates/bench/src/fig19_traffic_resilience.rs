//! F19 — Live-traffic resilience (claims C3/C5 at the packet level):
//! goodput and tail-latency SLOs for deterministic datacenter workloads
//! riding the gearbox through seeded fault campaigns, under three
//! lane-map policies — a static map, the live degrade controller, and
//! the controller with the hitless drain/pause/replay protocol.
//!
//! F11/F17 measure the *link* under faults; F19 measures the *traffic*:
//! incast, all-reduce, multicast, and Poisson flows with per-frame
//! deadlines and bounded retransmit budgets, every frame accounted for
//! (`delivered + expired + exhausted = offered`, checked per point).
//! All three policies face bit-identical campaigns and offered loads at
//! each fault rate, so the columns are directly comparable. Lost frames
//! are charged to the latency histogram's top bucket, so the p99/p999
//! columns punish loss instead of rewarding policies that drop their
//! slowest frames.
//!
//! Multi-run points fold through `TrialPlan` with per-batch checkpoints
//! (`MOSAIC_TRAFFIC_STOP_AFTER_BATCHES` in the standalone binary is the
//! kill/resume drill hook); exact-integer rollup merges make the table
//! bit-identical at any thread count and across any kill/resume
//! schedule.

use crate::cells;
use crate::fragments::TrafficRollupStore;
use crate::runcfg;
use crate::table::Table;
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::{self, Stopwatch};
use mosaic_traffic::{policy_tag, run_point_with, Policy, TrafficConfig, LAT_BUCKETS};

const SEED: u64 = 19;

/// Mean fault arrivals per channel per 1000 epochs, zero (clean
/// baseline) through the harshest rate at which the hitless protocol
/// still holds its SLO.
const RATES: [f64; 4] = [0.0, 0.5, 2.0, 4.0];

const POLICIES: [Policy; 3] = [
    Policy::Static,
    Policy::Controller,
    Policy::ControllerHitless,
];

/// Checkpoints live next to the run_all manifest fragments, under the
/// same clear-on-fresh-start / clear-on-completion discipline.
const CHECKPOINT_DIR: &str = "results/manifests/fragments";

fn config(rate: f64, policy: Policy) -> TrafficConfig {
    TrafficConfig {
        epochs: if runcfg::quick() { 240 } else { 400 },
        faults_per_kilo_epoch: rate,
        permanent_fraction: 0.4,
        policy,
        ..TrafficConfig::default()
    }
}

fn runs() -> u64 {
    if runcfg::quick() {
        8
    } else {
        16
    }
}

/// Render a latency-percentile bucket: whole epochs, or "lost" when the
/// percentile frame never arrived.
fn bucket_label(b: usize) -> String {
    if b == LAT_BUCKETS - 1 {
        "lost".to_string()
    } else {
        format!("{b}")
    }
}

/// Run the experiment, executing at most `stop_after_batches` sweep
/// batches per point this invocation. `None` output means the run
/// stopped early with its checkpoints on disk — rerunning (same mode,
/// same config) resumes and completes byte-identically.
pub fn run_with_stop(stop_after_batches: Option<u64>) -> Option<String> {
    let exec = Exec::from_env();
    let start = Stopwatch::start();
    let runs = runs();
    let mut out = format!(
        "F19: live-traffic resilience — mixed workload ({} runs/point, {} epochs, \
         8→12 lanes, deadline {} epochs, retransmit budget {})\n",
        runs,
        config(0.0, Policy::Static).epochs,
        TrafficConfig::default().workload.deadline_epochs,
        TrafficConfig::default().retransmit_budget,
    );
    let mut t = Table::new(&[
        "faults/kilo-epoch",
        "policy",
        "goodput",
        "p99 lat",
        "p999 lat",
        "expired",
        "exhausted",
        "retried",
        "remaps",
        "pauses",
        "lanes lost",
    ]);
    let mut total_runs = 0u64;
    let mut goodput = vec![Vec::new(); POLICIES.len()];
    let mut p99 = vec![Vec::new(); POLICIES.len()];
    let mut p999 = vec![Vec::new(); POLICIES.len()];
    for (ri, &rate) in RATES.iter().enumerate() {
        for (pi, &policy) in POLICIES.iter().enumerate() {
            let cfg = config(rate, policy);
            let tag = format!("{}-r{ri}", policy_tag(policy));
            let mut store = TrafficRollupStore::new(CHECKPOINT_DIR, &tag);
            let rollup =
                match run_point_with(&cfg, SEED, runs, &exec, &mut store, stop_after_batches) {
                    Ok(Some(rollup)) => rollup,
                    Ok(None) => return None, // stopped early; checkpoints remain
                    Err(e) => {
                        // Static configs always validate; keep the figure
                        // total-failure-proof regardless.
                        eprintln!("[F19] traffic sweep failed for {tag}: {e}");
                        continue;
                    }
                };
            store.clear();
            total_runs += rollup.runs;
            if !rollup.balanced() {
                // The conservation law is tested exhaustively in the
                // traffic crate; surface any violation loudly here too.
                eprintln!(
                    "[F19] WARNING: frame accounting unbalanced for {tag}: {} offered vs {} resolved",
                    rollup.offered,
                    rollup.delivered + rollup.expired + rollup.exhausted
                );
            }
            t.row(cells![
                format!("{rate:.1}"),
                policy_tag(policy),
                format!("{:.4}", rollup.goodput()),
                bucket_label(rollup.p99()),
                bucket_label(rollup.p999()),
                rollup.expired,
                rollup.exhausted,
                rollup.retried,
                rollup.remaps,
                rollup.pause_epochs,
                rollup.lost_lanes
            ]);
            goodput[pi].push(rollup.goodput());
            p99[pi].push(rollup.p99() as f64);
            p999[pi].push(rollup.p999() as f64);
            telemetry::counter_add(&format!("f19.offered.{tag}"), rollup.offered);
            telemetry::counter_add(&format!("f19.delivered.{tag}"), rollup.delivered);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "identical campaigns and offered load per rate across policies; frames lost for\n\
         good land in the top latency bucket, so p99/p999 = \"lost\" marks >1%/>0.1% loss;\n\
         hitless = controller + drain/pause/replay around every lane-map change\n",
    );
    for (pi, &policy) in POLICIES.iter().enumerate() {
        telemetry::record_series(&format!("f19.goodput.{}", policy_tag(policy)), &goodput[pi]);
        telemetry::record_series(&format!("f19.p99.{}", policy_tag(policy)), &p99[pi]);
        telemetry::record_series(&format!("f19.p999.{}", policy_tag(policy)), &p999[pi]);
    }
    RunStats::new(total_runs, start.elapsed(), exec.threads()).report("F19");
    Some(out)
}

/// Run the experiment to completion.
pub fn run() -> String {
    match run_with_stop(None) {
        Some(out) => out,
        // Unreachable: no stop limit was set.
        None => String::from("F19: stopped early without a stop limit\n"),
    }
}
