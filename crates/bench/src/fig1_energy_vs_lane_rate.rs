//! F1 — Energy per bit versus per-lane rate: why wide-and-slow wins.
//!
//! Left half of the figure: the electrical cost of a *narrow-and-fast*
//! lane (long-reach SerDes + module DSP) grows superlinearly with lane
//! rate. Right half: a full Mosaic link's energy/bit across per-channel
//! rates, showing the sweet spot where channel fixed costs and the LED
//! bandwidth wall balance.

use crate::cells;
use crate::table::Table;
use mosaic::design::{best_design, default_rate_grid, sweep_channel_rate};
use mosaic_phy::params::dsp;
use mosaic_phy::serdes::{lane_energy, SerdesReach};
use mosaic_units::{BitRate, Length};

/// Run the experiment.
pub fn run() -> String {
    let mut out = String::from("F1a: narrow-and-fast electrical lane energy (pJ/bit)\n");
    let mut t = Table::new(&["lane Gb/s", "LR SerDes", "+module DSP", "lane power (W)"]);
    for &g in &[10.0, 25.0, 50.0, 106.25, 212.5] {
        let rate = BitRate::from_gbps(g);
        let serdes = lane_energy(rate, SerdesReach::LongReach);
        // PAM4 module DSP only applies to PAM4-era lane rates.
        let dsp_pj = if g >= 50.0 {
            dsp::PAM4_DSP_PJ_PER_BIT
        } else {
            0.0
        };
        let with_dsp = serdes.as_pj_per_bit() + dsp_pj;
        t.row(cells![
            format!("{g:.2}"),
            format!("{:.2}", serdes.as_pj_per_bit()),
            if dsp_pj > 0.0 {
                format!("{with_dsp:.2}")
            } else {
                "n/a (NRZ)".into()
            },
            format!(
                "{:.2}",
                serdes.power_at(rate).as_watts() + dsp_pj * 1e-12 * rate.as_bps()
            )
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nF1b: Mosaic 800G link energy vs per-channel rate (10 m span)\n");
    let points = sweep_channel_rate(
        BitRate::from_gbps(800.0),
        Length::from_m(10.0),
        &default_rate_grid(),
    )
    .expect("sweep inputs are valid");
    let mut t = Table::new(&[
        "ch Gb/s",
        "channels",
        "feasible",
        "margin dB",
        "link W",
        "pJ/bit",
        "array radius",
    ]);
    for p in &points {
        t.row(cells![
            format!("{:.2}", p.channel_rate.as_gbps()),
            p.channels,
            p.feasible,
            if p.feasible {
                format!("{:.1}", p.worst_margin_db)
            } else {
                "-".into()
            },
            format!("{:.2}", p.link_power.as_watts()),
            format!("{:.2}", p.energy_per_bit.as_pj_per_bit()),
            format!("{}", p.array_radius)
        ]);
    }
    out.push_str(&t.render());
    mosaic_sim::telemetry::record_series(
        "f1.mosaic_pj_per_bit",
        &points
            .iter()
            .map(|p| p.energy_per_bit.as_pj_per_bit())
            .collect::<Vec<_>>(),
    );
    if let Some(best) = best_design(&points) {
        out.push_str(&format!(
            "\nsweet spot: {:.1} Gb/s per channel ({} channels, {:.2} pJ/bit)\n",
            best.channel_rate.as_gbps(),
            best.channels,
            best.energy_per_bit.as_pj_per_bit()
        ));
    }
    out
}
