//! F2 — Link power at 800G across technologies (claim C2: up to 69 %
//! lower than laser optics).

use crate::cells;
use crate::table::Table;
use mosaic::compare::{candidates, TechnologyKind};
use mosaic_units::BitRate;

/// Run the experiment.
pub fn run() -> String {
    let cands = candidates(BitRate::from_gbps(800.0));
    let mosaic = cands
        .iter()
        .find(|c| c.kind == TechnologyKind::Mosaic)
        .expect("mosaic candidate");
    let mut t = Table::new(&[
        "technology",
        "reach",
        "link power",
        "pJ/bit",
        "mosaic saving",
        "link FIT",
    ]);
    for c in &cands {
        let saving = if c.kind == TechnologyKind::Mosaic {
            "-".to_string()
        } else if c.link_power.is_zero() {
            "n/a (passive)".to_string()
        } else {
            format!("{:.0} %", (1.0 - mosaic.link_power / c.link_power) * 100.0)
        };
        t.row(cells![
            c.name,
            format!("{}", c.reach),
            format!("{}", c.link_power),
            format!("{:.2}", c.energy_per_bit.as_pj_per_bit()),
            saving,
            format!("{:.0}", c.link_fit.as_fit())
        ]);
    }
    let mut out = String::from(
        "F2: 800G link power by technology (both ends; host SerDes excluded as common)\n",
    );
    out.push_str(&t.render());
    out
}
