//! Per-figure manifest fragments: the checkpoint format behind
//! `run_all --resume`.
//!
//! `run_all` writes one fragment per completed figure (atomically:
//! temp-file + rename) under `results/manifests/fragments/`. A killed
//! run leaves the completed figures' fragments behind; `--resume` loads
//! them instead of re-running those figures, then regenerates
//! `results/` and the final manifest **byte-identically** to an
//! uninterrupted run. That works because a fragment captures everything
//! the manifest and result files need from a figure: the full output
//! text (not just its digest), the telemetry value snapshot, and the
//! stage/wall timings.
//!
//! Schema `mosaic-manifest-fragment/v1`:
//!
//! ```json
//! {
//!   "schema": "mosaic-manifest-fragment/v1",
//!   "mode": "quick" | "full",
//!   "id": "F1",
//!   "title": "...",
//!   "output_text": "...",
//!   "wall_ns": 0,
//!   "values": { "counters": {}, "histograms": {}, "series": {} },
//!   "stages": [ { "name": "...", "trials": 0, "wall_ns": 0, "cpu_ns": 0 } ]
//! }
//! ```
//!
//! A fragment whose `mode` does not match the resuming run is rejected
//! (quick fragments must never seed a full run), as is any fragment that
//! fails schema or field validation — the figure is simply re-run.

use crate::manifest::FigureRecord;
use mosaic_sim::json::Json;
use mosaic_sim::telemetry::{Histogram, Snapshot, StageRecord};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The fragment schema identifier.
pub const FRAGMENT_SCHEMA: &str = "mosaic-manifest-fragment/v1";

/// Canonical fragment path for a figure id under `dir`.
pub fn fragment_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{}.json", id.to_lowercase()))
}

fn snapshot_to_json(snap: &Snapshot) -> (Json, Json) {
    (snap.values_json(), snap.timings_json())
}

/// Render a figure record as fragment JSON.
pub fn to_json(record: &FigureRecord, mode: &str) -> Json {
    let (values, stages) = snapshot_to_json(&record.telemetry);
    Json::object()
        .with("schema", FRAGMENT_SCHEMA)
        .with("mode", mode)
        .with("id", record.id.as_str())
        .with("title", record.title.as_str())
        .with("output_text", record.output.as_str())
        .with("wall_ns", record.wall_ns)
        .with("values", values)
        .with("stages", stages)
}

/// Write a fragment atomically (temp file + rename), so a kill mid-write
/// can never leave a truncated fragment that `--resume` would trust.
pub fn write_fragment(dir: &Path, record: &FigureRecord, mode: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let final_path = fragment_path(dir, &record.id);
    let tmp_path = dir.join(format!(".{}.tmp", record.id.to_lowercase()));
    std::fs::write(&tmp_path, to_json(record, mode).to_string_pretty())?;
    std::fs::rename(&tmp_path, &final_path)
}

fn parse_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("{key}: missing or not a non-negative integer"))
}

fn parse_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(|v| v.as_str())
        .map(|s| s.to_string())
        .ok_or_else(|| format!("{key}: missing or not a string"))
}

fn parse_f64_arr(v: &Json, what: &str) -> Result<Vec<f64>, String> {
    let arr = v.as_arr().ok_or_else(|| format!("{what}: not an array"))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("{what}: non-numeric element"))
        })
        .collect()
}

fn parse_snapshot(values: &Json, stages: &Json) -> Result<Snapshot, String> {
    let mut counters = BTreeMap::new();
    for (k, v) in values
        .get("counters")
        .and_then(|c| c.as_obj())
        .ok_or("values.counters: missing or not an object")?
    {
        counters.insert(
            k.clone(),
            v.as_u64()
                .ok_or_else(|| format!("values.counters.{k}: not an integer"))?,
        );
    }
    let mut histograms = BTreeMap::new();
    for (k, h) in values
        .get("histograms")
        .and_then(|c| c.as_obj())
        .ok_or("values.histograms: missing or not an object")?
    {
        let edges = parse_f64_arr(
            h.get("edges")
                .ok_or_else(|| format!("histogram {k}: no edges"))?,
            "edges",
        )?;
        let counts = h
            .get("counts")
            .and_then(|c| c.as_arr())
            .ok_or_else(|| format!("histogram {k}: no counts"))?
            .iter()
            .map(|c| {
                c.as_u64()
                    .ok_or_else(|| format!("histogram {k}: bad count"))
            })
            .collect::<Result<Vec<u64>, String>>()?;
        let total = h
            .get("total")
            .and_then(|t| t.as_u64())
            .ok_or_else(|| format!("histogram {k}: no total"))?;
        if counts.len() != edges.len() + 1 {
            return Err(format!("histogram {k}: counts/edges length mismatch"));
        }
        histograms.insert(
            k.clone(),
            Histogram {
                edges,
                counts,
                total,
            },
        );
    }
    let mut series = BTreeMap::new();
    for (k, xs) in values
        .get("series")
        .and_then(|c| c.as_obj())
        .ok_or("values.series: missing or not an object")?
    {
        series.insert(k.clone(), parse_f64_arr(xs, &format!("series {k}"))?);
    }
    let mut stage_records = Vec::new();
    for s in stages.as_arr().ok_or("stages: not an array")? {
        stage_records.push(StageRecord {
            name: parse_str(s, "name")?,
            trials: parse_u64(s, "trials")?,
            wall_ns: parse_u64(s, "wall_ns")?,
            cpu_ns: parse_u64(s, "cpu_ns")?,
        });
    }
    Ok(Snapshot {
        counters,
        histograms,
        series,
        stages: stage_records,
    })
}

/// Parse fragment JSON back into a [`FigureRecord`], validating the
/// schema and that the fragment's mode matches `expect_mode`.
pub fn from_json(doc: &Json, expect_mode: &str) -> Result<FigureRecord, String> {
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == FRAGMENT_SCHEMA => {}
        other => {
            return Err(format!(
                "schema: expected {FRAGMENT_SCHEMA:?}, got {other:?}"
            ))
        }
    }
    let mode = parse_str(doc, "mode")?;
    if mode != expect_mode {
        return Err(format!(
            "mode mismatch: fragment is {mode:?}, run is {expect_mode:?}"
        ));
    }
    let telemetry = parse_snapshot(
        doc.get("values").unwrap_or(&Json::Null),
        doc.get("stages").unwrap_or(&Json::Null),
    )?;
    Ok(FigureRecord {
        id: parse_str(doc, "id")?,
        title: parse_str(doc, "title")?,
        output: parse_str(doc, "output_text")?,
        telemetry,
        wall_ns: parse_u64(doc, "wall_ns")?,
    })
}

/// Load and validate the fragment for `id` under `dir`, if one exists.
/// Any unreadable, unparsable, or mismatched fragment returns `None` —
/// the caller re-runs the figure.
pub fn load_fragment(dir: &Path, id: &str, expect_mode: &str) -> Option<FigureRecord> {
    let path = fragment_path(dir, id);
    let text = std::fs::read_to_string(&path).ok()?;
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!(
                "[run_all] ignoring corrupt fragment {}: {e:?}",
                path.display()
            );
            return None;
        }
    };
    match from_json(&doc, expect_mode) {
        Ok(rec) if rec.id == id => Some(rec),
        Ok(rec) => {
            eprintln!(
                "[run_all] ignoring fragment {}: id {:?} does not match {id:?}",
                path.display(),
                rec.id
            );
            None
        }
        Err(e) => {
            eprintln!(
                "[run_all] ignoring invalid fragment {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// Delete every fragment file under `dir` (fresh starts and successful
/// completions both clear the checkpoint state).
pub fn clear_fragments(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------
// Hyperfleet batch checkpoints (F18).
//
// `hyperfleet::simulate_with` streams its cumulative per-batch rollup
// through a `RollupStore`; this store persists each checkpoint as
// `hf-<tag>-b<batch>.json` next to the figure fragments, under the same
// atomic-write discipline. Every field of the rollup is an exact
// integer, so the wire format stores them as fixed-width hex strings
// (the JSON number layer is f64-backed and would silently round above
// 2^53). A checkpoint is keyed by the config digest: a load whose
// stored digest does not match is ignored, so a stale checkpoint from a
// different config/seed/fidelity can never seed a resume. Figure
// fragments and hyperfleet checkpoints share `clear_fragments` (both
// are `*.json`), so run_all's fresh-start and successful-completion
// sweeps clear them together.

/// The hyperfleet checkpoint schema identifier.
pub const ROLLUP_SCHEMA: &str = "mosaic-hyperfleet-rollup/v1";

use mosaic_netsim::hyperfleet::{FleetRollup, RollupStore, SPARE_BUCKETS};

/// A [`RollupStore`] over per-batch JSON files in a fragment directory.
/// The `tag` keeps concurrent simulations (e.g. F18's two policies) in
/// separate file families within the same directory.
#[derive(Debug, Clone)]
pub struct FragmentRollupStore {
    dir: PathBuf,
    tag: String,
}

fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

fn hex128(v: u128) -> String {
    format!("{v:032x}")
}

fn parse_hex64(doc: &Json, key: &str) -> Result<u64, String> {
    let s = doc
        .get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("{key}: missing or not a string"))?;
    u64::from_str_radix(s, 16).map_err(|_| format!("{key}: not a hex integer"))
}

fn parse_hex128(doc: &Json, key: &str) -> Result<u128, String> {
    let s = doc
        .get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("{key}: missing or not a string"))?;
    u128::from_str_radix(s, 16).map_err(|_| format!("{key}: not a hex integer"))
}

impl FragmentRollupStore {
    /// A store writing checkpoints under `dir` (created on first save).
    pub fn new(dir: impl Into<PathBuf>, tag: &str) -> Self {
        FragmentRollupStore {
            dir: dir.into(),
            tag: tag.to_string(),
        }
    }

    /// Checkpoint path for one batch.
    pub fn path(&self, batch: u64) -> PathBuf {
        self.dir.join(format!("hf-{}-b{batch}.json", self.tag))
    }

    /// Delete this store's checkpoint files (leaves figure fragments and
    /// other tags alone) — what F18 calls once a simulation completes.
    pub fn clear(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let prefix = format!("hf-{}-b", self.tag);
        for entry in entries.flatten() {
            let path = entry.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with(&prefix) && name.ends_with(".json") {
                let _ = std::fs::remove_file(path);
            }
        }
    }

    fn rollup_to_json(batch: u64, digest: u64, r: &FleetRollup) -> Json {
        let occupancy: Vec<Json> = r
            .spare_occupancy
            .iter()
            .map(|&c| Json::from(hex64(c)))
            .collect();
        Json::object()
            .with("schema", ROLLUP_SCHEMA)
            .with("batch", hex64(batch))
            .with("digest", hex64(digest))
            .with("shards", hex64(r.shards))
            .with("links", hex64(r.links))
            .with("event_sourced_links", hex64(r.event_sourced_links))
            .with("tickets", hex64(r.tickets))
            .with("hard_failures", hex64(r.hard_failures))
            .with("rebuilds", hex64(r.rebuilds))
            .with("channel_faults", hex64(r.channel_faults))
            .with("spares_activated", hex64(r.spares_activated))
            .with("lanes_shed", hex64(r.lanes_shed))
            .with("exhausted_links", hex64(r.exhausted_links))
            .with("downtime_q", hex128(r.downtime_q))
            .with("degraded_q", hex128(r.degraded_q))
            .with("capacity_lost_q", hex128(r.capacity_lost_q))
            .with("spare_occupancy", Json::Arr(occupancy))
    }

    fn rollup_from_json(doc: &Json, batch: u64, digest: u64) -> Result<FleetRollup, String> {
        match doc.get("schema").and_then(|s| s.as_str()) {
            Some(s) if s == ROLLUP_SCHEMA => {}
            other => return Err(format!("schema: expected {ROLLUP_SCHEMA:?}, got {other:?}")),
        }
        if parse_hex64(doc, "batch")? != batch {
            return Err("batch mismatch".into());
        }
        if parse_hex64(doc, "digest")? != digest {
            return Err("config digest mismatch".into());
        }
        let occ = doc
            .get("spare_occupancy")
            .and_then(|v| v.as_arr())
            .ok_or("spare_occupancy: missing or not an array")?;
        if occ.len() != SPARE_BUCKETS {
            return Err(format!(
                "spare_occupancy: expected {SPARE_BUCKETS} buckets, got {}",
                occ.len()
            ));
        }
        let mut spare_occupancy = [0u64; SPARE_BUCKETS];
        for (i, v) in occ.iter().enumerate() {
            let s = v
                .as_str()
                .ok_or_else(|| format!("spare_occupancy[{i}]: not a string"))?;
            spare_occupancy[i] = u64::from_str_radix(s, 16)
                .map_err(|_| format!("spare_occupancy[{i}]: not a hex integer"))?;
        }
        Ok(FleetRollup {
            shards: parse_hex64(doc, "shards")?,
            links: parse_hex64(doc, "links")?,
            event_sourced_links: parse_hex64(doc, "event_sourced_links")?,
            tickets: parse_hex64(doc, "tickets")?,
            hard_failures: parse_hex64(doc, "hard_failures")?,
            rebuilds: parse_hex64(doc, "rebuilds")?,
            channel_faults: parse_hex64(doc, "channel_faults")?,
            spares_activated: parse_hex64(doc, "spares_activated")?,
            lanes_shed: parse_hex64(doc, "lanes_shed")?,
            exhausted_links: parse_hex64(doc, "exhausted_links")?,
            downtime_q: parse_hex128(doc, "downtime_q")?,
            degraded_q: parse_hex128(doc, "degraded_q")?,
            capacity_lost_q: parse_hex128(doc, "capacity_lost_q")?,
            spare_occupancy,
        })
    }
}

impl RollupStore for FragmentRollupStore {
    fn load(&mut self, batch: u64, digest: u64) -> Option<FleetRollup> {
        let path = self.path(batch);
        let text = std::fs::read_to_string(&path).ok()?;
        let doc = Json::parse(&text).ok()?;
        match Self::rollup_from_json(&doc, batch, digest) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!(
                    "[hyperfleet] ignoring invalid checkpoint {}: {e}",
                    path.display()
                );
                None
            }
        }
    }

    fn save(&mut self, batch: u64, digest: u64, rollup: &FleetRollup) -> mosaic_units::Result<()> {
        let write = |store: &FragmentRollupStore| -> std::io::Result<()> {
            std::fs::create_dir_all(&store.dir)?;
            let tmp = store.dir.join(format!(".hf-{}-b{batch}.tmp", store.tag));
            std::fs::write(
                &tmp,
                Self::rollup_to_json(batch, digest, rollup).to_string_pretty(),
            )?;
            std::fs::rename(&tmp, store.path(batch))
        };
        write(self).map_err(|e| {
            mosaic_units::MosaicError::invalid_config(
                "hyperfleet_checkpoint",
                format!("cannot write checkpoint for batch {batch}: {e}"),
            )
        })
    }
}

// ---------------------------------------------------------------------
// Traffic sweep checkpoints (F19).
//
// `mosaic_traffic::run_point_with` streams its cumulative per-batch
// rollup through a `TrafficStore`; this store persists each checkpoint
// as `tr-<tag>-b<batch>.json` next to the figure fragments, under the
// identical discipline as the hyperfleet store above: atomic writes,
// fixed-width hex integers (exactness above 2^53), digest-keyed loads,
// and prefix-scoped clears. Figure fragments and traffic checkpoints
// share `clear_fragments` (both are `*.json`).

/// The traffic checkpoint schema identifier.
pub const TRAFFIC_SCHEMA: &str = "mosaic-traffic-rollup/v1";

use mosaic_traffic::{TrafficRollup, TrafficStore, LAT_BUCKETS};

/// A [`TrafficStore`] over per-batch JSON files in a fragment directory.
/// The `tag` keeps F19's policy × fault-rate points in separate file
/// families within the same directory.
#[derive(Debug, Clone)]
pub struct TrafficRollupStore {
    dir: PathBuf,
    tag: String,
}

impl TrafficRollupStore {
    /// A store writing checkpoints under `dir` (created on first save).
    pub fn new(dir: impl Into<PathBuf>, tag: &str) -> Self {
        TrafficRollupStore {
            dir: dir.into(),
            tag: tag.to_string(),
        }
    }

    /// Checkpoint path for one batch.
    pub fn path(&self, batch: u64) -> PathBuf {
        self.dir.join(format!("tr-{}-b{batch}.json", self.tag))
    }

    /// Delete this store's checkpoint files (leaves figure fragments and
    /// other tags alone) — what F19 calls once a point completes.
    pub fn clear(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let prefix = format!("tr-{}-b", self.tag);
        for entry in entries.flatten() {
            let path = entry.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with(&prefix) && name.ends_with(".json") {
                let _ = std::fs::remove_file(path);
            }
        }
    }

    fn rollup_to_json(batch: u64, digest: u64, r: &TrafficRollup) -> Json {
        let hist: Vec<Json> = r
            .latency_hist
            .iter()
            .map(|&c| Json::from(hex64(c)))
            .collect();
        Json::object()
            .with("schema", TRAFFIC_SCHEMA)
            .with("batch", hex64(batch))
            .with("digest", hex64(digest))
            .with("runs", hex64(r.runs))
            .with("offered", hex64(r.offered))
            .with("delivered", hex64(r.delivered))
            .with("retried", hex64(r.retried))
            .with("expired", hex64(r.expired))
            .with("exhausted", hex64(r.exhausted))
            .with("reordered", hex64(r.reordered))
            .with("corrupt_frames", hex64(r.corrupt_frames))
            .with("deskew_epochs", hex64(r.deskew_epochs))
            .with("remaps", hex64(r.remaps))
            .with("pause_epochs", hex64(r.pause_epochs))
            .with("lost_lanes", hex64(r.lost_lanes))
            .with("payload_bytes", hex64(r.payload_bytes))
            .with("latency_sum", hex128(r.latency_sum))
            .with("latency_hist", Json::Arr(hist))
    }

    fn rollup_from_json(doc: &Json, batch: u64, digest: u64) -> Result<TrafficRollup, String> {
        match doc.get("schema").and_then(|s| s.as_str()) {
            Some(s) if s == TRAFFIC_SCHEMA => {}
            other => {
                return Err(format!(
                    "schema: expected {TRAFFIC_SCHEMA:?}, got {other:?}"
                ))
            }
        }
        if parse_hex64(doc, "batch")? != batch {
            return Err("batch mismatch".into());
        }
        if parse_hex64(doc, "digest")? != digest {
            return Err("config digest mismatch".into());
        }
        let hist = doc
            .get("latency_hist")
            .and_then(|v| v.as_arr())
            .ok_or("latency_hist: missing or not an array")?;
        if hist.len() != LAT_BUCKETS {
            return Err(format!(
                "latency_hist: expected {LAT_BUCKETS} buckets, got {}",
                hist.len()
            ));
        }
        let mut latency_hist = [0u64; LAT_BUCKETS];
        for (i, v) in hist.iter().enumerate() {
            let s = v
                .as_str()
                .ok_or_else(|| format!("latency_hist[{i}]: not a string"))?;
            latency_hist[i] = u64::from_str_radix(s, 16)
                .map_err(|_| format!("latency_hist[{i}]: not a hex integer"))?;
        }
        Ok(TrafficRollup {
            runs: parse_hex64(doc, "runs")?,
            offered: parse_hex64(doc, "offered")?,
            delivered: parse_hex64(doc, "delivered")?,
            retried: parse_hex64(doc, "retried")?,
            expired: parse_hex64(doc, "expired")?,
            exhausted: parse_hex64(doc, "exhausted")?,
            reordered: parse_hex64(doc, "reordered")?,
            corrupt_frames: parse_hex64(doc, "corrupt_frames")?,
            deskew_epochs: parse_hex64(doc, "deskew_epochs")?,
            remaps: parse_hex64(doc, "remaps")?,
            pause_epochs: parse_hex64(doc, "pause_epochs")?,
            lost_lanes: parse_hex64(doc, "lost_lanes")?,
            payload_bytes: parse_hex64(doc, "payload_bytes")?,
            latency_sum: parse_hex128(doc, "latency_sum")?,
            latency_hist,
        })
    }
}

impl TrafficStore for TrafficRollupStore {
    fn load(&mut self, batch: u64, digest: u64) -> Option<TrafficRollup> {
        let path = self.path(batch);
        let text = std::fs::read_to_string(&path).ok()?;
        let doc = Json::parse(&text).ok()?;
        match Self::rollup_from_json(&doc, batch, digest) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!(
                    "[traffic] ignoring invalid checkpoint {}: {e}",
                    path.display()
                );
                None
            }
        }
    }

    fn save(
        &mut self,
        batch: u64,
        digest: u64,
        rollup: &TrafficRollup,
    ) -> mosaic_units::Result<()> {
        let write = |store: &TrafficRollupStore| -> std::io::Result<()> {
            std::fs::create_dir_all(&store.dir)?;
            let tmp = store.dir.join(format!(".tr-{}-b{batch}.tmp", store.tag));
            std::fs::write(
                &tmp,
                Self::rollup_to_json(batch, digest, rollup).to_string_pretty(),
            )?;
            std::fs::rename(&tmp, store.path(batch))
        };
        write(self).map_err(|e| {
            mosaic_units::MosaicError::invalid_config(
                "traffic_checkpoint",
                format!("cannot write checkpoint for batch {batch}: {e}"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Build the snapshot by hand (fields are public) rather than through
    // the process-global telemetry collector, so these tests cannot race
    // with the manifest tests that reset it.
    fn sample_record() -> FigureRecord {
        let mut snap = Snapshot::default();
        snap.counters.insert("trials.demo".into(), 42);
        snap.histograms.insert(
            "h.demo".into(),
            Histogram {
                edges: vec![1.0, 2.0],
                counts: vec![0, 1, 0],
                total: 1,
            },
        );
        snap.series.insert("s.demo".into(), vec![0.25, -1.0, 3e-9]);
        snap.stages.push(StageRecord {
            name: "st.demo".into(),
            trials: 7,
            wall_ns: 99,
            cpu_ns: 55,
        });
        FigureRecord {
            id: "F9".into(),
            title: "demo \"figure\" with\nnewlines".into(),
            output: "col\n1\n2\n".into(),
            telemetry: snap,
            wall_ns: 123_456,
        }
    }

    #[test]
    fn fragment_round_trips_exactly() {
        let rec = sample_record();
        let doc = to_json(&rec, "quick");
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        let back = from_json(&parsed, "quick").unwrap();
        assert_eq!(back.id, rec.id);
        assert_eq!(back.title, rec.title);
        assert_eq!(back.output, rec.output);
        assert_eq!(back.wall_ns, rec.wall_ns);
        assert_eq!(back.telemetry, rec.telemetry);
    }

    #[test]
    fn mode_mismatch_is_rejected() {
        let rec = sample_record();
        let doc = to_json(&rec, "quick");
        assert!(from_json(&doc, "full").is_err());
    }

    #[test]
    fn corrupt_fragments_are_rejected() {
        let rec = sample_record();
        let mut doc = to_json(&rec, "quick");
        doc.set("schema", "bogus/v0");
        assert!(from_json(&doc, "quick").is_err());
        let mut doc = to_json(&rec, "quick");
        doc.set("values", Json::object());
        assert!(from_json(&doc, "quick").is_err());
    }

    #[test]
    fn write_load_clear_cycle() {
        let dir = std::env::temp_dir().join(format!("mosaic-frag-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = sample_record();
        write_fragment(&dir, &rec, "quick").unwrap();
        let loaded = load_fragment(&dir, "F9", "quick").expect("fragment loads");
        assert_eq!(loaded.output, rec.output);
        assert_eq!(loaded.telemetry, rec.telemetry);
        // Wrong mode or id: ignored.
        assert!(load_fragment(&dir, "F9", "full").is_none());
        assert!(load_fragment(&dir, "F1", "quick").is_none());
        clear_fragments(&dir);
        assert!(load_fragment(&dir, "F9", "quick").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollup_checkpoints_round_trip_exactly() {
        let dir = std::env::temp_dir().join(format!("mosaic-hf-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = FragmentRollupStore::new(&dir, "test");
        let r = FleetRollup {
            shards: 3,
            links: 1_277_952,
            tickets: 42,
            // Above 2^53: a float-backed number field would round these.
            downtime_q: (1u128 << 77) + 12345,
            capacity_lost_q: u128::MAX / 7,
            spare_occupancy: [9, 8, 7, 6, 5, 4, 3, 2],
            ..FleetRollup::default()
        };
        store.save(4, 0xdead_beef, &r).unwrap();
        assert_eq!(store.load(4, 0xdead_beef), Some(r));
        // Wrong digest, wrong batch, corrupt file: all ignored.
        assert_eq!(store.load(4, 0xdead_beee), None);
        assert_eq!(store.load(3, 0xdead_beef), None);
        std::fs::write(store.path(4), "{not json").unwrap();
        assert_eq!(store.load(4, 0xdead_beef), None);
        store.save(4, 0xdead_beef, &r).unwrap();
        store.clear();
        assert_eq!(store.load(4, 0xdead_beef), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traffic_checkpoints_round_trip_exactly() {
        let dir = std::env::temp_dir().join(format!("mosaic-tr-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = TrafficRollupStore::new(&dir, "hitless-r2");
        let mut hist = [0u64; LAT_BUCKETS];
        hist[0] = 1000;
        hist[LAT_BUCKETS - 1] = 3;
        let r = TrafficRollup {
            runs: 8,
            offered: 15_360,
            delivered: 15_200,
            // Above 2^53: a float-backed number field would round these.
            payload_bytes: (1u64 << 60) + 77,
            latency_sum: (1u128 << 90) + 5,
            latency_hist: hist,
            ..TrafficRollup::default()
        };
        store.save(2, 0xfeed_f00d, &r).unwrap();
        assert_eq!(store.load(2, 0xfeed_f00d), Some(r));
        // Wrong digest, wrong batch, wrong tag, corrupt file: all ignored.
        assert_eq!(store.load(2, 0xfeed_f00e), None);
        assert_eq!(store.load(1, 0xfeed_f00d), None);
        assert_eq!(
            TrafficRollupStore::new(&dir, "static-r2").load(2, 0xfeed_f00d),
            None
        );
        std::fs::write(store.path(2), "{not json").unwrap();
        assert_eq!(store.load(2, 0xfeed_f00d), None);
        // Clearing one tag leaves the other alone.
        let mut other = TrafficRollupStore::new(&dir, "static-r2");
        store.save(2, 0xfeed_f00d, &r).unwrap();
        other.save(0, 0xabcd, &r).unwrap();
        store.clear();
        assert_eq!(store.load(2, 0xfeed_f00d), None);
        assert_eq!(other.load(0, 0xabcd), Some(r));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
