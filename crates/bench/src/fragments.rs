//! Per-figure manifest fragments: the checkpoint format behind
//! `run_all --resume`.
//!
//! `run_all` writes one fragment per completed figure (atomically:
//! temp-file + rename) under `results/manifests/fragments/`. A killed
//! run leaves the completed figures' fragments behind; `--resume` loads
//! them instead of re-running those figures, then regenerates
//! `results/` and the final manifest **byte-identically** to an
//! uninterrupted run. That works because a fragment captures everything
//! the manifest and result files need from a figure: the full output
//! text (not just its digest), the telemetry value snapshot, and the
//! stage/wall timings.
//!
//! Schema `mosaic-manifest-fragment/v1`:
//!
//! ```json
//! {
//!   "schema": "mosaic-manifest-fragment/v1",
//!   "mode": "quick" | "full",
//!   "id": "F1",
//!   "title": "...",
//!   "output_text": "...",
//!   "wall_ns": 0,
//!   "values": { "counters": {}, "histograms": {}, "series": {} },
//!   "stages": [ { "name": "...", "trials": 0, "wall_ns": 0, "cpu_ns": 0 } ]
//! }
//! ```
//!
//! A fragment whose `mode` does not match the resuming run is rejected
//! (quick fragments must never seed a full run), as is any fragment that
//! fails schema or field validation — the figure is simply re-run.

use crate::manifest::FigureRecord;
use mosaic_sim::json::Json;
use mosaic_sim::telemetry::{Histogram, Snapshot, StageRecord};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The fragment schema identifier.
pub const FRAGMENT_SCHEMA: &str = "mosaic-manifest-fragment/v1";

/// Canonical fragment path for a figure id under `dir`.
pub fn fragment_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{}.json", id.to_lowercase()))
}

fn snapshot_to_json(snap: &Snapshot) -> (Json, Json) {
    (snap.values_json(), snap.timings_json())
}

/// Render a figure record as fragment JSON.
pub fn to_json(record: &FigureRecord, mode: &str) -> Json {
    let (values, stages) = snapshot_to_json(&record.telemetry);
    Json::object()
        .with("schema", FRAGMENT_SCHEMA)
        .with("mode", mode)
        .with("id", record.id.as_str())
        .with("title", record.title.as_str())
        .with("output_text", record.output.as_str())
        .with("wall_ns", record.wall_ns)
        .with("values", values)
        .with("stages", stages)
}

/// Write a fragment atomically (temp file + rename), so a kill mid-write
/// can never leave a truncated fragment that `--resume` would trust.
pub fn write_fragment(dir: &Path, record: &FigureRecord, mode: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let final_path = fragment_path(dir, &record.id);
    let tmp_path = dir.join(format!(".{}.tmp", record.id.to_lowercase()));
    std::fs::write(&tmp_path, to_json(record, mode).to_string_pretty())?;
    std::fs::rename(&tmp_path, &final_path)
}

fn parse_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("{key}: missing or not a non-negative integer"))
}

fn parse_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(|v| v.as_str())
        .map(|s| s.to_string())
        .ok_or_else(|| format!("{key}: missing or not a string"))
}

fn parse_f64_arr(v: &Json, what: &str) -> Result<Vec<f64>, String> {
    let arr = v.as_arr().ok_or_else(|| format!("{what}: not an array"))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("{what}: non-numeric element"))
        })
        .collect()
}

fn parse_snapshot(values: &Json, stages: &Json) -> Result<Snapshot, String> {
    let mut counters = BTreeMap::new();
    for (k, v) in values
        .get("counters")
        .and_then(|c| c.as_obj())
        .ok_or("values.counters: missing or not an object")?
    {
        counters.insert(
            k.clone(),
            v.as_u64()
                .ok_or_else(|| format!("values.counters.{k}: not an integer"))?,
        );
    }
    let mut histograms = BTreeMap::new();
    for (k, h) in values
        .get("histograms")
        .and_then(|c| c.as_obj())
        .ok_or("values.histograms: missing or not an object")?
    {
        let edges = parse_f64_arr(
            h.get("edges")
                .ok_or_else(|| format!("histogram {k}: no edges"))?,
            "edges",
        )?;
        let counts = h
            .get("counts")
            .and_then(|c| c.as_arr())
            .ok_or_else(|| format!("histogram {k}: no counts"))?
            .iter()
            .map(|c| {
                c.as_u64()
                    .ok_or_else(|| format!("histogram {k}: bad count"))
            })
            .collect::<Result<Vec<u64>, String>>()?;
        let total = h
            .get("total")
            .and_then(|t| t.as_u64())
            .ok_or_else(|| format!("histogram {k}: no total"))?;
        if counts.len() != edges.len() + 1 {
            return Err(format!("histogram {k}: counts/edges length mismatch"));
        }
        histograms.insert(
            k.clone(),
            Histogram {
                edges,
                counts,
                total,
            },
        );
    }
    let mut series = BTreeMap::new();
    for (k, xs) in values
        .get("series")
        .and_then(|c| c.as_obj())
        .ok_or("values.series: missing or not an object")?
    {
        series.insert(k.clone(), parse_f64_arr(xs, &format!("series {k}"))?);
    }
    let mut stage_records = Vec::new();
    for s in stages.as_arr().ok_or("stages: not an array")? {
        stage_records.push(StageRecord {
            name: parse_str(s, "name")?,
            trials: parse_u64(s, "trials")?,
            wall_ns: parse_u64(s, "wall_ns")?,
            cpu_ns: parse_u64(s, "cpu_ns")?,
        });
    }
    Ok(Snapshot {
        counters,
        histograms,
        series,
        stages: stage_records,
    })
}

/// Parse fragment JSON back into a [`FigureRecord`], validating the
/// schema and that the fragment's mode matches `expect_mode`.
pub fn from_json(doc: &Json, expect_mode: &str) -> Result<FigureRecord, String> {
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == FRAGMENT_SCHEMA => {}
        other => {
            return Err(format!(
                "schema: expected {FRAGMENT_SCHEMA:?}, got {other:?}"
            ))
        }
    }
    let mode = parse_str(doc, "mode")?;
    if mode != expect_mode {
        return Err(format!(
            "mode mismatch: fragment is {mode:?}, run is {expect_mode:?}"
        ));
    }
    let telemetry = parse_snapshot(
        doc.get("values").unwrap_or(&Json::Null),
        doc.get("stages").unwrap_or(&Json::Null),
    )?;
    Ok(FigureRecord {
        id: parse_str(doc, "id")?,
        title: parse_str(doc, "title")?,
        output: parse_str(doc, "output_text")?,
        telemetry,
        wall_ns: parse_u64(doc, "wall_ns")?,
    })
}

/// Load and validate the fragment for `id` under `dir`, if one exists.
/// Any unreadable, unparsable, or mismatched fragment returns `None` —
/// the caller re-runs the figure.
pub fn load_fragment(dir: &Path, id: &str, expect_mode: &str) -> Option<FigureRecord> {
    let path = fragment_path(dir, id);
    let text = std::fs::read_to_string(&path).ok()?;
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!(
                "[run_all] ignoring corrupt fragment {}: {e:?}",
                path.display()
            );
            return None;
        }
    };
    match from_json(&doc, expect_mode) {
        Ok(rec) if rec.id == id => Some(rec),
        Ok(rec) => {
            eprintln!(
                "[run_all] ignoring fragment {}: id {:?} does not match {id:?}",
                path.display(),
                rec.id
            );
            None
        }
        Err(e) => {
            eprintln!(
                "[run_all] ignoring invalid fragment {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// Delete every fragment file under `dir` (fresh starts and successful
/// completions both clear the checkpoint state).
pub fn clear_fragments(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Build the snapshot by hand (fields are public) rather than through
    // the process-global telemetry collector, so these tests cannot race
    // with the manifest tests that reset it.
    fn sample_record() -> FigureRecord {
        let mut snap = Snapshot::default();
        snap.counters.insert("trials.demo".into(), 42);
        snap.histograms.insert(
            "h.demo".into(),
            Histogram {
                edges: vec![1.0, 2.0],
                counts: vec![0, 1, 0],
                total: 1,
            },
        );
        snap.series.insert("s.demo".into(), vec![0.25, -1.0, 3e-9]);
        snap.stages.push(StageRecord {
            name: "st.demo".into(),
            trials: 7,
            wall_ns: 99,
            cpu_ns: 55,
        });
        FigureRecord {
            id: "F9".into(),
            title: "demo \"figure\" with\nnewlines".into(),
            output: "col\n1\n2\n".into(),
            telemetry: snap,
            wall_ns: 123_456,
        }
    }

    #[test]
    fn fragment_round_trips_exactly() {
        let rec = sample_record();
        let doc = to_json(&rec, "quick");
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        let back = from_json(&parsed, "quick").unwrap();
        assert_eq!(back.id, rec.id);
        assert_eq!(back.title, rec.title);
        assert_eq!(back.output, rec.output);
        assert_eq!(back.wall_ns, rec.wall_ns);
        assert_eq!(back.telemetry, rec.telemetry);
    }

    #[test]
    fn mode_mismatch_is_rejected() {
        let rec = sample_record();
        let doc = to_json(&rec, "quick");
        assert!(from_json(&doc, "full").is_err());
    }

    #[test]
    fn corrupt_fragments_are_rejected() {
        let rec = sample_record();
        let mut doc = to_json(&rec, "quick");
        doc.set("schema", "bogus/v0");
        assert!(from_json(&doc, "quick").is_err());
        let mut doc = to_json(&rec, "quick");
        doc.set("values", Json::object());
        assert!(from_json(&doc, "quick").is_err());
    }

    #[test]
    fn write_load_clear_cycle() {
        let dir = std::env::temp_dir().join(format!("mosaic-frag-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = sample_record();
        write_fragment(&dir, &rec, "quick").unwrap();
        let loaded = load_fragment(&dir, "F9", "quick").expect("fragment loads");
        assert_eq!(loaded.output, rec.output);
        assert_eq!(loaded.telemetry, rec.telemetry);
        // Wrong mode or id: ignored.
        assert!(load_fragment(&dir, "F9", "full").is_none());
        assert!(load_fragment(&dir, "F1", "quick").is_none());
        clear_fragments(&dir);
        assert!(load_fragment(&dir, "F9", "quick").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
