//! F17 — Fault-campaign resilience (claims C3/C6): delivered throughput
//! and availability versus injected fault rate, with and without the
//! graceful-degradation controller.
//!
//! Each point replays the *same* generated fault campaigns (same seeds)
//! against a static lane map and against the controller, so the two
//! curves differ only by the recovery policy. Campaign generation and
//! replay are deterministic, so the table is bit-identical at any
//! thread count.

use crate::cells;
use crate::runcfg;
use crate::table::Table;
use mosaic_sim::campaign::{run_campaign, CampaignRunConfig};
use mosaic_sim::faults::CampaignConfig;
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::Stopwatch;

const SEED: u64 = 17;
const EPOCHS: usize = 600;

fn run_config(rate: f64, controller: bool) -> CampaignRunConfig {
    CampaignRunConfig {
        logical_lanes: 12,
        physical_channels: 16,
        campaign: CampaignConfig {
            channels: 16,
            epochs: EPOCHS,
            faults_per_kilo_epoch: rate,
            max_duration: 48,
            permanent_fraction: 0.4,
        },
        controller,
        ..CampaignRunConfig::default()
    }
}

/// Mean outcome over `seeds` campaign replays at one fault rate.
struct PointSummary {
    events: f64,
    delivered: f64,
    availability: f64,
    spares: f64,
    lost: f64,
}

fn point(rate: f64, controller: bool, seeds: u64) -> PointSummary {
    let cfg = run_config(rate, controller);
    let mut sum = PointSummary {
        events: 0.0,
        delivered: 0.0,
        availability: 0.0,
        spares: 0.0,
        lost: 0.0,
    };
    // Seed-ordered sequential fold: f64 sums stay order-stable.
    for s in 0..seeds {
        let out = match run_campaign(&cfg, SEED.wrapping_add(s)) {
            Ok(out) => out,
            Err(e) => {
                // try_new validation cannot fail for these configs; keep
                // the figure total-failure-proof regardless.
                eprintln!("[F17] campaign replay failed: {e}");
                continue;
            }
        };
        sum.events += out.fault_events as f64;
        sum.delivered += out.delivered_fraction;
        sum.availability += out.availability;
        sum.spares += out.spares_activated as f64;
        sum.lost += out.lost_lanes as f64;
    }
    let n = seeds as f64;
    PointSummary {
        events: sum.events / n,
        delivered: sum.delivered / n,
        availability: sum.availability / n,
        spares: sum.spares / n,
        lost: sum.lost / n,
    }
}

/// Run the experiment.
pub fn run() -> String {
    let rates = [0.5f64, 1.0, 2.0, 4.0, 8.0];
    let seeds = runcfg::trials(32, 6);
    let mut out = format!(
        "F17: fault-campaign resilience — 12 lanes on 16 channels, {EPOCHS}-epoch campaigns, \
         {seeds} seeds/point\n"
    );
    let mut t = Table::new(&[
        "faults/kepoch",
        "events",
        "delivered static",
        "delivered ctl",
        "avail static",
        "avail ctl",
        "spares used",
        "lanes shed",
    ]);
    let exec = Exec::from_env();
    let start = Stopwatch::start();
    // One sweep cell per (rate, mode): both modes of a rate replay the
    // same seeds, so the pair is directly comparable.
    let cells: Vec<(usize, bool)> = rates
        .iter()
        .enumerate()
        .flat_map(|(i, _)| [(i, false), (i, true)])
        .collect();
    let summaries = exec.par_sweep(&cells, |&(i, controller)| {
        point(rates[i], controller, seeds)
    });
    for (i, &rate) in rates.iter().enumerate() {
        let stat = &summaries[2 * i];
        let ctl = &summaries[2 * i + 1];
        t.row(cells![
            format!("{rate:.1}"),
            format!("{:.1}", ctl.events),
            format!("{:.4}", stat.delivered),
            format!("{:.4}", ctl.delivered),
            format!("{:.4}", stat.availability),
            format!("{:.4}", ctl.availability),
            format!("{:.2}", ctl.spares),
            format!("{:.2}", ctl.lost)
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nsame generated campaigns on both curves; controller spares permanent faults and\n\
         sheds lanes gracefully once the pool is dry (rate back-off instead of link-down)\n",
    );
    let trials = (rates.len() as u64) * 2 * seeds * EPOCHS as u64;
    RunStats::new(trials, start.elapsed(), exec.threads()).report("F17");
    out
}
