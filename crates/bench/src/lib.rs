//! Experiment harness: one runner per figure/table of the evaluation.
//!
//! Each `figN_*`/`tabN_*` module exposes `run() -> String` producing the
//! table/series the corresponding paper artifact reports; the binaries in
//! `src/bin/` are thin wrappers, and `run_all` regenerates everything into
//! `results/`. Numbers are model outputs — the goal is the *shape* of each
//! claim (who wins, by what factor, where the crossover sits), as recorded
//! in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fragments;
pub mod manifest;
pub mod runcfg;
pub mod table;

pub mod fig10_fec_study;
pub mod fig11_gearbox_resilience;
pub mod fig12_sparing_ablation;
pub mod fig13_pam4_scaling;
pub mod fig14_temperature;
pub mod fig15_wearout;
pub mod fig16_color_mux;
pub mod fig17_fault_campaign;
pub mod fig18_hyperfleet;
pub mod fig19_traffic_resilience;
pub mod fig1_energy_vs_lane_rate;
pub mod fig2_power_comparison;
pub mod fig3_reach_vs_rate;
pub mod fig4_ber_waterfall;
pub mod fig5_prototype_100ch;
pub mod fig6_reliability;
pub mod fig7_crosstalk;
pub mod fig8_scaling;
pub mod fig9_tradeoff_map;
pub mod tab1_power_breakdown;
pub mod tab2_datacenter;
pub mod tab3_cost;

/// One experiment entry: (id, title, runner).
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// Every experiment: (id, title, runner).
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        (
            "F1",
            "Energy/bit vs per-lane rate (why wide-and-slow)",
            fig1_energy_vs_lane_rate::run,
        ),
        (
            "F2",
            "Link power comparison at 800G",
            fig2_power_comparison::run,
        ),
        (
            "T1",
            "Per-component power breakdown",
            tab1_power_breakdown::run,
        ),
        ("F3", "Reach vs per-lane rate", fig3_reach_vs_rate::run),
        (
            "F4",
            "BER waterfall of a microLED channel",
            fig4_ber_waterfall::run,
        ),
        ("F5", "100-channel prototype", fig5_prototype_100ch::run),
        ("F6", "Reliability comparison", fig6_reliability::run),
        (
            "F7",
            "Crosstalk vs pitch and misalignment",
            fig7_crosstalk::run,
        ),
        ("F8", "Scaling 200G → 1.6T", fig8_scaling::run),
        ("F9", "Power-vs-reach trade-off map", fig9_tradeoff_map::run),
        ("F10", "FEC trade study", fig10_fec_study::run),
        (
            "F11",
            "Gearbox resilience under channel kills",
            fig11_gearbox_resilience::run,
        ),
        (
            "F12",
            "Sparing-policy ablation",
            fig12_sparing_ablation::run,
        ),
        ("F13", "PAM4 rate-scaling ablation", fig13_pam4_scaling::run),
        (
            "F14",
            "Thermal robustness (uncooled)",
            fig14_temperature::run,
        ),
        ("F15", "Wear-out lifetime ablation", fig15_wearout::run),
        ("F16", "RGB wavelength multiplexing", fig16_color_mux::run),
        (
            "F17",
            "Fault-campaign resilience (degradation controller)",
            fig17_fault_campaign::run,
        ),
        (
            "F18",
            "Hyperscale fleet at 1M+ links (event-sourced)",
            fig18_hyperfleet::run,
        ),
        (
            "F19",
            "Live-traffic resilience (packet workloads under faults)",
            fig19_traffic_resilience::run,
        ),
        ("T2", "Datacenter fleet study", tab2_datacenter::run),
        ("T3", "5-year total cost of ownership", tab3_cost::run),
    ]
}
