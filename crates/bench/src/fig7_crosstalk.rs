//! F7 — Inter-core crosstalk versus pitch, and the misalignment tolerance
//! window (feasibility substrate for C4/C5).

use crate::cells;
use crate::table::Table;
use mosaic::budget::BudgetEngine;
use mosaic::config::MosaicConfig;
use mosaic_fiber::crosstalk::{CoreCoupling, CrosstalkModel, Misalignment};
use mosaic_fiber::geometry::CoreLattice;
use mosaic_units::{BitRate, Length};

/// Run the experiment.
pub fn run() -> String {
    let mut out =
        String::from("F7a: nearest-neighbor crosstalk vs core pitch (10 m span, center channel)\n");
    let coupling = CoreCoupling::imaging_default();
    let mut t = Table::new(&[
        "pitch µm",
        "XT per neighbor dB/10m",
        "total XT (6 nbrs)",
        "penalty dB",
    ]);
    for &pitch_um in &[12.0, 16.0, 20.0, 24.0, 30.0, 40.0] {
        let pitch = Length::from_um(pitch_um);
        let model = CrosstalkModel {
            coupling: coupling.clone(),
            ..CrosstalkModel::default_aligned()
        };
        let lat = CoreLattice::spiral(127, pitch);
        let xt = model.total_crosstalk(&lat, 0, Length::from_m(10.0));
        let per = coupling.xt_total(pitch, Length::from_m(10.0));
        let pen = mosaic_fiber::crosstalk::crosstalk_penalty(xt)
            .map(|d| format!("{:.2}", d.as_db()))
            .unwrap_or_else(|| "eye closed".into());
        t.row(cells![
            format!("{pitch_um:.0}"),
            format!("{:.1}", 10.0 * per.log10()),
            format!("{xt:.2e}"),
            pen
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nF7b: misalignment tolerance of the 800G link at 10 m (20 µm pitch)\n");
    let mut t = Table::new(&["lateral µm", "rotation mrad", "worst margin dB", "feasible"]);
    for &(lat_um, rot_mrad) in &[
        (0.0, 0.0),
        (2.0, 0.0),
        (4.0, 0.0),
        (6.0, 0.0),
        (8.0, 0.0),
        (0.0, 10.0),
        (0.0, 20.0),
        (0.0, 40.0),
        (3.0, 10.0),
    ] {
        let mut cfg = MosaicConfig::builder()
            .bit_rate(BitRate::from_gbps(800.0))
            .reach(Length::from_m(10.0))
            .build()
            .unwrap();
        cfg.misalignment = Misalignment {
            lateral: Length::from_um(lat_um),
            rotation_rad: rot_mrad / 1000.0,
        };
        let engine = BudgetEngine::new(&cfg);
        match engine.worst_margin(&cfg.led) {
            Some(m) => t.row(cells![
                format!("{lat_um:.0}"),
                format!("{rot_mrad:.0}"),
                format!("{:.2}", m.as_db()),
                m.as_db() >= 0.0
            ]),
            None => t.row(cells![
                format!("{lat_um:.0}"),
                format!("{rot_mrad:.0}"),
                "eye closed",
                false
            ]),
        }
    }
    out.push_str(&t.render());
    out
}
