//! F3 — Reach versus per-lane rate: the copper wall and the Mosaic
//! envelope (claims C1 and C5).

use crate::cells;
use crate::table::Table;
use mosaic::budget::max_reach as mosaic_reach;
use mosaic::config::MosaicConfig;
use mosaic_copper::channel::TwinaxChannel;
use mosaic_copper::reach::{max_reach as copper_reach, EqualizationBudget};
use mosaic_units::{BitRate, Length};

/// Run the experiment.
pub fn run() -> String {
    let mut out = String::from("F3a: copper (passive DAC) reach vs electrical lane rate\n");
    let mut t = Table::new(&["lane Gb/s", "30 AWG reach", "26 AWG reach"]);
    for &g in &[25.0, 50.0, 106.25, 212.5, 425.0] {
        let rate = BitRate::from_gbps(g);
        let budget = EqualizationBudget::host_lr();
        let thin = copper_reach(&TwinaxChannel::awg30(), rate, budget, 6.0);
        let thick = copper_reach(&TwinaxChannel::awg26(), rate, budget, 6.0);
        t.row(cells![
            format!("{g:.1}"),
            format!("{thin}"),
            format!("{thick}")
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nF3b: Mosaic reach vs per-channel rate (800G aggregate)\n");
    let mut t = Table::new(&["ch Gb/s", "channels", "reach limit"]);
    let mut reach_m = Vec::new();
    for &g in &[0.5, 1.0, 2.0, 3.0, 4.0] {
        let mut cfg = MosaicConfig::builder()
            .bit_rate(BitRate::from_gbps(800.0))
            .reach(Length::from_m(5.0))
            .build()
            .unwrap();
        cfg.channel_rate = BitRate::from_gbps(g);
        let limit = mosaic_reach(&cfg);
        reach_m.push(limit.map(|r| r.as_m()).unwrap_or(-1.0));
        let reach = limit
            .map(|r| format!("{r}"))
            .unwrap_or_else(|| "infeasible".into());
        t.row(cells![format!("{g:.1}"), cfg.active_channels(), reach]);
    }
    mosaic_sim::telemetry::record_series("f3.mosaic_reach_m", &reach_m);
    out.push_str(&t.render());
    out.push_str("\nreference: SR8 optics 50 m (OM4), DR8 optics 500 m (SMF)\n");
    out
}
