//! T3 — Total cost of ownership per link and per fleet.

use crate::cells;
use crate::table::Table;
use mosaic::compare::candidates;
use mosaic::cost::{link_tco, USD_PER_REPAIR, USD_PER_WATT_YEAR};
use mosaic_netsim::assignment::{assign, Policy};
use mosaic_netsim::topology::ClosTopology;
use mosaic_units::{BitRate, Duration};

/// Run the experiment.
pub fn run() -> String {
    let horizon = Duration::from_years(5.0);
    let cands = candidates(BitRate::from_gbps(800.0));
    let mut out = format!(
        "T3: 5-year link TCO (energy @ ${USD_PER_WATT_YEAR}/W-yr, repairs @ ${USD_PER_REPAIR}/ticket)\n"
    );
    let mut t = Table::new(&["technology", "capex $", "energy $", "repairs $", "TCO $"]);
    for c in &cands {
        let tco = link_tco(c, horizon);
        t.row(cells![
            c.name,
            format!("{:.0}", tco.capex),
            format!("{:.0}", tco.energy),
            format!("{:.0}", tco.repairs),
            format!("{:.0}", tco.total())
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nfleet TCO, 64k-server Clos, 5 years:\n");
    let topo = ClosTopology::large();
    let mut t = Table::new(&["policy", "capex $M", "energy $M", "repairs $M", "total $M"]);
    for (name, policy) in [
        ("all-optics", Policy::AllOptics),
        ("copper+optics", Policy::CopperPlusOptics),
        ("with Mosaic", Policy::WithMosaic),
    ] {
        let assigns = assign(&topo.link_classes(), &cands, policy);
        let mut capex = 0.0;
        let mut energy = 0.0;
        let mut repairs = 0.0;
        for a in &assigns {
            let tco = link_tco(&a.choice, horizon);
            let n = a.class.count as f64;
            capex += tco.capex * n;
            energy += tco.energy * n;
            repairs += tco.repairs * n;
        }
        t.row(cells![
            name,
            format!("{:.1}", capex / 1e6),
            format!("{:.1}", energy / 1e6),
            format!("{:.1}", repairs / 1e6),
            format!("{:.1}", (capex + energy + repairs) / 1e6)
        ]);
    }
    out.push_str(&t.render());
    out
}
