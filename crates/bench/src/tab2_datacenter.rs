//! T2 — Datacenter fleet study: power and repair tickets under three
//! deployment policies, for small and large Clos fabrics.

use crate::cells;
use crate::table::Table;
use mosaic::compare::candidates;
use mosaic_netsim::assignment::{assign, Policy};
use mosaic_netsim::failure_sim::simulate_fleet;
use mosaic_netsim::fleet::rollup;
use mosaic_netsim::topology::{ClosTopology, RailTopology};
use mosaic_units::{BitRate, Duration};

/// Run the experiment.
pub fn run() -> String {
    let cands = candidates(BitRate::from_gbps(800.0));
    let mut out = String::from("T2: fleet interconnect study (800G links everywhere)\n");
    let fabrics: Vec<(&str, String, Vec<mosaic_netsim::topology::LinkClass>)> = vec![
        (
            "1k-server cluster",
            format!("{} servers", ClosTopology::small().servers()),
            ClosTopology::small().link_classes(),
        ),
        (
            "64k-server cluster",
            format!("{} servers", ClosTopology::large().servers()),
            ClosTopology::large().link_classes(),
        ),
        (
            "16k-GPU rail fabric",
            format!("{} GPUs", RailTopology::gpu_16k().gpus()),
            RailTopology::gpu_16k().link_classes(),
        ),
    ];
    for (label, size, classes) in fabrics {
        let total_links: usize = classes.iter().map(|c| c.count).sum();
        out.push_str(&format!("\n{label}: {size}, {total_links} links\n"));
        let mut t = Table::new(&[
            "policy", "fleet kW", "W/link", "tickets/yr (exp)", "tickets/10yr (sim)", "availability",
        ]);
        for (name, policy) in [
            ("all-optics", Policy::AllOptics),
            ("copper+optics", Policy::CopperPlusOptics),
            ("with Mosaic", Policy::WithMosaic),
        ] {
            let a = assign(&classes, &cands, policy);
            let fleet = rollup(&a);
            let sim = simulate_fleet(&a, 10.0, Duration::from_hours(24.0), 77);
            t.row(cells![
                name,
                format!("{:.1}", fleet.total_power.as_watts() / 1000.0),
                format!("{:.2}", fleet.total_power.as_watts() / total_links as f64),
                format!("{:.1}", fleet.failures_per_year),
                sim.tickets,
                format!("{:.6}", sim.availability)
            ]);
        }
        out.push_str(&t.render());

        // Technology mix under the Mosaic policy.
        let a = assign(&classes, &cands, Policy::WithMosaic);
        let fleet = rollup(&a);
        out.push_str("  Mosaic-policy technology mix: ");
        let mix: Vec<String> = fleet
            .links_by_tech
            .iter()
            .map(|(k, v)| format!("{k}×{v}"))
            .collect();
        out.push_str(&mix.join(", "));
        out.push('\n');
    }
    out
}
