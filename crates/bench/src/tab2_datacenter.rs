//! T2 — Datacenter fleet study: power and repair tickets under three
//! deployment policies, for small and large Clos fabrics.

use crate::cells;
use crate::runcfg;
use crate::table::Table;
use mosaic::compare::candidates;
use mosaic_netsim::assignment::{assign, Policy};
use mosaic_netsim::failure_sim::simulate_fleet_ensemble;
use mosaic_netsim::fleet::rollup;
use mosaic_netsim::topology::{ClosTopology, RailTopology};
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::Stopwatch;
use mosaic_units::{BitRate, Duration};

/// Run the experiment.
pub fn run() -> String {
    let cands = candidates(BitRate::from_gbps(800.0));
    let mut out = String::from("T2: fleet interconnect study (800G links everywhere)\n");
    let fabrics: Vec<(&str, String, Vec<mosaic_netsim::topology::LinkClass>)> = vec![
        (
            "1k-server cluster",
            format!("{} servers", ClosTopology::small().servers()),
            ClosTopology::small().link_classes(),
        ),
        (
            "64k-server cluster",
            format!("{} servers", ClosTopology::large().servers()),
            ClosTopology::large().link_classes(),
        ),
        (
            "16k-GPU rail fabric",
            format!("{} GPUs", RailTopology::gpu_16k().gpus()),
            RailTopology::gpu_16k().link_classes(),
        ),
    ];
    let exec = Exec::from_env();
    let fidelity = runcfg::fidelity();
    let full_replicas = runcfg::trials(8, 3);
    // Fleet histories have no closed form and no tail regime, so the
    // adaptive tier's only lever is the replica budget: half the
    // ensemble (the replica streams are a prefix of the full set, and
    // the gate compares means within the ensembles' own spread).
    let replicas = if fidelity.is_adaptive() {
        (full_replicas / 2).max(2)
    } else {
        full_replicas
    };
    if fidelity.is_adaptive() {
        mosaic_sim::telemetry::counter_add("fidelity.tier.full_mc", 9);
        mosaic_sim::telemetry::counter_add("fidelity.trials_saved", 9 * (full_replicas - replicas));
    }
    let mut histories = 0u64;
    let mut tickets_mean = Vec::new();
    let mut tickets_lo = Vec::new();
    let mut tickets_hi = Vec::new();
    let mut avail_mean = Vec::new();
    let mut avail_lo = Vec::new();
    let mut avail_hi = Vec::new();
    let start = Stopwatch::start();
    for (label, size, classes) in fabrics {
        let total_links: usize = classes.iter().map(|c| c.count).sum();
        out.push_str(&format!("\n{label}: {size}, {total_links} links\n"));
        let mut t = Table::new(&[
            "policy",
            "fleet kW",
            "W/link",
            "tickets/yr (exp)",
            &format!("tickets/10yr (sim mean of {replicas})"),
            "availability",
        ]);
        for (name, policy) in [
            ("all-optics", Policy::AllOptics),
            ("copper+optics", Policy::CopperPlusOptics),
            ("with Mosaic", Policy::WithMosaic),
        ] {
            let a = assign(&classes, &cands, policy);
            let fleet = rollup(&a);
            // An ensemble of independent 10-year histories instead of a
            // single trajectory: parallel replicas, mean ± spread.
            let sims =
                simulate_fleet_ensemble(&exec, &a, 10.0, Duration::from_hours(24.0), 77, replicas);
            histories += replicas;
            let mean_tickets =
                sims.iter().map(|s| s.tickets as f64).sum::<f64>() / sims.len() as f64;
            let min_tickets = sims.iter().map(|s| s.tickets).min().unwrap_or(0);
            let max_tickets = sims.iter().map(|s| s.tickets).max().unwrap_or(0);
            let mean_avail = sims.iter().map(|s| s.availability).sum::<f64>() / sims.len() as f64;
            // Mean ± 1.96·(standard error of the mean) companions let the
            // fidelity gate compare the half-ensemble against the full
            // ensemble on the ensembles' own statistics.
            let se = |vals: &[f64]| {
                let n = vals.len() as f64;
                let mean = vals.iter().sum::<f64>() / n;
                let var =
                    vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0).max(1.0);
                (var / n).sqrt()
            };
            let t_vals: Vec<f64> = sims.iter().map(|s| s.tickets as f64).collect();
            let a_vals: Vec<f64> = sims.iter().map(|s| s.availability).collect();
            let (t_se, a_se) = (se(&t_vals), se(&a_vals));
            tickets_mean.push(mean_tickets);
            tickets_lo.push(mean_tickets - 1.96 * t_se);
            tickets_hi.push(mean_tickets + 1.96 * t_se);
            avail_mean.push(mean_avail);
            avail_lo.push(mean_avail - 1.96 * a_se);
            avail_hi.push(mean_avail + 1.96 * a_se);
            t.row(cells![
                name,
                format!("{:.1}", fleet.total_power.as_watts() / 1000.0),
                format!("{:.2}", fleet.total_power.as_watts() / total_links as f64),
                format!("{:.1}", fleet.failures_per_year),
                format!("{mean_tickets:.1} [{min_tickets},{max_tickets}]"),
                format!("{mean_avail:.6}")
            ]);
        }
        out.push_str(&t.render());

        // Technology mix under the Mosaic policy.
        let a = assign(&classes, &cands, Policy::WithMosaic);
        let fleet = rollup(&a);
        out.push_str("  Mosaic-policy technology mix: ");
        let mix: Vec<String> = fleet
            .links_by_tech
            .iter()
            .map(|(k, v)| format!("{k}×{v}"))
            .collect();
        out.push_str(&mix.join(", "));
        out.push('\n');
    }
    RunStats::new(histories, start.elapsed(), exec.threads()).report("T2");
    mosaic_sim::telemetry::record_series("t2.tickets_mean", &tickets_mean);
    mosaic_sim::telemetry::record_series("t2.tickets_mean_ci_lo", &tickets_lo);
    mosaic_sim::telemetry::record_series("t2.tickets_mean_ci_hi", &tickets_hi);
    mosaic_sim::telemetry::record_series("t2.avail_mean", &avail_mean);
    mosaic_sim::telemetry::record_series("t2.avail_mean_ci_lo", &avail_lo);
    mosaic_sim::telemetry::record_series("t2.avail_mean_ci_hi", &avail_hi);
    out
}
