//! F9 — The headline trade-off map: who wins at each reach (claims C1+C2).

use crate::cells;
use crate::table::Table;
use mosaic::compare::{candidates, winner_at};
use mosaic_units::{BitRate, Length};

/// Run the experiment.
pub fn run() -> String {
    let cands = candidates(BitRate::from_gbps(800.0));
    let mut out = String::from("F9: cheapest feasible 800G technology vs required reach\n");
    let mut t = Table::new(&[
        "reach m",
        "winner",
        "link power",
        "runner-up",
        "runner-up power",
    ]);
    for &m in &[
        0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 30.0, 50.0, 70.0, 100.0, 200.0, 500.0,
    ] {
        let reach = Length::from_m(m);
        let mut feasible: Vec<_> = cands.iter().filter(|c| c.serves(reach)).collect();
        feasible.sort_by(|a, b| a.link_power.as_watts().total_cmp(&b.link_power.as_watts()));
        let winner = winner_at(&cands, reach);
        match (winner, feasible.get(1)) {
            (Some(w), Some(r)) => t.row(cells![
                format!("{m:.1}"),
                w.name,
                format!("{}", w.link_power),
                r.name,
                format!("{}", r.link_power)
            ]),
            (Some(w), None) => t.row(cells![
                format!("{m:.1}"),
                w.name,
                format!("{}", w.link_power),
                "-",
                "-"
            ]),
            _ => t.row(cells![format!("{m:.1}"), "none", "-", "-", "-"]),
        }
    }
    out.push_str(&t.render());
    out.push_str("\ncrossovers: copper → Mosaic at the DAC reach wall (~2 m); Mosaic → DR optics at the dispersion/attenuation wall\n");
    out
}
