//! F8 — Scaling table (claim C5): Mosaic configurations from 200G to 1.6T
//! against the narrow-and-fast equivalents.

use crate::cells;
use crate::table::Table;
use mosaic::config::MosaicConfig;
use mosaic_optics::variants::{dr8, dr8_1600};
use mosaic_units::{BitRate, Length};

/// Run the experiment.
pub fn run() -> String {
    let mut out = String::from("F8: Mosaic scaling (10 m span, 2 Gb/s channels)\n");
    let mut t = Table::new(&[
        "aggregate",
        "channels(+spares)",
        "array radius",
        "module W",
        "link pJ/bit",
        "reach",
        "7yr survival",
    ]);
    let mut pj_per_bit = Vec::new();
    for &g in &[200.0, 400.0, 800.0, 1600.0] {
        let cfg = MosaicConfig::builder()
            .bit_rate(BitRate::from_gbps(g))
            .reach(Length::from_m(10.0))
            .build()
            .unwrap();
        let r = cfg.evaluate();
        pj_per_bit.push(r.energy_per_bit.as_pj_per_bit());
        t.row(cells![
            format!("{g:.0}G"),
            format!("{}(+{})", cfg.active_channels(), cfg.spares),
            format!("{}", r.array_radius),
            format!("{:.2}", r.module_power.total().as_watts()),
            format!("{:.2}", r.energy_per_bit.as_pj_per_bit()),
            r.reach_limit
                .map(|x| format!("{x}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.4}", r.reliability.link_survival)
        ]);
    }
    out.push_str(&t.render());
    mosaic_sim::telemetry::record_series("f8.link_pj_per_bit", &pj_per_bit);

    out.push_str("\nnarrow-and-fast reference modules:\n");
    for m in [
        dr8(BitRate::from_gbps(800.0)),
        dr8_1600(BitRate::from_gbps(1600.0)),
    ] {
        out.push_str(&format!(
            "  {:<16} {} lanes  {:.1} W/module  {:.2} pJ/bit (link)\n",
            m.name,
            m.lanes,
            m.power().as_watts(),
            (m.power() * 2.0).per_bit(m.aggregate).as_pj_per_bit()
        ));
    }
    out
}
