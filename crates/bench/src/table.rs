//! Tiny fixed-width table formatter shared by all experiments.

/// A text table builder.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Shorthand for building a row of already-formatted cells.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(cells!["short", 1]);
        t.row(cells!["a-much-longer-name", 22.5]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("short"));
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(cells!["only-one"]);
    }
}
