//! Regenerates experiment `fig5_prototype_100ch`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig5_prototype_100ch::run());
}
