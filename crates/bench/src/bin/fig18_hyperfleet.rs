//! Regenerates experiment `fig18_hyperfleet`. See EXPERIMENTS.md.
//!
//! `MOSAIC_HYPERFLEET_STOP_AFTER_BATCHES=<n>` limits each policy's
//! simulation to `n` shard batches and exits with code 3, leaving the
//! batch checkpoints on disk — rerunning without the limit resumes and
//! prints output byte-identical to an uninterrupted run (the CI
//! kill/resume drill).
fn main() {
    let stop = std::env::var("MOSAIC_HYPERFLEET_STOP_AFTER_BATCHES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    match mosaic_bench::fig18_hyperfleet::run_with_stop(stop) {
        Some(out) => print!("{out}"),
        None => {
            eprintln!("[F18] stopped early with checkpoints on disk; rerun to resume");
            std::process::exit(3);
        }
    }
}
