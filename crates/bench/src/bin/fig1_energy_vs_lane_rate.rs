//! Regenerates experiment `fig1_energy_vs_lane_rate`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig1_energy_vs_lane_rate::run());
}
