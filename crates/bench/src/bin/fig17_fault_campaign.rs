//! Regenerates experiment `fig17_fault_campaign`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig17_fault_campaign::run());
}
