//! Regenerates experiment `fig13_pam4_scaling`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig13_pam4_scaling::run());
}
