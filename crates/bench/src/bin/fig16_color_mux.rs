//! Regenerates experiment `fig16_color_mux`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig16_color_mux::run());
}
