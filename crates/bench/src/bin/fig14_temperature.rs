//! Regenerates experiment `fig14_temperature`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig14_temperature::run());
}
