//! Regenerates every figure and table into `results/` and prints a summary.
use std::fs;
use std::time::Instant;

fn main() {
    fs::create_dir_all("results").expect("create results/");
    for (id, title, runner) in mosaic_bench::all_experiments() {
        let start = Instant::now();
        let output = runner();
        let path = format!("results/{}.txt", id.to_lowercase());
        fs::write(&path, &output).expect("write result");
        println!("[{id}] {title} -> {path} ({:.1}s)", start.elapsed().as_secs_f64());
    }
    println!("\nall experiments regenerated; see EXPERIMENTS.md for the paper-vs-measured index");
}
