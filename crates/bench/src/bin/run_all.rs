//! Regenerates every figure and table into `results/` and prints a summary.
//!
//! `--quick` (or `MOSAIC_QUICK=1`) runs every Monte-Carlo-heavy experiment
//! at reduced trial counts — a smoke pass over all 19 artifacts in
//! seconds, used by CI. Thread count comes from `MOSAIC_THREADS`
//! (default: all cores); per-experiment `[stats]` lines go to stderr so
//! the result files stay byte-identical across thread counts.
use std::fs;
use std::time::Instant;

fn main() {
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => std::env::set_var(mosaic_bench::runcfg::QUICK_ENV, "1"),
            other => {
                eprintln!("unknown argument: {other} (supported: --quick)");
                std::process::exit(2);
            }
        }
    }
    let mode = if mosaic_bench::runcfg::quick() {
        "quick"
    } else {
        "full"
    };
    let threads = mosaic_sim::sweep::Exec::from_env().threads();
    eprintln!("[run_all] mode={mode} threads={threads}");
    fs::create_dir_all("results").expect("create results/");
    for (id, title, runner) in mosaic_bench::all_experiments() {
        let start = Instant::now();
        let output = runner();
        let path = format!("results/{}.txt", id.to_lowercase());
        fs::write(&path, &output).expect("write result");
        println!(
            "[{id}] {title} -> {path} ({:.1}s)",
            start.elapsed().as_secs_f64()
        );
    }
    println!("\nall experiments regenerated; see EXPERIMENTS.md for the paper-vs-measured index");
}
