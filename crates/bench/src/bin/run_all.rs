//! Regenerates every figure and table into `results/` and prints a summary.
//!
//! `--quick` (or `MOSAIC_QUICK=1`) runs every Monte-Carlo-heavy experiment
//! at reduced trial counts — a smoke pass over all 20 artifacts in
//! seconds, used by CI. Thread count comes from `MOSAIC_THREADS`
//! (default: all cores); per-experiment `[stats]` lines go to stderr so
//! the result files stay byte-identical across thread counts.
//!
//! `--fidelity adaptive` (or `MOSAIC_FIDELITY=adaptive`) routes every
//! Monte-Carlo measurement through the adaptive-fidelity controller
//! (DESIGN §12): analytic closed forms far from decision thresholds,
//! reduced-budget MC near them, importance-sampled tail estimates below
//! MC resolution. Adaptive outputs land in `results/adaptive/` (the
//! committed `results/` files stay full-fidelity ground truth) and CI
//! checks them against a full-fidelity manifest with
//! `bench-report fidelity-diff`.
//!
//! Every run also emits a machine-readable manifest (JSON, schema
//! `mosaic-run-manifest/v1`) with per-figure telemetry and timings —
//! default path `results/manifests/run_all-<mode>.json`, overridable with
//! `--manifest-out <path>`. Inspect or compare manifests with the
//! `bench-report` binary.
//!
//! **Checkpointing.** Each completed figure is checkpointed as a manifest
//! fragment (schema `mosaic-manifest-fragment/v1`) under
//! `results/manifests/fragments/`. A killed run can restart with
//! `--resume`: completed figures are loaded from their fragments instead
//! of re-running, and the final `results/` files and manifest values are
//! byte-identical to an uninterrupted run (fragments store the full
//! output text and telemetry snapshot, and all experiment outputs are
//! deterministic). Without `--resume`, stale fragments are cleared at
//! startup; on successful completion they are cleared either way.
//! `--stop-after <n>` (testing hook) exits cleanly after `n` figures to
//! simulate a mid-run kill.

use mosaic_bench::fragments;
use mosaic_bench::manifest::FigureRecord;
use mosaic_bench::manifest::RunManifest;
use mosaic_sim::fidelity::{FidelityMode, FIDELITY_ENV};
use mosaic_sim::telemetry;
use mosaic_sim::telemetry::Stopwatch;
use std::fs;
use std::path::Path;

const FRAGMENT_DIR: &str = "results/manifests/fragments";

fn main() {
    let mut manifest_out: Option<String> = None;
    let mut resume = false;
    let mut stop_after: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => std::env::set_var(mosaic_bench::runcfg::QUICK_ENV, "1"),
            "--resume" => resume = true,
            "--manifest-out" => match args.next() {
                Some(path) => manifest_out = Some(path),
                None => {
                    eprintln!("--manifest-out requires a path");
                    std::process::exit(2);
                }
            },
            "--stop-after" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => stop_after = Some(n),
                None => {
                    eprintln!("--stop-after requires a figure count");
                    std::process::exit(2);
                }
            },
            "--fidelity" => match args.next().as_deref().and_then(FidelityMode::parse) {
                Some(f) => std::env::set_var(FIDELITY_ENV, f.name()),
                None => {
                    eprintln!("--fidelity requires full|adaptive");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--fidelity=") => {
                match FidelityMode::parse(&other["--fidelity=".len()..]) {
                    Some(f) => std::env::set_var(FIDELITY_ENV, f.name()),
                    None => {
                        eprintln!("--fidelity requires full|adaptive, got {other}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown argument: {other} (supported: --quick, --resume, \
                     --fidelity full|adaptive, --manifest-out <path>, --stop-after <n>)"
                );
                std::process::exit(2);
            }
        }
    }
    let mode = if mosaic_bench::runcfg::quick() {
        "quick"
    } else {
        "full"
    };
    let fidelity = mosaic_bench::runcfg::fidelity();
    // Fragments from a different fidelity mode must never satisfy a
    // resume (the figure outputs legitimately differ), so the fragment
    // key carries the fidelity suffix when it deviates from full.
    let frag_mode = if fidelity.is_adaptive() {
        format!("{mode}-adaptive")
    } else {
        mode.to_string()
    };
    let threads = mosaic_sim::sweep::Exec::from_env().threads();
    eprintln!(
        "[run_all] mode={mode} fidelity={} threads={threads} resume={resume}",
        fidelity.name()
    );
    // Adaptive runs annotate tier decisions in the figure text, so they
    // land in results/adaptive/ — the committed results/ files are the
    // full-fidelity ground truth and only a full run may rewrite them.
    let results_dir = if fidelity.is_adaptive() {
        "results/adaptive"
    } else {
        "results"
    };
    fs::create_dir_all(results_dir).expect("create results dir");
    let fragment_dir = Path::new(FRAGMENT_DIR);
    if !resume {
        // Fresh start: stale checkpoints must not leak into this run.
        fragments::clear_fragments(fragment_dir);
    }

    let run_start = Stopwatch::start();
    let cpu_start = telemetry::process_cpu_ns();
    let mut figures: Vec<FigureRecord> = Vec::new();
    let mut resumed = 0usize;
    let mut executed = 0usize;
    for (id, title, runner) in mosaic_bench::all_experiments() {
        let record = match resume
            .then(|| fragments::load_fragment(fragment_dir, id, &frag_mode))
            .flatten()
        {
            Some(record) => {
                resumed += 1;
                println!("[{id}] {title} (resumed from fragment)");
                record
            }
            None => {
                if let Some(limit) = stop_after {
                    if executed >= limit {
                        eprintln!(
                            "[run_all] --stop-after {limit}: stopping with {} fragments on disk",
                            figures.len()
                        );
                        return;
                    }
                }
                telemetry::reset();
                let start = Stopwatch::start();
                let output = runner();
                let wall_ns = start.elapsed().as_nanos() as u64;
                let snapshot = telemetry::take();
                executed += 1;
                println!("[{id}] {title} ({:.1}s)", wall_ns as f64 / 1e9);
                let record = FigureRecord {
                    id: id.to_string(),
                    title: title.to_string(),
                    output,
                    telemetry: snapshot,
                    wall_ns,
                };
                fragments::write_fragment(fragment_dir, &record, &frag_mode)
                    .expect("write fragment");
                record
            }
        };
        let path = format!("{results_dir}/{}.txt", id.to_lowercase());
        fs::write(&path, &record.output).expect("write result");
        figures.push(record);
    }
    if resume {
        eprintln!("[run_all] resumed {resumed} figures from fragments, ran {executed}");
    }

    let manifest = RunManifest {
        mode: mode.to_string(),
        fidelity: fidelity.name().to_string(),
        threads,
        figures,
        total_wall_ns: run_start.elapsed().as_nanos() as u64,
        total_cpu_ns: telemetry::process_cpu_ns().saturating_sub(cpu_start),
        peak_rss_bytes: telemetry::peak_rss_bytes(),
    };
    let path =
        manifest_out.unwrap_or_else(|| format!("results/manifests/run_all-{frag_mode}.json"));
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir).expect("create manifest directory");
        }
    }
    fs::write(&path, manifest.to_pretty_string()).expect("write manifest");
    println!("manifest -> {path}");
    // The run completed: the checkpoints have served their purpose.
    fragments::clear_fragments(fragment_dir);
    println!("\nall experiments regenerated; see EXPERIMENTS.md for the paper-vs-measured index");
}
