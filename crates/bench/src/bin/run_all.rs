//! Regenerates every figure and table into `results/` and prints a summary.
//!
//! `--quick` (or `MOSAIC_QUICK=1`) runs every Monte-Carlo-heavy experiment
//! at reduced trial counts — a smoke pass over all 19 artifacts in
//! seconds, used by CI. Thread count comes from `MOSAIC_THREADS`
//! (default: all cores); per-experiment `[stats]` lines go to stderr so
//! the result files stay byte-identical across thread counts.
//!
//! Every run also emits a machine-readable manifest (JSON, schema
//! `mosaic-run-manifest/v1`) with per-figure telemetry and timings —
//! default path `results/manifests/run_all-<mode>.json`, overridable with
//! `--manifest-out <path>`. Inspect or compare manifests with the
//! `bench-report` binary.

use mosaic_bench::manifest::{FigureRecord, RunManifest};
use mosaic_sim::telemetry;
use mosaic_sim::telemetry::Stopwatch;
use std::fs;

fn main() {
    let mut manifest_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => std::env::set_var(mosaic_bench::runcfg::QUICK_ENV, "1"),
            "--manifest-out" => match args.next() {
                Some(path) => manifest_out = Some(path),
                None => {
                    eprintln!("--manifest-out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other} (supported: --quick, --manifest-out <path>)");
                std::process::exit(2);
            }
        }
    }
    let mode = if mosaic_bench::runcfg::quick() {
        "quick"
    } else {
        "full"
    };
    let threads = mosaic_sim::sweep::Exec::from_env().threads();
    eprintln!("[run_all] mode={mode} threads={threads}");
    fs::create_dir_all("results").expect("create results/");

    let run_start = Stopwatch::start();
    let cpu_start = telemetry::process_cpu_ns();
    let mut figures = Vec::new();
    for (id, title, runner) in mosaic_bench::all_experiments() {
        telemetry::reset();
        let start = Stopwatch::start();
        let output = runner();
        let wall_ns = start.elapsed().as_nanos() as u64;
        let snapshot = telemetry::take();
        let path = format!("results/{}.txt", id.to_lowercase());
        fs::write(&path, &output).expect("write result");
        println!("[{id}] {title} -> {path} ({:.1}s)", wall_ns as f64 / 1e9);
        figures.push(FigureRecord {
            id: id.to_string(),
            title: title.to_string(),
            output,
            telemetry: snapshot,
            wall_ns,
        });
    }

    let manifest = RunManifest {
        mode: mode.to_string(),
        threads,
        figures,
        total_wall_ns: run_start.elapsed().as_nanos() as u64,
        total_cpu_ns: telemetry::process_cpu_ns().saturating_sub(cpu_start),
    };
    let path = manifest_out.unwrap_or_else(|| format!("results/manifests/run_all-{mode}.json"));
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir).expect("create manifest directory");
        }
    }
    fs::write(&path, manifest.to_pretty_string()).expect("write manifest");
    println!("manifest -> {path}");
    println!("\nall experiments regenerated; see EXPERIMENTS.md for the paper-vs-measured index");
}
