//! Regenerates experiment `fig6_reliability`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig6_reliability::run());
}
