//! Regenerates experiment `fig9_tradeoff_map`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig9_tradeoff_map::run());
}
