//! Regenerates experiment `fig11_gearbox_resilience`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig11_gearbox_resilience::run());
}
