//! Regenerates experiment `fig10_fec_study`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig10_fec_study::run());
}
