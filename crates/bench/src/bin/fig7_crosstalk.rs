//! Regenerates experiment `fig7_crosstalk`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig7_crosstalk::run());
}
