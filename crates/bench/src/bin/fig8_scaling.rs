//! Regenerates experiment `fig8_scaling`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig8_scaling::run());
}
