//! Regenerates experiment `tab3_cost`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::tab3_cost::run());
}
