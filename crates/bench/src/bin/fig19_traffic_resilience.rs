//! Regenerates experiment `fig19_traffic_resilience`. See EXPERIMENTS.md.
//!
//! `MOSAIC_TRAFFIC_STOP_AFTER_BATCHES=<n>` limits each sweep point to
//! `n` run batches and exits with code 3, leaving the batch checkpoints
//! on disk — rerunning without the limit resumes and prints output
//! byte-identical to an uninterrupted run (the CI kill/resume drill).
fn main() {
    let stop = std::env::var("MOSAIC_TRAFFIC_STOP_AFTER_BATCHES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    match mosaic_bench::fig19_traffic_resilience::run_with_stop(stop) {
        Some(out) => print!("{out}"),
        None => {
            eprintln!("[F19] stopped early with checkpoints on disk; rerun to resume");
            std::process::exit(3);
        }
    }
}
