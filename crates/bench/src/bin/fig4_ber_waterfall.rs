//! Regenerates experiment `fig4_ber_waterfall`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig4_ber_waterfall::run());
}
