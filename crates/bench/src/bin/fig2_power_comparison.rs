//! Regenerates experiment `fig2_power_comparison`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig2_power_comparison::run());
}
