//! Inspect and compare `run_all` manifests.
//!
//! ```sh
//! bench-report check   <manifest.json>                 # schema validation
//! bench-report summary <manifest.json>                 # per-figure table
//! bench-report diff    <old.json> <new.json> [flags]   # regression report
//! bench-report trend   <manifest.json>...              # wall-time history
//! bench-report fidelity-diff <full.json> <adaptive.json> [--ci-widening K]
//! ```
//!
//! `diff` always compares the thread-count-invariant *values* (counters,
//! histograms, series, output digests); any difference is a determinism or
//! result regression and fails the command. Unless `--values-only` is
//! given, it also compares per-figure wall times and flags figures slower
//! than `--max-slowdown` (default 1.5×); figures whose new wall time is
//! under `--min-wall-ms` (default 100) are treated as jitter and never
//! flagged.
//!
//! `fidelity-diff` is the fidelity-equivalence gate (DESIGN §12): it
//! compares a full-fidelity manifest against an adaptive-fidelity one of
//! the same configuration, requiring budget-independent metrics to match
//! exactly and each shared numeric series to agree within
//! `K × (h_full + h_adaptive)` of its recorded 95 % CI half-widths
//! (`--ci-widening K`, default 2). Adaptive-only `tail` series are
//! allowed; any other shape difference fails.
//!
//! `trend` renders a per-figure wall-time history across manifests given
//! oldest-first (e.g. the previous CI run's artifact followed by the
//! current run) as a GitHub-flavored markdown table, ready to append to
//! `$GITHUB_STEP_SUMMARY`, with a final peak-RSS row (from
//! `run.timings.peak_rss_bytes`). It never fails on timing — it is a
//! report, not a gate.
//!
//! Exit codes: 0 = clean, 1 = regression found, 2 = usage/parse error.

use mosaic_bench::manifest;
use mosaic_sim::json::Json;

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });
    let errs = manifest::schema_check(&doc);
    if !errs.is_empty() {
        eprintln!("{path} is not a valid {}:", manifest::SCHEMA);
        for e in &errs {
            eprintln!("  {e}");
        }
        std::process::exit(2);
    }
    doc
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-report check <manifest.json>\n       \
         bench-report summary <manifest.json>\n       \
         bench-report diff <old.json> <new.json> \
         [--values-only] [--max-slowdown X] [--min-wall-ms MS]\n       \
         bench-report trend <manifest.json>... (oldest first)\n       \
         bench-report fidelity-diff <full.json> <adaptive.json> [--ci-widening K]\n\
         \n\
         diff flags:\n  \
         --values-only      compare only deterministic values, skip timings\n  \
         --max-slowdown X   flag figures slower than X times the old wall time\n                     \
         (default 1.5)\n  \
         --min-wall-ms MS   ignore figures whose new wall time is below MS\n                     \
         milliseconds — sub-threshold figures are jitter (default 100)\n\
         \n\
         exit codes:\n  \
         0  clean: schema valid, values identical, no timing regression\n  \
         1  regression: value drift or a figure beyond --max-slowdown\n  \
         2  usage error, unreadable file, or schema violation"
    );
    std::process::exit(2);
}

fn figure_wall_ns(fig: &Json) -> Option<(String, u64)> {
    let id = fig.get("id")?.as_str()?.to_string();
    let wall = fig.get("timings")?.get("wall_ns")?.as_u64()?;
    Some((id, wall))
}

fn cmd_check(path: &str) {
    load(path); // exits on any violation
    println!("{path}: valid {}", manifest::SCHEMA);
}

fn cmd_summary(path: &str) {
    let doc = load(path);
    let run = doc.get("run").expect("schema-checked");
    println!(
        "{path}: mode={} threads={} config_hash={}",
        run.get("mode").and_then(|v| v.as_str()).unwrap_or("?"),
        run.get("threads").and_then(|v| v.as_u64()).unwrap_or(0),
        run.get("config_hash")
            .and_then(|v| v.as_str())
            .unwrap_or("?"),
    );
    println!(
        "{:>5} {:>10} {:>10} {:>9} {:>7}",
        "id", "wall ms", "trials", "counters", "series"
    );
    for fig in doc.get("figures").and_then(|f| f.as_arr()).unwrap_or(&[]) {
        let id = fig.get("id").and_then(|v| v.as_str()).unwrap_or("?");
        let wall_ms = fig
            .get("timings")
            .and_then(|t| t.get("wall_ns"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0) as f64
            / 1e6;
        let values = fig.get("values");
        let counters = values
            .and_then(|v| v.get("counters"))
            .and_then(|c| c.as_obj())
            .map(|o| o.len())
            .unwrap_or(0);
        let series = values
            .and_then(|v| v.get("series"))
            .and_then(|c| c.as_obj())
            .map(|o| o.len())
            .unwrap_or(0);
        let trials: u64 = values
            .and_then(|v| v.get("counters"))
            .and_then(|c| c.as_obj())
            .map(|o| {
                o.iter()
                    .filter(|(k, _)| k.starts_with("trials."))
                    .filter_map(|(_, v)| v.as_u64())
                    .sum()
            })
            .unwrap_or(0);
        println!("{id:>5} {wall_ms:>10.1} {trials:>10} {counters:>9} {series:>7}");
    }
}

fn cmd_diff(
    old_path: &str,
    new_path: &str,
    values_only: bool,
    max_slowdown: f64,
    min_wall_ms: f64,
) {
    let old = load(old_path);
    let new = load(new_path);
    let mut failed = false;

    let value_diffs = manifest::diff(&old, &new, true);
    if value_diffs.is_empty() {
        println!("values: identical ({old_path} vs {new_path})");
    } else {
        failed = true;
        println!("values: {} difference(s)", value_diffs.len());
        for d in &value_diffs {
            println!("  {}: {} -> {}", d.path, d.left, d.right);
        }
    }

    // Figures beyond --max-slowdown, as (id, ratio, old_ns, new_ns).
    let mut offenders: Vec<(String, f64, u64, u64)> = Vec::new();
    if !values_only {
        let olds: Vec<_> = old
            .get("figures")
            .and_then(|f| f.as_arr())
            .unwrap_or(&[])
            .iter()
            .filter_map(figure_wall_ns)
            .collect();
        let news: Vec<_> = new
            .get("figures")
            .and_then(|f| f.as_arr())
            .unwrap_or(&[])
            .iter()
            .filter_map(figure_wall_ns)
            .collect();
        for (id, old_ns) in &olds {
            let Some((_, new_ns)) = news.iter().find(|(nid, _)| nid == id) else {
                continue;
            };
            let ratio = if *old_ns == 0 {
                1.0
            } else {
                *new_ns as f64 / *old_ns as f64
            };
            // Sub-threshold figures are all jitter; don't flag them.
            if ratio > max_slowdown && *new_ns as f64 > min_wall_ms * 1e6 {
                failed = true;
                offenders.push((id.clone(), ratio, *old_ns, *new_ns));
                println!(
                    "timing: {id} regressed {ratio:.2}x ({:.1} ms -> {:.1} ms)",
                    *old_ns as f64 / 1e6,
                    *new_ns as f64 / 1e6
                );
            }
        }
    }

    if failed {
        // The failure message names every offending figure and its ratio,
        // so a CI log tail (or a human skimming stderr) sees the culprit
        // without scrolling back through the per-figure report.
        if !offenders.is_empty() {
            offenders.sort_by(|a, b| b.1.total_cmp(&a.1));
            let list: Vec<String> = offenders
                .iter()
                .map(|(id, ratio, old_ns, new_ns)| {
                    format!(
                        "{id} {ratio:.2}x ({:.1} ms -> {:.1} ms)",
                        *old_ns as f64 / 1e6,
                        *new_ns as f64 / 1e6
                    )
                })
                .collect();
            eprintln!(
                "FAIL: {} figure(s) beyond --max-slowdown {max_slowdown}: {}",
                offenders.len(),
                list.join(", ")
            );
        } else {
            eprintln!("FAIL: value drift between {old_path} and {new_path}");
        }
        std::process::exit(1);
    }
    println!("no regressions");
}

fn cmd_fidelity_diff(full_path: &str, adaptive_path: &str, ci_widening: f64) {
    let full = load(full_path);
    let adaptive = load(adaptive_path);
    let errs = manifest::fidelity_check(&full, &adaptive, ci_widening);
    if errs.is_empty() {
        println!(
            "fidelity: adaptive run statistically equivalent to full \
             (K={ci_widening}, {full_path} vs {adaptive_path})"
        );
        return;
    }
    println!("fidelity: {} violation(s)", errs.len());
    for e in &errs {
        println!("  {e}");
    }
    eprintln!(
        "FAIL: adaptive manifest {adaptive_path} deviates from full manifest \
         {full_path} beyond K={ci_widening} CI widening"
    );
    std::process::exit(1);
}

/// Render a per-figure wall-time history across manifests (oldest first)
/// as a markdown table: one row per figure plus a total row, one column
/// per manifest, and a final column with the last-vs-previous ratio.
fn cmd_trend(paths: &[String]) {
    let docs: Vec<Json> = paths.iter().map(|p| load(p)).collect();

    // Column labels: file stem, de-duplicated by position if needed.
    let labels: Vec<String> = paths
        .iter()
        .map(|p| {
            std::path::Path::new(p)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or(p)
                .to_string()
        })
        .collect();

    // Figure order comes from the newest manifest; figures absent from an
    // older run render as `-`.
    let newest = docs.last().expect("at least one manifest");
    let ids: Vec<String> = newest
        .get("figures")
        .and_then(|f| f.as_arr())
        .unwrap_or(&[])
        .iter()
        .filter_map(|fig| Some(figure_wall_ns(fig)?.0))
        .collect();

    let wall_of = |doc: &Json, id: &str| -> Option<u64> {
        doc.get("figures")?
            .as_arr()?
            .iter()
            .filter_map(figure_wall_ns)
            .find(|(fid, _)| fid == id)
            .map(|(_, ns)| ns)
    };
    let total_of = |doc: &Json| -> Option<u64> {
        doc.get("run")?
            .get("timings")?
            .get("total_wall_ns")?
            .as_u64()
    };
    let cell = |ns: Option<u64>| match ns {
        Some(ns) => format!("{:.1}", ns as f64 / 1e6),
        None => "-".to_string(),
    };
    let ratio_cell = |prev: Option<u64>, last: Option<u64>| match (prev, last) {
        (Some(p), Some(l)) if p > 0 => format!("{:.2}x", l as f64 / p as f64),
        _ => "-".to_string(),
    };

    println!("### Bench wall-time trend (ms)");
    println!();
    println!("| figure | {} | Δ last |", labels.join(" | "));
    println!("|---|{}---|", "---:|".repeat(labels.len()));
    for id in &ids {
        let walls: Vec<Option<u64>> = docs.iter().map(|d| wall_of(d, id)).collect();
        let cells: Vec<String> = walls.iter().map(|&w| cell(w)).collect();
        let n = walls.len();
        let prev = if n >= 2 { walls[n - 2] } else { None };
        println!(
            "| {id} | {} | {} |",
            cells.join(" | "),
            ratio_cell(prev, walls[n - 1])
        );
    }
    let totals: Vec<Option<u64>> = docs.iter().map(total_of).collect();
    let cells: Vec<String> = totals.iter().map(|&t| cell(t)).collect();
    let n = totals.len();
    let prev = if n >= 2 { totals[n - 2] } else { None };
    println!(
        "| **total** | {} | {} |",
        cells.join(" | "),
        ratio_cell(prev, totals[n - 1])
    );
    // Peak RSS (MB): a resource row, not a timing row — it is how CI sees
    // that the hyperfleet figure stays memory-bounded as the fleet grows.
    // Manifests predating the field (or non-Linux runs reporting 0)
    // render as `-`.
    let rss_of = |doc: &Json| -> Option<u64> {
        doc.get("run")?
            .get("timings")?
            .get("peak_rss_bytes")?
            .as_u64()
            .filter(|&b| b > 0)
    };
    let rss: Vec<Option<u64>> = docs.iter().map(rss_of).collect();
    let cells: Vec<String> = rss
        .iter()
        .map(|&b| match b {
            Some(b) => format!("{:.1}", b as f64 / (1024.0 * 1024.0)),
            None => "-".to_string(),
        })
        .collect();
    let prev = if n >= 2 { rss[n - 2] } else { None };
    println!(
        "| **peak RSS (MB)** | {} | {} |",
        cells.join(" | "),
        ratio_cell(prev, rss[n - 1])
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") if args.len() == 2 => cmd_check(&args[1]),
        Some("summary") if args.len() == 2 => cmd_summary(&args[1]),
        Some("diff") if args.len() >= 3 => {
            let mut values_only = false;
            let mut max_slowdown = 1.5f64;
            let mut min_wall_ms = 100.0f64;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--values-only" => values_only = true,
                    "--max-slowdown" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(x) => max_slowdown = x,
                        None => usage(),
                    },
                    "--min-wall-ms" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(x) => min_wall_ms = x,
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            cmd_diff(&args[1], &args[2], values_only, max_slowdown, min_wall_ms);
        }
        Some("trend") if args.len() >= 2 => cmd_trend(&args[1..]),
        Some("fidelity-diff") if args.len() >= 3 => {
            let mut ci_widening = 2.0f64;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--ci-widening" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(x) => ci_widening = x,
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            cmd_fidelity_diff(&args[1], &args[2], ci_widening);
        }
        _ => usage(),
    }
}
