//! Regenerates experiment `fig15_wearout`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig15_wearout::run());
}
