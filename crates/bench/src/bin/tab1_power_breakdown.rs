//! Regenerates experiment `tab1_power_breakdown`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::tab1_power_breakdown::run());
}
