//! Regenerates experiment `fig12_sparing_ablation`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig12_sparing_ablation::run());
}
