//! Regenerates experiment `fig3_reach_vs_rate`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::fig3_reach_vs_rate::run());
}
