//! Regenerates experiment `tab2_datacenter`. See EXPERIMENTS.md.
fn main() {
    print!("{}", mosaic_bench::tab2_datacenter::run());
}
