//! F18 — Hyperscale fleet at 10⁶+ links (claims C3/C6 at scale): fleet
//! availability, repair-ticket rate and spare-pool exhaustion for a
//! 1.28 M-link region, all-optics versus the Mosaic deployment policy,
//! through the sharded event-sourced `netsim::hyperfleet` engine.
//!
//! T2 extrapolates the fleet argument from class-level Poisson rollups;
//! F18 runs the per-channel machinery — fault campaigns feeding degrade
//! controllers on every spared link — at full fleet scale, with memory
//! bounded by the shard size and per-batch checkpoints that make the
//! run kill/resume-safe (`MOSAIC_HYPERFLEET_STOP_AFTER_BATCHES` in the
//! standalone binary is the drill hook). Shard merges are exact-integer
//! folds, so the table is bit-identical at any thread count and across
//! any kill/resume schedule.
//!
//! Quick mode simulates the 64k-server fabric over 2 years; full mode
//! simulates the hyperscale region (1,277,952 links) over 3 years.

use crate::cells;
use crate::fragments::FragmentRollupStore;
use crate::runcfg;
use crate::table::Table;
use mosaic::compare::candidates;
use mosaic_netsim::assignment::{assign, Policy};
use mosaic_netsim::hyperfleet::{self, HyperFleetConfig, SPARE_BUCKETS};
use mosaic_netsim::topology::ClosTopology;
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::{self, Stopwatch};
use mosaic_units::{BitRate, Duration};

const SEED: u64 = 505;

/// Checkpoints live next to the run_all manifest fragments, under the
/// same clear-on-fresh-start / clear-on-completion discipline.
const CHECKPOINT_DIR: &str = "results/manifests/fragments";

fn config(policy: Policy) -> (HyperFleetConfig, usize) {
    let topo = if runcfg::quick() {
        ClosTopology::large()
    } else {
        ClosTopology::hyperscale()
    };
    let years = if runcfg::quick() { 2.0 } else { 3.0 };
    let classes = topo.link_classes();
    let cands = candidates(BitRate::from_gbps(800.0));
    let assignments = assign(&classes, &cands, policy);
    let mut cfg = HyperFleetConfig::from_assignments(
        &assignments,
        years,
        Duration::from_hours(8.0),
        runcfg::fidelity(),
    );
    // Several batches even in quick mode (26 shards), so the kill/resume
    // drill always has a mid-run boundary to stop at. Batch size shifts
    // checkpoint cadence only — rollups merge commutatively, so the
    // results are identical for any batching.
    cfg.shards_per_batch = 8;
    (cfg, topo.servers())
}

/// Run the experiment, executing at most `stop_after_batches` shard
/// batches per policy this invocation. `None` output means the run
/// stopped early with its checkpoints on disk — rerunning (same mode,
/// same config) resumes and completes byte-identically.
pub fn run_with_stop(stop_after_batches: Option<u64>) -> Option<String> {
    let exec = Exec::from_env();
    let fidelity = runcfg::fidelity();
    let start = Stopwatch::start();
    let mut out = String::new();
    let mut t = Table::new(&[
        "policy",
        "links",
        "event-sourced",
        "tickets/1k-link-yr",
        "availability",
        "delivered cap",
        "spares used",
        "exhausted frac",
    ]);
    let mut tier_notes = String::new();
    let mut occupancy_line = String::new();
    let mut links_total = 0u64;
    let mut avail = Vec::new();
    let mut tickets = Vec::new();
    let mut delivered = Vec::new();
    let mut exhausted = Vec::new();
    for (name, tag, policy) in [
        ("all-optics", "optics", Policy::AllOptics),
        ("with Mosaic", "mosaic", Policy::WithMosaic),
    ] {
        let (cfg, servers) = config(policy);
        if out.is_empty() {
            out = format!(
                "F18: hyperscale fleet — {servers} servers, {} links, {:.1}-year horizon, \
                 shard {} links\n",
                cfg.total_links(),
                cfg.years,
                cfg.shard_links
            );
        }
        let mut store = FragmentRollupStore::new(CHECKPOINT_DIR, tag);
        let report =
            match hyperfleet::simulate_with(&cfg, SEED, &exec, &mut store, stop_after_batches) {
                Ok(Some(report)) => report,
                Ok(None) => return None, // stopped early; checkpoints remain
                Err(e) => {
                    // Configs built from assignments always validate; keep the
                    // figure total-failure-proof regardless.
                    eprintln!("[F18] hyperfleet simulation failed: {e}");
                    continue;
                }
            };
        store.clear();
        links_total += report.links;
        let r = &report.rollup;
        t.row(cells![
            name,
            report.links,
            r.event_sourced_links,
            format!("{:.3}", report.tickets_per_1k_link_years),
            format!("{:.6}", report.availability),
            format!("{:.6}", report.delivered_capacity_fraction),
            r.spares_activated,
            format!("{:.2e}", report.spare_exhausted_fraction)
        ]);
        for (class, tier) in cfg.classes.iter().zip(hyperfleet::class_tiers(&cfg)) {
            tier_notes.push_str(&format!(
                "  [{name}] {}: {} ({} links)\n",
                class.name,
                tier.name(),
                class.links
            ));
        }
        avail.push(report.availability);
        tickets.push(report.tickets_per_1k_link_years);
        delivered.push(report.delivered_capacity_fraction);
        exhausted.push(report.spare_exhausted_fraction);
        let occupancy: Vec<f64> = r.spare_occupancy.iter().map(|&c| c as f64).collect();
        telemetry::record_series(&format!("f18.spare_occupancy.{tag}"), &occupancy);
        if r.event_sourced_links > 0 {
            let buckets: Vec<String> = (0..SPARE_BUCKETS)
                .map(|i| format!("{}:{}", i, r.spare_occupancy[i]))
                .collect();
            occupancy_line = format!(
                "spare-pool occupancy under \"{name}\" (spares used × links): {}\n",
                buckets.join(" ")
            );
        }
    }
    out.push_str(&t.render());
    out.push_str(&occupancy_line);
    out.push_str("per-class simulation tiers:\n");
    out.push_str(&tier_notes);
    out.push_str(
        "event-sourced per-channel histories on every spared link; exact-integer shard\n\
         rollups make the table identical at any thread count and kill/resume schedule\n",
    );
    if fidelity.is_adaptive() {
        out.push_str("fidelity: adaptive (quiet spared classes demote to the Poisson tier)\n");
    }
    telemetry::record_series("f18.availability", &avail);
    telemetry::record_series("f18.tickets_per_1k_link_years", &tickets);
    telemetry::record_series("f18.delivered_capacity_fraction", &delivered);
    telemetry::record_series("f18.spare_exhausted_fraction", &exhausted);
    RunStats::new(links_total, start.elapsed(), exec.threads()).report("F18");
    Some(out)
}

/// Run the experiment to completion.
pub fn run() -> String {
    match run_with_stop(None) {
        Some(out) => out,
        // Unreachable: no stop limit was set.
        None => String::from("F18: stopped early without a stop limit\n"),
    }
}
