//! F4 — BER waterfall of a single microLED channel: analytic Gaussian
//! model overlaid with Monte-Carlo measurements (claim C4's substrate).

use crate::cells;
use crate::runcfg;
use crate::table::Table;
use mosaic_fec::KP4_BER_THRESHOLD;
use mosaic_phy::ber::OokReceiver;
use mosaic_phy::noise::NoiseBudget;
use mosaic_phy::photodiode::Photodiode;
use mosaic_phy::tia::Tia;
use mosaic_sim::fidelity::{ook_ber_with_fidelity, FidelityController};
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::Stopwatch;
use mosaic_units::Power;

fn receiver(rate_gbps: f64) -> OokReceiver {
    let tia = Tia::low_speed(rate_gbps);
    OokReceiver {
        pd: Photodiode::silicon_blue(),
        noise: NoiseBudget {
            thermal_a: tia.rms_noise_current(),
            bandwidth: tia.bandwidth,
            rin_db_per_hz: None,
        },
        extinction_ratio: 6.0,
    }
}

/// Run the experiment.
pub fn run() -> String {
    let mut out = String::from(
        "F4: BER vs received optical power, microLED OOK channel (KP4 threshold 2.4e-4)\n",
    );
    let mut t = Table::new(&[
        "Prx dBm",
        "1G analytic",
        "2G analytic",
        "4G analytic",
        "2G Monte-Carlo (95% CI)",
    ]);
    let rx1 = receiver(1.0);
    let rx2 = receiver(2.0);
    let rx4 = receiver(4.0);
    let exec = Exec::from_env();
    let fidelity = runcfg::fidelity();
    let ctrl = FidelityController::new(fidelity);
    let bits = runcfg::trials(4_000_000, 250_000);
    let mut mc_bits = 0u64;
    let mut analytic_2g = Vec::new();
    let mut mc_2g = Vec::new();
    let mut mc_2g_lo = Vec::new();
    let mut mc_2g_hi = Vec::new();
    let mut tail_2g = Vec::new();
    let mut tail_2g_lo = Vec::new();
    let mut tail_2g_hi = Vec::new();
    let start = Stopwatch::start();
    for (idx, dbm_tenths) in (-300..=-210).step_by(10).enumerate() {
        let dbm = dbm_tenths as f64 / 10.0;
        let p = Power::from_dbm(dbm);
        analytic_2g.push(rx2.ber_at(p));
        // One independent root seed per sweep point; within a point, the
        // trials fan out over fixed chunks (thread-count invariant).
        let seed = 404_000 + idx as u64;
        // The `> 5e-7` predicate decides *membership in the measured
        // series* in both fidelity modes (so the fidelity gate compares
        // equal-length series); the controller only decides how each
        // member is measured.
        let mc = if rx2.ber_at(p) > 5e-7 {
            let o = ook_ber_with_fidelity(&ctrl, &exec, &rx2, p, KP4_BER_THRESHOLD, bits, seed);
            mc_bits += o.trials;
            mc_2g.push(o.ber);
            mc_2g_lo.push(o.ci95.0);
            mc_2g_hi.push(o.ci95.1);
            if fidelity.is_adaptive() {
                format!(
                    "{:.2e} [{:.1e},{:.1e}] <{}>",
                    o.ber,
                    o.ci95.0,
                    o.ci95.1,
                    o.tier.name()
                )
            } else {
                format!("{:.2e} [{:.1e},{:.1e}]", o.ber, o.ci95.0, o.ci95.1)
            }
        } else if fidelity.is_adaptive() {
            // Below ordinary MC resolution — exactly where the tail
            // importance sampler earns its keep.
            let o = ook_ber_with_fidelity(&ctrl, &exec, &rx2, p, KP4_BER_THRESHOLD, bits, seed);
            mc_bits += o.trials;
            tail_2g.push(o.ber);
            tail_2g_lo.push(o.ci95.0);
            tail_2g_hi.push(o.ci95.1);
            format!(
                "{:.2e} [{:.1e},{:.1e}] <{}>",
                o.ber,
                o.ci95.0,
                o.ci95.1,
                o.tier.name()
            )
        } else {
            "below MC resolution".into()
        };
        t.row(cells![
            format!("{dbm:.1}"),
            format!("{:.2e}", rx1.ber_at(p)),
            format!("{:.2e}", rx2.ber_at(p)),
            format!("{:.2e}", rx4.ber_at(p)),
            mc
        ]);
    }
    RunStats::new(mc_bits, start.elapsed(), exec.threads()).report("F4");
    mosaic_sim::telemetry::record_series("f4.analytic_2g_ber", &analytic_2g);
    mosaic_sim::telemetry::record_series("f4.mc_2g_ber", &mc_2g);
    mosaic_sim::telemetry::record_series("f4.mc_2g_ber_ci_lo", &mc_2g_lo);
    mosaic_sim::telemetry::record_series("f4.mc_2g_ber_ci_hi", &mc_2g_hi);
    if fidelity.is_adaptive() {
        mosaic_sim::telemetry::record_series("f4.tail_2g_ber", &tail_2g);
        mosaic_sim::telemetry::record_series("f4.tail_2g_ber_ci_lo", &tail_2g_lo);
        mosaic_sim::telemetry::record_series("f4.tail_2g_ber_ci_hi", &tail_2g_hi);
    }
    out.push_str(&t.render());
    for (g, rx) in [(1.0, &rx1), (2.0, &rx2), (4.0, &rx4)] {
        if let Some(s) = rx.sensitivity(KP4_BER_THRESHOLD) {
            out.push_str(&format!(
                "sensitivity @KP4, {g} Gb/s: {:.1} dBm\n",
                s.as_dbm()
            ));
        }
    }
    out
}
