//! F4 — BER waterfall of a single microLED channel: analytic Gaussian
//! model overlaid with Monte-Carlo measurements (claim C4's substrate).

use crate::cells;
use crate::runcfg;
use crate::table::Table;
use mosaic_fec::KP4_BER_THRESHOLD;
use mosaic_phy::ber::OokReceiver;
use mosaic_phy::noise::NoiseBudget;
use mosaic_phy::photodiode::Photodiode;
use mosaic_phy::tia::Tia;
use mosaic_sim::montecarlo::simulate_ook_ber_par;
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::Stopwatch;
use mosaic_units::Power;

fn receiver(rate_gbps: f64) -> OokReceiver {
    let tia = Tia::low_speed(rate_gbps);
    OokReceiver {
        pd: Photodiode::silicon_blue(),
        noise: NoiseBudget {
            thermal_a: tia.rms_noise_current(),
            bandwidth: tia.bandwidth,
            rin_db_per_hz: None,
        },
        extinction_ratio: 6.0,
    }
}

/// Run the experiment.
pub fn run() -> String {
    let mut out = String::from(
        "F4: BER vs received optical power, microLED OOK channel (KP4 threshold 2.4e-4)\n",
    );
    let mut t = Table::new(&[
        "Prx dBm",
        "1G analytic",
        "2G analytic",
        "4G analytic",
        "2G Monte-Carlo (95% CI)",
    ]);
    let rx1 = receiver(1.0);
    let rx2 = receiver(2.0);
    let rx4 = receiver(4.0);
    let exec = Exec::from_env();
    let bits = runcfg::trials(4_000_000, 250_000);
    let mut mc_bits = 0u64;
    let mut analytic_2g = Vec::new();
    let mut mc_2g = Vec::new();
    let start = Stopwatch::start();
    for (idx, dbm_tenths) in (-300..=-210).step_by(10).enumerate() {
        let dbm = dbm_tenths as f64 / 10.0;
        let p = Power::from_dbm(dbm);
        analytic_2g.push(rx2.ber_at(p));
        let mc = if rx2.ber_at(p) > 5e-7 {
            // One independent root seed per sweep point; within a point,
            // the bits fan out over fixed chunks (thread-count invariant).
            let m = simulate_ook_ber_par(&exec, &rx2, p, bits, 404_000 + idx as u64);
            mc_bits += bits;
            mc_2g.push(m.ber);
            format!("{:.2e} [{:.1e},{:.1e}]", m.ber, m.ci95.0, m.ci95.1)
        } else {
            "below MC resolution".into()
        };
        t.row(cells![
            format!("{dbm:.1}"),
            format!("{:.2e}", rx1.ber_at(p)),
            format!("{:.2e}", rx2.ber_at(p)),
            format!("{:.2e}", rx4.ber_at(p)),
            mc
        ]);
    }
    RunStats::new(mc_bits, start.elapsed(), exec.threads()).report("F4");
    mosaic_sim::telemetry::record_series("f4.analytic_2g_ber", &analytic_2g);
    mosaic_sim::telemetry::record_series("f4.mc_2g_ber", &mc_2g);
    out.push_str(&t.render());
    for (g, rx) in [(1.0, &rx1), (2.0, &rx2), (4.0, &rx4)] {
        if let Some(s) = rx.sensitivity(KP4_BER_THRESHOLD) {
            out.push_str(&format!(
                "sensitivity @KP4, {g} Gb/s: {:.1} dBm\n",
                s.as_dbm()
            ));
        }
    }
    out
}
