//! T1 — Per-component module power breakdowns (where the watts live).

use mosaic::config::MosaicConfig;
use mosaic::power_model;
use mosaic_optics::variants::{dr8, lpo_dr8, sr8};
use mosaic_units::{BitRate, Length};

/// Run the experiment.
pub fn run() -> String {
    let rate = BitRate::from_gbps(800.0);
    let mut out = String::from("T1: module power breakdowns at 800G (one end)\n\n");

    for m in [sr8(rate), dr8(rate), lpo_dr8(rate)] {
        let b = m.power_breakdown();
        out.push_str(&format!("{} ({} lanes):\n", m.name, m.lanes));
        out.push_str(&format!(
            "  laser  {:>9}   driver {:>9}   tia {:>9}   dsp {:>9}   misc {:>9}   TOTAL {}\n\n",
            format!("{}", b.laser),
            format!("{}", b.driver),
            format!("{}", b.tia),
            format!("{}", b.dsp),
            format!("{}", b.overhead),
            b.total()
        ));
    }

    let cfg = MosaicConfig::builder()
        .bit_rate(rate)
        .reach(Length::from_m(10.0))
        .build()
        .unwrap();
    let b = power_model::module_breakdown(&cfg);
    out.push_str(&format!(
        "800G-Mosaic ({} ch × {} + {} spares):\n{}",
        cfg.active_channels(),
        cfg.channel_rate,
        cfg.spares,
        b
    ));
    out.push_str("\nkey shape: DSP ≈ half of a laser module; Mosaic has no DSP-class line item\n");
    out
}
