//! F6 — Reliability (claim C3): link FIT/AFR by technology, survival over
//! the service life versus spare count, and a Markov vs Monte-Carlo
//! cross-check.

use crate::cells;
use crate::runcfg;
use crate::table::Table;
use mosaic::compare::candidates;
use mosaic::reliability_model::channel_fit;
use mosaic_reliability::markov::SparedPool;
use mosaic_reliability::montecarlo::simulate_pool_no_repair_with;
use mosaic_reliability::system::KofN;
use mosaic_sim::fidelity::{Assessment, Exactness, FidelityController, Tier};
use mosaic_sim::montecarlo::wilson_ci;
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::Stopwatch;
use mosaic_units::{BitRate, Duration};

/// Run the experiment.
pub fn run() -> String {
    let mut out = String::from("F6a: link failure rates by technology (800G)\n");
    let mut t = Table::new(&["technology", "link FIT", "AFR %/yr", "7-yr survival"]);
    for c in candidates(BitRate::from_gbps(800.0)) {
        let seven = Duration::from_years(7.0);
        t.row(cells![
            c.name,
            format!("{:.0}", c.link_fit.as_fit()),
            format!("{:.3}", c.link_fit.afr() * 100.0),
            format!("{:.5}", c.link_fit.survival_prob(seven))
        ]);
    }
    out.push_str(&t.render());

    out.push_str(
        "\nF6b: Mosaic channel-pool survival over 7 years vs spares (428 active channels)\n",
    );
    let horizon = Duration::from_years(7.0);
    let exec = Exec::from_env();
    let ctrl = FidelityController::new(runcfg::fidelity());
    let trials = runcfg::trials(100_000, 10_000);
    let start = Stopwatch::start();
    let mut t = Table::new(&[
        "spares",
        "closed form",
        "Markov",
        "Monte-Carlo (100k)",
        "effective FIT",
    ]);
    let mut mc_survival = Vec::new();
    let mut mc_lo = Vec::new();
    let mut mc_hi = Vec::new();
    let mut mc_trials = 0u64;
    for spares in [0usize, 2, 4, 8, 16] {
        let pool = KofN::new(428, 428 + spares, channel_fit());
        let closed = pool.survival(horizon);
        let markov = SparedPool::new(428, 428 + spares, channel_fit(), 0.0).survival(horizon);
        // The binomial closed form *is* the exact mean of the pool
        // sampler (Exactness::Exact, DESIGN §12): adaptive fidelity
        // reports it directly instead of re-estimating it by simulation.
        let assessment = Assessment {
            analytic_p: 1.0 - closed,
            threshold: 1.0 - closed,
            full_trials: trials,
            exactness: Exactness::Exact,
            tail_available: false,
        };
        let decision = ctrl.classify(&assessment);
        ctrl.note_decision(trials, &decision);
        let (mc_cell, value, ci) = if decision.tier == Tier::Analytic {
            (format!("{closed:.6} <analytic>"), closed, (closed, closed))
        } else {
            let mc = simulate_pool_no_repair_with(
                &exec,
                428,
                428 + spares,
                channel_fit(),
                horizon,
                decision.trials,
                6,
            );
            mc_trials += decision.trials;
            let died = mc.trials - mc.survived;
            let (flo, fhi) = wilson_ci(died, mc.trials);
            (
                format!("{:.6}", mc.survival()),
                mc.survival(),
                (1.0 - fhi, 1.0 - flo),
            )
        };
        mc_survival.push(value);
        mc_lo.push(ci.0);
        mc_hi.push(ci.1);
        t.row(cells![
            spares,
            format!("{closed:.6}"),
            format!("{markov:.6}"),
            mc_cell,
            format!("{:.2}", pool.effective_fit(horizon).as_fit())
        ]);
    }
    RunStats::new(mc_trials, start.elapsed(), exec.threads()).report("F6");
    mosaic_sim::telemetry::record_series("f6.pool_mc_survival", &mc_survival);
    mosaic_sim::telemetry::record_series("f6.pool_mc_survival_ci_lo", &mc_lo);
    mosaic_sim::telemetry::record_series("f6.pool_mc_survival_ci_hi", &mc_hi);
    out.push_str(&t.render());
    out.push_str("\nF6c: with monthly repair (µ = 1/720 h)\n");
    let mut t = Table::new(&["spares", "7-yr survival", "steady-state availability"]);
    for spares in [2usize, 4, 8] {
        let pool = SparedPool::new(428, 428 + spares, channel_fit(), 1.0 / 720.0);
        t.row(cells![
            spares,
            format!("{:.9}", pool.survival(horizon)),
            format!("{:.12}", pool.availability())
        ]);
    }
    out.push_str(&t.render());
    out
}
