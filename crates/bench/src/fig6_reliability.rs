//! F6 — Reliability (claim C3): link FIT/AFR by technology, survival over
//! the service life versus spare count, and a Markov vs Monte-Carlo
//! cross-check.

use crate::cells;
use crate::runcfg;
use crate::table::Table;
use mosaic::compare::candidates;
use mosaic::reliability_model::channel_fit;
use mosaic_reliability::markov::SparedPool;
use mosaic_reliability::montecarlo::simulate_pool_no_repair_with;
use mosaic_reliability::system::KofN;
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::Stopwatch;
use mosaic_units::{BitRate, Duration};

/// Run the experiment.
pub fn run() -> String {
    let mut out = String::from("F6a: link failure rates by technology (800G)\n");
    let mut t = Table::new(&["technology", "link FIT", "AFR %/yr", "7-yr survival"]);
    for c in candidates(BitRate::from_gbps(800.0)) {
        let seven = Duration::from_years(7.0);
        t.row(cells![
            c.name,
            format!("{:.0}", c.link_fit.as_fit()),
            format!("{:.3}", c.link_fit.afr() * 100.0),
            format!("{:.5}", c.link_fit.survival_prob(seven))
        ]);
    }
    out.push_str(&t.render());

    out.push_str(
        "\nF6b: Mosaic channel-pool survival over 7 years vs spares (428 active channels)\n",
    );
    let horizon = Duration::from_years(7.0);
    let exec = Exec::from_env();
    let trials = runcfg::trials(100_000, 10_000);
    let start = Stopwatch::start();
    let mut t = Table::new(&[
        "spares",
        "closed form",
        "Markov",
        "Monte-Carlo (100k)",
        "effective FIT",
    ]);
    for spares in [0usize, 2, 4, 8, 16] {
        let pool = KofN::new(428, 428 + spares, channel_fit());
        let closed = pool.survival(horizon);
        let markov = SparedPool::new(428, 428 + spares, channel_fit(), 0.0).survival(horizon);
        let mc = simulate_pool_no_repair_with(
            &exec,
            428,
            428 + spares,
            channel_fit(),
            horizon,
            trials,
            6,
        );
        t.row(cells![
            spares,
            format!("{closed:.6}"),
            format!("{markov:.6}"),
            format!("{:.6}", mc.survival()),
            format!("{:.2}", pool.effective_fit(horizon).as_fit())
        ]);
    }
    RunStats::new(5 * trials, start.elapsed(), exec.threads()).report("F6");
    out.push_str(&t.render());
    out.push_str("\nF6c: with monthly repair (µ = 1/720 h)\n");
    let mut t = Table::new(&["spares", "7-yr survival", "steady-state availability"]);
    for spares in [2usize, 4, 8] {
        let pool = SparedPool::new(428, 428 + spares, channel_fit(), 1.0 / 720.0);
        t.row(cells![
            spares,
            format!("{:.9}", pool.survival(horizon)),
            format!("{:.12}", pool.availability())
        ]);
    }
    out.push_str(&t.render());
    out
}
