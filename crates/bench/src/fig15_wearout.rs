//! F15 — Wear-out ablation: does the exponential-lifetime assumption bias
//! the reliability comparison?
//!
//! Lasers age (facet degradation → Weibull shape k ≈ 2–3); LEDs barely do
//! (k ≈ 1). A datasheet FIT calibrated over the design life therefore
//! *understates* laser failures late in life and overstates them early.
//! This experiment re-evaluates F6 under wear-out lifetimes.

use crate::cells;
use crate::runcfg;
use crate::table::Table;
use mosaic::reliability_model::channel_fit;
use mosaic_reliability::fitdb;
use mosaic_reliability::weibull::{
    pool_survival_weibull_analytic, pool_survival_weibull_with, Weibull,
};
use mosaic_sim::fidelity::{Assessment, Exactness, FidelityController, Tier};
use mosaic_sim::montecarlo::wilson_ci;
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::Stopwatch;
use mosaic_units::Duration;

/// Run the experiment.
pub fn run() -> String {
    let design_life = Duration::from_years(7.0);
    let mut out = String::from(
        "F15a: laser-bank survival, exponential vs wear-out (8 lasers, FIT calibrated at 7 yr)\n",
    );
    let mut t = Table::new(&[
        "years",
        "exponential",
        "wear-out k=2.5",
        "ratio of failure probs",
    ]);
    let fit = fitdb::DFB_LASER * 8.0; // the DR8 laser bank as one series block
    let expo = Weibull::matching_fit_at(fit, 1.0, design_life);
    let wear = Weibull::matching_fit_at(fit, 2.5, design_life);
    for years in [1.0, 3.0, 5.0, 7.0, 10.0, 12.0] {
        let t_at = Duration::from_years(years);
        let se = expo.survival(t_at);
        let sw = wear.survival(t_at);
        let ratio = (1.0 - sw) / (1.0 - se).max(1e-12);
        t.row(cells![
            format!("{years:.0}"),
            format!("{se:.5}"),
            format!("{sw:.5}"),
            format!("{ratio:.2}")
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nF15b: Mosaic channel pool (428+4) with wear-out channels, Monte-Carlo 100k\n");
    let mut t = Table::new(&["shape k", "7-yr pool survival", "12-yr pool survival"]);
    let exec = Exec::from_env();
    let ctrl = FidelityController::new(runcfg::fidelity());
    let trials = runcfg::trials(100_000, 10_000);
    let start = Stopwatch::start();
    let mut survival = Vec::new();
    let mut survival_lo = Vec::new();
    let mut survival_hi = Vec::new();
    let mut mc_trials = 0u64;
    // The Weibull pool has an exact binomial closed form (the sampler's
    // mean — DESIGN §12), so the adaptive tier skips the simulation.
    let mut measure = |lt: Weibull, horizon: Duration, seed: u64| {
        let closed = pool_survival_weibull_analytic(428, 432, lt, horizon);
        let assessment = Assessment {
            analytic_p: 1.0 - closed,
            threshold: 1.0 - closed,
            full_trials: trials,
            exactness: Exactness::Exact,
            tail_available: false,
        };
        let decision = ctrl.classify(&assessment);
        ctrl.note_decision(trials, &decision);
        let (value, ci, annotated) = if decision.tier == Tier::Analytic {
            (closed, (closed, closed), true)
        } else {
            let s = pool_survival_weibull_with(&exec, 428, 432, lt, horizon, decision.trials, seed);
            mc_trials += decision.trials;
            let died = decision.trials - (s * decision.trials as f64).round() as u64;
            let (flo, fhi) = wilson_ci(died, decision.trials);
            (s, (1.0 - fhi, 1.0 - flo), false)
        };
        survival.push(value);
        survival_lo.push(ci.0);
        survival_hi.push(ci.1);
        if annotated {
            format!("{value:.5} <analytic>")
        } else {
            format!("{value:.5}")
        }
    };
    for shape in [1.0, 1.5, 2.5] {
        let lt = Weibull::matching_fit_at(channel_fit(), shape, design_life);
        let s7 = measure(lt, Duration::from_years(7.0), 15);
        let s12 = measure(lt, Duration::from_years(12.0), 16);
        t.row(cells![format!("{shape:.1}"), s7, s12]);
    }
    RunStats::new(mc_trials, start.elapsed(), exec.threads()).report("F15");
    mosaic_sim::telemetry::record_series("f15.pool_weibull_survival", &survival);
    mosaic_sim::telemetry::record_series("f15.pool_weibull_survival_ci_lo", &survival_lo);
    mosaic_sim::telemetry::record_series("f15.pool_weibull_survival_ci_hi", &survival_hi);
    out.push_str(&t.render());
    out.push_str(
        "\nshape: within the calibrated design life, wear-out parts fail *less*\n\
         early (the exponential sparing plan is conservative); past it, laser\n\
         banks fall off a cliff the exponential model hides — strengthening the\n\
         reliability case for LEDs, which stay near k = 1.\n",
    );
    out
}
