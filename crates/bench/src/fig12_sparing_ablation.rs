//! F12 — Sparing-policy ablation: how many spares, and hot sparing versus
//! none versus FEC overprovisioning.

use crate::cells;
use crate::runcfg;
use crate::table::Table;
use mosaic::reliability_model::channel_fit;
use mosaic_reliability::sparing::{spares_for_target, sparing_table};
use mosaic_sim::faults::{Fault, FaultSchedule};
use mosaic_sim::fidelity::FidelityController;
use mosaic_sim::link_sim::{simulate_link_at_fidelity, LinkSimConfig};
use mosaic_sim::sweep::{Exec, RunStats};
use mosaic_sim::telemetry::Stopwatch;
use mosaic_units::Duration;

/// Run the experiment.
pub fn run() -> String {
    let horizon = Duration::from_years(7.0);
    let mut out = String::from("F12a: survival vs spare count (428 active channels, 7 years)\n");
    let mut t = Table::new(&["spares", "survival", "effective FIT", "overhead %"]);
    for row in sparing_table(428, channel_fit(), horizon, 12) {
        t.row(cells![
            row.spares,
            format!("{:.6}", row.survival),
            format!("{:.2}", row.effective_fit.as_fit()),
            format!("{:.1}", row.overhead * 100.0)
        ]);
    }
    out.push_str(&t.render());

    for target in [0.999, 0.9999, 0.99999] {
        let s = spares_for_target(428, channel_fit(), horizon, target, 64);
        out.push_str(&format!(
            "spares for {target} survival: {}\n",
            s.map(|v| v.to_string()).unwrap_or_else(|| ">64".into())
        ));
    }

    out.push_str(
        "\nF12b: functional ablation under 2 kills (epochs 4 and 8; 32-lane link, 12 epochs)\n",
    );
    let mut t = Table::new(&["policy", "delivery ratio", "down epochs"]);
    let policies = [
        ("no spares", 0usize, None),
        ("cold spares (no monitor)", 4, None),
        ("hot spares + monitor", 4, Some(1e-5)),
    ];
    let cfgs: Vec<LinkSimConfig> = policies
        .iter()
        .map(|&(_, spares, monitor)| LinkSimConfig {
            logical_lanes: 32,
            physical_channels: 32 + spares,
            am_period: 16,
            per_channel_ber: vec![1e-9; 32 + spares],
            epochs: 12,
            frames_per_epoch: 16,
            frame_size: 256,
            seed: 23,
            faults: FaultSchedule::new()
                .at(4, Fault::Kill { channel: 3 })
                .at(8, Fault::Kill { channel: 17 }),
            degrade_threshold: monitor,
            monitor_window_bits: 10_000,
        })
        .collect();
    // The three policy runs are independent: sweep them in parallel, each
    // run sequential inside (no nested fan-out). Results come back in
    // policy order, so the table is thread-count invariant.
    let exec = Exec::from_env();
    let ctrl = FidelityController::new(runcfg::fidelity());
    let start = Stopwatch::start();
    let runs = exec.par_sweep(&cfgs, |cfg| {
        simulate_link_at_fidelity(&ctrl, &Exec::with_threads(1), cfg)
    });
    let frames: u64 = runs.iter().map(|r| r.frames_sent).sum();
    RunStats::new(frames, start.elapsed(), exec.threads()).report("F12");
    for ((name, _, _), r) in policies.iter().zip(&runs) {
        t.row(cells![
            name,
            format!("{:.3}", r.delivery_ratio()),
            r.deskew_failed_epochs
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(kill faults remap on detection even without a BER monitor; the monitor additionally retires *degraded* channels)\n");
    out
}
