//! Machine-readable run manifests.
//!
//! Every `run_all` invocation emits one JSON manifest describing the run:
//! mode, thread count, a configuration hash, and — per figure — the output
//! digest, the telemetry value snapshot (counters, histograms, numeric
//! series) and the stage timings. The *value* portion is thread-count
//! invariant by construction (counters are commutative adds, series are
//! recorded post-reassembly), so CI diffs two manifests' values to extend
//! the determinism gate to telemetry; the *timing* portion feeds the
//! `BENCH_run_all.json` baseline and regression reports.
//!
//! Schema `mosaic-run-manifest/v1` (hashes are 16-digit lowercase hex
//! strings — the JSON layer stores numbers as `f64`, which cannot carry a
//! full 64-bit digest):
//!
//! ```json
//! {
//!   "schema": "mosaic-run-manifest/v1",
//!   "run": {
//!     "mode": "quick" | "full",
//!     "fidelity": "full" | "adaptive",
//!     "threads": 8,
//!     "config_hash": "14653c41b5a3b103",
//!     "timings": { "total_wall_ns": 0, "total_cpu_ns": 0 }
//!   },
//!   "figures": [
//!     {
//!       "id": "F1",
//!       "title": "...",
//!       "output": { "bytes": 0, "fnv1a": "cbf29ce484222325" },
//!       "values": { "counters": {}, "histograms": {}, "series": {} },
//!       "timings": { "wall_ns": 0, "stages": [ ... ] }
//!     }
//!   ]
//! }
//! ```
//!
//! `values_view` strips every timing-class field, leaving exactly the
//! parts that must be byte-identical across `MOSAIC_THREADS` settings.

use mosaic_sim::json::Json;
use mosaic_sim::telemetry::Snapshot;

/// The manifest schema identifier.
pub const SCHEMA: &str = "mosaic-run-manifest/v1";

/// FNV-1a 64-bit hash; stable, dependency-free digest for outputs and
/// configuration strings.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A digest's manifest form: 16 lowercase hex digits.
pub fn hex(h: u64) -> String {
    format!("{h:016x}")
}

/// One figure's record in the manifest.
#[derive(Debug, Clone)]
pub struct FigureRecord {
    /// Experiment id ("F1" … "T3").
    pub id: String,
    /// Experiment title.
    pub title: String,
    /// The figure's rendered text output (hashed into the manifest, not
    /// embedded).
    pub output: String,
    /// Telemetry gathered while the figure ran.
    pub telemetry: Snapshot,
    /// Wall time of the whole figure runner, nanoseconds.
    pub wall_ns: u64,
}

impl FigureRecord {
    fn to_json(&self) -> Json {
        let timings = Json::object()
            .with("wall_ns", self.wall_ns)
            .with("stages", self.telemetry.timings_json());
        Json::object()
            .with("id", self.id.as_str())
            .with("title", self.title.as_str())
            .with(
                "output",
                Json::object()
                    .with("bytes", self.output.len())
                    .with("fnv1a", hex(fnv1a(self.output.as_bytes())).as_str()),
            )
            .with("values", self.telemetry.values_json())
            .with("timings", timings)
    }
}

/// A whole `run_all` invocation.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// "quick" or "full".
    pub mode: String,
    /// Fidelity mode the run used: "full" or "adaptive" (DESIGN §12).
    pub fidelity: String,
    /// Worker threads the sweep engine used.
    pub threads: usize,
    /// Figure records in run order.
    pub figures: Vec<FigureRecord>,
    /// Total wall time, nanoseconds.
    pub total_wall_ns: u64,
    /// Total process CPU time, nanoseconds.
    pub total_cpu_ns: u64,
    /// Peak resident-set size of the run, bytes (0 = unknown). Lives in
    /// the timings block: a resource metric, never a value, so it is
    /// excluded from `values_view` and the determinism gates.
    pub peak_rss_bytes: u64,
}

impl RunManifest {
    /// Hash of everything that *configures* the run (not how fast or how
    /// parallel it ran): mode + the experiment id list, plus the
    /// fidelity mode when it deviates from full (so historic full-mode
    /// hashes stay stable).
    pub fn config_hash(&self) -> u64 {
        let mut desc = self.mode.clone();
        for f in &self.figures {
            desc.push(';');
            desc.push_str(&f.id);
        }
        if self.fidelity != "full" {
            desc.push_str(";fidelity=");
            desc.push_str(&self.fidelity);
        }
        fnv1a(desc.as_bytes())
    }

    /// Render the manifest as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("schema", SCHEMA)
            .with(
                "run",
                Json::object()
                    .with("mode", self.mode.as_str())
                    .with("fidelity", self.fidelity.as_str())
                    .with("threads", self.threads)
                    .with("config_hash", hex(self.config_hash()).as_str())
                    .with(
                        "timings",
                        Json::object()
                            .with("total_wall_ns", self.total_wall_ns)
                            .with("total_cpu_ns", self.total_cpu_ns)
                            .with("peak_rss_bytes", self.peak_rss_bytes),
                    ),
            )
            .with(
                "figures",
                Json::Arr(self.figures.iter().map(|f| f.to_json()).collect()),
            )
    }

    /// Pretty-printed JSON text of the manifest.
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

/// Structural schema check on a parsed manifest. Returns every violation
/// found (empty = valid).
pub fn schema_check(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == SCHEMA => {}
        Some(s) => errs.push(format!("schema: expected {SCHEMA:?}, got {s:?}")),
        None => errs.push("schema: missing or not a string".into()),
    }
    match doc.get("run") {
        Some(run) => {
            match run.get("mode").and_then(|m| m.as_str()) {
                Some("quick") | Some("full") => {}
                other => errs.push(format!("run.mode: expected quick|full, got {other:?}")),
            }
            // Older manifests predate the field; validate only if present.
            if let Some(f) = run.get("fidelity") {
                match f.as_str() {
                    Some("full") | Some("adaptive") => {}
                    other => errs.push(format!(
                        "run.fidelity: expected full|adaptive, got {other:?}"
                    )),
                }
            }
            if run.get("threads").and_then(|t| t.as_u64()).is_none() {
                errs.push("run.threads: missing or not an integer".into());
            }
            match run.get("config_hash").and_then(|h| h.as_str()) {
                Some(h) if h.len() == 16 && h.bytes().all(|b| b.is_ascii_hexdigit()) => {}
                _ => errs.push("run.config_hash: missing or not a 16-digit hex string".into()),
            }
            if run.get("timings").and_then(|t| t.as_obj()).is_none() {
                errs.push("run.timings: missing or not an object".into());
            }
        }
        None => errs.push("run: missing".into()),
    }
    match doc.get("figures").and_then(|f| f.as_arr()) {
        Some(figs) => {
            for (i, fig) in figs.iter().enumerate() {
                if fig.get("id").and_then(|v| v.as_str()).is_none() {
                    errs.push(format!("figures[{i}].id: missing or not a string"));
                }
                let out = fig.get("output");
                if out
                    .and_then(|o| o.get("fnv1a"))
                    .and_then(|h| h.as_str())
                    .is_none()
                {
                    errs.push(format!(
                        "figures[{i}].output.fnv1a: missing or not a string"
                    ));
                }
                for key in ["values", "timings"] {
                    if fig.get(key).and_then(|v| v.as_obj()).is_none() {
                        errs.push(format!("figures[{i}].{key}: missing or not an object"));
                    }
                }
            }
        }
        None => errs.push("figures: missing or not an array".into()),
    }
    errs
}

/// Project a parsed manifest down to its thread-count-invariant parts:
/// run mode + config hash, and per figure the id, output digest and
/// telemetry values. Everything timing-class (thread count, wall/CPU
/// times, stage records) is dropped.
pub fn values_view(doc: &Json) -> Json {
    let run = Json::object()
        .with(
            "mode",
            doc.get("run")
                .and_then(|r| r.get("mode"))
                .cloned()
                .unwrap_or(Json::Null),
        )
        .with(
            "config_hash",
            doc.get("run")
                .and_then(|r| r.get("config_hash"))
                .cloned()
                .unwrap_or(Json::Null),
        );
    let figures = doc
        .get("figures")
        .and_then(|f| f.as_arr())
        .map(|figs| {
            figs.iter()
                .map(|fig| {
                    Json::object()
                        .with("id", fig.get("id").cloned().unwrap_or(Json::Null))
                        .with("output", fig.get("output").cloned().unwrap_or(Json::Null))
                        .with("values", fig.get("values").cloned().unwrap_or(Json::Null))
                })
                .collect::<Vec<_>>()
        })
        .unwrap_or_default();
    Json::object()
        .with("run", run)
        .with("figures", Json::Arr(figures))
}

/// One difference between two manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// JSON-pointer-ish path of the differing field.
    pub path: String,
    /// Rendering of the left value (`"<absent>"` when missing).
    pub left: String,
    /// Rendering of the right value.
    pub right: String,
}

fn render(v: Option<&Json>) -> String {
    v.map(|j| j.to_string_compact())
        .unwrap_or_else(|| "<absent>".into())
}

fn diff_into(path: &str, a: &Json, b: &Json, out: &mut Vec<DiffEntry>) {
    match (a, b) {
        (Json::Obj(ea), Json::Obj(eb)) => {
            for (k, va) in ea {
                match eb.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => diff_into(&format!("{path}/{k}"), va, vb, out),
                    None => out.push(DiffEntry {
                        path: format!("{path}/{k}"),
                        left: render(Some(va)),
                        right: render(None),
                    }),
                }
            }
            for (k, vb) in eb {
                if !ea.iter().any(|(ka, _)| ka == k) {
                    out.push(DiffEntry {
                        path: format!("{path}/{k}"),
                        left: render(None),
                        right: render(Some(vb)),
                    });
                }
            }
        }
        (Json::Arr(aa), Json::Arr(ab)) => {
            if aa.len() != ab.len() {
                out.push(DiffEntry {
                    path: format!("{path}/#len"),
                    left: aa.len().to_string(),
                    right: ab.len().to_string(),
                });
            }
            for (i, (va, vb)) in aa.iter().zip(ab).enumerate() {
                diff_into(&format!("{path}/{i}"), va, vb, out);
            }
        }
        _ if a == b => {}
        _ => out.push(DiffEntry {
            path: path.to_string(),
            left: render(Some(a)),
            right: render(Some(b)),
        }),
    }
}

/// Structural diff of two manifest documents. With `values_only`, both
/// sides are first projected through [`values_view`], so timing noise
/// (and the thread count itself) cannot produce differences.
pub fn diff(a: &Json, b: &Json, values_only: bool) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    if values_only {
        diff_into("", &values_view(a), &values_view(b), &mut out);
    } else {
        diff_into("", a, b, &mut out);
    }
    out
}

/// Counter/histogram name prefixes that legitimately depend on the trial
/// budget (and hence on the fidelity mode): raw trial counts, fault-path
/// tallies, the fidelity controller's own bookkeeping, and the link
/// simulator's traffic-volume tallies (which scale with its adaptive
/// epoch budget — its *structural* counters, `link_sim.runs` and
/// `link_sim.remaps`, are still compared exactly). These are excluded
/// from the fidelity-equivalence gate.
const BUDGET_METRIC_PREFIXES: &[&str] = &[
    "trials.",
    "trial_",
    "fidelity.",
    "link_sim.frames_",
    "link_sim.deskew_",
    "link_sim.bit_errors_",
    // Hyperfleet aggregates scale with which classes run event-sourced,
    // which is exactly what adaptive fidelity decides per class.
    "hyperfleet.",
];

fn budget_dependent(name: &str) -> bool {
    BUDGET_METRIC_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Series the adaptive mode is allowed to add on top of the full-mode
/// set: rare-event tail estimates that full mode cannot resolve at all.
fn adaptive_only_series(name: &str) -> bool {
    name.contains("tail")
}

fn ci_companion(name: &str) -> bool {
    name.ends_with("_ci_lo") || name.ends_with("_ci_hi")
}

fn series_map(fig: &Json) -> Vec<(String, Vec<f64>)> {
    fig.get("values")
        .and_then(|v| v.get("series"))
        .and_then(|s| s.as_obj())
        .map(|entries| {
            entries
                .iter()
                .filter_map(|(k, v)| {
                    v.as_arr().map(|arr| {
                        (
                            k.clone(),
                            arr.iter().filter_map(|x| x.as_f64()).collect::<Vec<_>>(),
                        )
                    })
                })
                .collect()
        })
        .unwrap_or_default()
}

fn metric_map(fig: &Json, kind: &str) -> Vec<(String, Json)> {
    fig.get("values")
        .and_then(|v| v.get(kind))
        .and_then(|s| s.as_obj())
        .map(|s| s.to_vec())
        .unwrap_or_default()
}

/// Half-width per index of a series' 95 % confidence interval, read from
/// its `<name>_ci_lo` / `<name>_ci_hi` companion series. Missing
/// companions mean a zero half-width (the value is exact).
fn half_widths(series: &[(String, Vec<f64>)], name: &str, len: usize) -> Vec<f64> {
    let find = |suffix: &str| {
        series
            .iter()
            .find(|(k, _)| *k == format!("{name}{suffix}"))
            .map(|(_, v)| v.clone())
    };
    match (find("_ci_lo"), find("_ci_hi")) {
        (Some(lo), Some(hi)) if lo.len() == len && hi.len() == len => {
            (0..len).map(|i| ((hi[i] - lo[i]) / 2.0).abs()).collect()
        }
        _ => vec![0.0; len],
    }
}

/// The fidelity-equivalence gate: compare a full-fidelity manifest
/// against an adaptive-fidelity manifest of the same configuration and
/// return every violation (empty = the adaptive run is statistically
/// equivalent).
///
/// Rules (DESIGN §12):
/// * `run.mode` must match; `run.fidelity` must be `full` vs `adaptive`.
/// * Figure ids must match pairwise in order.
/// * Counters and histograms must be identical, except names under the
///   budget-dependent prefixes (`trials.`, `trial_`, `fidelity.`), which
///   are expected to differ.
/// * Each shared numeric series must have equal length, and each entry
///   must satisfy `|full − adaptive| ≤ K·(h_full + h_adaptive)` where the
///   `h` are the 95 % CI half-widths from the `_ci_lo`/`_ci_hi` companion
///   series (0 when absent — i.e. exact match required) and `K` is
///   `ci_widening`.
/// * The adaptive side may add series whose name contains `tail`
///   (rare-event estimates full mode cannot produce); any other extra or
///   missing series is a violation.
/// * Output digests are ignored (adaptive output annotates tiers).
pub fn fidelity_check(full: &Json, adaptive: &Json, ci_widening: f64) -> Vec<String> {
    let mut errs = Vec::new();
    let run_str = |doc: &Json, key: &str| {
        doc.get("run")
            .and_then(|r| r.get(key))
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string()
    };
    let (ma, mb) = (run_str(full, "mode"), run_str(adaptive, "mode"));
    if ma != mb {
        errs.push(format!(
            "run.mode: full manifest {ma:?} vs adaptive manifest {mb:?}"
        ));
    }
    let fa = run_str(full, "fidelity");
    if fa != "full" {
        errs.push(format!(
            "run.fidelity: left manifest must be \"full\", got {fa:?}"
        ));
    }
    let fb = run_str(adaptive, "fidelity");
    if fb != "adaptive" {
        errs.push(format!(
            "run.fidelity: right manifest must be \"adaptive\", got {fb:?}"
        ));
    }
    let figs = |doc: &Json| {
        doc.get("figures")
            .and_then(|f| f.as_arr())
            .map(|f| f.to_vec())
            .unwrap_or_default()
    };
    let (figs_full, figs_adapt) = (figs(full), figs(adaptive));
    if figs_full.len() != figs_adapt.len() {
        errs.push(format!(
            "figures/#len: {} vs {}",
            figs_full.len(),
            figs_adapt.len()
        ));
    }
    for (ff, fa) in figs_full.iter().zip(&figs_adapt) {
        let id = ff
            .get("id")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        let id_a = fa.get("id").and_then(|v| v.as_str()).unwrap_or("?");
        if id != id_a {
            errs.push(format!("figure id mismatch: {id:?} vs {id_a:?}"));
            continue;
        }
        // Exact-match metrics, modulo the budget-dependent names.
        for kind in ["counters", "histograms"] {
            let left = metric_map(ff, kind);
            let right = metric_map(fa, kind);
            for (k, v) in &left {
                if budget_dependent(k) {
                    continue;
                }
                match right.iter().find(|(rk, _)| rk == k) {
                    Some((_, rv)) if rv == v => {}
                    Some((_, rv)) => errs.push(format!(
                        "{id}: {kind}.{k}: {} vs {}",
                        v.to_string_compact(),
                        rv.to_string_compact()
                    )),
                    None => errs.push(format!("{id}: {kind}.{k}: missing in adaptive run")),
                }
            }
            for (k, _) in &right {
                if !budget_dependent(k) && !left.iter().any(|(lk, _)| lk == k) {
                    errs.push(format!("{id}: {kind}.{k}: only present in adaptive run"));
                }
            }
        }
        // Series: CI-aware tolerance.
        let left = series_map(ff);
        let right = series_map(fa);
        for (name, xs) in &left {
            if ci_companion(name) {
                continue; // folded into the parent series' tolerance
            }
            let Some((_, ys)) = right.iter().find(|(k, _)| k == name) else {
                errs.push(format!("{id}: series.{name}: missing in adaptive run"));
                continue;
            };
            if xs.len() != ys.len() {
                errs.push(format!(
                    "{id}: series.{name}/#len: {} vs {}",
                    xs.len(),
                    ys.len()
                ));
                continue;
            }
            let hf = half_widths(&left, name, xs.len());
            let ha = half_widths(&right, name, ys.len());
            for i in 0..xs.len() {
                let tol = ci_widening * (hf[i] + ha[i]);
                let diff = (xs[i] - ys[i]).abs();
                let ok = if tol > 0.0 {
                    diff <= tol
                } else {
                    xs[i].to_bits() == ys[i].to_bits()
                };
                if !ok {
                    errs.push(format!(
                        "{id}: series.{name}[{i}]: {} vs {} (|Δ| = {diff:.3e} > tol {tol:.3e})",
                        xs[i], ys[i]
                    ));
                }
            }
        }
        for (name, _) in &right {
            let extra = !left.iter().any(|(k, _)| k == name);
            if extra && !adaptive_only_series(name) {
                errs.push(format!(
                    "{id}: series.{name}: only present in adaptive run (not a tail series)"
                ));
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sim::telemetry;

    // The telemetry collector is process-global; serialize the tests that
    // reset it so the harness's parallelism cannot interleave them.
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        match GUARD.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    fn sample(threads: usize, wall: u64) -> RunManifest {
        telemetry::reset();
        telemetry::counter_add("trials.demo", 100);
        telemetry::record_series("demo.curve", &[1.0, 2.5, -3.0]);
        let snap = telemetry::take();
        RunManifest {
            mode: "quick".into(),
            fidelity: "full".into(),
            threads,
            figures: vec![FigureRecord {
                id: "F1".into(),
                title: "demo".into(),
                output: "col1 col2\n1 2\n".into(),
                telemetry: snap,
                wall_ns: wall,
            }],
            total_wall_ns: wall,
            total_cpu_ns: wall * 2,
            peak_rss_bytes: 64 * 1024 * 1024,
        }
    }

    /// A manifest document whose one figure carries the given series map
    /// (name → values), for fidelity-gate tests.
    fn doc_with_series(fidelity: &str, series: &[(&str, &[f64])]) -> Json {
        let _ = &GUARD; // series built without touching the global collector
        let mut sobj = Json::object();
        for (name, vals) in series {
            sobj = sobj.with(
                name,
                Json::Arr(vals.iter().map(|&v| Json::Num(v)).collect()),
            );
        }
        Json::object()
            .with("schema", SCHEMA)
            .with(
                "run",
                Json::object()
                    .with("mode", "quick")
                    .with("fidelity", fidelity),
            )
            .with(
                "figures",
                Json::Arr(vec![Json::object().with("id", "F1").with(
                    "values",
                    Json::object()
                        .with("counters", Json::object())
                        .with("histograms", Json::object())
                        .with("series", sobj),
                )]),
            )
    }

    #[test]
    fn manifest_round_trips_and_passes_schema() {
        let _g = locked();
        let m = sample(8, 12345);
        let text = m.to_pretty_string();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(schema_check(&doc), Vec::<String>::new());
    }

    #[test]
    fn schema_check_flags_corruption() {
        let _g = locked();
        let m = sample(8, 12345);
        let mut doc = Json::parse(&m.to_pretty_string()).unwrap();
        doc.set("schema", "bogus/v9");
        assert!(!schema_check(&doc).is_empty());
        assert!(!schema_check(&Json::object()).is_empty());
    }

    #[test]
    fn values_diff_ignores_threads_and_timings() {
        let _g = locked();
        let a = Json::parse(&sample(1, 999).to_pretty_string()).unwrap();
        let b = Json::parse(&sample(8, 123_456_789).to_pretty_string()).unwrap();
        assert!(!diff(&a, &b, false).is_empty(), "timings must differ");
        assert_eq!(diff(&a, &b, true), Vec::new());
    }

    #[test]
    fn values_diff_catches_metric_changes() {
        let _g = locked();
        let a = Json::parse(&sample(1, 1).to_pretty_string()).unwrap();
        let mut m = sample(1, 1);
        m.figures[0].output.push('x');
        let b = Json::parse(&m.to_pretty_string()).unwrap();
        let d = diff(&a, &b, true);
        assert!(
            d.iter().any(|e| e.path.contains("output")),
            "expected an output diff, got {d:?}"
        );
    }

    #[test]
    fn fnv1a_is_the_reference_function() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hex(fnv1a(b"")), "cbf29ce484222325");
    }

    #[test]
    fn adaptive_fidelity_changes_the_config_hash_full_does_not() {
        let _g = locked();
        let full = sample(1, 1);
        let mut adaptive = sample(1, 1);
        adaptive.fidelity = "adaptive".into();
        // Full-fidelity hashes are byte-for-byte the pre-fidelity hashes
        // (the field is appended only when it deviates from "full").
        assert_eq!(full.config_hash(), fnv1a(b"quick;F1"));
        assert_ne!(full.config_hash(), adaptive.config_hash());
    }

    #[test]
    fn schema_check_validates_fidelity_when_present() {
        let _g = locked();
        let mut doc = Json::parse(&sample(1, 1).to_pretty_string()).unwrap();
        assert_eq!(schema_check(&doc), Vec::<String>::new());
        let mut run = doc.get("run").unwrap().clone();
        run.set("fidelity", "turbo");
        doc.set("run", run);
        assert!(schema_check(&doc)
            .iter()
            .any(|e| e.contains("run.fidelity")));
    }

    #[test]
    fn fidelity_check_accepts_values_inside_the_widened_ci() {
        let full = doc_with_series(
            "full",
            &[
                ("f.ber", &[1.00e-3, 2.00e-4]),
                ("f.ber_ci_lo", &[0.90e-3, 1.80e-4]),
                ("f.ber_ci_hi", &[1.10e-3, 2.20e-4]),
            ],
        );
        let adaptive = doc_with_series(
            "adaptive",
            &[
                ("f.ber", &[1.05e-3, 2.10e-4]),
                ("f.ber_ci_lo", &[0.95e-3, 1.90e-4]),
                ("f.ber_ci_hi", &[1.15e-3, 2.30e-4]),
                ("f.tail_ber", &[3.0e-15]),
            ],
        );
        assert_eq!(fidelity_check(&full, &adaptive, 2.0), Vec::<String>::new());
    }

    #[test]
    fn fidelity_check_flags_out_of_tolerance_and_shape_mismatches() {
        let full = doc_with_series(
            "full",
            &[
                ("f.ber", &[1.00e-3]),
                ("f.ber_ci_lo", &[0.99e-3]),
                ("f.ber_ci_hi", &[1.01e-3]),
                ("f.exact", &[7.0]),
            ],
        );
        // Way outside 2×(hf+ha), an inexact "exact" series, an extra
        // non-tail series, and a missing series.
        let adaptive = doc_with_series(
            "adaptive",
            &[
                ("f.ber", &[2.00e-3]),
                ("f.ber_ci_lo", &[1.99e-3]),
                ("f.ber_ci_hi", &[2.01e-3]),
                ("f.exact", &[7.5]),
                ("f.surprise", &[1.0]),
            ],
        );
        let errs = fidelity_check(&full, &adaptive, 2.0);
        assert!(
            errs.iter().any(|e| e.contains("series.f.ber[0]")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("series.f.exact[0]")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("f.surprise")), "{errs:?}");
    }

    #[test]
    fn fidelity_check_requires_the_fidelity_labels() {
        let a = doc_with_series("full", &[]);
        let b = doc_with_series("full", &[]);
        let errs = fidelity_check(&a, &b, 2.0);
        assert!(errs.iter().any(|e| e.contains("run.fidelity")), "{errs:?}");
    }
}
