//! Machine-readable run manifests.
//!
//! Every `run_all` invocation emits one JSON manifest describing the run:
//! mode, thread count, a configuration hash, and — per figure — the output
//! digest, the telemetry value snapshot (counters, histograms, numeric
//! series) and the stage timings. The *value* portion is thread-count
//! invariant by construction (counters are commutative adds, series are
//! recorded post-reassembly), so CI diffs two manifests' values to extend
//! the determinism gate to telemetry; the *timing* portion feeds the
//! `BENCH_run_all.json` baseline and regression reports.
//!
//! Schema `mosaic-run-manifest/v1` (hashes are 16-digit lowercase hex
//! strings — the JSON layer stores numbers as `f64`, which cannot carry a
//! full 64-bit digest):
//!
//! ```json
//! {
//!   "schema": "mosaic-run-manifest/v1",
//!   "run": {
//!     "mode": "quick" | "full",
//!     "threads": 8,
//!     "config_hash": "14653c41b5a3b103",
//!     "timings": { "total_wall_ns": 0, "total_cpu_ns": 0 }
//!   },
//!   "figures": [
//!     {
//!       "id": "F1",
//!       "title": "...",
//!       "output": { "bytes": 0, "fnv1a": "cbf29ce484222325" },
//!       "values": { "counters": {}, "histograms": {}, "series": {} },
//!       "timings": { "wall_ns": 0, "stages": [ ... ] }
//!     }
//!   ]
//! }
//! ```
//!
//! `values_view` strips every timing-class field, leaving exactly the
//! parts that must be byte-identical across `MOSAIC_THREADS` settings.

use mosaic_sim::json::Json;
use mosaic_sim::telemetry::Snapshot;

/// The manifest schema identifier.
pub const SCHEMA: &str = "mosaic-run-manifest/v1";

/// FNV-1a 64-bit hash; stable, dependency-free digest for outputs and
/// configuration strings.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A digest's manifest form: 16 lowercase hex digits.
pub fn hex(h: u64) -> String {
    format!("{h:016x}")
}

/// One figure's record in the manifest.
#[derive(Debug, Clone)]
pub struct FigureRecord {
    /// Experiment id ("F1" … "T3").
    pub id: String,
    /// Experiment title.
    pub title: String,
    /// The figure's rendered text output (hashed into the manifest, not
    /// embedded).
    pub output: String,
    /// Telemetry gathered while the figure ran.
    pub telemetry: Snapshot,
    /// Wall time of the whole figure runner, nanoseconds.
    pub wall_ns: u64,
}

impl FigureRecord {
    fn to_json(&self) -> Json {
        let timings = Json::object()
            .with("wall_ns", self.wall_ns)
            .with("stages", self.telemetry.timings_json());
        Json::object()
            .with("id", self.id.as_str())
            .with("title", self.title.as_str())
            .with(
                "output",
                Json::object()
                    .with("bytes", self.output.len())
                    .with("fnv1a", hex(fnv1a(self.output.as_bytes())).as_str()),
            )
            .with("values", self.telemetry.values_json())
            .with("timings", timings)
    }
}

/// A whole `run_all` invocation.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// "quick" or "full".
    pub mode: String,
    /// Worker threads the sweep engine used.
    pub threads: usize,
    /// Figure records in run order.
    pub figures: Vec<FigureRecord>,
    /// Total wall time, nanoseconds.
    pub total_wall_ns: u64,
    /// Total process CPU time, nanoseconds.
    pub total_cpu_ns: u64,
}

impl RunManifest {
    /// Hash of everything that *configures* the run (not how fast or how
    /// parallel it ran): mode + the experiment id list.
    pub fn config_hash(&self) -> u64 {
        let mut desc = self.mode.clone();
        for f in &self.figures {
            desc.push(';');
            desc.push_str(&f.id);
        }
        fnv1a(desc.as_bytes())
    }

    /// Render the manifest as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("schema", SCHEMA)
            .with(
                "run",
                Json::object()
                    .with("mode", self.mode.as_str())
                    .with("threads", self.threads)
                    .with("config_hash", hex(self.config_hash()).as_str())
                    .with(
                        "timings",
                        Json::object()
                            .with("total_wall_ns", self.total_wall_ns)
                            .with("total_cpu_ns", self.total_cpu_ns),
                    ),
            )
            .with(
                "figures",
                Json::Arr(self.figures.iter().map(|f| f.to_json()).collect()),
            )
    }

    /// Pretty-printed JSON text of the manifest.
    pub fn to_pretty_string(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

/// Structural schema check on a parsed manifest. Returns every violation
/// found (empty = valid).
pub fn schema_check(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == SCHEMA => {}
        Some(s) => errs.push(format!("schema: expected {SCHEMA:?}, got {s:?}")),
        None => errs.push("schema: missing or not a string".into()),
    }
    match doc.get("run") {
        Some(run) => {
            match run.get("mode").and_then(|m| m.as_str()) {
                Some("quick") | Some("full") => {}
                other => errs.push(format!("run.mode: expected quick|full, got {other:?}")),
            }
            if run.get("threads").and_then(|t| t.as_u64()).is_none() {
                errs.push("run.threads: missing or not an integer".into());
            }
            match run.get("config_hash").and_then(|h| h.as_str()) {
                Some(h) if h.len() == 16 && h.bytes().all(|b| b.is_ascii_hexdigit()) => {}
                _ => errs.push("run.config_hash: missing or not a 16-digit hex string".into()),
            }
            if run.get("timings").and_then(|t| t.as_obj()).is_none() {
                errs.push("run.timings: missing or not an object".into());
            }
        }
        None => errs.push("run: missing".into()),
    }
    match doc.get("figures").and_then(|f| f.as_arr()) {
        Some(figs) => {
            for (i, fig) in figs.iter().enumerate() {
                if fig.get("id").and_then(|v| v.as_str()).is_none() {
                    errs.push(format!("figures[{i}].id: missing or not a string"));
                }
                let out = fig.get("output");
                if out
                    .and_then(|o| o.get("fnv1a"))
                    .and_then(|h| h.as_str())
                    .is_none()
                {
                    errs.push(format!(
                        "figures[{i}].output.fnv1a: missing or not a string"
                    ));
                }
                for key in ["values", "timings"] {
                    if fig.get(key).and_then(|v| v.as_obj()).is_none() {
                        errs.push(format!("figures[{i}].{key}: missing or not an object"));
                    }
                }
            }
        }
        None => errs.push("figures: missing or not an array".into()),
    }
    errs
}

/// Project a parsed manifest down to its thread-count-invariant parts:
/// run mode + config hash, and per figure the id, output digest and
/// telemetry values. Everything timing-class (thread count, wall/CPU
/// times, stage records) is dropped.
pub fn values_view(doc: &Json) -> Json {
    let run = Json::object()
        .with(
            "mode",
            doc.get("run")
                .and_then(|r| r.get("mode"))
                .cloned()
                .unwrap_or(Json::Null),
        )
        .with(
            "config_hash",
            doc.get("run")
                .and_then(|r| r.get("config_hash"))
                .cloned()
                .unwrap_or(Json::Null),
        );
    let figures = doc
        .get("figures")
        .and_then(|f| f.as_arr())
        .map(|figs| {
            figs.iter()
                .map(|fig| {
                    Json::object()
                        .with("id", fig.get("id").cloned().unwrap_or(Json::Null))
                        .with("output", fig.get("output").cloned().unwrap_or(Json::Null))
                        .with("values", fig.get("values").cloned().unwrap_or(Json::Null))
                })
                .collect::<Vec<_>>()
        })
        .unwrap_or_default();
    Json::object()
        .with("run", run)
        .with("figures", Json::Arr(figures))
}

/// One difference between two manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// JSON-pointer-ish path of the differing field.
    pub path: String,
    /// Rendering of the left value (`"<absent>"` when missing).
    pub left: String,
    /// Rendering of the right value.
    pub right: String,
}

fn render(v: Option<&Json>) -> String {
    v.map(|j| j.to_string_compact())
        .unwrap_or_else(|| "<absent>".into())
}

fn diff_into(path: &str, a: &Json, b: &Json, out: &mut Vec<DiffEntry>) {
    match (a, b) {
        (Json::Obj(ea), Json::Obj(eb)) => {
            for (k, va) in ea {
                match eb.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => diff_into(&format!("{path}/{k}"), va, vb, out),
                    None => out.push(DiffEntry {
                        path: format!("{path}/{k}"),
                        left: render(Some(va)),
                        right: render(None),
                    }),
                }
            }
            for (k, vb) in eb {
                if !ea.iter().any(|(ka, _)| ka == k) {
                    out.push(DiffEntry {
                        path: format!("{path}/{k}"),
                        left: render(None),
                        right: render(Some(vb)),
                    });
                }
            }
        }
        (Json::Arr(aa), Json::Arr(ab)) => {
            if aa.len() != ab.len() {
                out.push(DiffEntry {
                    path: format!("{path}/#len"),
                    left: aa.len().to_string(),
                    right: ab.len().to_string(),
                });
            }
            for (i, (va, vb)) in aa.iter().zip(ab).enumerate() {
                diff_into(&format!("{path}/{i}"), va, vb, out);
            }
        }
        _ if a == b => {}
        _ => out.push(DiffEntry {
            path: path.to_string(),
            left: render(Some(a)),
            right: render(Some(b)),
        }),
    }
}

/// Structural diff of two manifest documents. With `values_only`, both
/// sides are first projected through [`values_view`], so timing noise
/// (and the thread count itself) cannot produce differences.
pub fn diff(a: &Json, b: &Json, values_only: bool) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    if values_only {
        diff_into("", &values_view(a), &values_view(b), &mut out);
    } else {
        diff_into("", a, b, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sim::telemetry;

    // The telemetry collector is process-global; serialize the tests that
    // reset it so the harness's parallelism cannot interleave them.
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        match GUARD.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    fn sample(threads: usize, wall: u64) -> RunManifest {
        telemetry::reset();
        telemetry::counter_add("trials.demo", 100);
        telemetry::record_series("demo.curve", &[1.0, 2.5, -3.0]);
        let snap = telemetry::take();
        RunManifest {
            mode: "quick".into(),
            threads,
            figures: vec![FigureRecord {
                id: "F1".into(),
                title: "demo".into(),
                output: "col1 col2\n1 2\n".into(),
                telemetry: snap,
                wall_ns: wall,
            }],
            total_wall_ns: wall,
            total_cpu_ns: wall * 2,
        }
    }

    #[test]
    fn manifest_round_trips_and_passes_schema() {
        let _g = locked();
        let m = sample(8, 12345);
        let text = m.to_pretty_string();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(schema_check(&doc), Vec::<String>::new());
    }

    #[test]
    fn schema_check_flags_corruption() {
        let _g = locked();
        let m = sample(8, 12345);
        let mut doc = Json::parse(&m.to_pretty_string()).unwrap();
        doc.set("schema", "bogus/v9");
        assert!(!schema_check(&doc).is_empty());
        assert!(!schema_check(&Json::object()).is_empty());
    }

    #[test]
    fn values_diff_ignores_threads_and_timings() {
        let _g = locked();
        let a = Json::parse(&sample(1, 999).to_pretty_string()).unwrap();
        let b = Json::parse(&sample(8, 123_456_789).to_pretty_string()).unwrap();
        assert!(!diff(&a, &b, false).is_empty(), "timings must differ");
        assert_eq!(diff(&a, &b, true), Vec::new());
    }

    #[test]
    fn values_diff_catches_metric_changes() {
        let _g = locked();
        let a = Json::parse(&sample(1, 1).to_pretty_string()).unwrap();
        let mut m = sample(1, 1);
        m.figures[0].output.push('x');
        let b = Json::parse(&m.to_pretty_string()).unwrap();
        let d = diff(&a, &b, true);
        assert!(
            d.iter().any(|e| e.path.contains("output")),
            "expected an output diff, got {d:?}"
        );
    }

    #[test]
    fn fnv1a_is_the_reference_function() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hex(fnv1a(b"")), "cbf29ce484222325");
    }
}
