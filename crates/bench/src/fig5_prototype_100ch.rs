//! F5 — The 100-channel × 2 Gb/s prototype (claim C4): per-channel BER
//! map and end-to-end frame delivery.

use crate::cells;
use crate::table::Table;
use mosaic::prototype::{prototype_ber_map, prototype_config, run_prototype};
use mosaic_fec::KP4_BER_THRESHOLD;
use mosaic_fiber::crosstalk::Misalignment;
use mosaic_units::Length;

/// Run the experiment.
pub fn run() -> String {
    let cfg = prototype_config();
    let aligned = prototype_ber_map(&cfg);

    let mut misaligned_cfg = cfg.clone();
    misaligned_cfg.misalignment = Misalignment {
        lateral: Length::from_um(2.0),
        rotation_rad: 0.02,
    };
    let misaligned = prototype_ber_map(&misaligned_cfg);

    let mut out = String::from(
        "F5: prototype 100 ch x 2 Gb/s over 10 m - per-channel pre-FEC BER (grouped by ring)\n",
    );
    let mut t = Table::new(&["ring", "channels", "aligned max BER", "misaligned max BER"]);
    // Spiral order: ring r spans cores_in_rings(r-1)..cores_in_rings(r).
    let mut start = 0usize;
    let mut ring = 0u32;
    while start < aligned.len() {
        let end = (mosaic_fiber::geometry::cores_in_rings(ring)).min(aligned.len());
        let a = aligned[start..end].iter().cloned().fold(0.0, f64::max);
        let m = misaligned[start..end].iter().cloned().fold(0.0, f64::max);
        t.row(cells![
            ring,
            end - start,
            format!("{a:.2e}"),
            format!("{m:.2e}")
        ]);
        start = end;
        ring += 1;
    }
    out.push_str(&t.render());
    let worst = aligned.iter().cloned().fold(0.0, f64::max);
    out.push_str(&format!(
        "\nall 100 channels below KP4 threshold: {} (worst {:.2e} vs {:.1e})\n",
        worst < KP4_BER_THRESHOLD,
        worst,
        KP4_BER_THRESHOLD
    ));

    let report = run_prototype(&cfg, 4, 99);
    out.push_str(&format!(
        "end-to-end: {} frames sent, {} delivered intact, {} silently corrupted (aggregate {:.0} Gb/s line rate)\n",
        report.frames_sent,
        report.frames_delivered,
        report.frames_silently_corrupted,
        cfg.channel_rate.as_gbps() * cfg.active_channels() as f64
    ));
    out
}
