//! Run-scale configuration shared by the figure binaries.
//!
//! `MOSAIC_QUICK=1` switches every Monte-Carlo-heavy experiment to a
//! reduced trial count so the whole evaluation smoke-runs in seconds
//! (CI uses this). Quick and full runs are each individually
//! deterministic — quick mode changes *how many* trials run, never how
//! any given trial draws its randomness — so outputs are byte-identical
//! across thread counts within either mode.

/// Environment variable selecting reduced trial counts.
pub const QUICK_ENV: &str = "MOSAIC_QUICK";

/// Whether quick mode is active (`MOSAIC_QUICK` set to anything but `0`).
pub fn quick() -> bool {
    matches!(std::env::var(QUICK_ENV), Ok(v) if !v.is_empty() && v != "0")
}

/// Pick the trial count for the active mode.
pub fn trials(full: u64, quick_count: u64) -> u64 {
    if quick() {
        quick_count
    } else {
        full
    }
}

/// The active fidelity mode (`MOSAIC_FIDELITY=full|adaptive`, default
/// full). Orthogonal to quick/full trial scaling: quick mode shrinks the
/// *full-fidelity* budgets, adaptive fidelity decides per measurement
/// whether that budget is spent at all (DESIGN §12).
pub fn fidelity() -> mosaic_sim::fidelity::FidelityMode {
    mosaic_sim::fidelity::FidelityMode::from_env()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mode_uses_full_count() {
        // The test environment does not set MOSAIC_QUICK.
        if !quick() {
            assert_eq!(trials(100, 7), 100);
        } else {
            assert_eq!(trials(100, 7), 7);
        }
    }
}
