//! F16 — Wavelength (RGB) multiplexing: ×3 capacity per core (future-work
//! extension). Each color is budgeted through the *real* engine with its
//! own LED efficiency (green gap), emission wavelength (PD responsivity
//! and glass attenuation shift) and the filter-leak penalty on top.

use crate::cells;
use crate::table::Table;
use mosaic::budget::BudgetEngine;
use mosaic::config::MosaicConfig;
use mosaic_fiber::color::{Color, ColorPlan, BLUE, GREEN, RED};
use mosaic_units::{BitRate, Length};

/// Budget an 800G link whose LEDs are `color`, returning the worst margin
/// in dB (None = infeasible), before the color-leak penalty.
fn margin_for_color(color: Color, metres: f64) -> Option<f64> {
    let mut cfg = MosaicConfig::builder()
        .bit_rate(BitRate::from_gbps(800.0))
        .reach(Length::from_m(metres))
        .build()
        .unwrap();
    cfg.led.wavelength_m = color.wavelength_m;
    cfg.led.extraction_eff *= color.efficiency_vs_blue;
    let engine = BudgetEngine::new(&cfg);
    engine.worst_margin(&cfg.led).map(|m| m.as_db())
}

/// Run the experiment.
pub fn run() -> String {
    let mut out = String::from("F16a: per-color channel budgets (800G-equivalent load, 10 m)\n");
    let mut t = Table::new(&["color", "λ nm", "LED eff ×blue", "worst margin dB"]);
    for c in [BLUE, GREEN, RED] {
        let m = margin_for_color(c, 10.0)
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "closed".into());
        t.row(cells![
            c.name,
            format!("{:.0}", c.wavelength_m * 1e9),
            format!("{:.2}", c.efficiency_vs_blue),
            m
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nF16b: single-color vs RGB-multiplexed 800G module (10 m)\n");
    let mut t = Table::new(&[
        "plan",
        "ch/core",
        "cores",
        "array radius",
        "net worst margin dB",
        "feasible",
    ]);
    let base = MosaicConfig::builder()
        .bit_rate(BitRate::from_gbps(800.0))
        .reach(Length::from_m(10.0))
        .build()
        .unwrap();
    for plan in [ColorPlan::single(), ColorPlan::rgb()] {
        let cores = base.total_channels().div_ceil(plan.channels_per_core());
        let lattice = mosaic_fiber::geometry::CoreLattice::spiral(cores, base.core_pitch);
        // The binding margin is the weakest color minus the filter leak.
        let worst_color = plan
            .colors
            .iter()
            .map(|&c| margin_for_color(c, 10.0))
            .try_fold(f64::INFINITY, |acc, m| m.map(|m| acc.min(m)));
        let leak_db = plan
            .color_crosstalk_penalty()
            .map(|d| d.as_db())
            .unwrap_or(f64::INFINITY);
        let (margin, feasible) = match worst_color {
            Some(m) if leak_db.is_finite() => {
                let net = m - leak_db;
                (format!("{net:.2}"), net >= 0.0)
            }
            _ => ("closed".into(), false),
        };
        t.row(cells![
            if plan.channels_per_core() == 1 {
                "blue only"
            } else {
                "RGB ×3"
            },
            plan.channels_per_core(),
            cores,
            format!("{}", lattice.image_radius()),
            margin,
            feasible
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nshape: RGB triples per-core capacity (a third of the cores / a much\n\
         smaller image circle for the same 800G) and remains feasible at 10 m;\n\
         the binding constraint is the green gap, not the filters.\n",
    );
    out
}
