//! CRC-32 framed transport.
//!
//! The gearbox moves opaque frames (the host's packets) across the striped
//! channels. Every frame carries a sequence number, a length, and an IEEE
//! CRC-32 over header + payload, so any corruption that slips past FEC is
//! *detected* and surfaced as a lost frame — the simulator's ground truth
//! for frame-loss-rate measurements.

/// IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    // Build the table once.
    fn table() -> &'static [u32; 256] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u32; 256];
            for (i, entry) in t.iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
                *entry = c;
            }
            t
        })
    }
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = t[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Frame header magic (helps resynchronization scans in tests).
pub const FRAME_MAGIC: u16 = 0xA55A;

/// A transport frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Monotonic sequence number assigned by the sender.
    pub seq: u32,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Errors that can occur while parsing a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a minimal frame.
    Truncated,
    /// Header magic mismatch.
    BadMagic,
    /// Declared length inconsistent with the buffer.
    BadLength,
    /// CRC mismatch: corruption detected.
    BadCrc,
}

impl Frame {
    /// Wire size of the header + trailer around the payload.
    pub const OVERHEAD: usize = 2 + 4 + 4 + 4; // magic, seq, len, crc

    /// Serialize: `magic | seq | len | payload | crc32`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::OVERHEAD + self.payload.len());
        frame_into(self.seq, &self.payload, &mut out);
        out
    }

    /// Parse a frame from exactly one serialized buffer.
    pub fn from_bytes(buf: &[u8]) -> Result<Frame, FrameError> {
        let (seq, payload) = parse_frame(buf)?;
        Ok(Frame {
            seq,
            payload: payload.to_vec(),
        })
    }
}

/// Append one serialized frame (`magic | seq | len | payload | crc32`) to
/// `out` without constructing a [`Frame`]. The CRC covers only this
/// frame's bytes, so frames may be packed back to back in one buffer.
/// Allocation-free once `out` has capacity (lint R4).
pub fn frame_into(seq: u32, payload: &[u8], out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Parse exactly one serialized frame, borrowing the payload from `buf`
/// instead of copying it. Allocation-free counterpart of
/// [`Frame::from_bytes`] (lint R4).
pub fn parse_frame(buf: &[u8]) -> Result<(u32, &[u8]), FrameError> {
    if buf.len() < Frame::OVERHEAD {
        return Err(FrameError::Truncated);
    }
    let magic = u16::from_le_bytes([buf[0], buf[1]]);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let seq = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]);
    let len = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]) as usize;
    if buf.len() != Frame::OVERHEAD + len {
        return Err(FrameError::BadLength);
    }
    let body = &buf[..10 + len];
    let crc_rx = u32::from_le_bytes([buf[10 + len], buf[11 + len], buf[12 + len], buf[13 + len]]);
    if crc32(body) != crc_rx {
        return Err(FrameError::BadCrc);
    }
    Ok((seq, &buf[10..10 + len]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_known_answer() {
        // The classic check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_roundtrip() {
        let f = Frame {
            seq: 7,
            payload: b"hello mosaic".to_vec(),
        };
        let parsed = Frame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn corruption_detected() {
        let f = Frame {
            seq: 1,
            payload: vec![0u8; 64],
        };
        let mut bytes = f.to_bytes();
        bytes[20] ^= 0x40;
        assert_eq!(Frame::from_bytes(&bytes), Err(FrameError::BadCrc));
    }

    #[test]
    fn header_corruption_detected() {
        let f = Frame {
            seq: 1,
            payload: vec![1, 2, 3],
        };
        let mut bytes = f.to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(Frame::from_bytes(&bytes), Err(FrameError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let f = Frame {
            seq: 1,
            payload: vec![9; 32],
        };
        let bytes = f.to_bytes();
        assert_eq!(
            Frame::from_bytes(&bytes[..bytes.len() - 3]),
            Err(FrameError::BadLength)
        );
        assert_eq!(Frame::from_bytes(&bytes[..5]), Err(FrameError::Truncated));
    }

    #[test]
    fn frame_into_packs_back_to_back() {
        let mut buf = Vec::new();
        frame_into(3, b"abc", &mut buf);
        let first_len = buf.len();
        frame_into(4, b"defgh", &mut buf);
        let (seq_a, pay_a) = parse_frame(&buf[..first_len]).unwrap();
        let (seq_b, pay_b) = parse_frame(&buf[first_len..]).unwrap();
        assert_eq!((seq_a, pay_a), (3, &b"abc"[..]));
        assert_eq!((seq_b, pay_b), (4, &b"defgh"[..]));
    }

    proptest! {
        #[test]
        fn frame_into_matches_to_bytes(
            seq: u32,
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let f = Frame { seq, payload };
            let mut buf = Vec::new();
            frame_into(f.seq, &f.payload, &mut buf);
            prop_assert_eq!(&buf, &f.to_bytes());
            let (pseq, ppay) = parse_frame(&buf).unwrap();
            prop_assert_eq!(pseq, f.seq);
            prop_assert_eq!(ppay, f.payload.as_slice());
        }

        #[test]
        fn roundtrip_random(seq: u32, payload in proptest::collection::vec(any::<u8>(), 0..512)) {
            let f = Frame { seq, payload };
            prop_assert_eq!(Frame::from_bytes(&f.to_bytes()).unwrap(), f);
        }

        #[test]
        fn any_single_byte_corruption_detected(
            seq: u32,
            payload in proptest::collection::vec(any::<u8>(), 1..128),
            pos_frac in 0f64..1.0,
            flip in 1u8..=255,
        ) {
            let f = Frame { seq, payload };
            let mut bytes = f.to_bytes();
            let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
            bytes[pos] ^= flip;
            prop_assert!(Frame::from_bytes(&bytes).is_err());
        }
    }
}
