//! Graceful-degradation controller: the link-layer policy that turns
//! per-channel BER telemetry into sparing, remapping, and rate back-off
//! decisions.
//!
//! Mosaic's reliability claims (C3/C6) depend on the link *riding
//! through* component faults rather than dying with them: a failed
//! microLED or fiber core is replaced by a hot spare invisibly to the
//! host, and when the spare pool runs dry the link sheds logical lanes —
//! degrading aggregate rate gracefully instead of going down. This
//! module implements that policy as a per-channel state machine:
//!
//! ```text
//! Active ──ber>suspect──▶ Suspect ──ber>quarantine or dwell──▶ Quarantined
//!   ▲                        │                                     │
//!   └──ber<clear (hyst.)─────┘                  spare available ───┤── no spare
//!                                                      ▼           ▼
//!                                                   Spared ──▶  Retired
//!                                                     (dwell)  (terminal)
//! ```
//!
//! Hysteresis (`clear_ber < suspect_ber`) prevents flapping between
//! Active and Suspect on a channel sitting near threshold. `Retired` is
//! terminal by construction — no match arm leaves it — which the
//! property tests pin down.
//!
//! The controller is deliberately telemetry-agnostic: it *records*
//! [`Transition`]s as plain data and the simulation layer (which owns
//! the process-global telemetry collector) drains them into counters.
//! The dependency points link → sim at the workspace level, so the link
//! crate cannot call the sim's telemetry directly.

use crate::lanes::{FailureKind, LaneHealth, LaneMap};

/// Controller state of one physical channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CtlState {
    /// In service (or idle in the spare pool), BER nominal.
    Active,
    /// BER crossed the suspect threshold; under observation.
    Suspect,
    /// Condemned this epoch; awaiting spare activation or retirement.
    Quarantined,
    /// Out of service, its logical lane carried by an activated spare.
    Spared,
    /// Permanently out of service. Terminal: no transition leaves it.
    Retired,
}

/// Why a transition fired (emitted alongside every [`Transition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Windowed BER rose above the suspect threshold.
    BerAboveSuspect,
    /// Windowed BER rose above the quarantine threshold.
    BerAboveQuarantine,
    /// Suspect dwell limit expired without the BER clearing.
    SuspectTimeout,
    /// BER stayed below the clear threshold long enough (hysteresis).
    BerCleared,
    /// A hard-dead report arrived from the fault model / loss-of-light.
    ExternalDead,
    /// A spare was activated and the lane remapped.
    SpareActivated,
    /// No spare remained; the logical lane was shed (rate back-off).
    SparesExhausted,
    /// A spared channel aged out of the recovery window.
    SparedAgedOut,
}

/// One state-machine transition, recorded as data for the sim layer to
/// drain into telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Controller epoch the transition fired in.
    pub epoch: usize,
    /// Physical channel that transitioned.
    pub channel: usize,
    /// State before.
    pub from: CtlState,
    /// State after.
    pub to: CtlState,
    /// Why.
    pub cause: Cause,
}

/// Thresholds and dwell times of the degradation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeConfig {
    /// BER-monitor window size in bits.
    pub window_bits: u64,
    /// Completed windows of history the monitor retains.
    pub max_windows: usize,
    /// Enter Suspect above this windowed BER.
    pub suspect_ber: f64,
    /// Return Suspect → Active below this (must be `< suspect_ber`).
    pub clear_ber: f64,
    /// Escalate straight to Quarantined above this (`>= suspect_ber`).
    pub quarantine_ber: f64,
    /// Epochs a channel may dwell in Suspect before forced escalation.
    pub suspect_dwell_limit: usize,
    /// Consecutive clean epochs required to clear Suspect.
    pub clear_epochs: usize,
    /// Epochs a Spared channel lingers before it is Retired for good.
    pub spared_dwell_limit: usize,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        // Conservative by default: only near-dead channels (monitor BER
        // ≳ 0.2, i.e. loss of light or gross misalignment) are condemned
        // immediately; elevated-but-live channels sit in Suspect long
        // enough for transient faults to clear, so spares are spent on
        // persistent damage, not storms.
        DegradeConfig {
            window_bits: 4096,
            max_windows: 4,
            suspect_ber: 1e-4,
            clear_ber: 1e-5,
            quarantine_ber: 0.2,
            suspect_dwell_limit: 128,
            clear_epochs: 4,
            spared_dwell_limit: 32,
        }
    }
}

impl DegradeConfig {
    /// Validate the threshold ordering and dwell parameters.
    pub fn validate(&self) -> mosaic_units::Result<()> {
        if !(self.clear_ber < self.suspect_ber && self.suspect_ber <= self.quarantine_ber) {
            return Err(mosaic_units::MosaicError::invalid_config(
                "degrade_thresholds",
                format!(
                    "need clear < suspect <= quarantine, got {} / {} / {}",
                    self.clear_ber, self.suspect_ber, self.quarantine_ber
                ),
            ));
        }
        if self.clear_epochs == 0 || self.suspect_dwell_limit == 0 {
            return Err(mosaic_units::MosaicError::invalid_config(
                "degrade_dwell",
                "clear_epochs and suspect_dwell_limit must be >= 1",
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct ChannelCtl {
    state: CtlState,
    health: LaneHealth,
    /// Epochs spent in the current state (reset on every transition).
    dwell: usize,
    /// Consecutive epochs below `clear_ber` while Suspect.
    clean_streak: usize,
    /// Hard-dead report pending for the next `step()`.
    pending_dead: bool,
}

/// Per-epoch roll-up returned by [`DegradeController::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSummary {
    /// Epoch just processed.
    pub epoch: usize,
    /// Transitions fired this epoch.
    pub transitions: usize,
    /// Channels per state after the epoch, indexed
    /// Active/Suspect/Quarantined/Spared/Retired.
    pub by_state: [usize; 5],
    /// Fraction of the provisioned aggregate rate still delivered
    /// (`carried logical lanes / provisioned logical lanes`).
    pub rate_fraction: f64,
}

/// The per-link degradation controller.
#[derive(Debug, Clone)]
pub struct DegradeController {
    cfg: DegradeConfig,
    map: LaneMap,
    channels: Vec<ChannelCtl>,
    transitions: Vec<Transition>,
    epoch: usize,
    provisioned_spares: usize,
    spares_activated: usize,
    lost_lanes: usize,
}

impl DegradeController {
    /// Controller over `logical` lanes carried on `physical` channels
    /// (the surplus is the spare pool), with the given policy.
    pub fn try_new(
        logical: usize,
        physical: usize,
        cfg: DegradeConfig,
    ) -> mosaic_units::Result<Self> {
        cfg.validate()?;
        let map = LaneMap::try_new(logical, physical)?;
        let mut channels = Vec::with_capacity(physical);
        for _ in 0..physical {
            channels.push(ChannelCtl {
                state: CtlState::Active,
                health: LaneHealth::try_new(cfg.window_bits, cfg.max_windows)?,
                dwell: 0,
                clean_streak: 0,
                pending_dead: false,
            });
        }
        Ok(DegradeController {
            cfg,
            map,
            channels,
            transitions: Vec::new(),
            epoch: 0,
            provisioned_spares: physical - logical,
            spares_activated: 0,
            lost_lanes: 0,
        })
    }

    /// Feed one epoch's error observation for a physical channel.
    pub fn record(&mut self, physical: usize, bits: u64, errors: u64) {
        if let Some(ch) = self.channels.get_mut(physical) {
            ch.health.record(bits, errors);
        }
    }

    /// Report a hard failure (loss of light / loss of lock) on a
    /// physical channel; processed at the next [`DegradeController::step`].
    pub fn mark_dead(&mut self, physical: usize) {
        if let Some(ch) = self.channels.get_mut(physical) {
            ch.pending_dead = true;
        }
    }

    fn transition(
        transitions: &mut Vec<Transition>,
        epoch: usize,
        channel: usize,
        ch: &mut ChannelCtl,
        to: CtlState,
        cause: Cause,
    ) {
        transitions.push(Transition {
            epoch,
            channel,
            from: ch.state,
            to,
            cause,
        });
        ch.state = to;
        ch.dwell = 0;
        ch.clean_streak = 0;
    }

    /// Process one controller epoch: evaluate every channel's monitor,
    /// fire transitions, activate spares / shed lanes for quarantined
    /// channels, and return the epoch roll-up.
    pub fn step(&mut self) -> EpochSummary {
        let epoch = self.epoch;
        let t0 = self.transitions.len();
        for idx in 0..self.channels.len() {
            let in_service = self.map.assignment().contains(&idx);
            let ch = &mut self.channels[idx];
            ch.dwell += 1;
            let dead = std::mem::take(&mut ch.pending_dead);
            match ch.state {
                CtlState::Retired | CtlState::Quarantined => {
                    // Retired is terminal; Quarantined resolves below in
                    // the same step it was entered, so neither re-evaluates
                    // monitor state here.
                }
                CtlState::Spared => {
                    if ch.dwell >= self.cfg.spared_dwell_limit {
                        Self::transition(
                            &mut self.transitions,
                            epoch,
                            idx,
                            ch,
                            CtlState::Retired,
                            Cause::SparedAgedOut,
                        );
                    }
                }
                CtlState::Active => {
                    if dead {
                        Self::transition(
                            &mut self.transitions,
                            epoch,
                            idx,
                            ch,
                            CtlState::Quarantined,
                            Cause::ExternalDead,
                        );
                    } else if in_service && ch.health.degraded(self.cfg.quarantine_ber) {
                        Self::transition(
                            &mut self.transitions,
                            epoch,
                            idx,
                            ch,
                            CtlState::Quarantined,
                            Cause::BerAboveQuarantine,
                        );
                    } else if in_service && ch.health.degraded(self.cfg.suspect_ber) {
                        Self::transition(
                            &mut self.transitions,
                            epoch,
                            idx,
                            ch,
                            CtlState::Suspect,
                            Cause::BerAboveSuspect,
                        );
                    }
                }
                CtlState::Suspect => {
                    let ber = ch.health.ber().unwrap_or(0.0);
                    if dead || ch.health.degraded(self.cfg.quarantine_ber) {
                        let cause = if dead {
                            Cause::ExternalDead
                        } else {
                            Cause::BerAboveQuarantine
                        };
                        Self::transition(
                            &mut self.transitions,
                            epoch,
                            idx,
                            ch,
                            CtlState::Quarantined,
                            cause,
                        );
                    } else if ber < self.cfg.clear_ber {
                        ch.clean_streak += 1;
                        if ch.clean_streak >= self.cfg.clear_epochs {
                            Self::transition(
                                &mut self.transitions,
                                epoch,
                                idx,
                                ch,
                                CtlState::Active,
                                Cause::BerCleared,
                            );
                        }
                    } else {
                        ch.clean_streak = 0;
                        if ch.dwell >= self.cfg.suspect_dwell_limit {
                            Self::transition(
                                &mut self.transitions,
                                epoch,
                                idx,
                                ch,
                                CtlState::Quarantined,
                                Cause::SuspectTimeout,
                            );
                        }
                    }
                }
            }
        }
        // Resolve quarantines: activate a spare or shed the lane.
        for idx in 0..self.channels.len() {
            if self.channels[idx].state != CtlState::Quarantined {
                continue;
            }
            match self.map.fail_channel(idx, FailureKind::Degraded) {
                Ok(Some(_lane)) => {
                    self.spares_activated += 1;
                    let ch = &mut self.channels[idx];
                    Self::transition(
                        &mut self.transitions,
                        epoch,
                        idx,
                        ch,
                        CtlState::Spared,
                        Cause::SpareActivated,
                    );
                }
                Ok(None) => {
                    // Was an idle spare (or already retired): no remap
                    // happened, the channel just leaves the pool.
                    let ch = &mut self.channels[idx];
                    Self::transition(
                        &mut self.transitions,
                        epoch,
                        idx,
                        ch,
                        CtlState::Retired,
                        Cause::ExternalDead,
                    );
                }
                Err(_no_spares) => {
                    self.lost_lanes += 1;
                    let ch = &mut self.channels[idx];
                    Self::transition(
                        &mut self.transitions,
                        epoch,
                        idx,
                        ch,
                        CtlState::Retired,
                        Cause::SparesExhausted,
                    );
                }
            }
        }
        self.epoch += 1;
        let mut by_state = [0usize; 5];
        for ch in &self.channels {
            by_state[ch.state as usize] += 1;
        }
        EpochSummary {
            epoch,
            transitions: self.transitions.len() - t0,
            by_state,
            rate_fraction: self.rate_fraction(),
        }
    }

    /// Return the controller to its just-constructed state — all
    /// channels Active with clean monitors, full spare pool, empty
    /// transition log, epoch zero — without releasing any allocation.
    ///
    /// Hyperfleet rebuild tickets model a hardware swap: the replacement
    /// link starts fresh, but the simulation reuses the controller so
    /// the inner event loop stays allocation-free.
    pub fn reset(&mut self) {
        for ch in &mut self.channels {
            ch.state = CtlState::Active;
            ch.health.reset();
            ch.dwell = 0;
            ch.clean_streak = 0;
            ch.pending_dead = false;
        }
        self.map.reset();
        self.transitions.clear();
        self.epoch = 0;
        self.spares_activated = 0;
        self.lost_lanes = 0;
    }

    /// Current state of a physical channel (`Retired` for out-of-range
    /// indices, the conservative reading).
    pub fn state(&self, physical: usize) -> CtlState {
        self.channels
            .get(physical)
            .map(|c| c.state)
            .unwrap_or(CtlState::Retired)
    }

    /// The live logical-lane → physical-channel map.
    pub fn lane_map(&self) -> &LaneMap {
        &self.map
    }

    /// Spares activated so far (never exceeds the provisioned pool).
    pub fn spares_activated(&self) -> usize {
        self.spares_activated
    }

    /// Spare channels provisioned at construction.
    pub fn provisioned_spares(&self) -> usize {
        self.provisioned_spares
    }

    /// Logical lanes shed after spare exhaustion.
    pub fn lost_lanes(&self) -> usize {
        self.lost_lanes
    }

    /// Fraction of the provisioned aggregate rate still delivered.
    pub fn rate_fraction(&self) -> f64 {
        let logical = self.map.logical_lanes();
        if logical == 0 {
            return 0.0;
        }
        (logical - self.lost_lanes.min(logical)) as f64 / logical as f64
    }

    /// Epochs processed so far.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// All transitions recorded so far.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Drain the transition log (the sim layer feeds these to telemetry).
    pub fn drain_transitions(&mut self) -> Vec<Transition> {
        std::mem::take(&mut self.transitions)
    }
}

/// Stable lowercase tag for a state (used in telemetry counter names).
pub fn state_tag(s: CtlState) -> &'static str {
    match s {
        CtlState::Active => "active",
        CtlState::Suspect => "suspect",
        CtlState::Quarantined => "quarantined",
        CtlState::Spared => "spared",
        CtlState::Retired => "retired",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn quick_cfg() -> DegradeConfig {
        DegradeConfig {
            window_bits: 1000,
            max_windows: 2,
            suspect_ber: 1e-3,
            clear_ber: 1e-4,
            quarantine_ber: 1e-1,
            suspect_dwell_limit: 3,
            clear_epochs: 2,
            spared_dwell_limit: 4,
        }
    }

    #[test]
    fn config_validation_rejects_bad_ordering() {
        let bad = DegradeConfig {
            clear_ber: 1e-2,
            suspect_ber: 1e-3,
            ..DegradeConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(DegradeConfig::default().validate().is_ok());
    }

    #[test]
    fn healthy_channels_stay_active() {
        let mut ctl = DegradeController::try_new(4, 6, quick_cfg()).unwrap();
        for _ in 0..10 {
            for ch in 0..6 {
                ctl.record(ch, 2000, 0);
            }
            ctl.step();
        }
        assert!(ctl.transitions().is_empty());
        assert_eq!(ctl.rate_fraction(), 1.0);
    }

    #[test]
    fn degraded_channel_walks_to_spared() {
        let mut ctl = DegradeController::try_new(4, 6, quick_cfg()).unwrap();
        // Channel 1 runs at BER 1e-2: above suspect, below quarantine.
        for _ in 0..8 {
            for ch in 0..6 {
                let errors = if ch == 1 { 20 } else { 0 };
                ctl.record(ch, 2000, errors);
            }
            ctl.step();
            if ctl.state(1) == CtlState::Spared {
                break;
            }
        }
        assert_eq!(ctl.state(1), CtlState::Spared);
        assert_eq!(ctl.spares_activated(), 1);
        assert!(!ctl.lane_map().assignment().contains(&1));
        // The walk went Active → Suspect → Quarantined → Spared.
        let path: Vec<CtlState> = ctl
            .transitions()
            .iter()
            .filter(|t| t.channel == 1)
            .map(|t| t.to)
            .collect();
        assert_eq!(
            path,
            vec![CtlState::Suspect, CtlState::Quarantined, CtlState::Spared]
        );
    }

    #[test]
    fn hysteresis_clears_a_recovering_channel() {
        let mut ctl = DegradeController::try_new(2, 3, quick_cfg()).unwrap();
        // One bad burst puts channel 0 in Suspect...
        ctl.record(0, 2000, 10);
        ctl.record(1, 2000, 0);
        ctl.step();
        assert_eq!(ctl.state(0), CtlState::Suspect);
        // ...then clean traffic dilutes the windowed BER below clear_ber
        // and the channel returns to Active after clear_epochs.
        for _ in 0..20 {
            ctl.record(0, 50_000, 0);
            ctl.record(1, 2000, 0);
            ctl.step();
            if ctl.state(0) == CtlState::Active {
                break;
            }
        }
        assert_eq!(ctl.state(0), CtlState::Active);
        assert_eq!(ctl.spares_activated(), 0);
    }

    #[test]
    fn spare_exhaustion_sheds_lanes_and_backs_off_rate() {
        let mut ctl = DegradeController::try_new(4, 5, quick_cfg()).unwrap();
        // Kill three channels outright: 1 spare absorbs the first, the
        // other two shed lanes.
        for ch in [0, 1, 2] {
            ctl.mark_dead(ch);
        }
        ctl.step();
        assert_eq!(ctl.spares_activated(), 1);
        assert_eq!(ctl.lost_lanes(), 2);
        assert!((ctl.rate_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spared_channels_age_into_retired() {
        let mut ctl = DegradeController::try_new(2, 4, quick_cfg()).unwrap();
        ctl.mark_dead(0);
        ctl.step();
        assert_eq!(ctl.state(0), CtlState::Spared);
        for _ in 0..quick_cfg().spared_dwell_limit + 1 {
            ctl.step();
        }
        assert_eq!(ctl.state(0), CtlState::Retired);
    }

    #[test]
    fn reset_restores_pristine_state() {
        let fresh = DegradeController::try_new(4, 6, quick_cfg()).unwrap();
        let mut ctl = fresh.clone();
        // Abuse: kill enough channels to spare and shed.
        for ch in [0, 1, 2, 3] {
            ctl.mark_dead(ch);
        }
        ctl.step();
        assert!(ctl.spares_activated() > 0);
        assert!(!ctl.transitions().is_empty());
        ctl.reset();
        assert_eq!(ctl.epoch(), 0);
        assert_eq!(ctl.spares_activated(), 0);
        assert_eq!(ctl.lost_lanes(), 0);
        assert!(ctl.transitions().is_empty());
        assert_eq!(ctl.lane_map(), fresh.lane_map());
        for ch in 0..6 {
            assert_eq!(ctl.state(ch), CtlState::Active);
        }
        // A reset controller behaves exactly like a fresh one.
        let mut again = fresh.clone();
        ctl.mark_dead(2);
        again.mark_dead(2);
        let a = ctl.step();
        let b = again.step();
        assert_eq!(a, b);
        assert_eq!(ctl.transitions(), again.transitions());
    }

    proptest! {
        /// ISSUE acceptance: the machine never transitions out of
        /// Retired, and never activates more spares than provisioned.
        #[test]
        fn retired_is_terminal_and_spares_bounded(
            logical in 1usize..10,
            extra in 0usize..6,
            // Packed abuse script: low byte = channel, next byte =
            // errors, bit 16 = hard-kill (the vendored proptest stub has
            // no tuple strategies).
            script in proptest::collection::vec(0u64..(1u64 << 17), 1..120),
        ) {
            let physical = logical + extra;
            let mut ctl =
                DegradeController::try_new(logical, physical, quick_cfg()).unwrap();
            for word in script {
                let ch = (word & 0xFF) as usize % physical;
                let errors = (word >> 8) & 0xFF;
                let kill = (word >> 16) & 1 == 1;
                ctl.record(ch, 2000, errors);
                if kill {
                    ctl.mark_dead(ch);
                }
                ctl.step();
            }
            for t in ctl.transitions() {
                prop_assert_ne!(t.from, CtlState::Retired, "left Retired: {:?}", t);
            }
            prop_assert!(ctl.spares_activated() <= ctl.provisioned_spares());
            // Lane map invariants survive arbitrary abuse.
            let mut a = ctl.lane_map().assignment().to_vec();
            a.sort_unstable();
            let n = a.len();
            a.dedup();
            prop_assert_eq!(a.len(), n, "duplicate assignment");
        }
    }
}
