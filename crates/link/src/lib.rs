//! The Mosaic digital link layer: a protocol-agnostic gearbox.
//!
//! The paper's hardware contribution includes an FPGA gearbox that makes
//! hundreds of slow optical channels look like a standard pluggable to the
//! host: N fast host lanes are striped over M slow channels, survive
//! per-channel skew, and keep running when individual channels die by
//! remapping onto spare cores. This crate implements that logic as real,
//! executable code — the simulator pushes actual bytes through it.
//!
//! * [`prbs`] — PRBS7/15/31 pattern generators and error-counting checkers
//!   (the link's self-test and per-lane BER monitoring substrate);
//! * [`scrambler`] — the 64b/66b self-synchronizing scrambler
//!   (x⁵⁸ + x³⁹ + 1) for DC balance and transition density;
//! * [`pcs`] — 64b/66b block coding (sync headers, data/idle blocks);
//! * [`framing`] — CRC-32-framed transport so corruption is *detected*
//!   end-to-end, never silently passed up;
//! * [`striping`] — the word distributor and the alignment-marker based
//!   deskewer/reassembler;
//! * [`lanes`] — per-lane health monitors and the spare-channel map;
//! * [`degrade`] — the graceful-degradation controller (per-channel
//!   state machine driving sparing, remap, and rate back-off);
//! * [`gearbox`] — the assembled TX/RX pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degrade;
pub mod framing;
pub mod gearbox;
pub mod lanes;
pub mod pcs;
pub mod prbs;
pub mod scrambler;
pub mod striping;

pub use degrade::{Cause, CtlState, DegradeConfig, DegradeController, EpochSummary, Transition};
pub use framing::{frame_into, parse_frame, Frame, FrameError};
pub use gearbox::{
    scan_frames, scan_frames_into, FrameSlot, Gearbox, RxBatch, RxReport, RxScratch, TxScratch,
};
pub use lanes::{FailureKind, LaneHealth, LaneMap, NoSpares};
pub use striping::{DeskewError, DeskewScratch, Deskewer, Distributor, LaneWord, StripeConfig};

/// The workspace error type, re-exported for link-layer callers.
pub use mosaic_units::{MosaicError, Result};
