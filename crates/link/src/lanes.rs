//! Per-lane health monitoring and spare-channel mapping.
//!
//! Mosaic's reliability story (claim C3) rests on cheap redundancy: a few
//! spare microLED/core/PD channels replace any failed channel, invisible
//! above the gearbox. [`LaneHealth`] estimates each channel's live BER from
//! a sliding window of error counts (fed by PRBS monitoring or FEC
//! corrected-symbol counters); [`LaneMap`] maintains the logical-lane →
//! physical-channel assignment and swaps in spares when a channel degrades.

/// Sliding-window BER monitor for one physical channel.
#[derive(Debug, Clone)]
pub struct LaneHealth {
    window_bits: u64,
    /// (bits, errors) per completed window, newest last; bounded length.
    history: Vec<(u64, u64)>,
    cur_bits: u64,
    cur_errors: u64,
    max_windows: usize,
}

impl LaneHealth {
    /// Monitor with a given window size in bits, keeping `max_windows`
    /// completed windows of history.
    ///
    /// # Panics
    /// Panics on zero parameters; use [`LaneHealth::try_new`] to handle
    /// the error instead.
    pub fn new(window_bits: u64, max_windows: usize) -> Self {
        match Self::try_new(window_bits, max_windows) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`LaneHealth::new`]: errors on zero window size or count.
    pub fn try_new(window_bits: u64, max_windows: usize) -> mosaic_units::Result<Self> {
        if window_bits == 0 || max_windows == 0 {
            return Err(mosaic_units::MosaicError::invalid_config(
                "lane_monitor",
                "window size and history depth must be non-zero",
            ));
        }
        Ok(LaneHealth {
            window_bits,
            history: vec![],
            cur_bits: 0,
            cur_errors: 0,
            max_windows,
        })
    }

    /// Record `bits` observed with `errors` mismatches. An error count
    /// exceeding the bit count is clamped — counters fed from hardware
    /// telemetry can glitch, and a saturated window is the conservative
    /// reading.
    pub fn record(&mut self, bits: u64, errors: u64) {
        let errors = errors.min(bits);
        self.cur_bits += bits;
        self.cur_errors += errors;
        while self.cur_bits >= self.window_bits {
            // Close a window (approximately: carry the remainder forward).
            let carry_bits = self.cur_bits - self.window_bits;
            let carry_errors =
                ((self.cur_errors as f64) * (carry_bits as f64 / self.cur_bits as f64)) as u64;
            self.history
                .push((self.window_bits, self.cur_errors - carry_errors));
            if self.history.len() > self.max_windows {
                self.history.remove(0);
            }
            self.cur_bits = carry_bits;
            self.cur_errors = carry_errors;
        }
    }

    /// Forget all observations, keeping the allocated history storage.
    /// Used when a link is rebuilt in place (hardware swap): the new
    /// channel starts with a clean monitor but no fresh allocation.
    pub fn reset(&mut self) {
        self.history.clear();
        self.cur_bits = 0;
        self.cur_errors = 0;
    }

    /// BER estimate over the retained history (plus the open window),
    /// or `None` before any data.
    pub fn ber(&self) -> Option<f64> {
        let bits: u64 = self.history.iter().map(|&(b, _)| b).sum::<u64>() + self.cur_bits;
        if bits == 0 {
            return None;
        }
        let errors: u64 = self.history.iter().map(|&(_, e)| e).sum::<u64>() + self.cur_errors;
        Some(errors as f64 / bits as f64)
    }

    /// True once the measured BER exceeds `threshold` with at least one
    /// full window of evidence.
    pub fn degraded(&self, threshold: f64) -> bool {
        if self.history.is_empty() {
            return false;
        }
        matches!(self.ber(), Some(ber) if ber > threshold)
    }
}

/// Why a physical channel was taken out of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// BER monitor crossed the degrade threshold.
    Degraded,
    /// Hard failure (no light / no lock).
    Dead,
}

/// Logical-lane to physical-channel assignment with hot spares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneMap {
    /// `assignment[logical] = physical channel index`.
    assignment: Vec<usize>,
    /// Unused healthy channels available as spares.
    spares: Vec<usize>,
    /// Channels removed from service, with the reason.
    retired: Vec<(usize, FailureKind)>,
}

impl LaneMap {
    /// Create a map with `logical` active lanes drawn from `physical`
    /// channels; the surplus becomes the spare pool.
    ///
    /// # Panics
    /// Panics if there are fewer physical channels than logical lanes;
    /// use [`LaneMap::try_new`] to handle the error instead.
    pub fn new(logical: usize, physical: usize) -> Self {
        match Self::try_new(logical, physical) {
            Ok(map) => map,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`LaneMap::new`]: errors when `physical < logical`.
    pub fn try_new(logical: usize, physical: usize) -> mosaic_units::Result<Self> {
        if physical < logical {
            return Err(mosaic_units::MosaicError::invalid_config(
                "physical_channels",
                format!("need at least {logical} channels, have {physical}"),
            ));
        }
        Ok(LaneMap {
            assignment: (0..logical).collect(),
            spares: (logical..physical).collect(),
            retired: vec![],
        })
    }

    /// Number of logical lanes.
    pub fn logical_lanes(&self) -> usize {
        self.assignment.len()
    }

    /// Physical channel currently carrying `logical`.
    pub fn physical_for(&self, logical: usize) -> usize {
        self.assignment[logical]
    }

    /// The current assignment slice.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Remaining spare channels.
    pub fn spares_left(&self) -> usize {
        self.spares.len()
    }

    /// Channels retired so far.
    pub fn retired(&self) -> &[(usize, FailureKind)] {
        &self.retired
    }

    /// Restore the pristine assignment (lane `i` → channel `i`, surplus
    /// as spares, nothing retired) without releasing allocated storage.
    ///
    /// The original geometry is recovered from the containers: every
    /// physical channel lives in exactly one of `assignment`, `spares`,
    /// or `retired` (swaps move channels between them one-for-one), so
    /// their combined length is the provisioned channel count.
    pub fn reset(&mut self) {
        let logical = self.assignment.len();
        let physical = logical + self.spares.len() + self.retired.len();
        self.assignment.clear();
        self.assignment.extend(0..logical);
        self.spares.clear();
        self.spares.extend(logical..physical);
        self.retired.clear();
    }

    /// Report a physical-channel failure. If the channel is active, a
    /// spare is swapped in; returns the logical lane that was remapped.
    /// Returns `Err(NoSpares)` if the channel was active but no spare
    /// remains — the link must degrade (fewer lanes) or go down.
    pub fn fail_channel(
        &mut self,
        physical: usize,
        kind: FailureKind,
    ) -> Result<Option<usize>, NoSpares> {
        if let Some(pos) = self.spares.iter().position(|&s| s == physical) {
            // A spare died in the pool: just drop it.
            self.spares.remove(pos);
            self.retired.push((physical, kind));
            return Ok(None);
        }
        let Some(logical) = self.assignment.iter().position(|&p| p == physical) else {
            // Already retired; nothing to do.
            return Ok(None);
        };
        let Some(replacement) = self.spares.pop() else {
            return Err(NoSpares { logical });
        };
        self.assignment[logical] = replacement;
        self.retired.push((physical, kind));
        Ok(Some(logical))
    }
}

/// No spare channel remains for a required remap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoSpares {
    /// The logical lane left without a physical channel.
    pub logical: usize,
}

impl std::fmt::Display for NoSpares {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no spare channel left for logical lane {}", self.logical)
    }
}

impl std::error::Error for NoSpares {}

impl From<NoSpares> for mosaic_units::MosaicError {
    fn from(e: NoSpares) -> Self {
        mosaic_units::MosaicError::infeasible(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn health_tracks_ber() {
        let mut h = LaneHealth::new(1000, 4);
        h.record(10_000, 10);
        let ber = h.ber().unwrap();
        assert!((ber - 1e-3).abs() < 1e-4, "got {ber}");
    }

    #[test]
    fn degraded_requires_full_window() {
        let mut h = LaneHealth::new(10_000, 4);
        h.record(100, 50); // terrible, but not yet a full window
        assert!(!h.degraded(1e-3));
        h.record(20_000, 10_000);
        assert!(h.degraded(1e-3));
    }

    #[test]
    fn history_is_bounded() {
        let mut h = LaneHealth::new(100, 3);
        for _ in 0..50 {
            h.record(100, 1);
        }
        assert!(h.history.len() <= 3);
    }

    #[test]
    fn spare_swap_on_failure() {
        let mut map = LaneMap::new(4, 6); // spares: {4, 5}
        assert_eq!(map.spares_left(), 2);
        let remapped = map.fail_channel(1, FailureKind::Dead).unwrap();
        assert_eq!(remapped, Some(1));
        assert_ne!(map.physical_for(1), 1);
        assert_eq!(map.spares_left(), 1);
    }

    #[test]
    fn spare_pool_failure_consumes_spare_quietly() {
        let mut map = LaneMap::new(4, 6);
        assert_eq!(map.fail_channel(5, FailureKind::Degraded).unwrap(), None);
        assert_eq!(map.spares_left(), 1);
        assert_eq!(map.logical_lanes(), 4);
    }

    #[test]
    fn exhausted_spares_is_an_error() {
        let mut map = LaneMap::new(2, 3); // one spare: channel 2
        assert_eq!(map.fail_channel(0, FailureKind::Dead).unwrap(), Some(0));
        assert_eq!(
            map.fail_channel(1, FailureKind::Dead),
            Err(NoSpares { logical: 1 })
        );
    }

    #[test]
    fn double_failure_of_same_channel_is_idempotent() {
        let mut map = LaneMap::new(2, 4);
        map.fail_channel(0, FailureKind::Dead).unwrap();
        assert_eq!(map.fail_channel(0, FailureKind::Dead).unwrap(), None);
        assert_eq!(map.retired().len(), 1);
    }

    proptest! {
        #[test]
        fn assignment_always_unique_and_live(
            logical in 1usize..16,
            extra in 0usize..8,
            kills in proptest::collection::vec(0usize..24, 0..12),
        ) {
            let physical = logical + extra;
            let mut map = LaneMap::new(logical, physical);
            for k in kills {
                if k < physical {
                    let _ = map.fail_channel(k, FailureKind::Dead);
                }
            }
            // Invariants: no duplicate physical channels; no assigned
            // channel is retired.
            let mut a = map.assignment().to_vec();
            a.sort_unstable();
            let before = a.len();
            a.dedup();
            prop_assert_eq!(a.len(), before, "duplicate physical assignment");
            for &(dead, _) in map.retired() {
                prop_assert!(!map.assignment().contains(&dead));
            }
        }
    }
}
