//! Pseudo-random binary sequences (PRBS) — generation and checking.
//!
//! PRBS patterns are the lingua franca of link bring-up: the transmitter
//! sends a known maximal-length LFSR sequence, the receiver locks to it and
//! counts mismatches, giving a live per-lane BER estimate with no protocol
//! above it. Mosaic uses exactly this for per-channel health monitoring.

/// A fibonacci LFSR PRBS generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prbs {
    state: u64,
    taps: (u32, u32),
    order: u32,
}

impl Prbs {
    /// PRBS7: x⁷ + x⁶ + 1 (period 127).
    pub fn prbs7() -> Self {
        Prbs {
            state: 0x7F,
            taps: (7, 6),
            order: 7,
        }
    }

    /// PRBS15: x¹⁵ + x¹⁴ + 1 (period 32767).
    pub fn prbs15() -> Self {
        Prbs {
            state: 0x7FFF,
            taps: (15, 14),
            order: 15,
        }
    }

    /// PRBS31: x³¹ + x²⁸ + 1 (period 2³¹−1), the datacom standard.
    pub fn prbs31() -> Self {
        Prbs {
            state: 0x7FFF_FFFF,
            taps: (31, 28),
            order: 31,
        }
    }

    /// Construct with an explicit non-zero seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        let mask = (1u64 << self.order) - 1;
        let s = seed & mask;
        assert!(
            s != 0,
            "LFSR seed must be non-zero within the register width"
        );
        self.state = s;
        self
    }

    /// Generate the next bit.
    pub fn next_bit(&mut self) -> u8 {
        let (a, b) = self.taps;
        let bit = ((self.state >> (a - 1)) ^ (self.state >> (b - 1))) & 1;
        self.state = ((self.state << 1) | bit) & ((1u64 << self.order) - 1);
        bit as u8
    }

    /// Generate `n` bits as 0/1 bytes.
    pub fn bits(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Sequence period, 2^order − 1.
    pub fn period(&self) -> u64 {
        (1u64 << self.order) - 1
    }
}

/// A bit-sliced bank of PRBS generators from one family, stepped in
/// lock-step — 64 lanes per machine word (DESIGN §11).
///
/// The registers are stored *transposed*: row `p` of [`PrbsBank::state`]
/// packs register bit `p` of every lane, lane `l` in bit `l % 64` of word
/// `l / 64`. One step of all lanes is then a word-wide XOR of the two tap
/// rows plus a one-row shift of the slab, instead of a per-lane
/// shift-and-mask — the same LFSR update the scalar [`Prbs`] performs,
/// evaluated 64 lanes at a time.
///
/// Lane counts need not be multiples of 64: tail bits above `lanes` start
/// zero and stay zero, because the all-zero register is a fixed point of
/// the LFSR update (tail-lane masking is free).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrbsBank {
    /// Transposed registers, row-major: `state[p * words + w]`.
    state: Vec<u64>,
    taps: (u32, u32),
    order: u32,
    lanes: usize,
    /// Words per row / per output slab: `lanes.div_ceil(64)`.
    words: usize,
}

impl PrbsBank {
    /// Build a bank whose lane `l` reproduces `generators[l]` exactly.
    /// All generators must come from the same PRBS family (same taps and
    /// order).
    ///
    /// # Panics
    /// Panics on an empty slice or mixed families.
    pub fn new(generators: &[Prbs]) -> Self {
        assert!(!generators.is_empty(), "PRBS bank needs at least one lane");
        let taps = generators[0].taps;
        let order = generators[0].order;
        assert!(
            generators
                .iter()
                .all(|g| g.taps == taps && g.order == order),
            "all lanes of a PRBS bank must share one family"
        );
        let lanes = generators.len();
        let words = lanes.div_ceil(64);
        let mut state = vec![0u64; order as usize * words];
        for (l, g) in generators.iter().enumerate() {
            for (p, row) in state.chunks_exact_mut(words).enumerate() {
                row[l / 64] |= ((g.state >> p) & 1) << (l % 64);
            }
        }
        PrbsBank {
            state,
            taps,
            order,
            lanes,
            words,
        }
    }

    /// A bank of `lanes` copies of `template` with per-lane seeds
    /// `seed_of(l)` (masked to the register width; must be non-zero).
    pub fn with_seeds(template: &Prbs, lanes: usize, seed_of: impl Fn(usize) -> u64) -> Self {
        let gens: Vec<Prbs> = (0..lanes)
            .map(|l| template.clone().with_seed(seed_of(l)))
            .collect();
        PrbsBank::new(&gens)
    }

    /// Number of lanes in the bank.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Output slab size in words: `lanes.div_ceil(64)`.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Advance every lane one bit. `out[w]` bit `l` receives the bit lane
    /// `w*64 + l` would have produced from [`Prbs::next_bit`]; bits at or
    /// above [`PrbsBank::lanes`] are zero.
    ///
    /// # Panics
    /// Panics unless `out.len() == self.words()`.
    #[inline]
    pub fn next_bits(&mut self, out: &mut [u64]) {
        assert_eq!(out.len(), self.words, "output slab must be words() long");
        let (a, b) = self.taps;
        let row_a = (a as usize - 1) * self.words;
        let row_b = (b as usize - 1) * self.words;
        // Feedback (= output) for all lanes: one XOR per 64 lanes.
        for (w, o) in out.iter_mut().enumerate() {
            *o = self.state[row_a + w] ^ self.state[row_b + w];
        }
        // Register shift `(state << 1) | fb`, transposed: every row moves
        // up one (row p ← row p−1, the top row falls off), and the
        // feedback becomes row 0.
        let top = (self.order as usize - 1) * self.words;
        self.state.copy_within(0..top, self.words);
        self.state[..self.words].copy_from_slice(out);
    }

    /// Generate `n` steps into `out`, slab after slab
    /// (`out.len() == n * self.words()`).
    ///
    /// # Panics
    /// Panics unless `out.len()` is exactly `n` slabs.
    pub fn bits_into(&mut self, n: usize, out: &mut [u64]) {
        assert_eq!(out.len(), n * self.words, "need n slabs of words() each");
        for slab in out.chunks_exact_mut(self.words) {
            self.next_bits(slab);
        }
    }
}

/// A self-synchronizing PRBS checker: seeds its reference LFSR from the
/// first `order` received bits, then counts mismatches. Mirrors how
/// hardware checkers lock without side-band seed exchange.
#[derive(Debug, Clone)]
pub struct PrbsChecker {
    reference: Option<Prbs>,
    template: Prbs,
    warmup: Vec<u8>,
    /// Bits compared since lock.
    pub compared: u64,
    /// Mismatches observed since lock.
    pub errors: u64,
}

impl PrbsChecker {
    /// A checker for the given PRBS family.
    pub fn new(template: Prbs) -> Self {
        PrbsChecker {
            reference: None,
            template,
            warmup: vec![],
            compared: 0,
            errors: 0,
        }
    }

    /// Feed one received bit.
    pub fn push(&mut self, bit: u8) {
        debug_assert!(bit <= 1);
        match &mut self.reference {
            None => {
                self.warmup.push(bit);
                if self.warmup.len() == self.template.order as usize {
                    // Seed the reference register with the received bits
                    // (newest in the LSB end matching generator shifts).
                    let mut state = 0u64;
                    for &b in &self.warmup {
                        state = (state << 1) | b as u64;
                    }
                    if state == 0 {
                        // All-zero lock is invalid; drop the oldest bit and
                        // keep hunting.
                        self.warmup.remove(0);
                        return;
                    }
                    let mut reference = self.template.clone();
                    reference.state = state;
                    self.reference = Some(reference);
                }
            }
            Some(r) => {
                let expect = r.next_bit();
                self.compared += 1;
                if expect != bit {
                    self.errors += 1;
                }
            }
        }
    }

    /// Feed a slice of bits.
    pub fn push_bits(&mut self, bits: &[u8]) {
        for &b in bits {
            self.push(b);
        }
    }

    /// Measured bit-error ratio since lock, or `None` before lock.
    pub fn ber(&self) -> Option<f64> {
        if self.compared == 0 {
            None
        } else {
            Some(self.errors as f64 / self.compared as f64)
        }
    }

    /// True once the reference is seeded.
    pub fn locked(&self) -> bool {
        self.reference.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn prbs7_period_is_127() {
        let mut g = Prbs::prbs7();
        let start = g.state;
        let mut count = 0u64;
        loop {
            g.next_bit();
            count += 1;
            if g.state == start {
                break;
            }
            assert!(count <= 127, "period exceeded 127");
        }
        assert_eq!(count, 127);
    }

    #[test]
    fn prbs15_is_balanced() {
        // A maximal-length sequence has 2^(n−1) ones per period.
        let mut g = Prbs::prbs15();
        let ones: u64 = g.bits(32767).iter().map(|&b| b as u64).sum();
        assert_eq!(ones, 16384);
    }

    #[test]
    fn checker_locks_and_sees_clean_stream() {
        let mut tx = Prbs::prbs31().with_seed(0xACE1);
        let mut chk = PrbsChecker::new(Prbs::prbs31());
        chk.push_bits(&tx.bits(10_000));
        assert!(chk.locked());
        assert_eq!(chk.errors, 0);
        assert!(chk.compared > 9_000);
    }

    #[test]
    fn checker_counts_injected_errors() {
        let mut tx = Prbs::prbs31().with_seed(42);
        let mut bits = tx.bits(20_000);
        // Flip 10 isolated bits well after lock. Each flip desynchronizes
        // nothing (checker runs free), so each costs exactly one mismatch.
        for i in 0..10 {
            bits[1000 + i * 1500] ^= 1;
        }
        let mut chk = PrbsChecker::new(Prbs::prbs31());
        chk.push_bits(&bits);
        assert_eq!(chk.errors, 10);
        let ber = chk.ber().unwrap();
        assert!((ber - 10.0 / chk.compared as f64).abs() < 1e-12);
    }

    #[test]
    fn zero_seed_rejected() {
        let result = std::panic::catch_unwind(|| Prbs::prbs7().with_seed(0));
        assert!(result.is_err());
    }

    /// Step a bank and N scalar generators together, checking every lane
    /// bit and that tail bits stay zero.
    fn assert_bank_matches_scalars(gens: Vec<Prbs>, steps: usize) {
        let mut bank = PrbsBank::new(&gens);
        let mut scalars = gens;
        let mut slab = vec![0u64; bank.words()];
        for step in 0..steps {
            bank.next_bits(&mut slab);
            for (l, g) in scalars.iter_mut().enumerate() {
                let got = (slab[l / 64] >> (l % 64)) & 1;
                assert_eq!(got as u8, g.next_bit(), "lane {l} step {step}");
            }
            let lanes = bank.lanes();
            let tail = lanes % 64;
            if tail != 0 {
                assert_eq!(
                    slab[lanes / 64] >> tail,
                    0,
                    "tail lanes must stay zero at step {step}"
                );
            }
        }
    }

    #[test]
    fn bank_matches_scalar_lanes_at_boundary_counts() {
        for lanes in [1usize, 63, 64, 65, 130] {
            let gens: Vec<Prbs> = (0..lanes)
                .map(|l| Prbs::prbs7().with_seed(1 + (l as u64 % 126)))
                .collect();
            // 260 steps covers two full PRBS7 periods.
            assert_bank_matches_scalars(gens, 260);
        }
    }

    #[test]
    fn bank_rejects_mixed_families() {
        let result = std::panic::catch_unwind(|| PrbsBank::new(&[Prbs::prbs7(), Prbs::prbs15()]));
        assert!(result.is_err());
    }

    #[test]
    fn bank_bits_into_is_next_bits_repeated() {
        let mut a = PrbsBank::with_seeds(&Prbs::prbs15(), 70, |l| 1 + l as u64);
        let mut b = a.clone();
        let n = 37;
        let mut bulk = vec![0u64; n * a.words()];
        a.bits_into(n, &mut bulk);
        let mut slab = vec![0u64; b.words()];
        for chunk in bulk.chunks_exact(b.words()) {
            b.next_bits(&mut slab);
            assert_eq!(chunk, &slab[..]);
        }
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn bank_matches_scalar_lanes_random(
            lanes in 1usize..100,
            seed0 in 1u64..0x7FFF_FFFF,
            steps in 1usize..80,
        ) {
            let gens: Vec<Prbs> = (0..lanes)
                .map(|l| Prbs::prbs31().with_seed(
                    1 + (seed0.wrapping_add(l as u64 * 0x9E37_79B9)) % (0x7FFF_FFFF - 1),
                ))
                .collect();
            assert_bank_matches_scalars(gens, steps);
        }

        #[test]
        fn checker_ber_matches_flip_prob(seed in 1u64..1000, flips in 0usize..50) {
            let mut tx = Prbs::prbs31().with_seed(seed);
            let mut bits = tx.bits(15_000);
            // Spread flips deterministically past the 31-bit warmup.
            for i in 0..flips {
                bits[100 + i * 290] ^= 1;
            }
            let mut chk = PrbsChecker::new(Prbs::prbs31());
            chk.push_bits(&bits);
            prop_assert_eq!(chk.errors, flips as u64);
        }
    }
}
